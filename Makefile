GO ?= go

.PHONY: build test race lint staticcheck bench bench-engine bench-engine-smoke cluster-smoke advisor-smoke crash-smoke faultmix-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole-repo race gate: every package under the race detector, not
# just the targeted smokes. CI runs this as its own job.
race:
	$(GO) test -race -timeout 10m ./...

# Lint pipeline (docs/LINT.md): vet with the lock-copy and atomic
# misuse analyzers called out explicitly (so a vet default change can
# never silently drop them), then full vet, then staticcheck when
# installed, then the repo's own ceslint suite.
lint:
	$(GO) vet -copylocks -atomic ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs the pinned version)"; \
	fi
	$(GO) run ./cmd/ceslint ./...

# staticcheck is version-pinned and run in CI (.github/workflows/ci.yml);
# locally it is optional because the toolchain-only sandbox cannot
# install it.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; in a networked environment:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2024.1.1"; \
		exit 1; }
	staticcheck ./...

bench:
	$(GO) test -run=XXX -bench=BenchmarkRepeatedRuns -benchtime=300x .

# Engine hot-path benchmark record (docs/MODEL.md "Engine internals").
# Runs BenchmarkRepeatedRuns 8x at fixed iterations, takes the minimum
# per sub-benchmark (one-sided co-tenant noise) and rewrites
# BENCH_engine.json including the speedup vs BENCH_repeated.json's
# pre-rework baseline.
bench-engine:
	$(GO) run ./cmd/benchengine -out BENCH_engine.json

# CI variant: one short run into a scratch file, proving the tool and
# the benchmark still work without committing noisy numbers.
bench-engine-smoke:
	$(GO) run ./cmd/benchengine -benchtime 5x -count 1 -out /tmp/BENCH_engine_smoke.json

# In-process multi-node drill (docs/CLUSTER.md): coordinator + workers,
# bit-identity vs the sequential campaign, shard fault storm, worker
# kill mid-lease, cancellation mid-sweep — all under the race detector.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestDistributed|TestWorkerKillMidLease|TestCancelMidDistributedSweep|TestRequestIDsFlowThroughCluster' ./internal/cluster/

# Advisor smoke (docs/ADVISOR.md): boot the daemon stack, ingest the
# canned NDJSON CE stream, and require the recommendation to match the
# committed golden byte-for-byte — plus the permuted-ingest determinism
# and ingest-fault chaos drills. Regenerate the golden after an
# intentional policy change with:
#   go test -run TestAdvisorSmokeGolden ./internal/server/ -update-advisor-golden
advisor-smoke:
	$(GO) test -race -count=1 -run 'TestAdvisorSmokeGolden|TestAdviseIngestChaos' ./internal/server/
	$(GO) test -race -count=1 -run 'TestRecommendDeterminismPermutedBatches' ./internal/advise/

# Fault-mix smoke (docs/FAULTMODEL.md): a fixed-seed run of the two
# fault-mix figures byte-compared against the committed golden, the
# rerun bit-identity drill, and the mixture determinism contract
# (permuted mode order, shared-process goroutines) under the race
# detector. Regenerate the golden after an intentional model change:
#   go test -run TestFaultMixSmokeGolden ./internal/core/ -update-faultmix-golden
faultmix-smoke:
	$(GO) test -race -count=1 -run 'TestFaultMixSmokeGolden|TestFaultMixFiguresBitIdentical' ./internal/core/
	$(GO) test -race -count=1 -run 'TestPermutedModesBitIdentical|TestDeterministicReplay|TestProcessSharedAcrossGoroutines|TestAppendGapsMatchesNextGap' ./internal/faultmodel/
	$(GO) test -race -count=1 -run 'TestClosedLoop' ./internal/advise/

# Kill-and-restart acceptance (docs/DURABILITY.md): build the real
# cesimd binary, SIGKILL it mid-campaign (standalone with a journaled
# sweep in flight, and a coordinator mid-sweep with a live worker),
# restart over the same -data-dir, and require the recovered results to
# be bit-identical to a direct sequential computation.
crash-smoke:
	$(GO) test -race -count=1 -run 'TestCrashSmoke' ./cmd/cesimd/
