GO ?= go

.PHONY: build test lint staticcheck bench cluster-smoke advisor-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism-and-safety lint suite (docs/LINT.md) plus go vet.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ceslint ./...

# staticcheck is version-pinned and run in CI (.github/workflows/ci.yml);
# locally it is optional because the toolchain-only sandbox cannot
# install it.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; in a networked environment:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2023.1.7"; \
		exit 1; }
	staticcheck ./...

bench:
	$(GO) test -run=XXX -bench=BenchmarkRepeatedRuns -benchtime=300x .

# In-process multi-node drill (docs/CLUSTER.md): coordinator + workers,
# bit-identity vs the sequential campaign, shard fault storm, worker
# kill mid-lease, cancellation mid-sweep — all under the race detector.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestDistributed|TestWorkerKillMidLease|TestCancelMidDistributedSweep|TestRequestIDsFlowThroughCluster' ./internal/cluster/

# Advisor smoke (docs/ADVISOR.md): boot the daemon stack, ingest the
# canned NDJSON CE stream, and require the recommendation to match the
# committed golden byte-for-byte — plus the permuted-ingest determinism
# and ingest-fault chaos drills. Regenerate the golden after an
# intentional policy change with:
#   go test -run TestAdvisorSmokeGolden ./internal/server/ -update-advisor-golden
advisor-smoke:
	$(GO) test -race -count=1 -run 'TestAdvisorSmokeGolden|TestAdviseIngestChaos' ./internal/server/
	$(GO) test -race -count=1 -run 'TestRecommendDeterminismPermutedBatches' ./internal/advise/
