GO ?= go

.PHONY: build test lint staticcheck bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism-and-safety lint suite (docs/LINT.md) plus go vet.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ceslint ./...

# staticcheck is version-pinned and run in CI (.github/workflows/ci.yml);
# locally it is optional because the toolchain-only sandbox cannot
# install it.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; in a networked environment:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2023.1.7"; \
		exit 1; }
	staticcheck ./...

bench:
	$(GO) test -run=XXX -bench=BenchmarkRepeatedRuns -benchtime=300x .
