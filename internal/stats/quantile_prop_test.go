package stats

// Property tests for Quantile against a brute-force reference:
// boundary behavior at p=0 and p=100, agreement with an independently
// written linear-interpolation implementation on random samples of odd
// and even size, monotonicity in p, and invariance to input order.
// These pin the interpolation convention (R type-7 / numpy "linear":
// pos = p/100*(n-1)) so a future rewrite cannot silently switch to a
// different quantile definition and shift every figure's tail stats.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the brute-force reference: sort a copy, compute the
// fractional position directly, interpolate. Deliberately written
// without sharing any code with Quantile.
func refQuantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo >= n-1 {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

func TestQuantileBoundariesAreMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 17, 100} {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		q0, err := s.Quantile(0)
		if err != nil {
			t.Fatal(err)
		}
		if q0 != s.Min() {
			t.Errorf("n=%d: Quantile(0) = %v, want min %v", n, q0, s.Min())
		}
		q100, err := s.Quantile(100)
		if err != nil {
			t.Fatal(err)
		}
		if q100 != s.Max() {
			t.Errorf("n=%d: Quantile(100) = %v, want max %v", n, q100, s.Max())
		}
	}
}

func TestQuantileMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := []float64{0, 1, 10, 25, 33.3, 50, 66.7, 75, 90, 95, 99, 99.9, 100}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40) // covers odd and even sizes including n=1,2
		xs := make([]float64, n)
		for i := range xs {
			if rng.Intn(4) == 0 && i > 0 {
				xs[i] = xs[rng.Intn(i)] // inject duplicates: ties stress lo==hi
			} else {
				xs[i] = math.Round(rng.NormFloat64()*1000) / 8
			}
		}
		var s Sample
		s.AddAll(xs...)
		for _, p := range ps {
			got, err := s.Quantile(p)
			if err != nil {
				t.Fatalf("n=%d p=%v: %v", n, p, err)
			}
			want := refQuantile(xs, p)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("n=%d p=%v: Quantile = %v, reference = %v\nxs = %v", n, p, got, want, xs)
			}
		}
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		var s Sample
		for i, n := 0, 2+rng.Intn(30); i < n; i++ {
			s.Add(rng.Float64() * 1e6)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 0.5 {
			q, err := s.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			if q < prev {
				t.Fatalf("trial %d: Quantile(%v) = %v < Quantile(%v) = %v", trial, p, q, p-0.5, prev)
			}
			prev = q
		}
	}
}

func TestQuantileOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 23)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	var a Sample
	a.AddAll(xs...)
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		var b Sample
		b.AddAll(xs...)
		for _, p := range []float64{0, 12.5, 50, 87.5, 100} {
			qa, _ := a.Quantile(p)
			qb, _ := b.Quantile(p)
			if qa != qb {
				t.Fatalf("p=%v: quantile depends on input order: %v vs %v", p, qa, qb)
			}
		}
	}
}

// TestQuantileDoesNotMutateSample: Quantile sorts a copy; the caller's
// observation order (which Values exposes) must survive.
func TestQuantileDoesNotMutateSample(t *testing.T) {
	var s Sample
	s.AddAll(3, 1, 2)
	if _, err := s.Quantile(50); err != nil {
		t.Fatal(err)
	}
	got := s.Values()
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantile reordered the sample: %v", got)
		}
	}
}
