// Package stats provides the summary statistics used by the experiment
// drivers: means, confidence intervals, percentiles and histograms over
// repeated simulation results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations. The zero value is ready to use.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddAll appends many observations.
func (s *Sample) AddAll(xs ...float64) { s.xs = append(s.xs, xs...) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (+Inf when empty).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, x := range s.xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation (-Inf when empty).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, x := range s.xs {
		if x > max {
			max = x
		}
	}
	return max
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean, using the normal approximation (adequate for the >= 8
// repetitions the paper uses per configuration).
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// ErrEmptySample is returned by Quantile on a sample with no
// observations — the legitimate outcome of a fully saturated sweep,
// where every repetition is excluded from the slowdown sample.
var ErrEmptySample = fmt.Errorf("stats: empty sample")

// Quantile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation. Unlike Percentile it never panics: an empty sample
// returns ErrEmptySample and an out-of-range p returns an error, so
// report and serving paths can surface a clean failure for
// all-saturated results instead of a panic.
func (s *Sample) Quantile(p float64) (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmptySample
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v out of range [0, 100]", p)
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation. It panics on an empty sample or out-of-range p;
// callers that can legitimately see empty samples (fully saturated
// sweeps) should use Quantile.
func (s *Sample) Percentile(p float64) float64 {
	v, err := s.Quantile(p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// Summary is a one-line description of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize returns the sample's summary.
func (s *Sample) Summarize() Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), StdDev: s.StdDev(),
		CI95: s.CI95(), Min: s.Min(), Max: s.Max(),
	}
}

// Histogram bins observations into equal-width buckets over [lo, hi).
// Out-of-range values clamp to the first/last bucket; NaN observations
// are counted in NaNs and excluded from the buckets (the float-to-int
// conversion of NaN is unspecified and used to land them in bucket 0,
// silently skewing the low end).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Total counts the bucketed (non-NaN) observations.
	Total int
	// NaNs counts observations rejected as NaN.
	NaNs    int
	width   float64
	samples int
}

// NewHistogram creates a histogram with the given bounds and bucket
// count. It panics when hi <= lo or buckets < 1.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo {
		panic("stats: histogram hi <= lo")
	}
	if buckets < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets), width: (hi - lo) / float64(buckets)}
}

// Add records an observation. NaN is tallied separately (see NaNs).
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.NaNs++
		return
	}
	i := int((x - h.Lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	return h.Lo + float64(i)*h.width, h.Lo + float64(i+1)*h.width
}

// Slowdown converts a perturbed and baseline makespan to the percentage
// slowdown used throughout the paper's figures.
func Slowdown(perturbed, baseline int64) float64 {
	if baseline <= 0 {
		return 0
	}
	return 100 * (float64(perturbed) - float64(baseline)) / float64(baseline)
}
