package stats

// Edge-case regression tests: Quantile's non-panicking contract for
// empty samples (fully saturated sweeps produce them legitimately), and
// Histogram's NaN accounting (int(NaN) is unspecified and used to land
// NaN observations in bucket 0).

import (
	"errors"
	"math"
	"testing"
)

func TestQuantileEmptySample(t *testing.T) {
	var s Sample
	v, err := s.Quantile(50)
	if !errors.Is(err, ErrEmptySample) {
		t.Fatalf("err = %v, want ErrEmptySample", err)
	}
	if v != 0 {
		t.Fatalf("value = %v, want 0", v)
	}
}

func TestQuantileOutOfRange(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	for _, p := range []float64{-0.001, 100.001, math.NaN()} {
		if _, err := s.Quantile(p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}

func TestQuantileMatchesPercentile(t *testing.T) {
	var s Sample
	s.AddAll(5, 1, 4, 2, 3)
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		q, err := s.Quantile(p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if got := s.Percentile(p); got != q {
			t.Fatalf("p=%v: Quantile %v != Percentile %v", p, q, got)
		}
	}
	one := Sample{}
	one.Add(7)
	if q, err := one.Quantile(95); err != nil || q != 7 {
		t.Fatalf("single-element quantile = %v, %v", q, err)
	}
}

func TestHistogramNaNCountedSeparately(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(1)
	h.Add(math.NaN())
	h.Add(9)
	h.Add(math.NaN())
	if h.NaNs != 2 {
		t.Fatalf("NaNs = %d, want 2", h.NaNs)
	}
	if h.Total != 2 {
		t.Fatalf("Total = %d, want 2 (NaNs must not be bucketed)", h.Total)
	}
	if h.Counts[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1 — NaN leaked into the low bucket", h.Counts[0])
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Fatalf("bucket sum %d != Total %d", sum, h.Total)
	}
}
