package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample stats not zero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max not infinite")
	}
}

func TestMoments(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic set is 32/7.
	if !almostEq(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var a, b Sample
	for i := 0; i < 10; i++ {
		a.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		b.Add(float64(i % 3))
	}
	if b.CI95() >= a.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", b.CI95(), a.CI95())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5}
	for p, want := range cases {
		if got := s.Percentile(p); !almostEq(got, want, 1e-12) {
			t.Fatalf("P%.0f = %v, want %v", p, got, want)
		}
	}
	if got := s.Percentile(90); !almostEq(got, 4.6, 1e-12) {
		t.Fatalf("P90 = %v, want 4.6", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	var s Sample
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty percentile did not panic")
			}
		}()
		s.Percentile(50)
	}()
	s.Add(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range percentile did not panic")
			}
		}()
		s.Percentile(101)
	}()
}

func TestSummarize(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	sum := s.Summarize()
	if sum.N != 3 || sum.Mean != 2 || sum.Min != 1 || sum.Max != 3 {
		t.Fatalf("summary wrong: %+v", sum)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps low, 42 clamps high
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total != 7 {
		t.Fatalf("total = %d", h.Total)
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bucket 1 bounds = [%v,%v)", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad histogram accepted")
				}
			}()
			f()
		}()
	}
}

func TestSlowdown(t *testing.T) {
	if got := Slowdown(110, 100); !almostEq(got, 10, 1e-12) {
		t.Fatalf("Slowdown(110,100) = %v", got)
	}
	if got := Slowdown(100, 100); got != 0 {
		t.Fatalf("Slowdown(100,100) = %v", got)
	}
	if got := Slowdown(400, 100); !almostEq(got, 300, 1e-12) {
		t.Fatalf("Slowdown(400,100) = %v", got)
	}
	if got := Slowdown(5, 0); got != 0 {
		t.Fatalf("Slowdown with zero baseline = %v, want 0", got)
	}
}

// Property: mean lies within [min, max]; variance is non-negative.
func TestQuickMomentsSane(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return s.Percentile(a) <= s.Percentile(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
