// Package rng provides deterministic pseudo-random number generation for
// the simulator.
//
// Simulation results must be exactly reproducible from a single integer
// seed, and independent streams must be cheap to derive (one per node for
// correctable-error arrivals, one per repetition, ...). The package
// implements xoshiro256** seeded via SplitMix64, which is the combination
// recommended by the xoshiro authors: SplitMix64 guarantees a well-mixed
// 256-bit state even from small or correlated seeds.
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 is the SplitMix64 finalizer applied to x: a cheap, high-quality
// 64-bit mixing function. It is the module's canonical way to hash
// small integer keys into well-distributed 64-bit values — the cluster
// layer derives per-cell seeds and rendezvous placement scores from it —
// so every layer that needs "a deterministic number from a key" agrees
// on one construction.
func Mix64(x uint64) uint64 {
	return splitMix64(&x)
}

// Source is a xoshiro256** pseudo-random generator. The zero value is not
// valid; construct with New or NewStream.
type Source struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot emit
	// four zeros in a row, but guard anyway so the invariant is local.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// NewStream returns a generator for an independent stream identified by
// (seed, stream). Distinct stream identifiers yield statistically
// independent sequences for the same base seed; this is how per-node and
// per-repetition generators are derived.
func NewStream(seed, stream uint64) *Source {
	// Mix the stream id through SplitMix64 before combining so that
	// consecutive stream ids (0,1,2,...) do not produce correlated seeds.
	sm := stream
	mixed := splitMix64(&sm)
	return New(seed ^ (mixed * 0x9e3779b97f4a7c15) ^ (stream << 1))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits scaled by 2^-53; the standard unbiased construction.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids the
	// modulo in the common case.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
// Mean must be positive.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with non-positive mean")
	}
	// Inverse CDF. Guard against log(0) by excluding u == 0.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
