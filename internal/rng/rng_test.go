package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	base := uint64(7)
	a := NewStream(base, 0)
	b := NewStream(base, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 produced %d identical draws", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(99, 1234)
	b := NewStream(99, 1234)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical streams diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d far from expected %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(17)
	for _, mean := range []float64{1e-9, 1.0, 3600.0} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Exp(mean)
			if v < 0 {
				t.Fatalf("Exp(%v) returned negative %v", mean, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.02 {
			t.Fatalf("Exp mean = %v, want ~%v", got, mean)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

func TestNormalMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	mean, stddev := 5.0, 2.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(sd-stddev) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~%v", sd, stddev)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

// Property: every (seed, stream) pair reproduces its own sequence, and
// Float64 stays in range regardless of seed.
func TestQuickStreamReproducible(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a := NewStream(seed, stream)
		b := NewStream(seed, stream)
		for i := 0; i < 16; i++ {
			av := a.Float64()
			if av < 0 || av >= 1 {
				return false
			}
			if av != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: exponential draws are non-negative for any positive mean.
func TestQuickExpNonNegative(t *testing.T) {
	f := func(seed uint64, meanBits uint32) bool {
		mean := 1e-9 + float64(meanBits)/1000.0
		r := New(seed)
		for i := 0; i < 8; i++ {
			if r.Exp(mean) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1.0)
	}
	_ = sink
}
