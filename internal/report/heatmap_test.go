package report

import (
	"bytes"
	"strings"
	"testing"
)

func demoHeatmap() *Heatmap {
	return &Heatmap{
		Title:    "demo",
		RowLabel: "mtbce",
		ColLabel: "dur",
		RowNames: []string{"0.2s", "720s"},
		ColNames: []string{"150ns", "133ms"},
		Values: [][]float64{
			{0.01, -1},
			{0.001, 12},
		},
		LogScale: true,
	}
}

func TestHeatmapRender(t *testing.T) {
	var buf bytes.Buffer
	if err := demoHeatmap().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# demo", "mtbce\\dur", "0.2s", "720s", "150ns", "133ms", "X"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmapAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := demoHeatmap().Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	// Header and row lines must place column cells at the same offsets.
	header := lines[1]
	row := lines[2]
	hIdx := strings.Index(header, "150ns")
	if hIdx < 0 {
		t.Fatalf("header: %q", header)
	}
	// The first data cell must sit within the 150ns column (right
	// aligned at hIdx+len("150ns")).
	cell := strings.TrimRight(row[:hIdx+5], " ")
	if len(cell) <= hIdx-5 {
		t.Fatalf("data cell misaligned:\n%s\n%s", header, row)
	}
}

func TestHeatmapDimensionErrors(t *testing.T) {
	h := demoHeatmap()
	h.Values = h.Values[:1]
	if err := h.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	h = demoHeatmap()
	h.Values[0] = h.Values[0][:1]
	if err := h.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("col count mismatch accepted")
	}
}

func TestHeatmapShadeMonotone(t *testing.T) {
	h := &Heatmap{
		RowNames: []string{"r"},
		ColNames: []string{"a", "b", "c", "d"},
		Values:   [][]float64{{1, 10, 100, 1000}},
		LogScale: true,
	}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Find the data row and check shades increase along the ramp.
	lines := strings.Split(buf.String(), "\n")
	var row string
	for _, l := range lines {
		if strings.HasPrefix(l, "r") {
			row = l
			break
		}
	}
	cells := strings.Fields(row[1:])
	if len(cells) != 4 {
		t.Fatalf("cells: %q from row %q", cells, row)
	}
	last := -1
	for _, c := range cells {
		idx := strings.Index(shadeRamp, c)
		if idx < 0 {
			t.Fatalf("unknown shade %q", c)
		}
		if idx <= last {
			t.Fatalf("shades not increasing: %q", row)
		}
		last = idx
	}
}

func TestHeatmapAllSentinels(t *testing.T) {
	h := &Heatmap{
		RowNames: []string{"r"},
		ColNames: []string{"a"},
		Values:   [][]float64{{-1}},
	}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X") {
		t.Fatal("sentinel not rendered")
	}
}
