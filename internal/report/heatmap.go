package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap renders a 2D grid of values as ASCII shades, used for the
// (MTBCE x per-event-duration) overhead surfaces that generalize the
// paper's Fig. 7. Rows and columns carry labels; values map onto a
// shade ramp, with negative values (sentinels, e.g. "no progress")
// rendered as 'X'.
type Heatmap struct {
	Title    string
	RowLabel string
	ColLabel string
	RowNames []string
	ColNames []string
	// Values[r][c]; len(Values) == len(RowNames), len(Values[r]) ==
	// len(ColNames).
	Values [][]float64
	// LogScale shades by log10 of the value, natural for slowdowns
	// spanning 0.01% to 1000%.
	LogScale bool
}

// shadeRamp orders shades from low to high.
const shadeRamp = ".:-=+*#%@"

// Render writes the heatmap.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Values) != len(h.RowNames) {
		return fmt.Errorf("report: %d value rows vs %d row names", len(h.Values), len(h.RowNames))
	}
	for r, row := range h.Values {
		if len(row) != len(h.ColNames) {
			return fmt.Errorf("report: row %d has %d values vs %d col names", r, len(row), len(h.ColNames))
		}
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	tv := func(v float64) float64 {
		if h.LogScale {
			if v <= 0 {
				return math.Inf(1)
			}
			return math.Log10(v)
		}
		return v
	}
	for _, row := range h.Values {
		for _, v := range row {
			if v < 0 {
				continue // sentinel
			}
			x := tv(v)
			if math.IsInf(x, 1) {
				continue
			}
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	}
	if maxV <= minV {
		maxV = minV + 1
	}
	headerLabel := h.RowLabel + "\\" + h.ColLabel
	rowWidth := len(headerLabel) - 2
	for _, n := range h.RowNames {
		if len(n) > rowWidth {
			rowWidth = len(n)
		}
	}
	colWidth := 1
	for _, n := range h.ColNames {
		if len(n) > colWidth {
			colWidth = len(n)
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "# %s\n", h.Title)
	}
	fmt.Fprintf(&b, "%-*s", rowWidth+2, headerLabel)
	for _, n := range h.ColNames {
		fmt.Fprintf(&b, " %*s", colWidth, n)
	}
	b.WriteString("\n")
	for r, row := range h.Values {
		fmt.Fprintf(&b, "%-*s", rowWidth+2, h.RowNames[r])
		for _, v := range row {
			var cell string
			switch {
			case v < 0:
				cell = "X" // no progress / omitted
			default:
				x := tv(v)
				if math.IsInf(x, 1) {
					cell = " "
				} else {
					idx := int((x - minV) / (maxV - minV) * float64(len(shadeRamp)-1))
					if idx < 0 {
						idx = 0
					}
					if idx >= len(shadeRamp) {
						idx = len(shadeRamp) - 1
					}
					cell = string(shadeRamp[idx])
				}
			}
			fmt.Fprintf(&b, " %*s", colWidth, cell)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "shade: low %q .. high %q, X = no progress\n", shadeRamp[0], shadeRamp[len(shadeRamp)-1])
	_, err := io.WriteString(w, b.String())
	return err
}
