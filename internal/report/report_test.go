package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestASCIIAlignment(t *testing.T) {
	tb := New("demo", "workload", "slowdown")
	tb.AddRow("lulesh", "98.5%")
	tb.AddRow("lammps-lj", "0.3%")
	var buf bytes.Buffer
	if err := tb.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (title, header, sep, 2 rows)", len(lines))
	}
	// Columns align: "slowdown" starts at the same offset in header and rows.
	headerIdx := strings.Index(lines[1], "slowdown")
	rowIdx := strings.Index(lines[3], "98.5%")
	if headerIdx != rowIdx {
		t.Fatalf("columns misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestASCIILineCount(t *testing.T) {
	tb := New("x", "a")
	tb.AddRow("1")
	tb.AddRow("2")
	var buf bytes.Buffer
	if err := tb.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), buf.String())
	}
}

func TestRowPadding(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("1")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("short row not padded: %v", tb.Rows[0])
	}
	tb.AddRow("1", "2", "3", "4")
	if len(tb.Columns) != 4 {
		t.Fatalf("long row did not extend columns: %v", tb.Columns)
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "sys", "mode", "pct")
	tb.AddRow("cielo", "firmware-emca", "0.42")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "sys,mode,pct\ncielo,firmware-emca,0.42\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestNanos(t *testing.T) {
	cases := map[int64]string{
		0:             "0ns",
		150:           "150ns",
		775000:        "775us",
		133000000:     "133ms",
		5544000000000: "5544s",
		1250:          "1.25us",
		-150:          "-150ns",
	}
	for ns, want := range cases {
		if got := Nanos(ns); got != want {
			t.Fatalf("Nanos(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	cases := map[float64]string{
		0.003:  "0.0030%",
		0.42:   "0.420%",
		7.5:    "7.50%",
		98.6:   "98.6%",
		850.0:  "850.0%",
		0:      "0.000%",
		-12.25: "-12.2%",
	}
	for v, want := range cases {
		if got := Pct(v); got != want {
			t.Fatalf("Pct(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "#####" {
		t.Fatalf("Bar(50,100,10) = %q", got)
	}
	if got := Bar(0, 100, 10); got != "" {
		t.Fatalf("Bar(0) = %q, want empty", got)
	}
	if got := Bar(1, 100, 10); got != "#" {
		t.Fatalf("tiny bar = %q, want single #", got)
	}
	if got := Bar(500, 100, 10); got != "##########" {
		t.Fatalf("overflow bar = %q", got)
	}
	if got := Bar(5, 0, 10); got != "" {
		t.Fatalf("zero max bar = %q", got)
	}
}
