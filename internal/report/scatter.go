package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ScatterOpts configure an ASCII scatter plot.
type ScatterOpts struct {
	// Width and Height are the plot area in characters. Zero means
	// 72x16.
	Width, Height int
	// LogY plots the y axis logarithmically — the natural choice for
	// detour series spanning microseconds to hundreds of milliseconds
	// (Fig. 2).
	LogY bool
	// XLabel and YLabel caption the axes.
	XLabel, YLabel string
}

func (o ScatterOpts) withDefaults() ScatterOpts {
	if o.Width == 0 {
		o.Width = 72
	}
	if o.Height == 0 {
		o.Height = 16
	}
	return o
}

// Scatter renders (x, y) points as a fixed-width ASCII plot, one '▪'
// per occupied cell ('*' in plain ASCII). It is the textual stand-in
// for the paper's noise-signature figures.
func Scatter(w io.Writer, xs, ys []float64, opts ScatterOpts) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: %d xs vs %d ys", len(xs), len(ys))
	}
	opts = opts.withDefaults()
	if len(xs) == 0 {
		_, err := io.WriteString(w, "(no points)\n")
		return err
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	ty := func(y float64) float64 {
		if opts.LogY {
			if y <= 0 {
				return math.Inf(1) // dropped below
			}
			return math.Log10(y)
		}
		return y
	}
	for i := range xs {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		v := ty(ys[i])
		if math.IsInf(v, 1) {
			continue
		}
		if v < minY {
			minY = v
		}
		if v > maxY {
			maxY = v
		}
	}
	if math.IsInf(minY, 1) {
		_, err := io.WriteString(w, "(no plottable points)\n")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for i := range xs {
		v := ty(ys[i])
		if math.IsInf(v, 1) {
			continue
		}
		col := int((xs[i] - minX) / (maxX - minX) * float64(opts.Width-1))
		row := int((v - minY) / (maxY - minY) * float64(opts.Height-1))
		grid[opts.Height-1-row][col] = '*'
	}
	var b strings.Builder
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	for i, line := range grid {
		var tick string
		switch i {
		case 0:
			tick = formatTick(maxY, opts.LogY)
		case opts.Height - 1:
			tick = formatTick(minY, opts.LogY)
		}
		fmt.Fprintf(&b, "%10s |%s\n", tick, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", opts.Width-len(fmt.Sprint(formatTick(maxX, false))),
		formatTick(minX, false), formatTick(maxX, false))
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", opts.XLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatTick renders an axis value, undoing the log transform.
func formatTick(v float64, logScale bool) string {
	if logScale {
		v = math.Pow(10, v)
	}
	switch {
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
