package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 10, 20, 30}
	ys := []float64{1, 2, 3, 4}
	if err := Scatter(&buf, xs, ys, ScatterOpts{Width: 40, Height: 8, XLabel: "time", YLabel: "dur"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "*") != 4 {
		t.Fatalf("want 4 points, got %d:\n%s", strings.Count(out, "*"), out)
	}
	if !strings.Contains(out, "time") || !strings.Contains(out, "dur") {
		t.Fatal("labels missing")
	}
}

func TestScatterMismatchedLengths(t *testing.T) {
	if err := Scatter(&bytes.Buffer{}, []float64{1}, []float64{1, 2}, ScatterOpts{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestScatterEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Scatter(&buf, nil, nil, ScatterOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no points") {
		t.Fatalf("empty plot output: %q", buf.String())
	}
}

func TestScatterLogY(t *testing.T) {
	var buf bytes.Buffer
	// Values spanning five decades: on a linear axis the small ones
	// collapse into one row; on a log axis they spread out.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1e-6, 1e-4, 1e-2, 1, 100}
	if err := Scatter(&buf, xs, ys, ScatterOpts{Width: 20, Height: 10, LogY: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	rows := map[int]bool{}
	for i, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") {
			rows[i] = true
		}
	}
	if len(rows) < 4 {
		t.Fatalf("log axis did not spread decades across rows: %d rows\n%s", len(rows), out)
	}
}

func TestScatterLogYDropsNonPositive(t *testing.T) {
	var buf bytes.Buffer
	if err := Scatter(&buf, []float64{0, 1}, []float64{0, -1}, ScatterOpts{LogY: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Fatalf("non-positive log points not dropped: %q", buf.String())
	}
}

func TestScatterSinglePoint(t *testing.T) {
	var buf bytes.Buffer
	if err := Scatter(&buf, []float64{5}, []float64{5}, ScatterOpts{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "*") != 1 {
		t.Fatal("single point not plotted")
	}
}

func TestScatterDefaultDims(t *testing.T) {
	var buf bytes.Buffer
	if err := Scatter(&buf, []float64{0, 1}, []float64{0, 1}, ScatterOpts{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// 16 plot rows + axis + tick line.
	if len(lines) < 18 {
		t.Fatalf("default height wrong: %d lines", len(lines))
	}
}
