// Package report renders experiment results as aligned ASCII tables and
// CSV, the two output forms of the benchmark harness (one row/series per
// paper table or figure element).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells; long
// rows extend the column set with empty headers.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	for len(t.Columns) < len(cells) {
		t.Columns = append(t.Columns, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (title omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Nanos formats a nanosecond duration with an adaptive unit, matching
// how the paper quotes costs (150ns, 775us, 133ms, 5544s).
func Nanos(ns int64) string {
	switch {
	case ns < 0:
		return fmt.Sprintf("-%s", Nanos(-ns))
	case ns < 1000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1000*1000:
		return trimUnit(float64(ns)/1000, "us")
	case ns < 1000*1000*1000:
		return trimUnit(float64(ns)/1e6, "ms")
	default:
		return trimUnit(float64(ns)/1e9, "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s + unit
}

// Pct formats a percentage with precision adapted to its magnitude, so
// both 0.003% and 850% rows read naturally.
func Pct(v float64) string {
	switch {
	case v != 0 && v < 0.01 && v > -0.01:
		return fmt.Sprintf("%.4f%%", v)
	case v < 1 && v > -1:
		return fmt.Sprintf("%.3f%%", v)
	case v < 10 && v > -10:
		return fmt.Sprintf("%.2f%%", v)
	default:
		return fmt.Sprintf("%.1f%%", v)
	}
}

// Bar renders a proportional ASCII bar of at most width characters for
// value within [0, max]; used for quick visual figure checks.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}
