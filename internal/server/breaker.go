package server

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports that the baseline-cache circuit breaker is
// open: the cache path is skipped and simulate jobs degrade to
// cache-bypass builds until a half-open probe succeeds.
var ErrBreakerOpen = errors.New("server: baseline-cache breaker open")

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states: closed passes traffic, open short-circuits it,
// half-open admits a single probe after the cooldown.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a sliding-window circuit breaker guarding the baseline
// cache. It opens when the failure count within the last window
// observations reaches the threshold, short-circuits while open, and
// heals through a single half-open probe after the cooldown. All
// methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	threshold int
	window    []bool // ring buffer of outcomes; true = failure
	widx      int
	wn        int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool

	opens       uint64
	transitions uint64

	now func() time.Time // test hook
}

// NewBreaker builds a breaker opening at threshold failures within the
// last window observations, healing after cooldown. Non-positive
// arguments select threshold 3, window 16, cooldown 5s.
func NewBreaker(threshold, window int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if window < threshold {
		window = 16
		if window < threshold {
			window = threshold
		}
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{
		threshold: threshold,
		window:    make([]bool, window),
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// transitionLocked moves to state s and counts the edge. b.mu held.
func (b *Breaker) transitionLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.transitions++
	if s == BreakerOpen {
		b.opens++
		b.openedAt = b.now()
	}
}

// failuresLocked counts failures in the window. b.mu held.
func (b *Breaker) failuresLocked() int {
	n := 0
	for i := 0; i < b.wn; i++ {
		if b.window[i] {
			n++
		}
	}
	return n
}

// recordLocked appends one outcome to the ring. b.mu held.
func (b *Breaker) recordLocked(failure bool) {
	b.window[b.widx] = failure
	b.widx = (b.widx + 1) % len(b.window)
	if b.wn < len(b.window) {
		b.wn++
	}
}

// Allow reports whether the protected path may be attempted. While
// open it returns false until the cooldown elapses, then admits
// exactly one half-open probe; further callers keep bypassing until
// the probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transitionLocked(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a healthy pass through the protected path.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		// The probe healed the circuit; start from a clean window.
		b.probing = false
		for i := range b.window {
			b.window[i] = false
		}
		b.widx, b.wn = 0, 0
		b.transitionLocked(BreakerClosed)
		return
	}
	b.recordLocked(false)
}

// Failure records a failed pass, opening the breaker when the window
// crosses the threshold (or immediately for a failed probe).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		b.transitionLocked(BreakerOpen)
		return
	}
	b.recordLocked(true)
	if b.state == BreakerClosed && b.failuresLocked() >= b.threshold {
		b.transitionLocked(BreakerOpen)
	}
}

// BreakerStats is the breaker section of a metrics snapshot.
type BreakerStats struct {
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// WindowFailures is the failure count in the sliding window.
	WindowFailures int `json:"window_failures"`
	// Opens counts closed/half-open -> open edges.
	Opens uint64 `json:"opens"`
	// Transitions counts all state edges.
	Transitions uint64 `json:"transitions"`
}

// Snapshot returns the breaker's current position and counters.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:          b.state.String(),
		WindowFailures: b.failuresLocked(),
		Opens:          b.opens,
		Transitions:    b.transitions,
	}
}
