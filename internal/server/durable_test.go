package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/advise"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/simcache"
	"repro/internal/tenant"
)

// newDurableServer builds a server with the durable tier attached: a
// result store, a tenant registry (when reg != nil), and optionally a
// journaled queue.
func newDurableServer(t *testing.T, storeDir string, reg *tenant.Registry, q *jobs.Queue) (*Server, *httptest.Server, *simcache.Store) {
	t.Helper()
	store, err := simcache.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if q == nil {
		q = jobs.New(jobs.Config{Workers: 2})
	}
	s, err := New(Config{
		Queue: q, Cache: simcache.New(0), SimWorkers: 2,
		ResultStore: store, Tenants: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	})
	return s, ts, store
}

// postTenant posts v with an X-Tenant header, returning status and the
// Retry-After header.
func postTenant(t *testing.T, url, tenantName string, v any) (int, string, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantName != "" {
		req.Header.Set(TenantHeader, tenantName)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), out.Bytes()
}

func sweepReq() SweepRequest {
	return SweepRequest{Figure: "4", Nodes: 16, Iters: 2, Reps: 1, Seed: 1, Workloads: []string{"minife"}}
}

func TestTenantRateLimit429(t *testing.T) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	reg := tenant.New(tenant.Config{
		Overrides: map[string]tenant.Limits{"acme": {RatePerSec: 0.001, Burst: 1}},
		Now:       func() time.Time { return clock },
	})
	_, ts, _ := newDurableServer(t, t.TempDir(), reg, nil)

	code, _, body := postTenant(t, ts.URL+"/v1/sweep", "acme", sweepReq())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, body)
	}
	code, after, body := postTenant(t, ts.URL+"/v1/sweep", "acme", sweepReq())
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d %s", code, body)
	}
	if after == "" {
		t.Fatal("429 missing Retry-After")
	}
	if !strings.Contains(string(body), "rate limited") {
		t.Fatalf("429 body: %s", body)
	}
	// Other tenants are unaffected.
	if code, _, body := postTenant(t, ts.URL+"/v1/sweep", "other", sweepReq()); code != http.StatusAccepted {
		t.Fatalf("other tenant: %d %s", code, body)
	}

	// /metrics reports the per-tenant section and the rejection.
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if snap.TenantRejections != 1 {
		t.Fatalf("tenant rejections: %d", snap.TenantRejections)
	}
	var acme *tenant.Stats
	for i := range snap.Tenants {
		if snap.Tenants[i].Tenant == "acme" {
			acme = &snap.Tenants[i]
		}
	}
	if acme == nil || acme.RateLimited != 1 || acme.Admitted != 1 {
		t.Fatalf("tenant metrics: %+v", snap.Tenants)
	}
}

func TestTenantJobQuota429(t *testing.T) {
	reg := tenant.New(tenant.Config{
		Overrides: map[string]tenant.Limits{"capped": {MaxJobs: 1}},
	})
	// A single worker held busy keeps the first job in flight.
	q := jobs.New(jobs.Config{Workers: 1})
	block := make(chan struct{})
	defer close(block)
	if _, err := q.Submit("hold", func(ctx context.Context) (any, error) { <-block; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newDurableServer(t, t.TempDir(), reg, q)

	code, _, body := postTenant(t, ts.URL+"/v1/sweep", "capped", sweepReq())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, body)
	}
	code, after, body := postTenant(t, ts.URL+"/v1/sweep", "capped", sweepReq())
	if code != http.StatusTooManyRequests || after == "" {
		t.Fatalf("quota submit: %d retry-after=%q %s", code, after, body)
	}
	if !strings.Contains(string(body), "job quota") {
		t.Fatalf("429 body: %s", body)
	}
}

// TestSweepStoreReservesBytes proves the durable result store answers
// a repeated sweep byte-identically — across a server restart — while
// counting a hit instead of recomputing.
func TestSweepStoreReservesBytes(t *testing.T) {
	dir := t.TempDir()
	_, ts, store := newDurableServer(t, dir, nil, nil)
	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/sweep", sweepReq(), &sub); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	state, first, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("job %s: %s", state, errMsg)
	}
	if st := store.Stats(); st.Entries != 1 || st.Puts != 1 {
		t.Fatalf("store after first run: %+v", st)
	}

	// Restart: a fresh server over the same store directory.
	_, ts2, store2 := newDurableServer(t, dir, nil, nil)
	var sub2 submitted
	if code := postJSON(t, ts2.URL+"/v1/sweep", sweepReq(), &sub2); code != http.StatusAccepted {
		t.Fatalf("submit 2: %d", code)
	}
	state, second, errMsg := pollJob(t, ts2.URL, sub2.ID)
	if state != "succeeded" {
		t.Fatalf("job 2 %s: %s", state, errMsg)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("restored result differs from the original bytes")
	}
	if st := store2.Stats(); st.Hits != 1 || st.Puts != 0 {
		t.Fatalf("store after restart: %+v", st)
	}
}

// TestServerRecoverReenqueues is the jobs-layer kill-and-restart
// acceptance at unit scope: a journaled sweep job with no terminal
// record is re-enqueued by a fresh server under its original id, and
// its recovered result is bit-identical to a direct computation.
func TestServerRecoverReenqueues(t *testing.T) {
	walDir := t.TempDir()
	w, err := journal.Open(walDir, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// "Crashed" daemon: the job is accepted (journaled) but its worker
	// never finishes — we close the WAL with no terminal record.
	q1 := jobs.New(jobs.Config{Workers: 1, Journal: w})
	block := make(chan struct{})
	defer close(block)
	req := sweepReq()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	id, err := q1.SubmitSpec(
		jobs.Spec{Kind: "sweep", RequestID: "r-crash", Payload: payload},
		func(ctx context.Context) (any, error) { <-block; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarted daemon.
	q2 := jobs.New(jobs.Config{Workers: 2})
	s, _, _ := newDurableServer(t, t.TempDir(), nil, q2)
	n, st, err := s.Recover(context.Background(), walDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || st.Quarantined != 0 {
		t.Fatalf("recovered %d jobs (stats %+v), want 1", n, st)
	}
	snap, ok, err := q2.Wait(context.Background(), id)
	if !ok || err != nil {
		t.Fatalf("recovered job %s lost: ok=%v err=%v", id, ok, err)
	}
	if snap.State != jobs.Succeeded || snap.RequestID != "r-crash" {
		t.Fatalf("recovered job: %+v (%s)", snap.State, snap.Error)
	}

	// Bit-identity: the recovered run equals a direct computation.
	opts := core.Options{Nodes: 16, Iterations: 2, Reps: 1, Seed: 1,
		Workloads: []string{"minife"}, Scale: core.Reduced}
	fig, err := core.Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := fig.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	got, ok := snap.Result.(json.RawMessage)
	if !ok {
		t.Fatalf("result type %T", snap.Result)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("recovered result differs from direct computation")
	}
}

// TestRecoverSkipsUnknownKind: version skew must skip, not crash.
func TestRecoverSkipsUnknownKind(t *testing.T) {
	walDir := t.TempDir()
	w, err := journal.Open(walDir, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	q1 := jobs.New(jobs.Config{Workers: 1, Journal: w})
	block := make(chan struct{})
	defer close(block)
	if _, err := q1.SubmitSpec(jobs.Spec{Kind: "no-such-kind", Payload: json.RawMessage(`{}`)},
		func(ctx context.Context) (any, error) { <-block; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, _, _ := newDurableServer(t, t.TempDir(), nil, nil)
	n, _, err := s.Recover(context.Background(), walDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("recovered %d jobs from an unknown kind", n)
	}
}

// TestAdviseIngest429RetryAfter is the satellite: the advisor's
// tenant/node-cap 429 must carry Retry-After like every other
// throttling response.
func TestAdviseIngest429RetryAfter(t *testing.T) {
	adv := advise.NewService(advise.Config{Store: advise.StoreConfig{MaxNodesPerTenant: 1}})
	q := jobs.New(jobs.Config{Workers: 1})
	s, err := New(Config{Queue: q, Cache: simcache.New(0), Advisor: adv})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	batch := fmt.Sprintf("%s\n%s\n",
		`{"tenant":"t","node":"n1","ts_ns":1000,"addr":4096}`,
		`{"tenant":"t","node":"n2","ts_ns":2000,"addr":8192}`)
	resp, err := http.Post(ts.URL+"/v1/advise/ingest", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("advisor 429 missing Retry-After")
	}
}
