package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/simcache"
)

// newRobustServer is newTestServer with a configurable server Config
// (breaker tuning, shed watermark, retry budget).
func newRobustServer(t *testing.T, qcfg jobs.Config, mod func(*Config)) (*httptest.Server, *jobs.Queue) {
	t.Helper()
	if qcfg.Workers == 0 {
		qcfg.Workers = 2
	}
	q := jobs.New(qcfg)
	cfg := Config{Queue: q, Cache: simcache.New(0), SimWorkers: 2}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	})
	return ts, q
}

// breakerAt builds a breaker with a deterministic clock for unit tests.
func breakerAt(threshold, window int, cooldown time.Duration, now *time.Time) *Breaker {
	b := NewBreaker(threshold, window, cooldown)
	b.now = func() time.Time { return *now }
	return b
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := breakerAt(2, 4, time.Minute, &now)

	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.Failure()
	if s := b.Snapshot(); s.State != "closed" || s.WindowFailures != 1 {
		t.Fatalf("after 1 failure: %+v", s)
	}
	b.Failure() // second failure in the window trips it
	if s := b.Snapshot(); s.State != "open" || s.Opens != 1 {
		t.Fatalf("after threshold: %+v", s)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic inside cooldown")
	}

	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if s := b.Snapshot(); s.State != "half-open" {
		t.Fatalf("after cooldown: %+v", s)
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	b.Failure() // probe failed: straight back to open
	if s := b.Snapshot(); s.State != "open" || s.Opens != 2 {
		t.Fatalf("after failed probe: %+v", s)
	}

	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no second probe after another cooldown")
	}
	b.Success() // probe healed: closed with a clean window
	if s := b.Snapshot(); s.State != "closed" || s.WindowFailures != 0 {
		t.Fatalf("after healed probe: %+v", s)
	}
	if s := b.Snapshot(); s.Transitions != 5 {
		t.Fatalf("transitions = %d, want 5", s.Transitions)
	}
}

// TestCacheFailureDegradesToBypass arms persistent simcache.fill
// errors: simulate jobs must degrade to direct baseline builds (not
// fail), the breaker must open after the threshold, and the degraded
// result must be bit-identical to the cache-served one.
func TestCacheFailureDegradesToBypass(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	ts, _ := newRobustServer(t, jobs.Config{}, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerWindow = 4
		c.BreakerCooldown = time.Hour // stays open for the whole test
	})

	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteCacheFill: {Kind: faultinject.KindError, Probability: 1},
	}); err != nil {
		t.Fatal(err)
	}

	var degraded SimulateResult
	for i := 0; i < 3; i++ {
		var sub submitted
		if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
			t.Fatalf("job %d: submit status %d", i, code)
		}
		state, result, errMsg := pollJob(t, ts.URL, sub.ID)
		if state != "succeeded" {
			t.Fatalf("job %d: %s (%s) — cache failure was not degraded", i, state, errMsg)
		}
		if err := json.Unmarshal(result, &degraded); err != nil {
			t.Fatal(err)
		}
		if !degraded.CacheBypassed || degraded.CacheHit {
			t.Fatalf("job %d: hit=%v bypassed=%v, want pure bypass", i, degraded.CacheHit, degraded.CacheBypassed)
		}
	}

	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Breaker == nil || m.Breaker.State != "open" || m.Breaker.Opens == 0 || m.Breaker.Transitions == 0 {
		t.Fatalf("breaker did not open: %+v", m.Breaker)
	}
	if m.CacheBypasses != 3 {
		t.Fatalf("cache_bypasses = %d, want 3", m.CacheBypasses)
	}
	if m.Faults == nil || len(m.Faults.Sites) == 0 {
		t.Fatalf("armed faults missing from metrics: %+v", m.Faults)
	}

	// Same request with the cache healthy: bit-identical result.
	faultinject.Disarm()
	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
		t.Fatalf("healthy submit status %d", code)
	}
	state, result, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("healthy job: %s (%s)", state, errMsg)
	}
	var healthy SimulateResult
	if err := json.Unmarshal(result, &healthy); err != nil {
		t.Fatal(err)
	}
	// Note the breaker is still open (long cooldown), so even the
	// healthy run bypasses — what matters is the numbers agree.
	if healthy.BaselineMakespanNanos != degraded.BaselineMakespanNanos {
		t.Fatalf("baselines differ: %d vs %d", healthy.BaselineMakespanNanos, degraded.BaselineMakespanNanos)
	}
	if (healthy.Slowdown == nil) != (degraded.Slowdown == nil) {
		t.Fatal("slowdown presence differs between degraded and healthy runs")
	}
	if healthy.Slowdown != nil && *healthy.Slowdown != *degraded.Slowdown {
		t.Fatalf("slowdown differs: %+v vs %+v", healthy.Slowdown, degraded.Slowdown)
	}
}

// TestShedWatermark fills the queue past the watermark and checks new
// submissions get 503 + Retry-After instead of queueing.
func TestShedWatermark(t *testing.T) {
	ts, q := newRobustServer(t, jobs.Config{Workers: 1, Capacity: 8}, func(c *Config) {
		c.ShedWatermark = 1
	})

	// Occupy the single worker, then park one queued job so the depth
	// sits at the watermark.
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	if _, err := q.Submit("block", block); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("block", block); err != nil {
		t.Fatal(err)
	}
	waitFor := time.Now().Add(5 * time.Second)
	for q.Depth() < 1 {
		if time.Now().After(waitFor) {
			t.Fatal("queue depth never reached the watermark")
		}
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(simReq())
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("shed body: %q err=%v", eb.Error, err)
	}

	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.ShedRequests == 0 {
		t.Fatal("shed_requests stayed zero")
	}
}

// TestHandlerPanicRecovered arms a one-shot panic at server.handler and
// checks it surfaces as a clean 500 while the daemon keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	ts, _ := newRobustServer(t, jobs.Config{}, nil)
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteHandler: {Kind: faultinject.KindPanic, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &eb); code != http.StatusInternalServerError || eb.Error == "" {
		t.Fatalf("panicking handler: status %d body %q", code, eb.Error)
	}
	// The next request (budget exhausted) is served normally.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("daemon did not survive the panic: status %d", code)
	}
	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.HandlerPanics != 1 {
		t.Fatalf("handler_panics = %d, want 1", m.HandlerPanics)
	}
}

// TestDecodeFaultRejectsRequest arms server.decode and checks the
// injected failure reads as a normal 400, not a crash.
func TestDecodeFaultRejectsRequest(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	ts, _ := newRobustServer(t, jobs.Config{}, nil)
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteDecode: {Kind: faultinject.KindError, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), nil); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), nil); code != http.StatusAccepted {
		t.Fatalf("post-fault submit status %d, want 202", code)
	}
}

// TestWorkerPanicRetriedByJobSpec arms jobs.worker panics within the
// server's retry budget and checks the job still succeeds.
func TestWorkerPanicRetriedByJobSpec(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	ts, _ := newRobustServer(t, jobs.Config{}, func(c *Config) {
		c.JobRetries = 3
	})
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteJobWorker: {Kind: faultinject.KindPanic, Probability: 1, Count: 2},
	}); err != nil {
		t.Fatal(err)
	}
	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	state, _, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("job %s (%s), want succeeded via retries", state, errMsg)
	}
	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Jobs.PanicsRecovered != 2 || m.Jobs.Retries != 2 {
		t.Fatalf("panics=%d retries=%d, want 2/2", m.Jobs.PanicsRecovered, m.Jobs.Retries)
	}
}
