package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/simcache"
)

// chaosPlan arms every fault site at p=0.2 with fixed per-site seeds.
// Each site carries a fault kind the pipeline is supposed to survive:
// worker and repetition panics are recovered and retried, fill errors
// degrade through the breaker, decode errors read as 400 (the client
// resubmits), handler delays just add latency.
func chaosPlan() faultinject.Plan {
	return faultinject.Plan{
		faultinject.SiteJobWorker:  {Kind: faultinject.KindPanic, Probability: 0.2, Seed: 101},
		faultinject.SiteCacheFill:  {Kind: faultinject.KindError, Probability: 0.2, Seed: 102},
		faultinject.SiteRepetition: {Kind: faultinject.KindPanic, Probability: 0.2, Seed: 103},
		faultinject.SiteHandler:    {Kind: faultinject.KindDelay, Probability: 0.2, Seed: 104, DelayNanos: int64(2 * time.Millisecond)},
		faultinject.SiteDecode:     {Kind: faultinject.KindError, Probability: 0.2, Seed: 105},
	}
}

// chaosServer builds a server tuned for the chaos run: a deep retry
// budget (p=0.2 worker panics make multi-attempt jobs routine) and a
// twitchy breaker so fill errors visibly cycle it.
func chaosServer(t *testing.T) (*httptest.Server, *jobs.Queue, func()) {
	t.Helper()
	q := jobs.New(jobs.Config{Workers: 4, Capacity: 128, Retain: 1024})
	s, err := New(Config{
		Queue: q, Cache: simcache.New(0), SimWorkers: 2,
		JobRetries:       8,
		BreakerThreshold: 2,
		BreakerWindow:    8,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	teardown := func() {
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := q.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}
	// Registered as a cleanup too (teardown is idempotent) so an early
	// t.Fatal still shuts the pool down.
	t.Cleanup(teardown)
	return ts, q, teardown
}

// chaosJob runs one simulate request to completion, retrying rejected
// submissions (injected decode faults answer 400, sheds answer 503)
// and resubmitting failed jobs. It returns the decoded result.
func chaosJob(t *testing.T, base string, req SimulateRequest) SimulateResult {
	t.Helper()
	for resubmit := 0; resubmit < 5; resubmit++ {
		var sub submitted
		code := 0
		for try := 0; try < 100; try++ {
			if code = postJSON(t, base+"/v1/simulate", req, &sub); code == http.StatusAccepted {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: submission never accepted (last status %d)", req.Seed, code)
		}
		state, raw, errMsg := pollJob(t, base, sub.ID)
		if state != "succeeded" {
			t.Logf("seed %d: job %s (%s); resubmitting", req.Seed, state, errMsg)
			continue
		}
		var res SimulateResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("seed %d: decode result: %v", req.Seed, err)
		}
		return res
	}
	t.Fatalf("seed %d: job kept failing after resubmissions", req.Seed)
	return SimulateResult{}
}

// sameOutcome compares the simulation-visible part of two results,
// ignoring operational fields (cache hit/bypass, wall times) that
// legitimately differ under faults.
func sameOutcome(a, b SimulateResult) bool {
	if a.BaselineMakespanNanos != b.BaselineMakespanNanos ||
		a.Saturated != b.Saturated || a.SaturatedReps != b.SaturatedReps ||
		a.Reps != b.Reps || a.Ranks != b.Ranks {
		return false
	}
	if (a.Slowdown == nil) != (b.Slowdown == nil) {
		return false
	}
	return a.Slowdown == nil || *a.Slowdown == *b.Slowdown
}

// TestChaosFiftyJobsBitIdentical is the PR's acceptance run: with every
// fault site armed at p=0.2 under a fixed plan, 50 simulate jobs must
// all complete with results bit-identical to an unfaulted pass, the
// daemon must survive without leaking goroutines, the queue must drain
// to empty, and /metrics must show the machinery actually engaged
// (panics recovered, retries spent, breaker cycled).
func TestChaosFiftyJobsBitIdentical(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	const njobs = 50

	reqFor := func(seed uint64) SimulateRequest {
		r := simReq()
		r.Seed = seed
		return r
	}

	// Reference pass: same 50 requests against a clean server.
	ref := make(map[uint64]SimulateResult, njobs)
	{
		ts, _, teardown := chaosServer(t)
		for seed := uint64(1); seed <= njobs; seed++ {
			ref[seed] = chaosJob(t, ts.URL, reqFor(seed))
		}
		teardown()
	}

	baseGoroutines := runtime.NumGoroutine()

	ts, q, teardown := chaosServer(t)
	if err := faultinject.Arm(chaosPlan()); err != nil {
		t.Fatal(err)
	}

	for seed := uint64(1); seed <= njobs; seed++ {
		got := chaosJob(t, ts.URL, reqFor(seed))
		if !sameOutcome(got, ref[seed]) {
			t.Fatalf("seed %d: faulted result diverged:\n got %+v (slowdown %+v)\nwant %+v (slowdown %+v)",
				seed, got, got.Slowdown, ref[seed], ref[seed].Slowdown)
		}
	}

	// Every armed site was exercised, and the chaos left fingerprints
	// in the operational counters. (The plan arms the single-node
	// pipeline sites; cluster.shard has its own drill in
	// internal/cluster.)
	snap := faultinject.Snapshot()
	if len(snap.Sites) != len(chaosPlan()) {
		t.Fatalf("sites in snapshot: %d, want %d", len(snap.Sites), len(chaosPlan()))
	}
	for _, site := range snap.Sites {
		if site.Evals == 0 || site.Fired == 0 {
			t.Fatalf("site %s never engaged: %+v", site.Site, site)
		}
	}
	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Jobs.PanicsRecovered == 0 {
		t.Fatal("no panics recovered despite p=0.2 worker panics")
	}
	if m.Jobs.Retries == 0 {
		t.Fatal("no job retries recorded")
	}
	if m.Breaker == nil || m.Breaker.Transitions == 0 {
		t.Fatalf("breaker never transitioned: %+v", m.Breaker)
	}
	if m.CacheBypasses == 0 {
		t.Fatal("no cache bypasses despite injected fill errors")
	}

	// The daemon is still healthy, and the queue drained monotonically
	// to empty (every accepted job reached a terminal state).
	faultinject.Disarm()
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("daemon unhealthy after chaos: %d", code)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("queue depth %d after all jobs finished", d)
	}
	js := q.Stats()
	if js.Succeeded < njobs {
		t.Fatalf("succeeded %d < %d submitted", js.Succeeded, njobs)
	}

	// No goroutine leaks once the server is torn down.
	teardown()
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseGoroutines+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before chaos", n, baseGoroutines)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
