// Package server exposes the simulation pipeline as an HTTP/JSON
// service: clients submit CE-overhead questions (one scenario or a
// whole figure sweep), the server queues them on internal/jobs, reuses
// noise-free baselines through internal/simcache, and serves results
// and operational metrics. cmd/cesimd is the binary wrapper.
//
// Endpoints:
//
//	POST /v1/simulate          submit one (workload, scale, CE scenario) job
//	POST /v1/sweep             submit a figure regeneration job ("3".."9")
//	GET  /v1/jobs/{id}         poll a job; DELETE cancels it
//	GET  /v1/systems           Table II catalog and logging modes
//	GET  /v1/workloads         workload skeletons
//	POST /v1/advise/ingest     stream per-node CE events (NDJSON batches)
//	GET  /v1/advise/recommend  mitigation advice for a tracked node
//	GET  /metrics              counters, histograms, queue/cache/advisor gauges
//	GET  /healthz              liveness
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/advise"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/faultmodel"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/noise"
	"repro/internal/simcache"
	"repro/internal/systems"
	"repro/internal/tenant"
	"repro/internal/tracegen"
)

// Config wires the server's dependencies and limits.
type Config struct {
	// Queue executes jobs; required.
	Queue *jobs.Queue
	// Cache memoizes baselines; required.
	Cache *simcache.Cache
	// SimWorkers is the per-job fan-out passed to
	// core.RunRepeatedParallelContext; <= 0 selects GOMAXPROCS.
	SimWorkers int
	// MaxNodes bounds requested node counts (default 16384, the
	// paper's largest simulated system).
	MaxNodes int
	// MaxIters bounds requested iteration counts (default 4096).
	MaxIters int
	// MaxReps bounds requested repetitions (default 64).
	MaxReps int
	// ShedWatermark sheds new submissions with 503 + Retry-After once
	// the queue depth reaches it. <= 0 disables admission control (the
	// queue's own capacity bound still applies, answered with 429).
	ShedWatermark int
	// JobRetries is the per-job retry budget for retryable failures
	// (recovered panics, injected faults). 0 selects the default (2);
	// negative disables retries.
	JobRetries int
	// BreakerThreshold, BreakerWindow and BreakerCooldown configure the
	// baseline-cache circuit breaker; zero values select NewBreaker's
	// defaults (3 failures in the last 16 outcomes, 5s cooldown).
	BreakerThreshold int
	BreakerWindow    int
	BreakerCooldown  time.Duration
	// Advisor mounts the online mitigation advisor (docs/ADVISOR.md):
	// POST /v1/advise/ingest and GET /v1/advise/recommend, served
	// through the standard middleware. Ingest batches pass the same
	// shed watermark as job submissions — one overload signal governs
	// the whole daemon. Nil leaves the endpoints unregistered.
	Advisor *advise.Service
	// Routes adds extra endpoints — the cluster coordinator's
	// register/lease/report API — registered through the same
	// middleware as the built-in ones: request accounting, panic
	// recovery, request-id stamping and the server.handler fault site.
	// Keys are Go 1.22 ServeMux patterns ("POST /cluster/lease").
	Routes map[string]http.HandlerFunc
	// ResultStore, when non-nil, persists sweep results durably
	// (content-addressed by request payload; see docs/DURABILITY.md).
	// Sweep jobs consult it before computing and re-serve stored bytes
	// verbatim, so restarts answer repeated requests bit-identically
	// without recomputation. Simulate results carry wall-clock timing
	// fields and are never persisted.
	ResultStore *simcache.Store
	// Tenants, when non-nil, applies per-tenant admission (token-bucket
	// rate + in-flight job cap, answered with 429 and Retry-After) and
	// the result-store disk quota. Tenants are named by the X-Tenant
	// header; the empty name is the shared default tenant.
	Tenants *tenant.Registry
	// Journal, when non-nil, is the queue's WAL writer, exposed here
	// only so /metrics can report its stats; the queue itself holds the
	// append hook (jobs.Config.Journal).
	Journal *journal.Writer
	// Log receives operational lines (failed requests with their
	// request ids); nil discards them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxNodes <= 0 {
		c.MaxNodes = 16384
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 4096
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 64
	}
	switch {
	case c.JobRetries == 0:
		c.JobRetries = 2
	case c.JobRetries < 0:
		c.JobRetries = 0
	}
	return c
}

// ErrShed reports a submission rejected by admission control because
// the job queue is above the shed watermark.
var ErrShed = errors.New("server: overloaded, submission shed")

// Server is the HTTP handler. Construct with New.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *Metrics
	breaker *Breaker
}

// New builds the handler around a queue and cache.
func New(cfg Config) (*Server, error) {
	if cfg.Queue == nil || cfg.Cache == nil {
		return nil, fmt.Errorf("server: queue and cache are required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg, mux: http.NewServeMux(), metrics: NewMetrics(),
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown),
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/systems", s.handleSystems)
	s.handle("GET /v1/workloads", s.handleWorkloads)
	s.handle("POST /v1/simulate", s.handleSimulate)
	s.handle("POST /v1/sweep", s.handleSweep)
	s.handle("GET /v1/jobs/{id}", s.handleJobGet)
	s.handle("DELETE /v1/jobs/{id}", s.handleJobCancel)
	if cfg.Advisor != nil {
		s.handle("POST /v1/advise/ingest", s.handleAdviseIngest)
		s.handle("GET /v1/advise/recommend", s.handleAdviseRecommend)
	}
	patterns := make([]string, 0, len(cfg.Routes))
	for p := range cfg.Routes {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns) // deterministic registration (and conflict) order
	for _, p := range patterns {
		s.handle(p, cfg.Routes[p])
	}
	return s, nil
}

// Metrics exposes the registry (cmd/cesimd logs a summary on exit).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Breaker exposes the baseline-cache circuit breaker (for tests and
// operational snapshots).
func (s *Server) Breaker() *Breaker { return s.breaker }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusRecorder captures the response code for metrics and whether
// anything was written (a recovered panic can only send a clean 500 if
// the handler had not started the response).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// RequestIDHeader carries the request id on the wire. Inbound values
// are trusted and propagated (so a cluster worker's shard attempt and
// the coordinator's handler logs share one id); absent, the middleware
// generates one.
const RequestIDHeader = "X-Request-Id"

// ridKey is the context key for the request id.
type ridKey struct{}

// WithRequestID returns ctx carrying the request id.
func WithRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, ridKey{}, rid)
}

// RequestIDFrom returns the request id carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// maxRequestIDLen bounds inbound request ids so a hostile header cannot
// bloat logs or job records.
const maxRequestIDLen = 64

// NewRequestID mints a fresh request id (12 hex chars of entropy).
func NewRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Unreachable in practice; a constant id keeps requests served.
		return "r-norand"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// handle registers a route with request accounting, request-id
// stamping, panic recovery and the server.handler fault site. pattern
// must be "METHOD /path" (Go 1.22 ServeMux syntax). A panicking handler
// is converted into a 500 instead of killing the connection (and, with
// http.Server, being rethrown by the net/http panic handler).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" || len(rid) > maxRequestIDLen {
			rid = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		r = r.WithContext(WithRequestID(r.Context(), rid))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		func() {
			defer func() {
				if v := recover(); v != nil {
					s.metrics.HandlerPanic()
					rec.status = http.StatusInternalServerError
					if !rec.wrote {
						writeError(rec, http.StatusInternalServerError, "internal error: %v", v)
					}
				}
			}()
			if err := faultinject.Fire(r.Context(), faultinject.SiteHandler); err != nil {
				writeError(rec, http.StatusInternalServerError, "%v", err)
				return
			}
			h(rec, r)
		}()
		if rec.status >= 400 && s.cfg.Log != nil {
			s.cfg.Log.Printf("%s -> %d rid=%s", pattern, rec.status, rid)
		}
		s.metrics.Request(pattern, rec.status, time.Since(start))
	})
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // header already sent; nothing useful to do on error
}

// errorBody is every non-2xx response payload. RequestID echoes the
// X-Request-Id the middleware stamped, so clients can quote one token
// when reporting a failure.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(RequestIDHeader),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": s.metrics.Snapshot(nil, nil, nil, nil, Extras{}).UptimeSeconds,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.cfg.Queue, s.cfg.Cache, s.breaker, s.cfg.Advisor,
		Extras{Store: s.cfg.ResultStore, Tenants: s.cfg.Tenants, Journal: s.cfg.Journal}))
}

// handleAdviseIngest admits an advisor batch through the same shed
// watermark as job submissions: when the simulation queue is saturated
// the daemon is overloaded, and ingest is the first load to drop
// because clients buffer NDJSON and retry losslessly (batches apply
// atomically, so a retry cannot double-count).
func (s *Server) handleAdviseIngest(w http.ResponseWriter, r *http.Request) {
	if wm := s.cfg.ShedWatermark; wm > 0 && s.cfg.Queue != nil && s.cfg.Queue.Depth() >= wm {
		s.metrics.Shed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", ErrShed)
		return
	}
	s.cfg.Advisor.HandleIngest(w, r)
}

func (s *Server) handleAdviseRecommend(w http.ResponseWriter, r *http.Request) {
	s.cfg.Advisor.HandleRecommend(w, r)
}

// systemJSON is one Table II row on the wire.
type systemJSON struct {
	Name          string  `json:"name"`
	Class         string  `json:"class"`
	CEPerNodeYear float64 `json:"ce_per_node_year"`
	GiBPerNode    float64 `json:"gib_per_node"`
	CEPerGiBYear  float64 `json:"ce_per_gib_year"`
	MTBCESeconds  float64 `json:"mtbce_s"`
	MTBCENanos    int64   `json:"mtbce_ns"`
	Nodes         int     `json:"nodes,omitempty"`
	SimNodes      int     `json:"sim_nodes,omitempty"`
}

// modeJSON is one logging scenario on the wire.
type modeJSON struct {
	Name          string `json:"name"`
	PerEventNanos int64  `json:"per_event_ns"`
}

func className(c systems.Class) string {
	switch c {
	case systems.DataCenter:
		return "datacenter"
	case systems.HPC:
		return "hpc"
	case systems.Exascale:
		return "exascale"
	}
	return "unknown"
}

func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	var sys []systemJSON
	for _, row := range systems.Catalog() {
		sys = append(sys, systemJSON{
			Name: row.Name, Class: className(row.Class),
			CEPerNodeYear: row.CEPerNodeYear, GiBPerNode: row.GiBPerNode,
			CEPerGiBYear: row.CEPerGiBYear, MTBCESeconds: row.MTBCESeconds,
			MTBCENanos: row.MTBCENanos(), Nodes: row.Nodes, SimNodes: row.SimNodes,
		})
	}
	var modes []modeJSON
	for _, m := range systems.LoggingModes() {
		modes = append(modes, modeJSON{Name: m.Name, PerEventNanos: m.PerEventNanos})
	}
	writeJSON(w, http.StatusOK, map[string]any{"systems": sys, "logging_modes": modes})
}

// workloadJSON is one skeleton spec on the wire.
type workloadJSON struct {
	Name           string  `json:"name"`
	Dims           int     `json:"dims"`
	HaloBytes      int64   `json:"halo_bytes"`
	ComputeNanos   int64   `json:"compute_ns"`
	ComputeJitter  float64 `json:"compute_jitter"`
	AllreduceEvery int     `json:"allreduce_every"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadJSON
	for _, name := range tracegen.Names() {
		spec, err := tracegen.Lookup(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "workload catalog: %v", err)
			return
		}
		out = append(out, workloadJSON{
			Name: spec.Name, Dims: spec.Dims, HaloBytes: spec.HaloBytes,
			ComputeNanos: spec.ComputeNs, ComputeJitter: spec.ComputeJitter,
			AllreduceEvery: spec.AllreduceEvery,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// SimulateRequest is the POST /v1/simulate body. Exactly one of
// System/MTBCENanos and exactly one of Mode/PerEventNanos must be set,
// mirroring cmd/cesim's flags.
type SimulateRequest struct {
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	// Iters defaults to 8 (cmd/cesim's default).
	Iters int `json:"iters,omitempty"`
	// System names a Table II row supplying the MTBCE.
	System string `json:"system,omitempty"`
	// MTBCENanos is the per-node mean time between CEs.
	MTBCENanos int64 `json:"mtbce_ns,omitempty"`
	// Mode names a logging scenario supplying the per-event cost.
	Mode string `json:"mode,omitempty"`
	// PerEventNanos is the per-CE handling time.
	PerEventNanos int64 `json:"per_event_ns,omitempty"`
	// FaultMix is an inline fault-mode mixture spec replacing the
	// homogeneous Poisson arrival process (docs/FAULTMODEL.md). The
	// scenario's MTBCE supplies the aggregate rate unless the spec
	// carries its own mtbce_ns. Mutually exclusive with FaultMixPreset.
	FaultMix *faultmodel.Spec `json:"fault_mix,omitempty"`
	// FaultMixPreset names a systems.FaultMixes preset composition.
	FaultMixPreset string `json:"fault_mix_preset,omitempty"`
	// Target is the node experiencing CEs; nil or -1 means all nodes.
	Target *int32 `json:"target,omitempty"`
	// Seed defaults to 1.
	Seed uint64 `json:"seed,omitempty"`
	// Reps defaults to 3.
	Reps int `json:"reps,omitempty"`
}

// SlowdownJSON summarizes the slowdown sample of a simulate job. It is
// present only when at least one repetition produced a usable slowdown
// (saturated repetitions are excluded from the sample).
type SlowdownJSON struct {
	MeanPct float64 `json:"mean_pct"`
	CI95Pct float64 `json:"ci95_pct"`
	MinPct  float64 `json:"min_pct"`
	MaxPct  float64 `json:"max_pct"`
	P50Pct  float64 `json:"p50_pct"`
	P95Pct  float64 `json:"p95_pct"`
	N       int     `json:"n"`
}

// SimulateResult is a simulate job's stored result.
type SimulateResult struct {
	Workload      string `json:"workload"`
	Nodes         int    `json:"nodes"`
	Ranks         int    `json:"ranks"`
	Iters         int    `json:"iters"`
	MTBCENanos    int64  `json:"mtbce_ns"`
	PerEventNanos int64  `json:"per_event_ns"`
	// FaultMix echoes the resolved mixture composition (the canonical
	// faultmodel label) when the scenario replaced the Poisson process.
	FaultMix              string        `json:"fault_mix,omitempty"`
	Target                int32         `json:"target"`
	Reps                  int           `json:"reps"`
	BaselineMakespanNanos int64         `json:"baseline_makespan_ns"`
	Saturated             bool          `json:"saturated"`
	SaturatedReps         int           `json:"saturated_reps,omitempty"`
	Slowdown              *SlowdownJSON `json:"slowdown,omitempty"`
	// CacheHit reports whether the baseline was resident (or already
	// being built) when the job ran.
	CacheHit bool `json:"cache_hit"`
	// CacheBypassed reports the baseline was built directly because the
	// cache failed or its circuit breaker was open. The result is still
	// bit-identical: baseline construction is deterministic.
	CacheBypassed bool `json:"cache_bypassed,omitempty"`
	// BaselineNanos and ScenariosNanos decompose the job's wall time.
	BaselineNanos  int64 `json:"baseline_wall_ns"`
	ScenariosNanos int64 `json:"scenarios_wall_ns"`
}

// resolve validates the request and produces the experiment config and
// scenario it describes.
func (s *Server) resolve(req *SimulateRequest) (core.ExperimentConfig, core.Scenario, error) {
	var zc core.ExperimentConfig
	var zs core.Scenario
	if req.Workload == "" {
		return zc, zs, fmt.Errorf("workload is required")
	}
	if _, err := tracegen.Lookup(req.Workload); err != nil {
		return zc, zs, fmt.Errorf("unknown workload %q", req.Workload)
	}
	if req.Nodes < 2 || req.Nodes > s.cfg.MaxNodes {
		return zc, zs, fmt.Errorf("nodes must be in [2, %d], got %d", s.cfg.MaxNodes, req.Nodes)
	}
	if req.Iters == 0 {
		req.Iters = 8
	}
	if req.Iters < 1 || req.Iters > s.cfg.MaxIters {
		return zc, zs, fmt.Errorf("iters must be in [1, %d], got %d", s.cfg.MaxIters, req.Iters)
	}
	if req.Reps == 0 {
		req.Reps = 3
	}
	if req.Reps < 1 || req.Reps > s.cfg.MaxReps {
		return zc, zs, fmt.Errorf("reps must be in [1, %d], got %d", s.cfg.MaxReps, req.Reps)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}

	var mixSpec *faultmodel.Spec
	switch {
	case req.FaultMix != nil && req.FaultMixPreset != "":
		return zc, zs, fmt.Errorf("set fault_mix or fault_mix_preset, not both")
	case req.FaultMixPreset != "":
		mix, err := systems.FaultMixByName(req.FaultMixPreset)
		if err != nil {
			return zc, zs, fmt.Errorf("unknown fault mix %q (want %s)", req.FaultMixPreset, strings.Join(systems.FaultMixNames(), ", "))
		}
		mixSpec = &mix.Spec
	case req.FaultMix != nil:
		mixSpec = req.FaultMix
	}

	mtbce := req.MTBCENanos
	switch {
	case req.System != "" && req.MTBCENanos != 0:
		return zc, zs, fmt.Errorf("set system or mtbce_ns, not both")
	case mixSpec != nil && mixSpec.MTBCENanos != 0 && (req.System != "" || req.MTBCENanos != 0):
		return zc, zs, fmt.Errorf("the fault mix carries mtbce_ns; don't also set system or mtbce_ns")
	case req.System != "":
		sys, err := systems.ByName(req.System)
		if err != nil {
			return zc, zs, fmt.Errorf("unknown system %q", req.System)
		}
		mtbce = sys.MTBCENanos()
	case req.MTBCENanos <= 0:
		if mixSpec == nil || mixSpec.MTBCENanos <= 0 {
			return zc, zs, fmt.Errorf("provide a positive mtbce_ns, a system name, or a fault mix carrying mtbce_ns")
		}
		mtbce = mixSpec.MTBCENanos
	}

	perEvent := req.PerEventNanos
	switch {
	case req.Mode != "" && req.PerEventNanos != 0:
		return zc, zs, fmt.Errorf("set mode or per_event_ns, not both")
	case req.Mode != "":
		m, err := systems.LoggingModeByName(req.Mode)
		if err != nil {
			return zc, zs, fmt.Errorf("unknown logging mode %q", req.Mode)
		}
		perEvent = m.PerEventNanos
	case req.PerEventNanos <= 0:
		return zc, zs, fmt.Errorf("provide a positive per_event_ns or a mode name")
	}

	target := noise.AllNodes
	if req.Target != nil {
		target = *req.Target
	}
	if target < noise.AllNodes || (target >= 0 && int(target) >= req.Nodes) {
		return zc, zs, fmt.Errorf("target %d outside [-1, %d)", target, req.Nodes)
	}

	cfg := core.ExperimentConfig{
		Workload: req.Workload, Nodes: req.Nodes, Iterations: req.Iters, TraceSeed: req.Seed,
	}
	sc := core.Scenario{
		MTBCE:    mtbce,
		PerEvent: noise.Fixed(perEvent),
		Target:   target,
		Seed:     req.Seed + 1, // cmd/cesim offsets the CE seed the same way
	}
	if mixSpec != nil {
		// Journal recovery re-resolves the typed request through this
		// same path, so the rebuilt process is bit-identical to the
		// original submission's.
		proc, err := mixSpec.WithMTBCE(mtbce).Process()
		if err != nil {
			return zc, zs, fmt.Errorf("fault mix: %v", err)
		}
		sc.Arrivals = proc
	}
	return cfg, sc, nil
}

// submitted is the 202 response to a job submission.
type submitted struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	Poll  string     `json:"poll"`
}

// TenantHeader names the tenant a submission is accounted to. Absent
// (or empty) selects the shared default tenant.
const TenantHeader = "X-Tenant"

// maxTenantNameLen bounds tenant names so a hostile header cannot
// bloat quota state, journal records or store entries.
const maxTenantNameLen = 64

// admitTenant applies per-tenant admission to one submission. On
// success the returned release must be called when the job leaves
// flight. On rejection the 429 (with Retry-After when waiting helps)
// has been written and ok is false.
func (s *Server) admitTenant(w http.ResponseWriter, name string) (release func(), ok bool) {
	if len(name) > maxTenantNameLen {
		writeError(w, http.StatusBadRequest, "tenant name exceeds %d bytes", maxTenantNameLen)
		return nil, false
	}
	if s.cfg.Tenants == nil {
		return func() {}, true
	}
	release, err := s.cfg.Tenants.Admit(name)
	if err != nil {
		s.metrics.TenantReject()
		// Retry-After mirrors the shed 503 and queue-full 429: always
		// present on a 429 so clients back off uniformly. The token
		// bucket computes a real horizon; the job cap cannot (the
		// client must finish work, not wait), so it advises 1s.
		after := "1"
		var le *tenant.LimitError
		if errors.As(err, &le) && le.RetryAfter > 0 {
			after = fmt.Sprintf("%d", int((le.RetryAfter+time.Second-1)/time.Second))
		}
		w.Header().Set("Retry-After", after)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return nil, false
	}
	return release, true
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string, payload json.RawMessage, fn jobs.Func) {
	if wm := s.cfg.ShedWatermark; wm > 0 && s.cfg.Queue.Depth() >= wm {
		s.metrics.Shed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", ErrShed)
		return
	}
	tenantName := r.Header.Get(TenantHeader)
	release, ok := s.admitTenant(w, tenantName)
	if !ok {
		return
	}
	spec := jobs.Spec{
		Kind:      kind,
		RequestID: RequestIDFrom(r.Context()),
		Tenant:    tenantName,
		Retries:   s.cfg.JobRetries,
		Payload:   payload,
	}
	id, err := s.cfg.Queue.SubmitSpec(spec, fn)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		release()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	case errors.Is(err, jobs.ErrDraining):
		release()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case err != nil:
		release()
		writeError(w, http.StatusInternalServerError, "submit: %v", err)
		return
	}
	s.releaseOnExit(id, release)
	writeJSON(w, http.StatusAccepted, submitted{ID: id, State: jobs.Queued, Poll: "/v1/jobs/" + id})
}

// releaseOnExit returns the tenant's in-flight slot when the job
// reaches a terminal state (including cancellation while queued).
func (s *Server) releaseOnExit(id string, release func()) {
	go func() {
		_, _, _ = s.cfg.Queue.Wait(context.Background(), id)
		release()
	}()
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, sc, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Marshal after resolve so the journaled payload carries the
	// defaulted fields: recovery re-resolves to the identical job.
	payload, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.submit(w, r, "simulate", payload, s.simulateFunc(cfg, sc, req))
}

// simulateFunc builds the job body for one resolved simulate request;
// shared by the HTTP handler and journal recovery.
func (s *Server) simulateFunc(cfg core.ExperimentConfig, sc core.Scenario, req SimulateRequest) jobs.Func {
	return func(ctx context.Context) (any, error) {
		jobStart := time.Now()
		exp, hit, bypassed, err := s.baseline(ctx, cfg)
		if err != nil {
			return nil, err
		}
		baselineWall := time.Since(jobStart)
		s.metrics.Observe(StageBaseline, baselineWall)

		scStart := time.Now()
		rep, err := exp.RunRepeatedParallelContext(ctx, sc, req.Reps, s.cfg.SimWorkers)
		if err != nil {
			return nil, err
		}
		scenariosWall := time.Since(scStart)
		s.metrics.Observe(StageScenarios, scenariosWall)
		s.metrics.Observe(StageJob, time.Since(jobStart))

		mixLabel := ""
		if sc.Arrivals != nil {
			mixLabel = sc.Arrivals.String()
		}
		res := &SimulateResult{
			Workload: cfg.Workload, Nodes: cfg.Nodes, Ranks: exp.Ranks(), Iters: cfg.Iterations,
			MTBCENanos: sc.MTBCE, PerEventNanos: int64(sc.PerEvent.(noise.Fixed)),
			FaultMix: mixLabel,
			Target:   sc.Target, Reps: req.Reps,
			BaselineMakespanNanos: exp.Baseline().Makespan,
			Saturated:             rep.Saturated,
			SaturatedReps:         rep.SaturatedReps,
			CacheHit:              hit,
			CacheBypassed:         bypassed,
			BaselineNanos:         int64(baselineWall),
			ScenariosNanos:        int64(scenariosWall),
		}
		// A fully saturated scenario legitimately has an empty sample;
		// Quantile (unlike Percentile) cannot panic the job on it, so
		// an all-saturated result serializes cleanly with Slowdown
		// omitted instead of failing the request.
		if rep.Sample.N() > 0 {
			sum := rep.Sample.Summarize()
			p50, err := rep.Sample.Quantile(50)
			if err != nil {
				return nil, err
			}
			p95, err := rep.Sample.Quantile(95)
			if err != nil {
				return nil, err
			}
			res.Slowdown = &SlowdownJSON{
				MeanPct: sum.Mean, CI95Pct: sum.CI95,
				MinPct: sum.Min, MaxPct: sum.Max,
				P50Pct: p50, P95Pct: p95, N: sum.N,
			}
		}
		return res, nil
	}
}

// SweepRequest is the POST /v1/sweep body: regenerate one evaluation
// figure, optionally at reduced scale.
type SweepRequest struct {
	// Figure is "3", "4", "5", "6" or "7".
	Figure string `json:"figure"`
	// Scale is "reduced" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Nodes, Iters, Reps and Seed override core.Options fields.
	Nodes int    `json:"nodes,omitempty"`
	Iters int    `json:"iters,omitempty"`
	Reps  int    `json:"reps,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Workloads restricts the workload set.
	Workloads []string `json:"workloads,omitempty"`
}

// sweepOptions validates a sweep request and resolves its figure
// driver and options; shared by the HTTP handler and journal recovery.
func (s *Server) sweepOptions(req *SweepRequest) (func(core.Options) (*core.Figure, error), core.Options, error) {
	var opts core.Options
	driver, ok := core.Figures()[req.Figure]
	if !ok {
		return nil, opts, fmt.Errorf("unknown figure %q (want 3..9)", req.Figure)
	}
	opts = core.Options{Nodes: req.Nodes, Iterations: req.Iters, Reps: req.Reps, Seed: req.Seed}
	switch req.Scale {
	case "", "reduced":
		opts.Scale = core.Reduced
	case "paper":
		opts.Scale = core.Paper
	default:
		return nil, opts, fmt.Errorf("unknown scale %q", req.Scale)
	}
	if req.Nodes != 0 && (req.Nodes < 2 || req.Nodes > s.cfg.MaxNodes) {
		return nil, opts, fmt.Errorf("nodes must be in [2, %d]", s.cfg.MaxNodes)
	}
	for _, wl := range req.Workloads {
		if _, err := tracegen.Lookup(wl); err != nil {
			return nil, opts, fmt.Errorf("unknown workload %q", wl)
		}
	}
	opts.Workloads = req.Workloads
	return driver, opts, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	driver, opts, err := s.sweepOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	payload, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.submit(w, r, "sweep", payload, s.sweepFunc(driver, opts, r.Header.Get(TenantHeader), payload))
}

// sweepFunc builds the job body for one validated sweep request.
// Figure generation is deterministic, so the result is persisted in
// the content-addressed store (when configured) keyed by the request
// payload: a repeated or recovered request re-serves the stored bytes
// verbatim instead of recomputing.
func (s *Server) sweepFunc(driver func(core.Options) (*core.Figure, error), opts core.Options, tenantName string, payload []byte) jobs.Func {
	return func(ctx context.Context) (any, error) {
		// Figure drivers do not take a context yet; honor cancellation
		// at the job boundary.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var key string
		if s.cfg.ResultStore != nil {
			key = simcache.ResultKey("sweep", payload)
			if b, ok := s.cfg.ResultStore.Get(key); ok {
				return json.RawMessage(b), nil
			}
		}
		start := time.Now()
		f, err := driver(opts)
		if err != nil {
			return nil, err
		}
		s.metrics.Observe(StageJob, time.Since(start))
		var buf bytes.Buffer
		if err := f.WriteJSON(&buf); err != nil {
			return nil, err
		}
		s.persistResult(ctx, tenantName, key, buf.Bytes())
		return json.RawMessage(buf.Bytes()), nil
	}
}

// persistResult stores a sweep result durably, honoring the tenant's
// disk quota: overage (or a store fault) skips persistence and is
// counted — durability degrades, the job still succeeds.
func (s *Server) persistResult(ctx context.Context, tenantName, key string, b []byte) {
	if s.cfg.ResultStore == nil || key == "" {
		return
	}
	if s.cfg.Tenants != nil &&
		!s.cfg.Tenants.DiskAllowed(tenantName, s.cfg.ResultStore.TenantBytes(tenantName), int64(len(b))) {
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("store: disk quota exceeded for tenant %q, result not persisted", tenantName)
		}
		return
	}
	if err := s.cfg.ResultStore.Put(ctx, tenantName, key, b); err != nil && s.cfg.Log != nil {
		s.cfg.Log.Printf("store: persist %s failed: %v", key, err)
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.cfg.Queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cfg.Queue.Cancel(id) {
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": true})
		return
	}
	if snap, ok := s.cfg.Queue.Get(id); ok {
		writeError(w, http.StatusConflict, "job %s already %s", id, snap.State)
		return
	}
	writeError(w, http.StatusNotFound, "unknown job %q", id)
}

// baseline resolves the experiment for cfg, preferring the shared
// cache. A cache failure records on the circuit breaker and degrades
// this job to a direct build; while the breaker is open the cache is
// skipped outright. Both paths construct the identical experiment —
// baseline building is deterministic — so degradation never changes
// results, only cost. Cancellation is passed through untouched: it is
// the caller stopping, not the cache failing.
func (s *Server) baseline(ctx context.Context, cfg core.ExperimentConfig) (exp *core.Experiment, hit, bypassed bool, err error) {
	if s.breaker.Allow() {
		exp, hit, err = s.cfg.Cache.GetOrBuild(ctx, cfg)
		if err == nil {
			s.breaker.Success()
			return exp, hit, false, nil
		}
		if ctx.Err() != nil {
			return nil, false, false, err
		}
		s.breaker.Failure()
	}
	s.metrics.CacheBypass()
	exp, err = core.NewExperiment(cfg)
	return exp, false, true, err
}

// Recover replays the job WAL at dir and re-enqueues every job that
// had no terminal record, under its original id — clients polling a
// pre-crash job id find their job again, and seeds ride along in the
// journaled payload so re-runs are bit-identical. Jobs whose payloads
// no longer validate (version skew across a deploy) are skipped with a
// log line, never an error: recovery must bring the daemon up.
// Corrupt journal segments are quarantined by the journal layer and
// reported in the stats.
func (s *Server) Recover(ctx context.Context, dir string) (int, journal.ReplayStats, error) {
	pending, st, err := jobs.Recover(ctx, dir)
	if err != nil {
		return 0, st, err
	}
	return s.Resubmit(pending), st, nil
}

// Resubmit re-enqueues jobs already recovered from a WAL (jobs.Recover)
// and returns how many were accepted. It is split from Recover so the
// daemon can replay the WAL directory BEFORE opening the new writer —
// replaying after the writer has minted a fresh segment would make a
// crash's torn tail look like mid-log damage — and re-submit once the
// journaled queue exists, so the acceptances re-journal into the new
// segments.
func (s *Server) Resubmit(pending []jobs.PendingJob) int {
	n := 0
	for _, p := range pending {
		fn, err := s.rebuildFunc(p)
		if err != nil {
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("recover: skipping job %s (kind=%s): %v", p.ID, p.Spec.Kind, err)
			}
			continue
		}
		if _, err := s.cfg.Queue.SubmitRecovered(p, fn); err != nil {
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("recover: re-enqueue %s: %v", p.ID, err)
			}
			continue
		}
		n++
	}
	return n
}

// rebuildFunc reconstructs a job body from its journaled kind and
// payload. Funcs are closures and cannot be persisted; this is their
// inverse, resolving the payload exactly as the original handler did.
func (s *Server) rebuildFunc(p jobs.PendingJob) (jobs.Func, error) {
	switch p.Spec.Kind {
	case "simulate":
		var req SimulateRequest
		if err := json.Unmarshal(p.Spec.Payload, &req); err != nil {
			return nil, err
		}
		cfg, sc, err := s.resolve(&req)
		if err != nil {
			return nil, err
		}
		return s.simulateFunc(cfg, sc, req), nil
	case "sweep":
		var req SweepRequest
		if err := json.Unmarshal(p.Spec.Payload, &req); err != nil {
			return nil, err
		}
		driver, opts, err := s.sweepOptions(&req)
		if err != nil {
			return nil, err
		}
		return s.sweepFunc(driver, opts, p.Spec.Tenant, p.Spec.Payload), nil
	default:
		return nil, fmt.Errorf("no recovery for job kind %q", p.Spec.Kind)
	}
}

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

// decodeBody parses a JSON request body strictly, firing the
// server.decode fault site first.
func decodeBody(r *http.Request, v any) error {
	if err := faultinject.Fire(r.Context(), faultinject.SiteDecode); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}
