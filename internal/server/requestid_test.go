package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/simcache"
)

func TestRequestIDGenerated(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rid := resp.Header.Get(RequestIDHeader)
	if rid == "" || !strings.HasPrefix(rid, "r-") {
		t.Fatalf("generated request id %q, want r-<hex>", rid)
	}
}

func TestRequestIDPropagated(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("echoed request id %q, want trace-me-42", got)
	}
}

func TestRequestIDOverlongReplaced(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, strings.Repeat("x", maxRequestIDLen+1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); !strings.HasPrefix(got, "r-") {
		t.Fatalf("overlong inbound id kept: %q", got)
	}
}

func TestRequestIDInErrorBody(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "err-echo-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != "err-echo-7" {
		t.Fatalf("error body request_id %q, want err-echo-7", body.RequestID)
	}
}

func TestRequestIDReachesJobSnapshot(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{Workers: 2})
	body, err := json.Marshal(SimulateRequest{
		Workload: "minife", Nodes: 8, Iters: 2, MTBCENanos: int64(time.Second), PerEventNanos: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "job-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var snap jobs.Snapshot
		if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &snap); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if snap.RequestID != "job-rid-1" {
			t.Fatalf("job snapshot request_id %q, want job-rid-1", snap.RequestID)
		}
		if snap.State.Terminal() {
			if snap.State != jobs.Succeeded {
				t.Fatalf("job finished %s: %s", snap.State, snap.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExtraRoutesThroughMiddleware proves Config.Routes endpoints get
// the same stamping and accounting as built-ins: the request id is in
// scope inside the handler and the route shows up in /metrics.
func TestExtraRoutesThroughMiddleware(t *testing.T) {
	q := jobs.New(jobs.Config{Workers: 1})
	var seen string
	s, err := New(Config{
		Queue: q, Cache: simcache.New(0),
		Routes: map[string]http.HandlerFunc{
			"GET /cluster/ping": func(w http.ResponseWriter, r *http.Request) {
				seen = RequestIDFrom(r.Context())
				writeJSON(w, http.StatusOK, map[string]any{"pong": true})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	}()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/cluster/ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "extra-route-rid")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seen != "extra-route-rid" {
		t.Fatalf("handler saw request id %q, want extra-route-rid", seen)
	}
	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Requests["GET /cluster/ping"] != 1 {
		t.Fatalf("extra route not accounted: %v", m.Requests)
	}
}
