package server

import (
	"sync"
	"time"

	"repro/internal/advise"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/simcache"
	"repro/internal/tenant"
)

// histBoundsMs are the upper bounds (milliseconds) of the latency
// histogram buckets, spanning cache-hit lookups (<1 ms) to paper-scale
// sweeps (minutes); the implicit last bucket is +Inf.
var histBoundsMs = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

// hist is a fixed-bucket latency histogram. Guarded by Metrics.mu.
type hist struct {
	counts []uint64 // len(histBoundsMs)+1; last is +Inf
	n      uint64
	sumMs  float64
	maxMs  float64
}

func newHist() *hist {
	return &hist{counts: make([]uint64, len(histBoundsMs)+1)}
}

func (h *hist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(histBoundsMs) && ms > histBoundsMs[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
}

// HistBucket is one histogram bucket in a snapshot. LeMs <= 0 marks
// the +Inf bucket.
type HistBucket struct {
	LeMs  float64 `json:"le_ms,omitempty"`
	Count uint64  `json:"count"`
}

// HistSnapshot summarizes one latency histogram.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	MeanMs  float64      `json:"mean_ms"`
	MaxMs   float64      `json:"max_ms"`
	Buckets []HistBucket `json:"buckets"`
}

func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.n, MaxMs: h.maxMs}
	if h.n > 0 {
		s.MeanMs = h.sumMs / float64(h.n)
	}
	s.Buckets = make([]HistBucket, len(h.counts))
	for i, c := range h.counts {
		b := HistBucket{Count: c}
		if i < len(histBoundsMs) {
			b.LeMs = histBoundsMs[i]
		}
		s.Buckets[i] = b
	}
	return s
}

// Stage labels for per-stage latency histograms.
const (
	// StageHTTP is wall time per HTTP request (handler only — job
	// execution is measured by the other stages).
	StageHTTP = "http"
	// StageBaseline is the simcache lookup-or-build step of a
	// simulate job: ~free on a hit, the full trace expansion plus
	// baseline simulation on a miss.
	StageBaseline = "baseline"
	// StageScenarios is the CE-scenario repetitions of a simulate job.
	StageScenarios = "scenarios"
	// StageJob is a job's total execution time, any kind.
	StageJob = "job"
)

// Metrics aggregates the daemon's counters and histograms; all methods
// are safe for concurrent use. Queue and cache gauges are read live at
// snapshot time rather than duplicated here.
type Metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]uint64 // by route pattern
	statuses map[string]uint64 // by status class ("2xx", ...)
	stages   map[string]*hist

	shedRequests     uint64
	handlerPanics    uint64
	cacheBypasses    uint64
	tenantRejections uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		requests: map[string]uint64{},
		statuses: map[string]uint64{},
		stages:   map[string]*hist{},
	}
}

// Observe records one latency sample for a stage.
func (m *Metrics) Observe(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.stages[stage]
	if !ok {
		h = newHist()
		m.stages[stage] = h
	}
	h.observe(d)
}

// Shed counts one submission rejected by admission control.
func (m *Metrics) Shed() {
	m.mu.Lock()
	m.shedRequests++
	m.mu.Unlock()
}

// HandlerPanic counts one panic recovered by the handler middleware.
func (m *Metrics) HandlerPanic() {
	m.mu.Lock()
	m.handlerPanics++
	m.mu.Unlock()
}

// CacheBypass counts one simulate job that built its baseline directly
// because the cache failed or its breaker was open.
func (m *Metrics) CacheBypass() {
	m.mu.Lock()
	m.cacheBypasses++
	m.mu.Unlock()
}

// TenantReject counts one submission refused by per-tenant limits
// (rate or job quota; answered 429 with Retry-After).
func (m *Metrics) TenantReject() {
	m.mu.Lock()
	m.tenantRejections++
	m.mu.Unlock()
}

// Request records one served HTTP request.
func (m *Metrics) Request(route string, status int, d time.Duration) {
	class := "2xx"
	switch {
	case status >= 500:
		class = "5xx"
	case status >= 400:
		class = "4xx"
	case status >= 300:
		class = "3xx"
	}
	m.mu.Lock()
	m.requests[route]++
	m.statuses[class]++
	h, ok := m.stages[StageHTTP]
	if !ok {
		h = newHist()
		m.stages[StageHTTP] = h
	}
	h.observe(d)
	m.mu.Unlock()
}

// Snapshot is the JSON document served on /metrics.
type Snapshot struct {
	UptimeSeconds float64                 `json:"uptime_s"`
	Requests      map[string]uint64       `json:"requests"`
	Statuses      map[string]uint64       `json:"statuses"`
	Latency       map[string]HistSnapshot `json:"latency"`
	Jobs          jobs.Stats              `json:"jobs"`
	Cache         simcache.Stats          `json:"cache"`
	// ShedRequests counts submissions rejected by admission control.
	ShedRequests uint64 `json:"shed_requests"`
	// HandlerPanics counts panics recovered at the HTTP layer.
	HandlerPanics uint64 `json:"handler_panics"`
	// CacheBypasses counts simulate jobs that degraded to a direct
	// baseline build.
	CacheBypasses uint64 `json:"cache_bypasses"`
	// Breaker reports the baseline-cache circuit breaker, when wired.
	Breaker *BreakerStats `json:"breaker,omitempty"`
	// Advisor reports the mitigation advisor's ingest/estimator/cache
	// gauges, when mounted (docs/ADVISOR.md).
	Advisor *advise.Stats `json:"advisor,omitempty"`
	// TenantRejections counts submissions refused by per-tenant limits.
	TenantRejections uint64 `json:"tenant_rejections"`
	// Store reports the durable result store, when configured
	// (docs/DURABILITY.md): entry/byte gauges, hit/miss/quarantine
	// counters and per-tenant usage.
	Store *simcache.StoreStats `json:"store,omitempty"`
	// Tenants reports per-tenant admission and quota counters, sorted
	// by tenant name.
	Tenants []tenant.Stats `json:"tenants,omitempty"`
	// Journal reports the job WAL writer, when configured.
	Journal *journal.Stats `json:"journal,omitempty"`
	// Faults reports fault-injection counters while a plan is armed.
	Faults *faultinject.Stats `json:"faults,omitempty"`
}

// Extras carries the durable-tier gauges read live at snapshot time;
// any field may be nil.
type Extras struct {
	Store   *simcache.Store
	Tenants *tenant.Registry
	Journal *journal.Writer
}

// Snapshot captures all counters plus live queue, cache, breaker and
// advisor gauges. q, c, b and adv may be nil (their sections stay zero
// or absent).
func (m *Metrics) Snapshot(q *jobs.Queue, c *simcache.Cache, b *Breaker, adv *advise.Service, x Extras) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      map[string]uint64{},
		Statuses:      map[string]uint64{},
		Latency:       map[string]HistSnapshot{},
	}
	m.mu.Lock()
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	for k, v := range m.statuses {
		s.Statuses[k] = v
	}
	for k, h := range m.stages {
		s.Latency[k] = h.snapshot()
	}
	s.ShedRequests = m.shedRequests
	s.HandlerPanics = m.handlerPanics
	s.CacheBypasses = m.cacheBypasses
	s.TenantRejections = m.tenantRejections
	m.mu.Unlock()
	if q != nil {
		s.Jobs = q.Stats()
	}
	if c != nil {
		s.Cache = c.Stats()
	}
	if b != nil {
		bs := b.Snapshot()
		s.Breaker = &bs
	}
	if adv != nil {
		as := adv.Stats()
		s.Advisor = &as
	}
	if x.Store != nil {
		ss := x.Store.Stats()
		s.Store = &ss
	}
	if x.Tenants != nil {
		s.Tenants = x.Tenants.StatsAll()
	}
	if x.Journal != nil {
		js := x.Journal.Stats()
		s.Journal = &js
	}
	if faultinject.Armed() {
		fs := faultinject.Snapshot()
		s.Faults = &fs
	}
	return s
}
