package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/jobs"
	"repro/internal/noise"
	"repro/internal/systems"
)

// TestSimulateFaultMixEndToEnd submits a simulate request under a
// fault-mix preset and requires the served answer to equal a direct
// computation with the same mixture process — the service path must not
// perturb the mixture's schedules.
func TestSimulateFaultMixEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req := simReq()
	req.FaultMixPreset = "field-ddr4"

	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", req, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	state, raw, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("job %s: %s (%s)", sub.ID, state, errMsg)
	}
	var res SimulateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.FaultMix, "faultmix(") {
		t.Fatalf("fault_mix label missing: %+v", res)
	}

	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload: req.Workload, Nodes: req.Nodes, Iterations: req.Iters, TraceSeed: req.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := systems.FaultMixByName("field-ddr4")
	if err != nil {
		t.Fatal(err)
	}
	proc, err := mix.Spec.WithMTBCE(req.MTBCENanos).Process()
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.RunRepeated(core.Scenario{
		MTBCE: req.MTBCENanos, Arrivals: proc,
		PerEvent: noise.Fixed(req.PerEventNanos),
		Target:   noise.AllNodes, Seed: req.Seed + 1,
	}, req.Reps)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := want.Sample.Summarize()
	if res.Slowdown == nil || res.Slowdown.MeanPct != wantSum.Mean || res.Slowdown.N != wantSum.N {
		t.Fatalf("served slowdown %+v != direct %+v", res.Slowdown, wantSum)
	}
	if res.FaultMix != proc.String() {
		t.Fatalf("fault_mix label %q != process %q", res.FaultMix, proc.String())
	}
}

func TestSimulateFaultMixValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	inline := &faultmodel.Spec{
		MTBCENanos: 20 * 1000 * 1000,
		Modes:      []faultmodel.Mode{{Kind: "cell", Weight: 1}},
	}
	cases := []struct {
		name     string
		mod      func(*SimulateRequest)
		wantFrag string
	}{
		{"both mix fields", func(r *SimulateRequest) {
			r.FaultMix = inline
			r.FaultMixPreset = "field-ddr4"
		}, "not both"},
		{"unknown preset", func(r *SimulateRequest) {
			r.FaultMixPreset = "nonesuch"
		}, "unknown fault mix"},
		{"mix mtbce and request mtbce", func(r *SimulateRequest) {
			r.FaultMix = inline
		}, "mtbce"},
		{"invalid inline mix", func(r *SimulateRequest) {
			r.MTBCENanos = 0
			r.FaultMix = &faultmodel.Spec{
				MTBCENanos: 20 * 1000 * 1000,
				Modes:      []faultmodel.Mode{{Kind: "cell", Weight: 0.5}},
			}
		}, "weights"},
	}
	for _, tc := range cases {
		req := simReq()
		tc.mod(&req)
		var e errorBody
		if code := postJSON(t, ts.URL+"/v1/simulate", req, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (error %q)", tc.name, code, e.Error)
		} else if !strings.Contains(e.Error, tc.wantFrag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantFrag)
		}
	}
}
