package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/advise"
	"repro/internal/faultinject"
	"repro/internal/jobs"
)

var updateAdvisorGolden = flag.Bool("update-advisor-golden", false,
	"rewrite testdata/advisor_smoke_golden.json from the live response")

// newAdvisorServer mounts an advisor on a robust test server.
func newAdvisorServer(t *testing.T, qcfg jobs.Config, mod func(*Config)) (*httptest.Server, *jobs.Queue, *advise.Service) {
	t.Helper()
	adv := advise.NewService(advise.Config{})
	ts, q := newRobustServer(t, qcfg, func(c *Config) {
		c.Advisor = adv
		if mod != nil {
			mod(c)
		}
	})
	return ts, q, adv
}

func advBatch(tenant string, nodes, events int, seed int64) string {
	var b strings.Builder
	for n := 0; n < nodes; n++ {
		for i := 0; i < events; i++ {
			k := seed*1000 + int64(n*events+i)
			fmt.Fprintf(&b, `{"tenant":%q,"node":"n%d","ts_ns":%d,"addr":%d,"bank":%d}`+"\n",
				tenant, n, (k%100000+1)*60e9, (k*2654435761)%(1<<40), k%8)
		}
	}
	return b.String()
}

func postNDJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestAdvisorRoutesRequireMount: without Config.Advisor the endpoints
// must not exist.
func TestAdvisorRoutesRequireMount(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	resp, _ := postNDJSON(t, ts.URL+"/v1/advise/ingest", advBatch("acme", 1, 1, 1))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted ingest: status %d, want 404", resp.StatusCode)
	}
	resp, _ = getRaw(t, ts.URL+"/v1/advise/recommend?tenant=a&node=n")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted recommend: status %d, want 404", resp.StatusCode)
	}
}

// TestAdvisorEndToEnd: ingest through the real middleware stack, then
// recommend, then check the advisor section of /metrics.
func TestAdvisorEndToEnd(t *testing.T) {
	ts, _, _ := newAdvisorServer(t, jobs.Config{}, nil)

	resp, body := postNDJSON(t, ts.URL+"/v1/advise/ingest", advBatch("acme", 2, 20, 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("ingest response missing request id: not going through the middleware")
	}
	var res advise.IngestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 40 || res.Nodes != 2 {
		t.Fatalf("ingest result: %+v", res)
	}

	resp, body = getRaw(t, ts.URL+"/v1/advise/recommend?tenant=acme&node=n0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get(advise.CacheHeader); h != "miss" {
		t.Fatalf("%s = %q, want miss", advise.CacheHeader, h)
	}
	var rec advise.Recommendation
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Estimate == nil || rec.Estimate.Tenant != "acme" || rec.Estimate.Node != "n0" {
		t.Fatalf("estimate: %+v", rec.Estimate)
	}
	if rec.RecommendedMode == "" {
		t.Fatalf("no recommended mode: %+v", rec)
	}

	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Advisor == nil {
		t.Fatal("metrics missing advisor section")
	}
	if m.Advisor.Store.Events != 40 || m.Advisor.Store.Nodes != 2 || m.Advisor.RecommendMisses != 1 {
		t.Fatalf("advisor metrics: %+v", m.Advisor)
	}
}

// TestAdviseIngestShed: advisor ingest rides the same admission control
// as job submissions — queue past the watermark means 503 + Retry-After.
func TestAdviseIngestShed(t *testing.T) {
	ts, q, _ := newAdvisorServer(t, jobs.Config{Workers: 1, Capacity: 8}, func(c *Config) {
		c.ShedWatermark = 1
	})

	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	if _, err := q.Submit("block", block); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("block", block); err != nil {
		t.Fatal(err)
	}
	waitFor := time.Now().Add(5 * time.Second)
	for q.Depth() < 1 {
		if time.Now().After(waitFor) {
			t.Fatal("queue depth never reached the watermark")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postNDJSON(t, ts.URL+"/v1/advise/ingest", advBatch("acme", 1, 5, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed ingest lacks Retry-After")
	}
	// Recommend is a read: it must keep answering under load shed.
	resp, _ = getRaw(t, ts.URL+"/v1/advise/recommend?tenant=acme&node=n0")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recommend under shed: status %d, want 404 (no data, but served)", resp.StatusCode)
	}
}

// TestAdviseIngestChaos is the PR's chaos acceptance run: with the
// advise.ingest fault site firing at p=0.2, a storm of batches must
// leave no partial state — the store must equal a reference store that
// applied exactly the accepted batches — and the job queue must still
// drain cleanly afterwards.
func TestAdviseIngestChaos(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	ts, q, _ := newAdvisorServer(t, jobs.Config{Workers: 2, Capacity: 32}, nil)

	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteAdviseIngest: {Kind: faultinject.KindError, Probability: 0.2, Seed: 99},
	}); err != nil {
		t.Fatal(err)
	}

	// Collect the batches the chaos run accepted; a reference advisor
	// replays exactly those once the plan is disarmed.
	const batches = 100
	var acceptedBatches []string
	failed := 0
	for b := 0; b < batches; b++ {
		batch := advBatch("acme", 3, 4, int64(b))
		resp, body := postNDJSON(t, ts.URL+"/v1/advise/ingest", batch)
		switch resp.StatusCode {
		case http.StatusOK:
			acceptedBatches = append(acceptedBatches, batch)
		case http.StatusInternalServerError:
			failed++
			if !strings.Contains(string(body), "faultinject") {
				t.Fatalf("batch %d: unexpected 500: %s", b, body)
			}
		default:
			t.Fatalf("batch %d: status %d: %s", b, resp.StatusCode, body)
		}
	}
	accepted := len(acceptedBatches)
	if accepted == 0 || failed == 0 {
		t.Fatalf("chaos run needs both outcomes: accepted=%d failed=%d", accepted, failed)
	}

	// No state corruption: metrics agree with an exact replay of the
	// accepted batches, and recommend answers match byte-for-byte.
	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Advisor == nil {
		t.Fatal("metrics missing advisor section")
	}
	if want := uint64(accepted * 12); m.Advisor.Store.Events != want {
		t.Fatalf("store events = %d, want %d (12 per accepted batch): partial batch applied",
			m.Advisor.Store.Events, want)
	}
	if m.Advisor.Store.Batches != uint64(accepted) {
		t.Fatalf("store batches = %d, want %d", m.Advisor.Store.Batches, accepted)
	}
	if m.Advisor.IngestRejects != uint64(failed) {
		t.Fatalf("ingest rejects = %d, want %d", m.Advisor.IngestRejects, failed)
	}
	if m.Faults == nil {
		t.Fatal("armed faults missing from metrics")
	}
	faultinject.Disarm()

	ref := advise.NewService(advise.Config{})
	for _, batch := range acceptedBatches {
		if err := refIngest(ref, batch); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"n0", "n1", "n2"} {
		_, got := getRaw(t, ts.URL+"/v1/advise/recommend?tenant=acme&node="+n)
		req := httptest.NewRequest("GET", "/v1/advise/recommend?tenant=acme&node="+n, nil)
		w := httptest.NewRecorder()
		ref.HandleRecommend(w, req)
		if !bytes.Equal(got, w.Body.Bytes()) {
			t.Fatalf("%s: chaos-surviving state diverged from exact replay:\n got: %s\nwant: %s", n, got, w.Body)
		}
	}

	// The job queue is unaffected by advisor chaos: submit and finish a
	// real job, then drain.
	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
		t.Fatalf("post-chaos submit status %d", code)
	}
	if state, _, errMsg := pollJob(t, ts.URL, sub.ID); state != "succeeded" {
		t.Fatalf("post-chaos job: %s (%s)", state, errMsg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("queue failed to drain after chaos: %v", err)
	}
}

// refIngest applies one NDJSON batch to a bare advisor service,
// failing on any non-200.
func refIngest(s *advise.Service, batch string) error {
	req := httptest.NewRequest("POST", "/v1/advise/ingest", strings.NewReader(batch))
	w := httptest.NewRecorder()
	s.HandleIngest(w, req)
	if w.Code != http.StatusOK {
		return fmt.Errorf("reference ingest: %d %s", w.Code, w.Body)
	}
	return nil
}

// TestAdvisorSmokeGolden is the advisor-smoke target (Makefile, CI):
// boot the daemon stack, ingest the canned NDJSON stream, and require
// the recommendation to match the committed golden byte-for-byte.
// Regenerate with: go test -run TestAdvisorSmokeGolden ./internal/server/ -update-advisor-golden
func TestAdvisorSmokeGolden(t *testing.T) {
	ts, _, _ := newAdvisorServer(t, jobs.Config{}, nil)

	stream, err := os.ReadFile(filepath.Join("testdata", "advisor_smoke.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postNDJSON(t, ts.URL+"/v1/advise/ingest", string(stream))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smoke ingest: %d %s", resp.StatusCode, body)
	}

	const query = "tenant=smoke&node=node-07&workload=lulesh&nodes=16384&budget=10&gib=700"
	resp, got := getRaw(t, ts.URL+"/v1/advise/recommend?"+query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smoke recommend: %d %s", resp.StatusCode, got)
	}

	goldenPath := filepath.Join("testdata", "advisor_smoke_golden.json")
	if *updateAdvisorGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recommendation drifted from golden (rerun with -update-advisor-golden if intended):\n got: %s\nwant: %s", got, want)
	}
}
