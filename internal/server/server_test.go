package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/noise"
	"repro/internal/simcache"
)

// newTestServer builds a server on a small queue, returning the
// httptest wrapper and the queue for draining.
func newTestServer(t *testing.T, qcfg jobs.Config) (*httptest.Server, *jobs.Queue, *simcache.Cache) {
	t.Helper()
	if qcfg.Workers == 0 {
		qcfg.Workers = 2
	}
	q := jobs.New(qcfg)
	c := simcache.New(0)
	s, err := New(Config{Queue: q, Cache: c, SimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	})
	return ts, q, c
}

// postJSON posts v and decodes the response into out, returning the
// status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls until the job is terminal, returning its snapshot with
// the result left as raw JSON.
func pollJob(t *testing.T, base, id string) (state string, result json.RawMessage, errMsg string) {
	t.Helper()
	type snap struct {
		State  string          `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var s snap
		if code := getJSON(t, base+"/v1/jobs/"+id, &s); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		switch s.State {
		case "succeeded", "failed", "canceled":
			return s.State, s.Result, s.Error
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, s.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func simReq() SimulateRequest {
	return SimulateRequest{
		Workload: "minife", Nodes: 16, Iters: 2,
		MTBCENanos:    20 * 1000 * 1000, // 20 ms
		PerEventNanos: 500 * 1000,       // 500 us
		Seed:          1, Reps: 3,
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	var body map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
}

func TestCatalogEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	var sys struct {
		Systems      []map[string]any `json:"systems"`
		LoggingModes []map[string]any `json:"logging_modes"`
	}
	if code := getJSON(t, ts.URL+"/v1/systems", &sys); code != http.StatusOK {
		t.Fatalf("systems status %d", code)
	}
	if len(sys.Systems) != 10 || len(sys.LoggingModes) != 3 {
		t.Fatalf("catalog sizes: %d systems, %d modes", len(sys.Systems), len(sys.LoggingModes))
	}
	var wl struct {
		Workloads []map[string]any `json:"workloads"`
	}
	if code := getJSON(t, ts.URL+"/v1/workloads", &wl); code != http.StatusOK {
		t.Fatalf("workloads status %d", code)
	}
	if len(wl.Workloads) != 9 {
		t.Fatalf("%d workloads, want the paper's 9", len(wl.Workloads))
	}
}

// TestSimulateEndToEnd is the acceptance path: submit over HTTP, poll
// to completion, and check the answer matches the same question asked
// directly through core (same seeds, so bit-identical).
func TestSimulateEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req := simReq()

	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", req, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	state, raw, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("job %s: %s (%s)", sub.ID, state, errMsg)
	}
	var res SimulateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}

	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload: req.Workload, Nodes: req.Nodes, Iterations: req.Iters, TraceSeed: req.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.RunRepeated(core.Scenario{
		MTBCE: req.MTBCENanos, PerEvent: noise.Fixed(req.PerEventNanos),
		Target: noise.AllNodes, Seed: req.Seed + 1,
	}, req.Reps)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := want.Sample.Summarize()
	if res.Slowdown == nil {
		t.Fatalf("no slowdown in result: %+v", res)
	}
	if res.Slowdown.MeanPct != wantSum.Mean || res.Slowdown.N != wantSum.N {
		t.Fatalf("served slowdown %+v != direct %+v", res.Slowdown, wantSum)
	}
	if res.BaselineMakespanNanos != exp.Baseline().Makespan {
		t.Fatalf("baseline makespan %d != %d", res.BaselineMakespanNanos, exp.Baseline().Makespan)
	}
	if res.Ranks != exp.Ranks() || res.CacheHit {
		t.Fatalf("metadata off: %+v", res)
	}
}

// TestRepeatedRequestsHitCache submits the same question twice and
// checks the second is served from the baseline cache, with the hit
// visible on /metrics.
func TestRepeatedRequestsHitCache(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	for i := 0; i < 2; i++ {
		var sub submitted
		if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
			t.Fatalf("submit %d status %d", i, code)
		}
		state, raw, errMsg := pollJob(t, ts.URL, sub.ID)
		if state != "succeeded" {
			t.Fatalf("job %d: %s (%s)", i, state, errMsg)
		}
		var res SimulateResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if wantHit := i > 0; res.CacheHit != wantHit {
			t.Fatalf("request %d cache_hit=%v", i, res.CacheHit)
		}
	}
	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Cache.Hits+m.Cache.Coalesced == 0 || m.Cache.HitRatio <= 0 {
		t.Fatalf("cache hits invisible on /metrics: %+v", m.Cache)
	}
	if m.Jobs.Succeeded != 2 {
		t.Fatalf("job counters: %+v", m.Jobs)
	}
	if m.Latency[StageBaseline].Count != 2 || m.Latency[StageScenarios].Count != 2 {
		t.Fatalf("stage histograms missing: %+v", m.Latency)
	}
	if m.Requests["POST /v1/simulate"] != 2 {
		t.Fatalf("request counters: %+v", m.Requests)
	}
}

// TestConcurrentSubmissions exercises the worker pool and cache
// coalescing under the race detector: many identical submissions in
// flight at once must produce identical results and exactly one
// baseline build.
func TestConcurrentSubmissions(t *testing.T) {
	ts, _, cache := newTestServer(t, jobs.Config{Workers: 4, Capacity: 64})
	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sub submitted
			if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
				t.Errorf("submit %d status %d", i, code)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	var means []float64
	for i, id := range ids {
		if id == "" {
			t.Fatalf("submission %d failed", i)
		}
		state, raw, errMsg := pollJob(t, ts.URL, id)
		if state != "succeeded" {
			t.Fatalf("job %s: %s (%s)", id, state, errMsg)
		}
		var res SimulateResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		means = append(means, res.Slowdown.MeanPct)
	}
	for i := 1; i < len(means); i++ {
		if means[i] != means[0] {
			t.Fatalf("identical requests diverged: %v", means)
		}
	}
	if s := cache.Stats(); s.Misses != 1 {
		t.Fatalf("baseline built %d times for one config: %+v", s.Misses, s)
	}
}

func TestSweepEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req := SweepRequest{Figure: "4", Nodes: 16, Iters: 2, Reps: 1, Seed: 1, Workloads: []string{"minife"}}
	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/sweep", req, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	state, raw, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("sweep: %s (%s)", state, errMsg)
	}
	fig, err := core.ReadFigureJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("sweep result not a figure: %v", err)
	}
	if fig.ID != "fig4" || len(fig.Rows) == 0 {
		t.Fatalf("figure %q with %d rows", fig.ID, len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if row.Workload != "minife" {
			t.Fatalf("workload filter ignored: %+v", row)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	base := simReq()
	cases := []struct {
		name string
		mod  func(*SimulateRequest)
	}{
		{"missing workload", func(r *SimulateRequest) { r.Workload = "" }},
		{"unknown workload", func(r *SimulateRequest) { r.Workload = "linpack" }},
		{"one node", func(r *SimulateRequest) { r.Nodes = 1 }},
		{"huge nodes", func(r *SimulateRequest) { r.Nodes = 1 << 20 }},
		{"no rate", func(r *SimulateRequest) { r.MTBCENanos = 0 }},
		{"both rates", func(r *SimulateRequest) { r.System = "cielo" }},
		{"unknown system", func(r *SimulateRequest) { r.MTBCENanos = 0; r.System = "nonesuch" }},
		{"no cost", func(r *SimulateRequest) { r.PerEventNanos = 0 }},
		{"both costs", func(r *SimulateRequest) { r.Mode = "firmware-emca" }},
		{"unknown mode", func(r *SimulateRequest) { r.PerEventNanos = 0; r.Mode = "nonesuch" }},
		{"bad target", func(r *SimulateRequest) { tgt := int32(99); r.Target = &tgt }},
		{"negative reps", func(r *SimulateRequest) { r.Reps = -1 }},
	}
	for _, tc := range cases {
		req := base
		tc.mod(&req)
		var e errorBody
		if code := postJSON(t, ts.URL+"/v1/simulate", req, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (error %q)", tc.name, code, e.Error)
		} else if e.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
	// Unknown fields are rejected too.
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		bytes.NewReader([]byte(`{"workload":"minife","nodez":16}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
}

func TestSweepValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	for name, req := range map[string]SweepRequest{
		"unknown figure":   {Figure: "12"},
		"unknown scale":    {Figure: "4", Scale: "huge"},
		"unknown workload": {Figure: "4", Workloads: []string{"nonesuch"}},
		"bad nodes":        {Figure: "4", Nodes: 1},
	} {
		if code := postJSON(t, ts.URL+"/v1/sweep", req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d", name, code)
		}
	}
}

func TestQueueFullReturns429(t *testing.T) {
	ts, q, _ := newTestServer(t, jobs.Config{Workers: 1, Capacity: 1})
	// Deterministically fill the pool: one blocking job occupies the
	// only worker, a second fills the capacity-1 queue.
	block := make(chan struct{})
	defer close(block)
	if _, err := q.Submit("block", func(context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Submit("fill", func(context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &e); code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%q), want 429", code, e.Error)
	}
}

func TestJobNotFoundAndCancel(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job status %d", resp.StatusCode)
	}

	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", simReq(), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	state, _, _ := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("job %s", state)
	}
	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of finished job: status %d", resp.StatusCode)
	}
}

func TestSaturatedScenarioServed(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	req := simReq()
	req.MTBCENanos = 1000 * 1000          // 1 ms between CEs
	req.PerEventNanos = 133 * 1000 * 1000 // 133 ms each: load >> 1
	var sub submitted
	if code := postJSON(t, ts.URL+"/v1/simulate", req, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	state, raw, errMsg := pollJob(t, ts.URL, sub.ID)
	if state != "succeeded" {
		t.Fatalf("job: %s (%s)", state, errMsg)
	}
	var res SimulateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || res.Slowdown != nil {
		t.Fatalf("saturation mis-served: %+v", res)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t, jobs.Config{})
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on simulate: %d", resp.StatusCode)
	}
}
