package extrapolate

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/collectives"
	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func baseTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := tracegen.Generate("minife", 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFactorOne(t *testing.T) {
	tr := baseTrace(t)
	out, err := Extrapolate(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, tr) {
		t.Fatal("factor 1 is not an identity copy")
	}
	// Deep copy: mutating the output must not touch the input.
	out.Ops[0][0].Dur = 12345
	if tr.Ops[0][0].Dur == 12345 {
		t.Fatal("factor 1 shares storage with input")
	}
}

func TestBadArgs(t *testing.T) {
	if _, err := Extrapolate(&trace.Trace{}, 2); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Extrapolate(baseTrace(t), 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestRankCount(t *testing.T) {
	tr := baseTrace(t)
	out, err := Extrapolate(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRanks() != 32 {
		t.Fatalf("ranks = %d, want 32", out.NumRanks())
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("extrapolated trace invalid: %v", err)
	}
}

func TestP2PStaysInGroup(t *testing.T) {
	tr := baseTrace(t)
	p := tr.NumRanks()
	out, err := Extrapolate(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r, ops := range out.Ops {
		group := int32(r / p)
		for _, op := range ops {
			switch op.Kind {
			case trace.OpSend, trace.OpIsend, trace.OpRecv, trace.OpIrecv:
				if op.Peer == trace.AnySource {
					continue
				}
				if op.Peer/int32(p) != group {
					t.Fatalf("rank %d (group %d) talks to rank %d outside its group", r, group, op.Peer)
				}
			}
		}
	}
}

func TestCollectivesSpanAllRanks(t *testing.T) {
	tr := baseTrace(t)
	out, err := Extrapolate(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every rank has the same collective count as the original rank 0.
	want := 0
	for _, op := range tr.Ops[0] {
		if op.Kind.IsCollective() {
			want++
		}
	}
	for r, ops := range out.Ops {
		got := 0
		for _, op := range ops {
			if op.Kind.IsCollective() {
				got++
			}
		}
		if got != want {
			t.Fatalf("rank %d has %d collectives, want %d", r, got, want)
		}
	}
}

func TestRootedRootsPreserved(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Bcast(1, 64)},
		{trace.Bcast(1, 64)},
	}}
	out, err := Extrapolate(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r, ops := range out.Ops {
		if ops[0].Peer != 1 {
			t.Fatalf("rank %d bcast root = %d, want 1", r, ops[0].Peer)
		}
	}
}

func TestExtrapolatedTraceSimulates(t *testing.T) {
	tr := baseTrace(t)
	out, err := Extrapolate(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := collectives.Expand(out, collectives.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := loggopsim.Simulate(ex, loggopsim.Config{Net: netmodel.CrayXC40()})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestExtrapolationPreservesGroupMakespanWithoutCollectives(t *testing.T) {
	// A p2p-only trace extrapolated k times is k independent copies:
	// the makespan must be identical to the original's.
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(1000), trace.Send(1, 64, 0)},
		{trace.Recv(0, 64, 0), trace.Calc(500)},
	}}
	orig, err := loggopsim.Simulate(tr, loggopsim.Config{Net: netmodel.CrayXC40()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Extrapolate(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := loggopsim.Simulate(out, loggopsim.Config{Net: netmodel.CrayXC40()})
	if err != nil {
		t.Fatal(err)
	}
	if big.Makespan != orig.Makespan {
		t.Fatalf("p2p-only extrapolation changed makespan: %d vs %d", big.Makespan, orig.Makespan)
	}
}

func TestFactorHelper(t *testing.T) {
	cases := []struct {
		p, target    int
		factor, want int
	}{
		{125, 16000, 128, 16000},
		{128, 16384, 128, 16384},
		{128, 128, 1, 128},
		{64, 100, 2, 128},
	}
	for _, c := range cases {
		f, ranks, err := Factor(c.p, c.target)
		if err != nil {
			t.Fatal(err)
		}
		if f != c.factor || ranks != c.want {
			t.Fatalf("Factor(%d,%d) = (%d,%d), want (%d,%d)", c.p, c.target, f, ranks, c.factor, c.want)
		}
	}
	if _, _, err := Factor(0, 10); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, _, err := Factor(10, 0); err == nil {
		t.Fatal("target=0 accepted")
	}
}

// Property: extrapolation preserves per-rank op counts and keeps traces
// valid for any workload and small factor.
func TestQuickExtrapolationValid(t *testing.T) {
	names := tracegen.Names()
	f := func(nameSel, factorRaw uint8, seed uint64) bool {
		name := names[int(nameSel)%len(names)]
		n := tracegen.PreferredRanks(name, 16)
		if n < 2 {
			n = 8
		}
		tr, err := tracegen.Generate(name, n, 1, seed)
		if err != nil {
			return false
		}
		factor := 1 + int(factorRaw)%4
		out, err := Extrapolate(tr, factor)
		if err != nil {
			return false
		}
		if out.NumRanks() != n*factor {
			return false
		}
		if len(out.Ops[0]) != len(tr.Ops[0]) {
			return false
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
