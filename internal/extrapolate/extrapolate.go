// Package extrapolate scales a p-rank trace to k*p ranks, mirroring
// LogGOPSim's trace extrapolation.
//
// The paper collects traces at 125/128 ranks and simulates systems of up
// to 16,384 nodes by extrapolation (§III-C): collective operations are
// regenerated with *exact* communication patterns at the larger size,
// while point-to-point communication is approximated by replicating the
// traced pattern. This package follows the same contract:
//
//   - each of the k groups receives a copy of the original per-rank
//     operation streams, with point-to-point peers remapped into the
//     group (peer -> group*p + peer), preserving the traced
//     communication topology within every group;
//   - collective ops are left as logical collectives spanning all k*p
//     ranks; their exact expansion happens later (collectives.Expand),
//     so extrapolated collectives are exact by construction, as in
//     LogGOPSim;
//   - rooted collectives keep their original root rank (which lies in
//     group 0), so all ranks agree on the root.
package extrapolate

import (
	"fmt"

	"repro/internal/trace"
)

// Extrapolate returns a trace with factor*p ranks built from the p-rank
// input. factor must be >= 1; factor == 1 returns a deep copy.
func Extrapolate(t *trace.Trace, factor int) (*trace.Trace, error) {
	p := t.NumRanks()
	if p == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if factor < 1 {
		return nil, fmt.Errorf("extrapolate: factor must be >= 1, got %d", factor)
	}
	if factor == 1 {
		return t.Clone(), nil
	}
	out := &trace.Trace{
		Name: fmt.Sprintf("%s-x%d", t.Name, factor),
		Ops:  make([][]trace.Op, p*factor),
	}
	for g := 0; g < factor; g++ {
		base := int32(g * p)
		for r := 0; r < p; r++ {
			src := t.Ops[r]
			dst := make([]trace.Op, len(src))
			for i, op := range src {
				switch op.Kind {
				case trace.OpSend, trace.OpIsend:
					op.Peer += base
				case trace.OpRecv, trace.OpIrecv:
					if op.Peer != trace.AnySource {
						op.Peer += base
					}
				}
				// Collective roots are global ranks; keep them as
				// traced so every group agrees on a single root.
				dst[i] = op
			}
			out.Ops[int(base)+r] = dst
		}
	}
	return out, nil
}

// Factor returns the extrapolation factor needed to reach at least
// target ranks from a base of p, and the resulting rank count. It
// mirrors the paper's power-of-two extrapolation (125 traced LULESH
// ranks -> 16,000 simulated = 125 * 128).
func Factor(p, target int) (factor, ranks int, err error) {
	if p <= 0 {
		return 0, 0, fmt.Errorf("extrapolate: base rank count must be positive, got %d", p)
	}
	if target <= 0 {
		return 0, 0, fmt.Errorf("extrapolate: target must be positive, got %d", target)
	}
	factor = 1
	for p*factor < target {
		factor *= 2
	}
	return factor, p * factor, nil
}
