package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/rng"
)

// Sentinel errors of the lease protocol. The HTTP layer and tests
// match them with errors.Is; they are wrapped, never compared.
var (
	// ErrUnknownWorker reports a lease, heartbeat or report from a
	// worker id the coordinator does not know (never registered, or
	// expired after missing heartbeats). The worker must re-register.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
	// ErrUnknownSweep reports an operation on a sweep id the
	// coordinator does not know (or has already forgotten).
	ErrUnknownSweep = errors.New("cluster: unknown sweep")
	// ErrUnknownShard reports a report for a shard key outside the
	// sweep's plan.
	ErrUnknownShard = errors.New("cluster: unknown shard")
	// ErrSweepFailed reports a sweep whose shard exhausted its retry
	// budget; the client surfaces it with the failing shard's error.
	ErrSweepFailed = errors.New("cluster: sweep failed")
	// ErrEpochMismatch reports traffic stamped with another coordinator
	// generation: the worker is talking to a restarted coordinator (or a
	// stale one) and must re-register. Its leases from the old epoch are
	// void; its computed fragments stay welcome (reports are idempotent
	// and bit-identical wherever they ran).
	ErrEpochMismatch = errors.New("cluster: epoch mismatch")
)

// Config tunes the coordinator.
type Config struct {
	// LeaseTTL is how long a granted shard stays leased without a
	// heartbeat before it is re-assigned (default 10s).
	LeaseTTL time.Duration
	// StealAfter is how long a pending shard waits for its preferred
	// (consistent-hash) worker before any idle worker may take it
	// (default 2s). Placement is an affinity optimization for simcache
	// warmth, never a correctness constraint.
	StealAfter time.Duration
	// WorkerTTL is how long a registered worker survives without any
	// traffic before it is dropped from placement (default 30s).
	WorkerTTL time.Duration
	// Retry is the per-shard retry policy, reusing the jobs backoff
	// discipline: Retries extra attempts (default 3) after the first,
	// exponential backoff with per-cell deterministic jitter between
	// re-offers. Lease expiries consume the same budget — an attempt
	// that vanished is still an attempt.
	Retry jobs.Spec
	// RetainSweeps bounds how many terminal sweeps are kept for
	// polling (default 16); the oldest are forgotten first.
	RetainSweeps int
	// Now supplies timestamps; nil uses time.Now (injectable for
	// deterministic tests).
	Now func() time.Time
	// Journal, when set, receives one durable record per recovery-
	// relevant state transition (sweep created, lease granted, shard
	// done/failed, sweep failed). OpenCoordinator wires a journal.Writer
	// here and replays it on restart; tests may supply any appender.
	Journal jobs.Appender
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.StealAfter <= 0 {
		c.StealAfter = 2 * time.Second
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 30 * time.Second
	}
	if c.Retry.Retries == 0 {
		c.Retry.Retries = 3
	}
	if c.RetainSweeps <= 0 {
		c.RetainSweeps = 16
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// shardState is a shard's lifecycle position.
type shardState string

const (
	shardPending shardState = "pending"
	shardLeased  shardState = "leased"
	shardDone    shardState = "done"
	shardFailed  shardState = "failed"
)

// shard is one leased unit of a sweep: a cell plus its lease and retry
// bookkeeping.
type shard struct {
	cell  Cell
	state shardState
	// attempts counts lease grants (1-based once granted).
	attempts int
	// worker holds the current lease, "" when not leased.
	worker       string
	leaseExpiry  time.Time
	pendingSince time.Time
	notBefore    time.Time
	// jitter is the deterministic backoff stream derived from the cell
	// seed (CellSeed), so re-offer timing is reproducible per plan.
	jitter *rng.Source
	// fragment is the reported figure restricted to this cell's
	// workload.
	fragment *core.Figure
	// lastErr is the most recent failure report, kept for the sweep's
	// failure message.
	lastErr string
	// reassigned counts lease expiries that returned the shard to
	// pending.
	reassigned int
}

// sweep is one distributed campaign sweep.
type sweep struct {
	id      string
	spec    Spec // defaults resolved
	created time.Time
	shards  []*shard // plan (merge) order
	byKey   map[string]*shard
	done    int
	failed  bool
	err     string
	// merged holds the per-figure merged results once every shard is
	// done.
	merged map[string]*core.Figure
}

func (s *sweep) terminal() bool { return s.failed || s.done == len(s.shards) }

func (s *sweep) state() string {
	switch {
	case s.failed:
		return "failed"
	case s.done == len(s.shards):
		return "done"
	default:
		return "running"
	}
}

// worker is one registered cesimd worker.
type workerInfo struct {
	id         string
	addr       string
	registered time.Time
	lastSeen   time.Time
}

// Coordinator shards sweeps across registered workers. All methods are
// safe for concurrent use; construct with NewCoordinator.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	workers   map[string]*workerInfo
	sweeps    map[string]*sweep
	sweepIDs  []string // creation order (lease scan + retention order)
	workerSeq int
	sweepSeq  int
	// epoch is the coordinator generation: 1 in memory, replayed-max+1
	// after a durable restart. Stamped into the register handshake and
	// checked on lease/heartbeat/report traffic.
	epoch uint64
	// ownJournal is the writer OpenCoordinator created (Close closes it).
	ownJournal *journal.Writer

	// counters for /cluster/status.
	grants          uint64
	reassignments   uint64
	failedAttempts  uint64
	completedShards uint64
	sweepsDone      uint64
	sweepsFailed    uint64
	journalErrors   uint64
}

// NewCoordinator builds an empty coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		workers: map[string]*workerInfo{},
		sweeps:  map[string]*sweep{},
		epoch:   1,
	}
}

// Register adds (or refreshes) a worker and returns its id and the
// lease TTL it must heartbeat within. An empty id requests a new
// registration; a known id re-registers the same identity (worker
// restart), an unknown non-empty id is accepted as new so a coordinator
// restart does not strand workers.
func (c *Coordinator) Register(workerID, addr string) (string, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	if workerID == "" {
		c.workerSeq++
		workerID = fmt.Sprintf("w%d", c.workerSeq)
	}
	w, ok := c.workers[workerID]
	if !ok {
		w = &workerInfo{id: workerID, registered: now}
		c.workers[workerID] = w
	}
	w.addr = addr
	w.lastSeen = now
	return workerID, c.cfg.LeaseTTL
}

// Grant is one leased shard handed to a worker: the cell to run and
// the sweep spec to run it under.
type Grant struct {
	SweepID string `json:"sweep_id"`
	Key     string `json:"key"`
	Cell    Cell   `json:"cell"`
	Spec    Spec   `json:"spec"`
}

// Lease offers the next runnable shard to the worker, or nil when no
// work is available. Shards prefer their consistent-hash placement
// worker (warm simcache) and fall back to any worker after StealAfter.
func (c *Coordinator) Lease(workerID string) (*Grant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	w, ok := c.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = now
	alive := c.aliveLocked(now)
	for _, id := range c.sweepIDs {
		sw := c.sweeps[id]
		if sw.terminal() {
			continue
		}
		for _, sh := range sw.shards {
			if sh.state != shardPending || now.Before(sh.notBefore) {
				continue
			}
			preferred := Place(sh.cell.Workload, alive)
			if preferred != workerID && preferred != "" && now.Sub(sh.pendingSince) < c.cfg.StealAfter {
				continue
			}
			sh.state = shardLeased
			sh.worker = workerID
			sh.attempts++
			sh.leaseExpiry = now.Add(c.cfg.LeaseTTL)
			c.grants++
			// The grant record's job is the attempt count: a lease never
			// survives a restart, but the retry budget it consumed must.
			c.journalLocked(coordRecord{
				Op: copLease, SweepID: sw.id, Key: sh.cell.Key(),
				Worker: workerID, Attempts: sh.attempts,
			})
			return &Grant{SweepID: sw.id, Key: sh.cell.Key(), Cell: sh.cell, Spec: sw.spec}, nil
		}
	}
	return nil, nil
}

// ShardRef identifies one leased shard in heartbeat traffic.
type ShardRef struct {
	SweepID string `json:"sweep_id"`
	Key     string `json:"key"`
}

// Heartbeat extends the worker's leases and returns the refs it should
// drop: shards no longer leased to it (expired and re-assigned, or the
// sweep finished without it).
func (c *Coordinator) Heartbeat(workerID string, held []ShardRef) ([]ShardRef, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	w, ok := c.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = now
	var drop []ShardRef
	for _, ref := range held {
		sw, ok := c.sweeps[ref.SweepID]
		if !ok {
			drop = append(drop, ref)
			continue
		}
		sh, ok := sw.byKey[ref.Key]
		if !ok || sh.state != shardLeased || sh.worker != workerID {
			drop = append(drop, ref)
			continue
		}
		sh.leaseExpiry = now.Add(c.cfg.LeaseTTL)
	}
	return drop, nil
}

// Report records a shard outcome. Successful fragments are accepted
// from any worker while the shard is unfinished — results are
// bit-identical wherever they ran, so a late report from a lease-lost
// worker simply completes the shard early and the replacement's copy
// becomes an idempotent duplicate. Failures only count when reported
// by the current lease holder.
func (c *Coordinator) Report(workerID, sweepID, key string, fragment *core.Figure, reportErr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
	}
	sw, ok := c.sweeps[sweepID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSweep, sweepID)
	}
	sh, ok := sw.byKey[key]
	if !ok {
		return fmt.Errorf("%w: %q in sweep %s", ErrUnknownShard, key, sweepID)
	}
	if sh.state == shardDone || sw.failed {
		return nil // idempotent duplicate, or a sweep already abandoned
	}
	if reportErr == "" && fragment != nil {
		sh.fragment = fragment
		sh.state = shardDone
		sh.worker = ""
		sw.done++
		c.completedShards++
		c.journalShardDoneLocked(sw, sh)
		if sw.done == len(sw.shards) {
			sw.merged = mergeSweep(sw)
			c.sweepsDone++
			c.retainLocked()
		}
		return nil
	}
	// Failure path: only the lease holder's word counts.
	if sh.state != shardLeased || sh.worker != workerID {
		return nil
	}
	c.failedAttempts++
	sh.lastErr = reportErr
	sh.worker = ""
	c.journalLocked(coordRecord{
		Op: copShardFailed, SweepID: sw.id, Key: key,
		Attempts: sh.attempts, Error: reportErr,
	})
	if sh.attempts > c.cfg.Retry.Retries {
		sh.state = shardFailed
		sw.failed = true
		sw.err = fmt.Sprintf("shard %s failed after %d attempts: %s", key, sh.attempts, reportErr)
		c.sweepsFailed++
		c.journalLocked(coordRecord{Op: copSweepFailed, SweepID: sw.id, Key: key, Error: sw.err})
		c.retainLocked()
		return nil
	}
	sh.state = shardPending
	sh.pendingSince = now
	sh.notBefore = now.Add(c.cfg.Retry.Backoff(sh.attempts-1, sh.jitter))
	return nil
}

// CreateSweep plans a sweep from the spec and makes its shards
// leasable. It returns the sweep id and shard count.
func (c *Coordinator) CreateSweep(spec Spec) (string, int, error) {
	if err := spec.Validate(); err != nil {
		return "", 0, err
	}
	spec = spec.withDefaults()
	cells := spec.Cells()
	if len(cells) == 0 {
		return "", 0, fmt.Errorf("cluster: empty sweep plan")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.sweepSeq++
	sw := &sweep{
		id:      fmt.Sprintf("s%d", c.sweepSeq),
		spec:    spec,
		created: now,
		byKey:   map[string]*shard{},
	}
	for _, cell := range cells {
		sh := &shard{
			cell:         cell,
			state:        shardPending,
			pendingSince: now,
			jitter:       rng.New(CellSeed(spec.Seed, cell.Key())),
		}
		sw.shards = append(sw.shards, sh)
		sw.byKey[cell.Key()] = sh
	}
	c.sweeps[sw.id] = sw
	c.sweepIDs = append(c.sweepIDs, sw.id)
	// The spec is journaled resolved, so replay's Cells() enumeration
	// reproduces this exact shard plan (and so the merge order).
	c.journalLocked(coordRecord{Op: copSweepCreated, SweepID: sw.id, Spec: &spec})
	return sw.id, len(sw.shards), nil
}

// mergeSweep concatenates the per-cell fragments into whole figures in
// plan order — which is the sequential drivers' iteration order, so
// the merged figures are bit-identical to a single-node run.
func mergeSweep(sw *sweep) map[string]*core.Figure {
	merged := make(map[string]*core.Figure, len(sw.spec.Figures))
	for _, sh := range sw.shards {
		f := merged[sh.cell.Figure]
		if f == nil {
			f = &core.Figure{ID: sh.fragment.ID, Title: sh.fragment.Title}
			merged[sh.cell.Figure] = f
		}
		f.Rows = append(f.Rows, sh.fragment.Rows...)
	}
	return merged
}

// SweepResult is a sweep's observable state.
type SweepResult struct {
	ID    string `json:"id"`
	State string `json:"state"` // running, done, failed
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
	// Figures maps figure id to the merged figure, present once State
	// is "done".
	Figures map[string]*core.Figure `json:"-"`
}

// Sweep returns the sweep's current state (and merged figures once
// done).
func (c *Coordinator) Sweep(id string) (SweepResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepResult{}, fmt.Errorf("%w: %q", ErrUnknownSweep, id)
	}
	res := SweepResult{
		ID: sw.id, State: sw.state(), Done: sw.done, Total: len(sw.shards), Error: sw.err,
	}
	if sw.merged != nil {
		res.Figures = sw.merged
	}
	return res, nil
}

// expireLocked lapses overdue leases back to pending (consuming retry
// budget) and drops workers that went silent. c.mu must be held.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			delete(c.workers, id)
		}
	}
	for _, id := range c.sweepIDs {
		sw := c.sweeps[id]
		if sw.terminal() {
			continue
		}
		for _, sh := range sw.shards {
			if sh.state != shardLeased || now.Before(sh.leaseExpiry) {
				continue
			}
			c.reassignments++
			sh.reassigned++
			sh.worker = ""
			if sh.attempts > c.cfg.Retry.Retries {
				sh.state = shardFailed
				sw.failed = true
				sw.err = fmt.Sprintf("shard %s lost its lease on attempt %d (budget %d)",
					sh.cell.Key(), sh.attempts, c.cfg.Retry.Retries+1)
				c.sweepsFailed++
				c.journalLocked(coordRecord{
					Op: copSweepFailed, SweepID: sw.id, Key: sh.cell.Key(), Error: sw.err,
				})
				c.retainLocked()
				break
			}
			// Worker loss is not load: re-offer immediately, no backoff.
			sh.state = shardPending
			sh.pendingSince = now
			sh.notBefore = now
		}
	}
}

// aliveLocked returns the sorted ids of workers seen within WorkerTTL.
// c.mu must be held.
func (c *Coordinator) aliveLocked(now time.Time) []string {
	ids := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.WorkerTTL {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// retainLocked forgets the oldest terminal sweeps beyond RetainSweeps.
// c.mu must be held.
func (c *Coordinator) retainLocked() {
	terminal := 0
	for _, id := range c.sweepIDs {
		if c.sweeps[id].terminal() {
			terminal++
		}
	}
	if terminal <= c.cfg.RetainSweeps {
		return
	}
	kept := c.sweepIDs[:0]
	for _, id := range c.sweepIDs {
		if terminal > c.cfg.RetainSweeps && c.sweeps[id].terminal() {
			delete(c.sweeps, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	c.sweepIDs = kept
}

// LeaseStatus is one in-flight lease in a status snapshot.
type LeaseStatus struct {
	SweepID  string  `json:"sweep_id"`
	Key      string  `json:"key"`
	Worker   string  `json:"worker"`
	AgeMs    float64 `json:"age_ms"`
	ExpireMs float64 `json:"expires_in_ms"`
	Attempts int     `json:"attempts"`
}

// WorkerStatus is one registered worker in a status snapshot.
type WorkerStatus struct {
	ID         string  `json:"id"`
	Addr       string  `json:"addr,omitempty"`
	LastSeenMs float64 `json:"last_seen_ms"`
	Leases     int     `json:"leases"`
}

// SweepStatus is one sweep in a status snapshot.
type SweepStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Reassigned int    `json:"reassigned_shards"`
	Error      string `json:"error,omitempty"`
}

// Status is the merged-metrics view served on /cluster/status.
type Status struct {
	// Epoch is the coordinator generation workers must echo.
	Epoch   uint64         `json:"epoch"`
	Workers []WorkerStatus `json:"workers"`
	Leases  []LeaseStatus  `json:"leases"`
	Sweeps  []SweepStatus  `json:"sweeps"`
	// Counters since construction.
	Grants          uint64 `json:"grants"`
	Reassignments   uint64 `json:"reassignments"`
	FailedAttempts  uint64 `json:"failed_attempts"`
	CompletedShards uint64 `json:"completed_shards"`
	SweepsDone      uint64 `json:"sweeps_done"`
	SweepsFailed    uint64 `json:"sweeps_failed"`
	// JournalErrors counts durable records that failed to append; each
	// degraded durability but never a sweep.
	JournalErrors uint64 `json:"journal_errors,omitempty"`
}

// StatusSnapshot reports workers (with lease ages), in-flight shards
// and lifetime counters.
func (c *Coordinator) StatusSnapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	st := Status{
		Epoch:           c.epoch,
		Grants:          c.grants,
		Reassignments:   c.reassignments,
		FailedAttempts:  c.failedAttempts,
		CompletedShards: c.completedShards,
		SweepsDone:      c.sweepsDone,
		SweepsFailed:    c.sweepsFailed,
		JournalErrors:   c.journalErrors,
	}
	leasesByWorker := map[string]int{}
	for _, id := range c.sweepIDs {
		sw := c.sweeps[id]
		st.Sweeps = append(st.Sweeps, SweepStatus{
			ID: sw.id, State: sw.state(), Done: sw.done, Total: len(sw.shards),
			Reassigned: sweepReassigned(sw), Error: sw.err,
		})
		for _, sh := range sw.shards {
			if sh.state != shardLeased {
				continue
			}
			leasesByWorker[sh.worker]++
			st.Leases = append(st.Leases, LeaseStatus{
				SweepID: sw.id, Key: sh.cell.Key(), Worker: sh.worker,
				AgeMs:    float64(now.Sub(sh.leaseExpiry.Add(-c.cfg.LeaseTTL))) / float64(time.Millisecond),
				ExpireMs: float64(sh.leaseExpiry.Sub(now)) / float64(time.Millisecond),
				Attempts: sh.attempts,
			})
		}
	}
	for _, id := range c.aliveLocked(now) {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Addr: w.addr,
			LastSeenMs: float64(now.Sub(w.lastSeen)) / float64(time.Millisecond),
			Leases:     leasesByWorker[w.id],
		})
	}
	return st
}

func sweepReassigned(sw *sweep) int {
	n := 0
	for _, sh := range sw.shards {
		n += sh.reassigned
	}
	return n
}
