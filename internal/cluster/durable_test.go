package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/simcache"
)

// computeFragment runs a granted cell exactly as a worker's shard job
// does, returning the figure restricted to the cell's workload.
func computeFragment(t *testing.T, g *Grant) *core.Figure {
	t.Helper()
	driver, ok := core.Figures()[g.Cell.Figure]
	if !ok {
		t.Fatalf("no driver for figure %q", g.Cell.Figure)
	}
	opts := g.Spec.Options()
	opts.Workloads = []string{g.Cell.Workload}
	fig, err := driver(opts)
	if err != nil {
		t.Fatal(err)
	}
	return fig
}

// figureBytes canonicalizes a figure to its WriteJSON bytes.
func figureBytes(t *testing.T, f *core.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCoordinatorRecoverResumesSweep is the coordinator half of the
// kill-and-restart acceptance: a sweep interrupted mid-flight (one cell
// done, one leased) is recovered from the journal by a fresh
// coordinator that re-offers ONLY the unfinished cell, and the merged
// figure is byte-identical to the sequential driver.
func TestCoordinatorRecoverResumesSweep(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	ctx := context.Background()

	c1, st, err := OpenCoordinator(ctx, testConfig(clock), dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || c1.Epoch() != 1 {
		t.Fatalf("fresh open: %d records, epoch %d", st.Records, c1.Epoch())
	}
	w1, _ := c1.Register("", "")
	spec := SpecFromOptions([]string{"4"}, tinyOpts())
	id, shards, err := c1.CreateSweep(spec)
	if err != nil || shards != 2 {
		t.Fatalf("create: %v (%d shards)", err, shards)
	}
	clock.Advance(time.Second) // past StealAfter
	g1, err := c1.Lease(w1)
	if err != nil || g1 == nil {
		t.Fatalf("lease 1: %v %+v", err, g1)
	}
	if err := c1.Report(w1, id, g1.Key, computeFragment(t, g1), ""); err != nil {
		t.Fatal(err)
	}
	// The second cell is leased but never reported: the crash window.
	g2, err := c1.Lease(w1)
	if err != nil || g2 == nil {
		t.Fatalf("lease 2: %v %+v", err, g2)
	}
	// SIGKILL: the coordinator is dropped without Close. The journal's
	// write(2) calls completed, so the page cache has every record.

	c2, st2, err := OpenCoordinator(ctx, testConfig(clock), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// epoch(1) + sweep_created + lease g1 + shard_done + lease g2.
	if st2.Records != 5 || st2.Quarantined != 0 {
		t.Fatalf("replay stats: %+v", st2)
	}
	if c2.Epoch() != 2 {
		t.Fatalf("epoch after restart = %d, want 2", c2.Epoch())
	}
	res, err := c2.Sweep(id)
	if err != nil || res.State != "running" || res.Done != 1 || res.Total != 2 {
		t.Fatalf("recovered sweep: %+v, %v", res, err)
	}

	// Only the unfinished cell is re-offered — and with its pre-crash
	// attempt count intact (the grant record's job).
	w2, _ := c2.Register("", "")
	clock.Advance(time.Second)
	rg, err := c2.Lease(w2)
	if err != nil || rg == nil || rg.Key != g2.Key {
		t.Fatalf("recovered lease: %v %+v (want key %s)", err, rg, g2.Key)
	}
	if extra, err := c2.Lease(w2); err != nil || extra != nil {
		t.Fatalf("done cell re-offered after recovery: %v %+v", err, extra)
	}
	if st := c2.StatusSnapshot(); len(st.Leases) != 1 || st.Leases[0].Attempts != 2 {
		t.Fatalf("recovered lease attempts: %+v", st.Leases)
	}
	if err := c2.Report(w2, id, rg.Key, computeFragment(t, rg), ""); err != nil {
		t.Fatal(err)
	}

	res, err = c2.Sweep(id)
	if err != nil || res.State != "done" {
		t.Fatalf("sweep after recovery: %+v, %v", res, err)
	}
	want, err := core.Figure4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(figureBytes(t, res.Figures["4"]), figureBytes(t, want)) {
		t.Fatal("recovered merge differs from the sequential driver")
	}
}

// TestCoordinatorSurvivesTornTailDoubleRestart is the regression for
// the torn-tail quarantine bug: a crash mid-append leaves a partial
// record at the WAL's tail, and the sweep must survive not just the
// first restart (where the torn segment is still the log's last) but a
// SECOND one, after recovery has stacked new segments above it. Before
// the fix, the second replay saw the torn segment as non-final,
// quarantined it whole, and silently dropped the sweep.
func TestCoordinatorSurvivesTornTailDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	ctx := context.Background()

	c1, _, err := OpenCoordinator(ctx, testConfig(clock), dir)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := c1.Register("", "")
	spec := SpecFromOptions([]string{"4"}, tinyOpts())
	id, shards, err := c1.CreateSweep(spec)
	if err != nil || shards != 2 {
		t.Fatalf("create: %v (%d shards)", err, shards)
	}
	clock.Advance(time.Second)
	g1, err := c1.Lease(w1)
	if err != nil || g1 == nil {
		t.Fatalf("lease: %v %+v", err, g1)
	}
	if err := c1.Report(w1, id, g1.Key, computeFragment(t, g1), ""); err != nil {
		t.Fatal(err)
	}
	// SIGKILL mid-append: a partial record header lands at the tail of
	// the last segment.
	segs, err := os.ReadDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("journal dir: %v (%d entries)", err, len(segs))
	}
	last := filepath.Join(dir, segs[len(segs)-1].Name())
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First restart: the torn segment is still the final one.
	c2, st2, err := OpenCoordinator(ctx, testConfig(clock), dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Quarantined != 0 || !st2.TornTail {
		t.Fatalf("first restart stats: %+v", st2)
	}
	if res, err := c2.Sweep(id); err != nil || res.Done != 1 || res.Total != 2 {
		t.Fatalf("sweep after first restart: %+v, %v", res, err)
	}
	// Second SIGKILL (no Close), second restart: recovery appended new
	// segments above the previously-torn one.
	c3, st3, err := OpenCoordinator(ctx, testConfig(clock), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if st3.Quarantined != 0 {
		t.Fatalf("second restart quarantined valid history: %+v", st3)
	}
	res, err := c3.Sweep(id)
	if err != nil || res.Done != 1 || res.Total != 2 {
		t.Fatalf("sweep lost across second restart: %+v, %v", res, err)
	}
	if c3.Epoch() != 3 {
		t.Fatalf("epoch after two restarts = %d, want 3", c3.Epoch())
	}

	// Finish on the third generation; the merge must still match the
	// sequential driver bit-for-bit.
	w3, _ := c3.Register("", "")
	clock.Advance(time.Second)
	g3, err := c3.Lease(w3)
	if err != nil || g3 == nil {
		t.Fatalf("lease on third generation: %v %+v", err, g3)
	}
	if err := c3.Report(w3, id, g3.Key, computeFragment(t, g3), ""); err != nil {
		t.Fatal(err)
	}
	res, err = c3.Sweep(id)
	if err != nil || res.State != "done" {
		t.Fatalf("finish: %+v, %v", res, err)
	}
	want, err := core.Figure4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(figureBytes(t, res.Figures["4"]), figureBytes(t, want)) {
		t.Fatal("merge after two restarts differs from the sequential driver")
	}

	// Each recovery re-journals a snapshot and compacts its
	// predecessors: the WAL is bounded by live state, not restart count.
	var live int
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d live segments after two recoveries, want 1 (compaction)", live)
	}
}

// copyDir clones a journal directory so two replays can fold the same
// WAL independently.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverSameWALSameState replays one WAL into two coordinators
// and drives both to completion identically: same sweep state, same
// pending cell, same epoch, byte-identical final merge.
func TestRecoverSameWALSameState(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	ctx := context.Background()

	c1, _, err := OpenCoordinator(ctx, testConfig(clock), dir)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := c1.Register("", "")
	spec := SpecFromOptions([]string{"4"}, tinyOpts())
	id, _, err := c1.CreateSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	g1, err := c1.Lease(w1)
	if err != nil || g1 == nil {
		t.Fatal("lease 1 refused")
	}
	if err := c1.Report(w1, id, g1.Key, computeFragment(t, g1), ""); err != nil {
		t.Fatal(err)
	}
	// Crash here; clone the WAL before any recovery appends to it.
	dir2 := t.TempDir()
	copyDir(t, dir, dir2)

	finish := func(walDir string) (uint64, []byte) {
		c, _, err := OpenCoordinator(ctx, testConfig(clock), walDir)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := c.Sweep(id)
		if err != nil || res.Done != 1 || res.Total != 2 {
			t.Fatalf("recovered sweep in %s: %+v, %v", walDir, res, err)
		}
		w, _ := c.Register("", "")
		clock.Advance(time.Second)
		g, err := c.Lease(w)
		if err != nil || g == nil {
			t.Fatalf("recovered lease in %s: %v", walDir, err)
		}
		if err := c.Report(w, id, g.Key, computeFragment(t, g), ""); err != nil {
			t.Fatal(err)
		}
		res, err = c.Sweep(id)
		if err != nil || res.State != "done" {
			t.Fatalf("finish in %s: %+v, %v", walDir, res, err)
		}
		return c.Epoch(), figureBytes(t, res.Figures["4"])
	}
	epochA, bytesA := finish(dir)
	epochB, bytesB := finish(dir2)
	if epochA != epochB {
		t.Fatalf("same WAL, different epochs: %d vs %d", epochA, epochB)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatal("same WAL, different merged bytes")
	}
}

// TestLeaseExpiryHeartbeatRaceDoesNotDoubleLease is the satellite race
// test: a heartbeat that lands on the exact tick the lease TTL expires
// must NOT revive the lease. Expiry is processed first, the heartbeat
// is answered with a drop, and the replacement worker becomes the sole
// holder — never two live leases for one shard.
func TestLeaseExpiryHeartbeatRaceDoesNotDoubleLease(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig(clock)
	cfg.Retry.Retries = 5 // keep the budget out of the way
	c := NewCoordinator(cfg)
	w1, ttl := c.Register("", "")
	w2, _ := c.Register("", "")
	id, _, err := c.CreateSweep(oneCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second) // past StealAfter
	g, err := c.Lease(w1)
	if err != nil || g == nil {
		t.Fatalf("lease: %v %+v", err, g)
	}

	// Advance to exactly the expiry tick: now == leaseExpiry, and a
	// lease is live only while now < leaseExpiry.
	clock.Advance(ttl)
	drop, err := c.Heartbeat(w1, []ShardRef{{SweepID: id, Key: g.Key}})
	if err != nil {
		t.Fatal(err)
	}
	if len(drop) != 1 {
		t.Fatalf("same-tick heartbeat revived the expired lease (drop=%v)", drop)
	}

	// The replacement takes the shard in the same tick...
	g2, err := c.Lease(w2)
	if err != nil || g2 == nil || g2.Key != g.Key {
		t.Fatalf("replacement lease: %v %+v", err, g2)
	}
	// ...and a straggler heartbeat from the old holder cannot extend or
	// steal it back.
	drop, err = c.Heartbeat(w1, []ShardRef{{SweepID: id, Key: g.Key}})
	if err != nil || len(drop) != 1 {
		t.Fatalf("straggler heartbeat: %v drop=%v", err, drop)
	}
	st := c.StatusSnapshot()
	if len(st.Leases) != 1 || st.Leases[0].Worker != w2 {
		t.Fatalf("double lease: %+v", st.Leases)
	}
	if st.Reassignments != 1 {
		t.Fatalf("reassignments = %d, want 1", st.Reassignments)
	}
	// w1's heartbeats must not have extended w2's clock either: w2's
	// lease still expires on its own schedule.
	clock.Advance(ttl)
	c.StatusSnapshot() // processes the expiry (pendingSince resets here)
	clock.Advance(cfg.StealAfter + time.Millisecond)
	g3, err := c.Lease(w1)
	if err != nil || g3 == nil {
		t.Fatalf("lease after w2 expiry: %v %+v", err, g3)
	}
	if st := c.StatusSnapshot(); len(st.Leases) != 1 || st.Leases[0].Worker != w1 {
		t.Fatalf("post-expiry leases: %+v", st.Leases)
	}
}

// TestEpochMismatchOverWire drives the handshake at the protocol
// level: stale epochs are refused with the epoch_mismatch code (mapped
// back to ErrEpochMismatch client-side), epoch 0 stays accepted for
// pre-handshake clients.
func TestEpochMismatchOverWire(t *testing.T) {
	c := NewCoordinator(testConfig(newFakeClock()))
	mux := http.NewServeMux()
	for pattern, h := range c.Routes() {
		mux.HandleFunc(pattern, h)
	}
	ts := httptest.NewServer(mux)
	defer ts.Close()
	ctx := context.Background()

	var reg registerResponse
	if err := postJSON(ctx, ts.Client(), ts.URL+"/cluster/register", registerRequest{}, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Epoch != 1 {
		t.Fatalf("register epoch = %d, want 1", reg.Epoch)
	}
	var lr leaseResponse
	err := postJSON(ctx, ts.Client(), ts.URL+"/cluster/lease",
		leaseRequest{WorkerID: reg.WorkerID, Epoch: 7}, &lr)
	if !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("stale lease: %v, want ErrEpochMismatch", err)
	}
	err = postJSON(ctx, ts.Client(), ts.URL+"/cluster/heartbeat",
		heartbeatRequest{WorkerID: reg.WorkerID, Epoch: 7}, &heartbeatResponse{})
	if !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("stale heartbeat: %v, want ErrEpochMismatch", err)
	}
	err = postJSON(ctx, ts.Client(), ts.URL+"/cluster/report",
		reportRequest{WorkerID: reg.WorkerID, Epoch: 7, SweepID: "s1", Key: "k", Error: "x"}, &struct{}{})
	if !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("stale report: %v, want ErrEpochMismatch", err)
	}
	// Epoch 0 = legacy client: accepted.
	if err := postJSON(ctx, ts.Client(), ts.URL+"/cluster/lease",
		leaseRequest{WorkerID: reg.WorkerID}, &lr); err != nil || !lr.None {
		t.Fatalf("legacy lease: %v %+v", err, lr)
	}
}

// TestWorkerRejoinsAfterCoordinatorRestart is the end-to-end epoch
// drill: a live worker is mid-sweep when the coordinator is killed and
// a recovered one (same journal, next epoch) appears at the same URL.
// The worker must detect the new epoch, re-register, hand over its
// fragment, and the sweep must finish byte-identical to the sequential
// driver.
func TestWorkerRejoinsAfterCoordinatorRestart(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	dir := t.TempDir()
	ctx := context.Background()

	newStack := func() (*Coordinator, http.Handler) {
		coord, _, err := OpenCoordinator(ctx, Config{StealAfter: 50 * time.Millisecond}, dir)
		if err != nil {
			t.Fatal(err)
		}
		q := jobs.New(jobs.Config{Workers: 1})
		s, err := server.New(server.Config{Queue: q, Cache: simcache.New(0), Routes: coord.Routes()})
		if err != nil {
			t.Fatal(err)
		}
		return coord, s
	}

	// The coordinator lives behind a swappable handler so "restart"
	// keeps the URL stable, as a respawned cesimd would.
	var handler atomic.Value
	coordA, stackA := newStack()
	handler.Store(stackA)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()
	wk := startWorker(t, ts.URL)
	defer wk.stop()

	// Each shard attempt stalls 150ms so the restart lands mid-sweep.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteClusterShard: {Kind: faultinject.KindDelay, Probability: 1,
			DelayNanos: int64(150 * time.Millisecond), Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}

	spec := SpecFromOptions([]string{"4"}, tinyOpts())
	sweepID, shards, err := coordA.CreateSweep(spec)
	if err != nil || shards != 2 {
		t.Fatalf("create sweep: %v (%d shards)", err, shards)
	}

	// Wait for the first cell to complete, then "kill" coordinator A
	// and bring up B from the same journal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if res, err := coordA.Sweep(sweepID); err == nil && res.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first shard never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	coordB, stackB := newStack()
	defer coordB.Close()
	handler.Store(stackB)
	if coordB.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", coordB.Epoch())
	}

	// The worker re-registers into epoch 2 on its own and finishes the
	// remaining cell against coordinator B.
	figures, err := (&Client{Base: ts.URL, Poll: 10 * time.Millisecond}).Wait(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Figure4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(figureBytes(t, figures["4"]), figureBytes(t, want)) {
		t.Fatal("merge after coordinator restart diverged from sequential run")
	}
	if st := coordB.StatusSnapshot(); st.Epoch != 2 {
		t.Fatalf("status epoch: %+v", st.Epoch)
	}
}

// TestCoordinatorJournalFaultDegrades arms the journal.append site
// under a live sweep: every durable record fails, the failure is
// counted, and the sweep still completes — durability degrades, the
// cluster does not.
func TestCoordinatorJournalFaultDegrades(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	clock := newFakeClock()
	ctx := context.Background()
	c, _, err := OpenCoordinator(ctx, testConfig(clock), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteJournalAppend: {Kind: faultinject.KindError, Probability: 1, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	w1, _ := c.Register("", "")
	id, _, err := c.CreateSweep(oneCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	g, err := c.Lease(w1)
	if err != nil || g == nil {
		t.Fatalf("lease under journal faults: %v %+v", err, g)
	}
	if err := c.Report(w1, id, g.Key, fragment(g.Cell), ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Sweep(id)
	if err != nil || res.State != "done" {
		t.Fatalf("sweep under journal faults: %+v, %v", res, err)
	}
	st := c.StatusSnapshot()
	if st.JournalErrors < 3 { // created + lease + shard_done at minimum
		t.Fatalf("journal errors = %d, want >= 3", st.JournalErrors)
	}
}
