package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/simcache"
)

// These tests run coordinator and workers in one process, so none of
// them may use t.Parallel: faultinject plans are global, and goroutine
// accounting needs a quiet process.

// tinyOpts mirrors the campaign package's test options, with a second
// workload so sharding and merge order are actually exercised.
func tinyOpts() core.Options {
	return core.Options{Nodes: 16, Iterations: 2, Reps: 1, Seed: 1,
		Workloads: []string{"minife", "hpcg"}}
}

// startCoordinator serves a coordinator through the full server stack
// (middleware, metrics, request ids), as cesimd -role coordinator does.
func startCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord := NewCoordinator(cfg)
	q := jobs.New(jobs.Config{Workers: 1})
	s, err := server.New(server.Config{Queue: q, Cache: simcache.New(0), Routes: coord.Routes()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	})
	return coord, ts
}

// workerHandle is one in-process worker and its teardown.
type workerHandle struct {
	worker *Worker
	queue  *jobs.Queue
	cancel context.CancelFunc
	done   chan struct{}
}

// startWorker launches one worker against the coordinator URL and
// registers cleanup that stops it and drains its queue.
func startWorker(t *testing.T, url string) *workerHandle {
	t.Helper()
	q := jobs.New(jobs.Config{Workers: 2})
	w, err := NewWorker(WorkerConfig{
		Coordinator:  url,
		Queue:        q,
		Cache:        simcache.New(0),
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &workerHandle{worker: w, queue: q, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(h.stop)
	return h
}

// stop kills the worker and drains its local queue; idempotent.
func (h *workerHandle) stop() {
	h.cancel()
	<-h.done
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = h.queue.Drain(ctx)
}

// compareDirs asserts two campaign output directories are byte-equal,
// except MANIFEST.txt whose wall times legitimately differ.
func compareDirs(t *testing.T, wantDir, gotDir string) {
	t.Helper()
	read := func(dir string) map[string][]byte {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, e := range entries {
			if e.Name() == "MANIFEST.txt" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		return files
	}
	want, got := read(wantDir), read(gotDir)
	if len(want) != len(got) {
		t.Fatalf("file sets differ: sequential %d files, distributed %d", len(want), len(got))
	}
	for name, wdata := range want {
		gdata, ok := got[name]
		if !ok {
			t.Fatalf("distributed run missing %s", name)
		}
		if !bytes.Equal(wdata, gdata) {
			t.Errorf("%s differs between sequential and distributed runs", name)
		}
	}
}

// TestDistributedCampaignBitIdentical is the tentpole's acceptance
// test: a campaign swept across two in-process workers must produce an
// output directory byte-identical to the sequential run — merged rows,
// CSV, aligned text, JSON, everything but manifest wall times.
func TestDistributedCampaignBitIdentical(t *testing.T) {
	only := []string{"3", "4"} // fig3: per-index seed derivation; fig4: multi-system rows
	seqDir := t.TempDir()
	if _, err := campaign.Run(campaign.Config{OutDir: seqDir, Options: tinyOpts(), Only: only}); err != nil {
		t.Fatal(err)
	}

	coord, ts := startCoordinator(t, Config{StealAfter: 100 * time.Millisecond})
	startWorker(t, ts.URL)
	startWorker(t, ts.URL)

	distDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, err := campaign.RunContext(ctx, campaign.Config{
		OutDir: distDir, Options: tinyOpts(), Only: only,
		Runner: &Client{Base: ts.URL, Poll: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	compareDirs(t, seqDir, distDir)

	// Both sweeps (one per figure) ran to completion: 2 cells each.
	st := coord.StatusSnapshot()
	if st.CompletedShards != 4 || st.SweepsDone != 2 {
		t.Fatalf("status: %d shards, %d sweeps done, want 4 and 2", st.CompletedShards, st.SweepsDone)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers registered: %d, want 2", len(st.Workers))
	}
}

// TestDistributedFaultMixBitIdentical extends the bit-identity
// acceptance to the fault-mix figures: fig8 rebuilds a faultmodel
// mixture process per row and fig9 recomputes its storm-derived
// per-event costs inside every cell, so a distributed run only matches
// the sequential one if both are pure functions of (options, seed).
func TestDistributedFaultMixBitIdentical(t *testing.T) {
	only := []string{"8", "9"}
	seqDir := t.TempDir()
	if _, err := campaign.Run(campaign.Config{OutDir: seqDir, Options: tinyOpts(), Only: only}); err != nil {
		t.Fatal(err)
	}

	_, ts := startCoordinator(t, Config{StealAfter: 100 * time.Millisecond})
	startWorker(t, ts.URL)
	startWorker(t, ts.URL)

	distDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, err := campaign.RunContext(ctx, campaign.Config{
		OutDir: distDir, Options: tinyOpts(), Only: only,
		Runner: &Client{Base: ts.URL, Poll: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	compareDirs(t, seqDir, distDir)
}

// TestDistributedSweepUnderShardFaults arms the cluster.shard site so
// shard attempts panic inside the worker's jobs queue. Local retries
// (and, when those exhaust, coordinator re-offers) must heal every
// attempt and the merged output must stay bit-identical.
func TestDistributedSweepUnderShardFaults(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	only := []string{"4"}
	seqDir := t.TempDir()
	if _, err := campaign.Run(campaign.Config{OutDir: seqDir, Options: tinyOpts(), Only: only}); err != nil {
		t.Fatal(err)
	}

	_, ts := startCoordinator(t, Config{StealAfter: 50 * time.Millisecond})
	startWorker(t, ts.URL)
	startWorker(t, ts.URL)

	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteClusterShard: {Kind: faultinject.KindPanic, Probability: 0.5, Seed: 7},
	}); err != nil {
		t.Fatal(err)
	}
	distDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, err := campaign.RunContext(ctx, campaign.Config{
		OutDir: distDir, Options: tinyOpts(), Only: only,
		Runner: &Client{Base: ts.URL, Poll: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	compareDirs(t, seqDir, distDir)

	snap := faultinject.Snapshot()
	fired := false
	for _, site := range snap.Sites {
		if site.Site == faultinject.SiteClusterShard && site.Fired > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("cluster.shard site never fired; the drill proved nothing")
	}
}

// TestWorkerKillMidLeaseReassigned kills a worker mid-lease — a
// faultinject delay pins its shard in flight, then its context dies,
// heartbeats stop and the lease lapses — and checks the coordinator
// re-assigns the shard to the surviving worker with the final figure
// still bit-identical to the sequential driver.
func TestWorkerKillMidLeaseReassigned(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	opts := tinyOpts()
	want, err := core.Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}

	coord, ts := startCoordinator(t, Config{
		LeaseTTL:   300 * time.Millisecond,
		StealAfter: 50 * time.Millisecond,
	})

	// The first shard attempt anywhere stalls for 1s — far past the
	// lease TTL once heartbeats stop.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteClusterShard: {Kind: faultinject.KindDelay, Probability: 1, Count: 1,
			DelayNanos: int64(time.Second), Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}

	victim := startWorker(t, ts.URL)
	sweepID, shards, err := coord.CreateSweep(SpecFromOptions([]string{"4"}, opts))
	if err != nil || shards != 2 {
		t.Fatalf("create sweep: %v (%d shards)", err, shards)
	}

	// Wait until the victim holds a lease (its shard is pinned in the
	// injected delay), then kill it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := coord.StatusSnapshot(); len(st.Leases) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never took a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.stop()

	survivor := startWorker(t, ts.URL)
	defer survivor.stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	figures, err := (&Client{Base: ts.URL, Poll: 10 * time.Millisecond}).Wait(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}

	var wantBuf, gotBuf bytes.Buffer
	if err := want.WriteJSON(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := figures["4"].WriteJSON(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("merged figure diverged from sequential run after worker loss")
	}
	if st := coord.StatusSnapshot(); st.Reassignments < 1 {
		t.Fatalf("reassignments = %d, want >= 1 after worker kill", st.Reassignments)
	}
}

// TestCancelMidDistributedSweep cancels a campaign while its sweep is
// in flight on the cluster: the run must return context.Canceled, the
// unfinished figure must leave no partial artifacts, and stopping the
// fleet must leak no goroutines.
func TestCancelMidDistributedSweep(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	base := runtime.NumGoroutine()

	// Built inline (not via startCoordinator) so the whole fleet can be
	// torn down before the goroutine accounting at the end.
	coordQ := jobs.New(jobs.Config{Workers: 1})
	s, err := server.New(server.Config{Queue: coordQ, Cache: simcache.New(0),
		Routes: NewCoordinator(Config{StealAfter: 50 * time.Millisecond}).Routes()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	w := startWorker(t, ts.URL)

	// Every shard stalls 200ms, giving the cancel a wide mid-sweep
	// window.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteClusterShard: {Kind: faultinject.KindDelay, Probability: 1,
			DelayNanos: int64(200 * time.Millisecond), Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	_, runErr := campaign.RunContext(ctx, campaign.Config{
		OutDir: dir, Options: tinyOpts(), Only: []string{"4"},
		Runner: &Client{Base: ts.URL, Poll: 10 * time.Millisecond},
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
	// Artifacts finished before the cancel stay; the figure mid-sweep
	// left nothing partial.
	if _, err := os.Stat(filepath.Join(dir, "table2.txt")); err != nil {
		t.Fatalf("pre-cancel artifact missing: %v", err)
	}
	for _, leftover := range []string{"fig4.txt", "fig4.csv", "fig4.json"} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); err == nil {
			t.Fatalf("canceled sweep left partial artifact %s", leftover)
		}
	}

	// Tear the fleet down and verify the goroutine count returns to
	// baseline: nothing in worker, client or coordinator leaked.
	faultinject.Disarm()
	w.stop()
	ts.Close()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer drainCancel()
	_ = coordQ.Drain(drainCtx)
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRequestIDsFlowThroughCluster checks the satellite wiring end to
// end: a request id attached to the client context reaches the
// coordinator's middleware and comes back on protocol responses.
func TestRequestIDsFlowThroughCluster(t *testing.T) {
	_, ts := startCoordinator(t, Config{})
	ctx := server.WithRequestID(context.Background(), "sweep-rid-9")
	var created sweepCreated
	err := postJSON(ctx, ts.Client(), ts.URL+"/cluster/sweep",
		Spec{Figures: []string{"12"}}, &created)
	if err == nil {
		t.Fatal("invalid sweep accepted")
	}
	// The coordinator rejected it, and the error carries the id the
	// middleware echoed, proving propagation without extra plumbing.
	if !errorContains(err, "sweep-rid-9") {
		t.Fatalf("error lost the request id: %v", err)
	}
}

func errorContains(err error, sub string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(sub))
}

var _ campaign.FigureRunner = (*Client)(nil)
