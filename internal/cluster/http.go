package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// Wire types of the coordinator/worker protocol. Figures travel as the
// exact bytes core.Figure.WriteJSON produces: Go's float64 JSON
// encoding round-trips bit-exactly, so transport cannot perturb the
// merged surface.

type registerRequest struct {
	WorkerID string `json:"worker_id,omitempty"`
	Addr     string `json:"addr,omitempty"`
}

type registerResponse struct {
	WorkerID     string `json:"worker_id"`
	LeaseTTLNano int64  `json:"lease_ttl_ns"`
	// Epoch is the coordinator generation the worker must echo on every
	// subsequent call; a restarted coordinator answers later traffic
	// with epoch_mismatch until the worker re-registers.
	Epoch uint64 `json:"epoch,omitempty"`
}

type leaseRequest struct {
	WorkerID string `json:"worker_id"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// leaseResponse carries the grant, or None when the worker should poll
// again.
type leaseResponse struct {
	None  bool   `json:"none,omitempty"`
	Grant *Grant `json:"grant,omitempty"`
}

type heartbeatRequest struct {
	WorkerID string     `json:"worker_id"`
	Epoch    uint64     `json:"epoch,omitempty"`
	Held     []ShardRef `json:"held,omitempty"`
}

type heartbeatResponse struct {
	Drop []ShardRef `json:"drop,omitempty"`
}

type reportRequest struct {
	WorkerID string `json:"worker_id"`
	Epoch    uint64 `json:"epoch,omitempty"`
	SweepID  string `json:"sweep_id"`
	Key      string `json:"key"`
	// Figure holds the WriteJSON bytes of the cell fragment on success.
	Figure json.RawMessage `json:"figure,omitempty"`
	// Error is the failure message; empty means success.
	Error string `json:"error,omitempty"`
}

type sweepCreated struct {
	ID     string `json:"id"`
	Shards int    `json:"shards"`
}

// sweepView is the polled sweep state; Figures appears once done.
type sweepView struct {
	ID      string                     `json:"id"`
	State   string                     `json:"state"`
	Done    int                        `json:"done"`
	Total   int                        `json:"total"`
	Error   string                     `json:"error,omitempty"`
	Figures map[string]json.RawMessage `json:"figures,omitempty"`
}

// apiError is the protocol error body. Code carries the sentinel as a
// machine-readable token so the client side can reconstruct
// errors.Is-able errors without matching message text; RequestID
// echoes the id the server middleware stamped on the response.
type apiError struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// Wire codes for the protocol sentinels; codeSentinels is the client's
// inverse map.
const (
	codeUnknownWorker = "unknown_worker"
	codeUnknownSweep  = "unknown_sweep"
	codeUnknownShard  = "unknown_shard"
	codeEpochMismatch = "epoch_mismatch"
)

var codeSentinels = map[string]error{
	codeUnknownWorker: ErrUnknownWorker,
	codeUnknownSweep:  ErrUnknownSweep,
	codeUnknownShard:  ErrUnknownShard,
	codeEpochMismatch: ErrEpochMismatch,
}

// errCode maps an error chain onto its wire code ("" when none).
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		return codeUnknownWorker
	case errors.Is(err, ErrUnknownSweep):
		return codeUnknownSweep
	case errors.Is(err, ErrUnknownShard):
		return codeUnknownShard
	case errors.Is(err, ErrEpochMismatch):
		return codeEpochMismatch
	}
	return ""
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{
		Error:     err.Error(),
		Code:      errCode(err),
		RequestID: w.Header().Get(server.RequestIDHeader),
	})
}

// errStatus maps protocol sentinels to HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownSweep), errors.Is(err, ErrUnknownShard):
		return http.StatusNotFound
	case errors.Is(err, ErrEpochMismatch):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// Routes exposes the coordinator API as handlers keyed by Go 1.22
// ServeMux patterns, ready for server.Config.Routes — so cluster
// traffic flows through the same middleware (metrics accounting, panic
// recovery, request-id stamping, handler fault site) as the simulate
// and sweep endpoints.
func (c *Coordinator) Routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /cluster/register":  c.handleRegister,
		"POST /cluster/lease":     c.handleLease,
		"POST /cluster/heartbeat": c.handleHeartbeat,
		"POST /cluster/report":    c.handleReport,
		"POST /cluster/sweep":     c.handleCreateSweep,
		"GET /cluster/sweep/{id}": c.handleGetSweep,
		"GET /cluster/status":     c.handleStatus,
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decode(w, r, &req) {
		return
	}
	id, ttl := c.Register(req.WorkerID, req.Addr)
	writeJSON(w, http.StatusOK, registerResponse{WorkerID: id, LeaseTTLNano: int64(ttl), Epoch: c.Epoch()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.CheckEpoch(req.Epoch); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	g, err := c.Lease(req.WorkerID)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	if g == nil {
		writeJSON(w, http.StatusOK, leaseResponse{None: true})
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{Grant: g})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.CheckEpoch(req.Epoch); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	drop, err := c.Heartbeat(req.WorkerID, req.Held)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{Drop: drop})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.CheckEpoch(req.Epoch); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	var frag *core.Figure
	if req.Error == "" {
		f, err := core.ReadFigureJSON(bytes.NewReader(req.Figure))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		frag = f
	}
	if err := c.Report(req.WorkerID, req.SweepID, req.Key, frag, req.Error); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if !decode(w, r, &spec) {
		return
	}
	id, shards, err := c.CreateSweep(spec)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, sweepCreated{ID: id, Shards: shards})
}

func (c *Coordinator) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	res, err := c.Sweep(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	view := sweepView{ID: res.ID, State: res.State, Done: res.Done, Total: res.Total, Error: res.Error}
	if res.Figures != nil {
		view.Figures = make(map[string]json.RawMessage, len(res.Figures))
		for id, f := range res.Figures {
			var buf bytes.Buffer
			if err := f.WriteJSON(&buf); err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			view.Figures[id] = json.RawMessage(buf.Bytes())
		}
	}
	writeJSON(w, http.StatusOK, view)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatusSnapshot())
}

// leaseTTL is shared by worker heartbeat pacing; kept here so both
// sides agree on the wire unit (nanoseconds).
func leaseTTLFrom(resp registerResponse) time.Duration {
	return time.Duration(resp.LeaseTTLNano)
}
