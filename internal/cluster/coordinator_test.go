package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
)

// fakeClock drives coordinator time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testConfig(clock *fakeClock) Config {
	return Config{
		LeaseTTL:   100 * time.Millisecond,
		StealAfter: 10 * time.Millisecond,
		WorkerTTL:  time.Hour,
		Retry:      jobs.Spec{Retries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Now:        clock.Now,
	}
}

// oneCellSpec is the smallest possible plan: one figure, one workload.
func oneCellSpec() Spec {
	return Spec{Figures: []string{"4"}, Workloads: []string{"minife"}, Seed: 1}
}

// fragment fabricates a cell result for protocol-level tests.
func fragment(cell Cell) *core.Figure {
	return &core.Figure{
		ID:    "fig" + cell.Figure,
		Title: "test",
		Rows:  []core.Row{{Workload: cell.Workload, Mode: "sw", MeanPct: 1.5}},
	}
}

func TestLeaseGrantReportMerge(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	w1, ttl := c.Register("", "host1:0")
	if w1 == "" || ttl != 100*time.Millisecond {
		t.Fatalf("register: id %q ttl %v", w1, ttl)
	}
	id, shards, err := c.CreateSweep(oneCellSpec())
	if err != nil || shards != 1 {
		t.Fatalf("create: %v (%d shards)", err, shards)
	}
	g, err := c.Lease(w1)
	if err != nil || g == nil {
		t.Fatalf("lease: %v, %+v", err, g)
	}
	if g.SweepID != id || g.Cell.Figure != "4" || g.Cell.Workload != "minife" {
		t.Fatalf("grant %+v", g)
	}
	// No second shard to hand out.
	if g2, err := c.Lease(w1); err != nil || g2 != nil {
		t.Fatalf("second lease: %v, %+v", err, g2)
	}
	if err := c.Report(w1, id, g.Key, fragment(g.Cell), ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Sweep(id)
	if err != nil || res.State != "done" {
		t.Fatalf("sweep after report: %+v, %v", res, err)
	}
	f := res.Figures["4"]
	if f == nil || len(f.Rows) != 1 || f.Rows[0].Workload != "minife" {
		t.Fatalf("merged figure %+v", f)
	}
}

func TestLeaseExpiryReassigns(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	w1, _ := c.Register("", "")
	w2, _ := c.Register("", "")
	id, _, err := c.CreateSweep(oneCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Whoever is preferred leases first; the other worker is refused
	// while the lease is live.
	clock.Advance(time.Second) // past StealAfter, so either worker can take it
	g1, err := c.Lease(w1)
	if err != nil || g1 == nil {
		t.Fatalf("w1 lease: %v %+v", err, g1)
	}
	if g, err := c.Lease(w2); err != nil || g != nil {
		t.Fatalf("leased shard handed out twice: %v %+v", err, g)
	}
	// The lease lapses; the shard is re-offered immediately (no
	// backoff: worker loss is not load).
	clock.Advance(150 * time.Millisecond)
	g2, err := c.Lease(w2)
	if err != nil || g2 == nil || g2.Key != g1.Key {
		t.Fatalf("reassigned lease: %v %+v", err, g2)
	}
	st := c.StatusSnapshot()
	if st.Reassignments != 1 {
		t.Fatalf("reassignments = %d, want 1", st.Reassignments)
	}
	// The original worker's late success still completes the shard.
	if err := c.Report(w1, id, g1.Key, fragment(g1.Cell), ""); err != nil {
		t.Fatal(err)
	}
	if res, _ := c.Sweep(id); res.State != "done" {
		t.Fatalf("late report did not complete sweep: %+v", res)
	}
	// w2's duplicate is an idempotent no-op.
	if err := c.Report(w2, id, g2.Key, fragment(g2.Cell), ""); err != nil {
		t.Fatal(err)
	}
	if res, _ := c.Sweep(id); res.Done != 1 {
		t.Fatalf("duplicate report double-counted: %+v", res)
	}
}

func TestRetryBudgetExhaustionFailsSweep(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	w1, _ := c.Register("", "")
	id, _, err := c.CreateSweep(oneCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	for attempt := 0; attempt < 2; attempt++ {
		g, err := c.Lease(w1)
		if err != nil || g == nil {
			t.Fatalf("attempt %d lease: %v %+v", attempt, err, g)
		}
		if err := c.Report(w1, id, g.Key, nil, "injected failure"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second) // past the retry backoff
	}
	res, err := c.Sweep(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "failed" || res.Error == "" {
		t.Fatalf("sweep after budget exhaustion: %+v", res)
	}
	// A failed sweep hands out no more work.
	if g, err := c.Lease(w1); err != nil || g != nil {
		t.Fatalf("failed sweep still leasing: %v %+v", err, g)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	w1, _ := c.Register("", "")
	w2, _ := c.Register("", "")
	id, _, err := c.CreateSweep(oneCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	g, err := c.Lease(w1)
	if err != nil || g == nil {
		t.Fatalf("lease: %v %+v", err, g)
	}
	// Three 80ms heartbeats carry the lease far past its original TTL.
	for i := 0; i < 3; i++ {
		clock.Advance(80 * time.Millisecond)
		drop, err := c.Heartbeat(w1, []ShardRef{{SweepID: id, Key: g.Key}})
		if err != nil || len(drop) != 0 {
			t.Fatalf("heartbeat %d: %v drop=%v", i, err, drop)
		}
	}
	if g2, err := c.Lease(w2); err != nil || g2 != nil {
		t.Fatalf("heartbeated lease was stolen: %v %+v", err, g2)
	}
	if st := c.StatusSnapshot(); st.Reassignments != 0 {
		t.Fatalf("reassignments = %d, want 0", st.Reassignments)
	}
	// Once heartbeats stop, the next one after expiry is told to drop.
	clock.Advance(150 * time.Millisecond)
	drop, err := c.Heartbeat(w1, []ShardRef{{SweepID: id, Key: g.Key}})
	if err != nil || len(drop) != 1 {
		t.Fatalf("post-expiry heartbeat: %v drop=%v", err, drop)
	}
}

func TestPlacementPreferenceAndSteal(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	w1, _ := c.Register("", "")
	w2, _ := c.Register("", "")
	if _, _, err := c.CreateSweep(oneCellSpec()); err != nil {
		t.Fatal(err)
	}
	preferred := Place("minife", []string{w1, w2})
	other := w1
	if other == preferred {
		other = w2
	}
	// Before StealAfter the non-preferred worker is refused...
	if g, err := c.Lease(other); err != nil || g != nil {
		t.Fatalf("non-preferred worker got early grant: %v %+v", err, g)
	}
	// ...but the preferred worker is served at once.
	g, err := c.Lease(preferred)
	if err != nil || g == nil {
		t.Fatalf("preferred worker refused: %v %+v", err, g)
	}
}

func TestStealAfterUnblocksOrphanedCells(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	w1, _ := c.Register("", "")
	w2, _ := c.Register("", "")
	if _, _, err := c.CreateSweep(oneCellSpec()); err != nil {
		t.Fatal(err)
	}
	preferred := Place("minife", []string{w1, w2})
	other := w1
	if other == preferred {
		other = w2
	}
	clock.Advance(testConfig(clock).StealAfter + time.Millisecond)
	if g, err := c.Lease(other); err != nil || g == nil {
		t.Fatalf("steal after wait refused: %v %+v", err, g)
	}
}

func TestSentinelErrors(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(testConfig(clock))
	if _, err := c.Lease("ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("lease from ghost: %v", err)
	}
	if _, err := c.Heartbeat("ghost", nil); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat from ghost: %v", err)
	}
	if _, err := c.Sweep("nope"); !errors.Is(err, ErrUnknownSweep) {
		t.Fatalf("unknown sweep: %v", err)
	}
	w1, _ := c.Register("", "")
	id, _, err := c.CreateSweep(oneCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(w1, id, "fig9/doom", nil, "x"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard report: %v", err)
	}
	if err := c.Report(w1, "nope", "k", nil, "x"); !errors.Is(err, ErrUnknownSweep) {
		t.Fatalf("unknown sweep report: %v", err)
	}
}

func TestCreateSweepValidates(t *testing.T) {
	c := NewCoordinator(testConfig(newFakeClock()))
	if _, _, err := c.CreateSweep(Spec{Figures: []string{"2"}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSilentWorkerDropsFromPlacement(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig(clock)
	cfg.WorkerTTL = 50 * time.Millisecond
	c := NewCoordinator(cfg)
	w1, _ := c.Register("", "")
	clock.Advance(100 * time.Millisecond) // w1 goes silent past WorkerTTL
	w2, _ := c.Register("", "")
	st := c.StatusSnapshot()
	if len(st.Workers) != 1 || st.Workers[0].ID != w2 {
		t.Fatalf("silent worker still listed: %+v", st.Workers)
	}
	if _, err := c.Lease(w1); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("dropped worker lease: %v", err)
	}
}
