package cluster

// Coordinator durability: every state transition that matters for
// recovery — sweep creation, lease grants, completion fragments and
// failures — is journaled through internal/journal while c.mu is held,
// so the WAL's record order always matches the order the transitions
// were applied in. Replay is therefore a pure fold over the records:
// same WAL, same recovered state (docs/DURABILITY.md).
//
// What is deliberately NOT journaled: heartbeats and lease expiries.
// Leases are void across a restart by construction — the recovered
// coordinator starts a new epoch and every non-done shard comes back
// pending — so persisting lease liveness would be dead weight. Grant
// records are kept anyway because they carry the attempt count, which
// is the retry budget's memory.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/rng"
)

// Coordinator WAL record operations.
const (
	// copEpoch stamps a coordinator generation: one record per Open.
	// The live epoch is max(stamped)+0 after stamping — i.e. replay
	// computes max+1 and OpenCoordinator writes that value back.
	copEpoch = "epoch"
	// copSweepCreated opens a sweep's history and carries the resolved
	// spec; the shard plan is re-derived from it on replay (Cells() is
	// deterministic), never stored.
	copSweepCreated = "sweep_created"
	// copLease narrates a grant. Replay keeps only the attempt count:
	// the lease itself dies with the epoch.
	copLease = "lease"
	// copShardDone closes a shard with its fragment's canonical
	// WriteJSON bytes, so a recovered merge is byte-identical.
	copShardDone = "shard_done"
	// copShardFailed narrates one failed attempt (non-terminal).
	copShardFailed = "shard_failed"
	// copSweepFailed closes a sweep that exhausted a shard's budget.
	copSweepFailed = "sweep_failed"
)

// coordRecord is the JSON payload of every coordinator journal record.
type coordRecord struct {
	Op       string          `json:"op"`
	Epoch    uint64          `json:"epoch,omitempty"`
	SweepID  string          `json:"sweep_id,omitempty"`
	Key      string          `json:"key,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Spec     *Spec           `json:"spec,omitempty"`
	Figure   json.RawMessage `json:"figure,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// journalLocked appends one record to the configured journal. c.mu must
// be held. A WAL failure degrades durability, never the sweep: it is
// counted (Status.JournalErrors) and the in-memory coordinator
// proceeds.
func (c *Coordinator) journalLocked(rec coordRecord) {
	if c.cfg.Journal == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		err = c.cfg.Journal.Append(context.Background(), b)
	}
	if err != nil {
		c.journalErrors++
	}
}

// journalShardDoneLocked journals a completed shard with its fragment's
// canonical bytes. Encoding the in-memory figure is safe because
// WriteJSON/ReadFigureJSON round-trip bit-exactly — the same invariant
// the wire protocol relies on.
func (c *Coordinator) journalShardDoneLocked(sw *sweep, sh *shard) {
	if c.cfg.Journal == nil {
		return
	}
	var buf bytes.Buffer
	if err := sh.fragment.WriteJSON(&buf); err != nil {
		c.journalErrors++
		return
	}
	c.journalLocked(coordRecord{
		Op: copShardDone, SweepID: sw.id, Key: sh.cell.Key(),
		Figure: json.RawMessage(buf.Bytes()),
	})
}

// OpenCoordinator builds a coordinator whose state is durable in dir:
// it replays the journal already there (rebuilding sweeps with only
// their unfinished cells pending), opens a writer positioned after it,
// and stamps a fresh epoch — so workers from the previous generation
// are told to re-register instead of acting on void leases. Corrupt
// segments are quarantined by the journal layer and surfaced in the
// replay stats, never an error.
//
// The recovered state is then re-journaled through the new writer as a
// snapshot and, once that snapshot is durably synced, the pre-restart
// segments are compacted away. This keeps the WAL bounded by live
// state instead of growing per restart, and means an unfinished sweep
// survives ANY number of coordinator restarts: each generation's
// journal is self-contained.
func OpenCoordinator(ctx context.Context, cfg Config, dir string) (*Coordinator, journal.ReplayStats, error) {
	c := NewCoordinator(cfg)
	st, err := c.replay(ctx, dir)
	if err != nil {
		return nil, st, err
	}
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		return nil, st, err
	}
	c.mu.Lock()
	c.cfg.Journal = w
	c.ownJournal = w
	errsBefore := c.journalErrors
	c.journalLocked(coordRecord{Op: copEpoch, Epoch: c.epoch})
	c.snapshotLocked()
	intact := c.journalErrors == errsBefore
	c.mu.Unlock()
	if err := w.Sync(ctx); err != nil {
		// The snapshot (and epoch stamp) missing from disk only means
		// the old segments stay authoritative and the next replay
		// computes the same epoch number again; not fatal.
		intact = false
		c.mu.Lock()
		c.journalErrors++
		c.mu.Unlock()
	}
	// Drop pre-restart segments only when every snapshot record landed:
	// a partial snapshot must leave the old log as the durable copy.
	if intact {
		if _, err := w.CompactBefore(); err != nil {
			c.mu.Lock()
			c.journalErrors++
			c.mu.Unlock()
		}
	}
	return c, st, nil
}

// snapshotLocked re-journals the recovered state through the freshly
// opened writer: each sweep's creation, the surviving attempt counts
// and last errors of its pending shards, its completed fragments, and
// its terminal failure — in the order the original log applied them,
// so replaying the snapshot folds to the same state. c.mu must be
// held. A failed append is counted in journalErrors; the caller uses
// that to decide whether compaction is safe.
func (c *Coordinator) snapshotLocked() {
	for _, id := range c.sweepIDs {
		sw := c.sweeps[id]
		c.journalLocked(coordRecord{Op: copSweepCreated, SweepID: id, Spec: &sw.spec})
		for _, sh := range sw.shards {
			switch sh.state {
			case shardPending:
				if sh.lastErr != "" {
					c.journalLocked(coordRecord{
						Op: copShardFailed, SweepID: id, Key: sh.cell.Key(),
						Attempts: sh.attempts, Error: sh.lastErr,
					})
				} else if sh.attempts > 0 {
					c.journalLocked(coordRecord{
						Op: copLease, SweepID: id, Key: sh.cell.Key(),
						Attempts: sh.attempts,
					})
				}
			case shardDone:
				c.journalShardDoneLocked(sw, sh)
			}
		}
		if sw.failed {
			var key string
			for _, sh := range sw.shards {
				if sh.state == shardFailed {
					key = sh.cell.Key()
					break
				}
			}
			c.journalLocked(coordRecord{Op: copSweepFailed, SweepID: id, Key: key, Error: sw.err})
		}
	}
}

// Close syncs and closes the journal OpenCoordinator created, if any.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	w := c.ownJournal
	c.ownJournal = nil
	c.cfg.Journal = nil
	c.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// Epoch returns the coordinator's generation number. It is 1 for an
// in-memory coordinator and increments on every durable restart.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// CheckEpoch validates a worker-supplied epoch against the current
// generation. Epoch 0 means the client predates the handshake and is
// accepted (the lease protocol was already restart-safe without it;
// the epoch just makes staleness explicit and prompt).
func (c *Coordinator) CheckEpoch(e uint64) error {
	if e == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e != c.epoch {
		return fmt.Errorf("%w: worker epoch %d, coordinator epoch %d", ErrEpochMismatch, e, c.epoch)
	}
	return nil
}

// replay folds the journal in dir into the empty coordinator. Record
// kinds unknown to this version are skipped (forward compatibility);
// records that fail to parse are version skew, not disk damage, and
// fail loudly.
func (c *Coordinator) replay(ctx context.Context, dir string) (journal.ReplayStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	var maxEpoch uint64
	st, err := journal.Replay(ctx, dir, func(payload []byte) error {
		var rec coordRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("cluster: recover: bad record: %w", err)
		}
		switch rec.Op {
		case copEpoch:
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
		case copSweepCreated:
			if rec.Spec == nil || rec.SweepID == "" {
				return fmt.Errorf("cluster: recover: sweep_created record missing spec or id")
			}
			c.replaySweepLocked(rec.SweepID, *rec.Spec, now)
		case copLease:
			if sh := c.shardLocked(rec.SweepID, rec.Key); sh != nil && sh.state == shardPending {
				if rec.Attempts > sh.attempts {
					sh.attempts = rec.Attempts
				}
			}
		case copShardDone:
			sw := c.sweeps[rec.SweepID]
			if sw == nil || sw.failed {
				return nil
			}
			sh := sw.byKey[rec.Key]
			if sh == nil || sh.state == shardDone {
				return nil // idempotent duplicate
			}
			f, err := core.ReadFigureJSON(bytes.NewReader(rec.Figure))
			if err != nil {
				return fmt.Errorf("cluster: recover: shard %s fragment: %w", rec.Key, err)
			}
			sh.fragment = f
			sh.state = shardDone
			sh.worker = ""
			sw.done++
			if sw.done == len(sw.shards) {
				sw.merged = mergeSweep(sw)
			}
		case copShardFailed:
			if sh := c.shardLocked(rec.SweepID, rec.Key); sh != nil && sh.state == shardPending {
				sh.lastErr = rec.Error
				if rec.Attempts > sh.attempts {
					sh.attempts = rec.Attempts
				}
			}
		case copSweepFailed:
			sw := c.sweeps[rec.SweepID]
			if sw == nil || sw.terminal() {
				return nil
			}
			sw.failed = true
			sw.err = rec.Error
			if sh := sw.byKey[rec.Key]; sh != nil {
				sh.state = shardFailed
				sh.worker = ""
			}
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	c.epoch = maxEpoch + 1
	return st, nil
}

// replaySweepLocked rebuilds a sweep from its journaled (already
// resolved) spec: the same Cells() enumeration CreateSweep ran, so the
// shard plan — and with it the merge order — is reconstructed exactly.
// Every shard starts pending with no backoff: pre-crash leases are
// void, and recovery is not load. c.mu must be held.
func (c *Coordinator) replaySweepLocked(id string, spec Spec, now time.Time) {
	if _, ok := c.sweeps[id]; ok {
		return
	}
	sw := &sweep{id: id, spec: spec, created: now, byKey: map[string]*shard{}}
	for _, cell := range spec.Cells() {
		sh := &shard{
			cell:         cell,
			state:        shardPending,
			pendingSince: now,
			jitter:       rng.New(CellSeed(spec.Seed, cell.Key())),
		}
		sw.shards = append(sw.shards, sh)
		sw.byKey[cell.Key()] = sh
	}
	c.sweeps[id] = sw
	c.sweepIDs = append(c.sweepIDs, id)
	// Keep the id sequence above every replayed id so post-recovery
	// sweeps cannot collide.
	var n int
	if _, err := fmt.Sscanf(id, "s%d", &n); err == nil && n > c.sweepSeq {
		c.sweepSeq = n
	}
}

// shardLocked resolves a (sweep, key) pair, nil when either side is
// unknown. c.mu must be held.
func (c *Coordinator) shardLocked(sweepID, key string) *shard {
	sw := c.sweeps[sweepID]
	if sw == nil {
		return nil
	}
	return sw.byKey[key]
}
