package cluster

import (
	"reflect"
	"testing"

	"repro/internal/tracegen"
)

func TestCellsDeterministicOrder(t *testing.T) {
	spec := Spec{Figures: []string{"6", "4"}, Workloads: []string{"minife", "hpcg"}}
	got := spec.Cells()
	want := []Cell{
		{Figure: "4", Workload: "minife"},
		{Figure: "4", Workload: "hpcg"},
		{Figure: "6", Workload: "minife"},
		{Figure: "6", Workload: "hpcg"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cells = %v, want %v", got, want)
	}
	// Enumeration is a pure function of the spec.
	if again := spec.Cells(); !reflect.DeepEqual(got, again) {
		t.Fatalf("second enumeration differs: %v vs %v", got, again)
	}
}

func TestCellsDefaults(t *testing.T) {
	cells := Spec{}.Cells()
	wantLen := 7 * len(tracegen.Names()) // figures 3..9 x full catalog
	if len(cells) != wantLen {
		t.Fatalf("default plan has %d cells, want %d", len(cells), wantLen)
	}
	if cells[0].Figure != "3" || cells[0].Workload != tracegen.Names()[0] {
		t.Fatalf("first cell %v, want fig3/%s", cells[0], tracegen.Names()[0])
	}
}

func TestCellSeedStableAndDistinct(t *testing.T) {
	a := CellSeed(1, "fig3/minife")
	if b := CellSeed(1, "fig3/minife"); a != b {
		t.Fatalf("CellSeed not stable: %d vs %d", a, b)
	}
	seen := map[uint64]string{}
	for _, cell := range (Spec{}).Cells() {
		s := CellSeed(42, cell.Key())
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, cell.Key())
		}
		seen[s] = cell.Key()
	}
}

func TestPlaceConsistency(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4"}
	keys := tracegen.Names()

	if got := Place("minife", nil); got != "" {
		t.Fatalf("empty worker list placed on %q", got)
	}
	// Stable: same inputs, same placement, regardless of list order.
	for _, k := range keys {
		a := Place(k, workers)
		b := Place(k, []string{"w4", "w3", "w2", "w1"})
		if a != b {
			t.Fatalf("placement of %q depends on list order: %q vs %q", k, a, b)
		}
	}
	// Rendezvous property: removing one worker only moves the keys that
	// were placed on it.
	for _, gone := range workers {
		var rest []string
		for _, w := range workers {
			if w != gone {
				rest = append(rest, w)
			}
		}
		for _, k := range keys {
			before := Place(k, workers)
			after := Place(k, rest)
			if before != gone && after != before {
				t.Fatalf("removing %s moved %q from %s to %s", gone, k, before, after)
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"empty", Spec{}, true},
		{"explicit", Spec{Figures: []string{"3", "7"}, Scale: "paper", Workloads: []string{"minife"}}, true},
		{"bad figure", Spec{Figures: []string{"2"}}, false},
		{"bad scale", Spec{Scale: "huge"}, false},
		{"bad workload", Spec{Workloads: []string{"doom"}}, false},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSpecOptionsRoundTrip(t *testing.T) {
	spec := Spec{Scale: "paper", Nodes: 32, Iterations: 3, SpanNanos: 7, OpsBudget: 9, Reps: 2, Seed: 11,
		Workloads: []string{"minife"}}
	opts := spec.Options()
	back := SpecFromOptions([]string{"4"}, opts)
	back.Figures = nil
	spec.Figures = nil
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("options round-trip drifted:\n spec %+v\n back %+v", spec, back)
	}
}
