package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// Client submits sweeps to a coordinator and waits for the merged
// figures. It implements campaign.FigureRunner, so `cesweep -cluster`
// swaps it in for the in-process drivers without touching the
// artifact-writing path — which is what makes distributed output
// byte-comparable to local output.
type Client struct {
	// Base is the coordinator's base URL (required).
	Base string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// Poll is the sweep poll period (default 100ms).
	Poll time.Duration
}

func (c *Client) hc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 100 * time.Millisecond
}

// SpecFromOptions converts sequential-run options into the equivalent
// sweep spec for the given figures. Options.Experiments does not
// travel: it is a local injection hook, and each worker installs its
// own cache-backed provider.
func SpecFromOptions(figures []string, opts core.Options) Spec {
	spec := Spec{
		Figures:    append([]string(nil), figures...),
		Nodes:      opts.Nodes,
		Iterations: opts.Iterations,
		SpanNanos:  opts.SpanNanos,
		OpsBudget:  opts.OpsBudget,
		Reps:       opts.Reps,
		Seed:       opts.Seed,
		Workloads:  append([]string(nil), opts.Workloads...),
	}
	if opts.Scale == core.Paper {
		spec.Scale = "paper"
	}
	return spec
}

// Submit creates a sweep and returns its id.
func (c *Client) Submit(ctx context.Context, spec Spec) (string, error) {
	var created sweepCreated
	if err := postJSON(ctx, c.hc(), c.Base+"/cluster/sweep", spec, &created); err != nil {
		return "", err
	}
	return created.ID, nil
}

// Wait polls the sweep until it reaches a terminal state and returns
// the merged figures keyed by figure id. A failed sweep returns an
// error wrapping ErrSweepFailed.
func (c *Client) Wait(ctx context.Context, sweepID string) (map[string]*core.Figure, error) {
	for {
		var view sweepView
		if err := getJSON(ctx, c.hc(), c.Base+"/cluster/sweep/"+sweepID, &view); err != nil {
			return nil, err
		}
		switch view.State {
		case "done":
			figures := make(map[string]*core.Figure, len(view.Figures))
			for id, raw := range view.Figures {
				f, err := core.ReadFigureJSON(bytes.NewReader(raw))
				if err != nil {
					return nil, fmt.Errorf("cluster: decode merged figure %s: %w", id, err)
				}
				figures[id] = f
			}
			return figures, nil
		case "failed":
			return nil, fmt.Errorf("%w: sweep %s: %s", ErrSweepFailed, sweepID, view.Error)
		}
		if !sleep(ctx, c.poll()) {
			return nil, ctx.Err()
		}
	}
}

// RunSweep submits the spec and waits for the merged figures.
func (c *Client) RunSweep(ctx context.Context, spec Spec) (map[string]*core.Figure, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// Figure runs one figure's sweep on the cluster and returns the merged
// figure. It satisfies campaign.FigureRunner.
func (c *Client) Figure(ctx context.Context, id string, opts core.Options) (*core.Figure, error) {
	figures, err := c.RunSweep(ctx, SpecFromOptions([]string{id}, opts))
	if err != nil {
		return nil, err
	}
	f, ok := figures[id]
	if !ok {
		return nil, fmt.Errorf("cluster: sweep finished without figure %s", id)
	}
	return f, nil
}

// Status fetches the coordinator's merged-metrics view.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	err := getJSON(ctx, c.hc(), c.Base+"/cluster/status", &st)
	return st, err
}
