package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/simcache"
)

// ErrRegisterFailed reports that the worker could not register with the
// coordinator before its context was canceled.
var ErrRegisterFailed = errors.New("cluster: worker registration failed")

// WorkerConfig configures a cluster worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Addr is the worker's advertised address, informational only —
	// all traffic is worker-initiated, so workers behind NAT work.
	Addr string
	// Queue runs shard jobs; required. Routing shards through the jobs
	// queue buys the same panic recovery, retry accounting and metrics
	// the single-node pipeline has.
	Queue *jobs.Queue
	// Cache, when set, supplies warm baselines to the figure drivers
	// via core.Options.Experiments — the point of consistent-hash
	// placement.
	Cache *simcache.Cache
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// PollInterval is the idle lease-poll period (default 200ms).
	PollInterval time.Duration
	// ShardRetries is the local jobs.Spec retry budget per leased
	// shard (default 2); coordinator-level retries sit on top.
	ShardRetries int
	// Log, when set, receives lease lifecycle lines.
	Log *log.Logger
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Coordinator == "" {
		return c, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if c.Queue == nil {
		return c, fmt.Errorf("cluster: worker needs a jobs queue")
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Millisecond
	}
	if c.ShardRetries <= 0 {
		c.ShardRetries = 2
	}
	return c, nil
}

// Worker polls a coordinator for shard leases, runs each shard through
// its local jobs queue, and reports fragments back. Construct with
// NewWorker and drive with Run.
type Worker struct {
	cfg WorkerConfig

	mu    sync.Mutex
	id    string
	ttl   time.Duration
	epoch uint64     // coordinator generation from the last register
	held  []ShardRef // in-flight leases (at most one today)
	seq   int        // request-id counter

	// counters, read via Stats.
	shardsDone   uint64
	shardsFailed uint64
	leasesLost   uint64
}

// NewWorker validates the config and returns an unstarted worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg}, nil
}

// WorkerStats counts one worker's shard activity.
type WorkerStats struct {
	ID           string `json:"id"`
	ShardsDone   uint64 `json:"shards_done"`
	ShardsFailed uint64 `json:"shards_failed"`
	LeasesLost   uint64 `json:"leases_lost"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{ID: w.id, ShardsDone: w.shardsDone, ShardsFailed: w.shardsFailed, LeasesLost: w.leasesLost}
}

// Run registers with the coordinator and processes leases until ctx is
// canceled; it returns ctx.Err() then, or an earlier terminal error.
// The heartbeat loop runs alongside and extends in-flight leases.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer func() {
		stopHB()
		hbDone.Wait()
	}()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.lease(ctx)
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) || errors.Is(err, ErrEpochMismatch) {
				// Coordinator forgot us (restart, TTL expiry) or moved to
				// a new epoch; re-register and pick up the new generation.
				if err := w.register(ctx); err != nil {
					return err
				}
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("lease error: %v", err)
			if !sleep(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		if grant == nil {
			if !sleep(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		w.runShard(ctx, grant)
	}
}

// register obtains (or refreshes) the worker's id, retrying with the
// poll interval until ctx cancels.
func (w *Worker) register(ctx context.Context) error {
	w.mu.Lock()
	id := w.id
	w.mu.Unlock()
	for {
		var resp registerResponse
		err := w.post(ctx, "/cluster/register", registerRequest{WorkerID: id, Addr: w.cfg.Addr}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.ttl = leaseTTLFrom(resp)
			w.epoch = resp.Epoch
			w.mu.Unlock()
			w.logf("registered as %s (lease ttl %v)", resp.WorkerID, leaseTTLFrom(resp))
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w: %v", ErrRegisterFailed, err)
		}
		w.logf("register: %v (retrying)", err)
		if !sleep(ctx, w.cfg.PollInterval) {
			return fmt.Errorf("%w: %v", ErrRegisterFailed, ctx.Err())
		}
	}
}

func (w *Worker) lease(ctx context.Context) (*Grant, error) {
	w.mu.Lock()
	id, epoch := w.id, w.epoch
	w.mu.Unlock()
	var resp leaseResponse
	if err := w.post(ctx, "/cluster/lease", leaseRequest{WorkerID: id, Epoch: epoch}, &resp); err != nil {
		return nil, err
	}
	if resp.None || resp.Grant == nil {
		return nil, nil
	}
	return resp.Grant, nil
}

// runShard executes one granted cell through the local jobs queue and
// reports the outcome. The job body fires the cluster.shard fault site
// first, so chaos drills can kill attempts inside the recovery scope.
func (w *Worker) runShard(ctx context.Context, g *Grant) {
	w.mu.Lock()
	w.seq++
	rid := fmt.Sprintf("%s-%s-a%d", w.id, g.Key, w.seq)
	w.held = append(w.held, ShardRef{SweepID: g.SweepID, Key: g.Key})
	w.mu.Unlock()
	defer w.dropHeld(g.SweepID, g.Key)

	fragment, err := w.execute(ctx, g, rid)
	if ctx.Err() != nil {
		return // canceled mid-shard: let the lease expire and re-assign
	}
	rep := reportRequest{SweepID: g.SweepID, Key: g.Key}
	if err != nil {
		rep.Error = err.Error()
		w.bump(&w.shardsFailed)
		w.logf("shard %s failed: %v", g.Key, err)
	} else {
		rep.Figure = fragment
		w.bump(&w.shardsDone)
	}
	w.mu.Lock()
	rep.WorkerID, rep.Epoch = w.id, w.epoch
	w.mu.Unlock()
	err = w.post(ctx, "/cluster/report", rep, &struct{}{})
	if errors.Is(err, ErrEpochMismatch) {
		// The coordinator restarted under us. The fragment is still
		// bit-identical and reports are idempotent, so re-register into
		// the new epoch and hand it over rather than wasting the work.
		if rerr := w.register(ctx); rerr == nil {
			w.mu.Lock()
			rep.WorkerID, rep.Epoch = w.id, w.epoch
			w.mu.Unlock()
			err = w.post(ctx, "/cluster/report", rep, &struct{}{})
		}
	}
	if err != nil {
		w.bump(&w.leasesLost)
		w.logf("report %s: %v", g.Key, err)
	}
}

// execute runs the cell's figure driver restricted to its workload,
// under the jobs queue's recovery and retry machinery, and returns the
// fragment's canonical WriteJSON bytes.
func (w *Worker) execute(ctx context.Context, g *Grant, rid string) (json.RawMessage, error) {
	driver, ok := core.Figures()[g.Cell.Figure]
	if !ok {
		return nil, fmt.Errorf("cluster: no driver for figure %q", g.Cell.Figure)
	}
	spec := jobs.Spec{Kind: "cluster-shard", RequestID: rid, Retries: w.cfg.ShardRetries}
	id, err := w.cfg.Queue.SubmitSpec(spec, func(jctx context.Context) (any, error) {
		if err := faultinject.Fire(jctx, faultinject.SiteClusterShard); err != nil {
			return nil, err
		}
		opts := g.Spec.Options()
		opts.Workloads = []string{g.Cell.Workload}
		if w.cfg.Cache != nil {
			opts.Experiments = w.cfg.Cache.Provider(jctx)
		}
		fig, err := driver(opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := fig.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return json.RawMessage(buf.Bytes()), nil
	})
	if err != nil {
		return nil, err
	}
	snap, found, err := w.cfg.Queue.Wait(ctx, id)
	if err != nil || !found {
		return nil, fmt.Errorf("cluster: shard job %s lost: %w", id, err)
	}
	if snap.State != jobs.Succeeded {
		return nil, fmt.Errorf("cluster: shard job %s %s: %s", id, snap.State, snap.Error)
	}
	raw, ok := snap.Result.(json.RawMessage)
	if !ok {
		return nil, fmt.Errorf("cluster: shard job %s returned %T", id, snap.Result)
	}
	return raw, nil
}

// heartbeatLoop extends in-flight leases every ttl/3. A drop response
// means the coordinator re-assigned the shard (our lease lapsed); the
// worker keeps computing — its late report is accepted idempotently —
// but counts the loss.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		ttl := w.ttl
		w.mu.Unlock()
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		if !sleep(ctx, interval) {
			return
		}
		w.mu.Lock()
		req := heartbeatRequest{WorkerID: w.id, Epoch: w.epoch, Held: append([]ShardRef(nil), w.held...)}
		w.mu.Unlock()
		var resp heartbeatResponse
		if err := w.post(ctx, "/cluster/heartbeat", req, &resp); err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("heartbeat: %v", err)
			continue
		}
		if len(resp.Drop) > 0 {
			w.bump(&w.leasesLost)
		}
	}
}

func (w *Worker) dropHeld(sweepID, key string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.held[:0]
	for _, ref := range w.held {
		if ref.SweepID != sweepID || ref.Key != key {
			kept = append(kept, ref)
		}
	}
	w.held = kept
}

func (w *Worker) bump(counter *uint64) {
	w.mu.Lock()
	*counter++
	w.mu.Unlock()
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Printf("worker: "+format, args...)
	}
}

// post sends one JSON request to the coordinator and decodes the
// response, mapping protocol error bodies back to sentinel errors and
// tagging traffic with a request id so coordinator logs line up.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	return postJSON(ctx, w.cfg.HTTPClient, w.cfg.Coordinator+path, body, out)
}

// postJSON is the shared client-side call: used by Worker and Client.
func postJSON(ctx context.Context, hc *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if rid := server.RequestIDFrom(ctx); rid != "" {
		req.Header.Set(server.RequestIDHeader, rid)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func getJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if rid := server.RequestIDFrom(ctx); rid != "" {
		req.Header.Set(server.RequestIDHeader, rid)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// decodeResponse maps non-2xx protocol bodies back onto the package
// sentinels — via the machine-readable code field, never the message
// text — so callers can errors.Is across the wire.
func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		var apiErr apiError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			if sentinel, ok := codeSentinels[apiErr.Code]; ok {
				return fmt.Errorf("%w (http %d, rid %s)", sentinel, resp.StatusCode, apiErr.RequestID)
			}
			return fmt.Errorf("cluster: http %d: %s (rid %s)", resp.StatusCode, apiErr.Error, apiErr.RequestID)
		}
		return fmt.Errorf("cluster: http %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits d or until ctx cancels; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
