// Package cluster distributes campaign sweeps across a fleet of cesimd
// workers: a coordinator shards the (figure x workload) sweep surface
// into cells, leases them to registered workers with heartbeats, expiry
// and re-assignment, and merges the reported fragments into figures
// bit-identical to a sequential campaign.Run of the same plan and seed.
//
// Determinism argument, in one paragraph: a sweep cell is one figure
// driver invocation restricted to a single workload. The drivers
// (core.Figure3..9) iterate workloads in their outermost loop and
// derive every scenario seed from Options.Seed alone — never from the
// workload's position — so the rows a cell produces are exactly the
// rows the full sequential run produces for that workload, whatever
// worker runs it, however often it is retried. The coordinator merges
// fragments in the plan's deterministic cell order, which is the
// sequential iteration order. The per-cell seed derived here
// (splitmix64 over the cell key, via internal/rng) drives only
// scheduling-side randomness — retry backoff jitter — and placement
// scores, never the simulation; Options.Seed travels to workers
// unchanged. See docs/CLUSTER.md.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/tracegen"
)

// Spec is a distributed sweep request: which figures to regenerate and
// the core.Options every cell runs under. It mirrors the fields of
// core.Options that affect results, so a sequential run with the same
// options is bit-comparable.
type Spec struct {
	// Figures lists the figure ids ("3".."9"); empty selects all seven.
	Figures []string `json:"figures,omitempty"`
	// Scale is "reduced" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Nodes, Iterations, SpanNanos, OpsBudget, Reps and Seed map to the
	// same-named core.Options fields; zero values select the core
	// defaults, exactly as a sequential run would.
	Nodes      int    `json:"nodes,omitempty"`
	Iterations int    `json:"iters,omitempty"`
	SpanNanos  int64  `json:"span_ns,omitempty"`
	OpsBudget  int    `json:"ops_budget,omitempty"`
	Reps       int    `json:"reps,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	// Workloads restricts the workload set; empty selects all, in the
	// catalog order a sequential run uses.
	Workloads []string `json:"workloads,omitempty"`
}

// withDefaults resolves the enumeration-relevant defaults (figure list
// and workload order). Simulation-relevant defaults are NOT resolved
// here: they travel as zeros and are filled by core.Options
// withDefaults on the worker, keeping one source of truth.
func (s Spec) withDefaults() Spec {
	if len(s.Figures) == 0 {
		for id := range core.Figures() {
			s.Figures = append(s.Figures, id)
		}
		sort.Strings(s.Figures)
	}
	if len(s.Workloads) == 0 {
		s.Workloads = tracegen.Names()
	}
	return s
}

// Validate rejects specs that could not have come from a well-formed
// sequential run.
func (s Spec) Validate() error {
	if s.Scale != "" && s.Scale != "reduced" && s.Scale != "paper" {
		return fmt.Errorf("cluster: unknown scale %q", s.Scale)
	}
	for _, id := range s.Figures {
		if _, ok := core.Figures()[id]; !ok {
			return fmt.Errorf("cluster: unknown figure %q (want 3..9)", id)
		}
	}
	for _, wl := range s.Workloads {
		if _, err := tracegen.Lookup(wl); err != nil {
			return fmt.Errorf("cluster: unknown workload %q", wl)
		}
	}
	return nil
}

// Options converts the spec to the core.Options a sequential run of
// the same sweep would use.
func (s Spec) Options() core.Options {
	opts := core.Options{
		Nodes:      s.Nodes,
		Iterations: s.Iterations,
		SpanNanos:  s.SpanNanos,
		OpsBudget:  s.OpsBudget,
		Reps:       s.Reps,
		Seed:       s.Seed,
		Workloads:  s.Workloads,
	}
	if s.Scale == "paper" {
		opts.Scale = core.Paper
	}
	return opts
}

// Cell is the unit of distribution: one figure restricted to one
// workload.
type Cell struct {
	Figure   string `json:"figure"`
	Workload string `json:"workload"`
}

// Key is the cell's stable identity within a sweep.
func (c Cell) Key() string { return "fig" + c.Figure + "/" + c.Workload }

// Cells enumerates the sweep cells in the deterministic merge order:
// figure-major (ascending id, as campaign.RunContext iterates), then
// workloads in spec order (the drivers' outermost loop).
func (s Spec) Cells() []Cell {
	s = s.withDefaults()
	figs := append([]string(nil), s.Figures...)
	sort.Strings(figs)
	cells := make([]Cell, 0, len(figs)*len(s.Workloads))
	for _, id := range figs {
		for _, wl := range s.Workloads {
			cells = append(cells, Cell{Figure: id, Workload: wl})
		}
	}
	return cells
}

// hash64 folds a string through FNV-1a into 64 bits.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// CellSeed derives the cell's scheduling seed: splitmix64 (rng.Mix64)
// over the FNV hash of the cell key, mixed with the sweep's base seed.
// It feeds the shard's retry-jitter stream and nothing else — the
// simulation seed is Spec.Seed, untouched, or distribution would break
// bit-identity with the sequential run.
func CellSeed(base uint64, key string) uint64 {
	return rng.Mix64(base ^ hash64(key))
}

// Place picks the worker a cell prefers via rendezvous (highest random
// weight) consistent hashing over the placement key: each worker
// scores rng.Mix64(hash(worker) ^ hash(key)) and the highest score
// wins. Adding or removing a worker only moves the cells that scored
// highest on it, so baseline-cache (simcache) residency stays warm on
// the survivors. The placement key is the cell's workload: every
// figure shares one prepared baseline per (workload, nodes) point, so
// co-locating a workload's cells maximizes cache hits. Empty worker
// list returns "".
func Place(key string, workers []string) string {
	kh := hash64(key)
	best, bestScore := "", uint64(0)
	for _, w := range workers {
		score := rng.Mix64(hash64(w) ^ kh)
		// Tie-break on the lexically smaller id so the choice is a pure
		// function of the inputs.
		if best == "" || score > bestScore || (score == bestScore && w < best) {
			best, bestScore = w, score
		}
	}
	return best
}
