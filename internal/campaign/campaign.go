// Package campaign orchestrates full reproduction runs: every table
// and figure regenerated into an output directory in aligned-text, CSV
// and JSON forms, with a manifest recording row counts and wall times.
// cmd/reproduce is a thin flag wrapper around this package.
package campaign

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// FigureRunner produces one sweep figure (ids "3".."7"). The default
// runs the in-process core driver; `cesweep -cluster` installs a
// cluster.Client instead, so the sweep executes on a worker fleet
// while the artifact-writing path below stays exactly the same — which
// is what makes distributed output directories byte-comparable to
// local ones.
type FigureRunner interface {
	Figure(ctx context.Context, id string, opts core.Options) (*core.Figure, error)
}

// Config selects what to run and where results land.
type Config struct {
	// OutDir receives all artifacts; created if missing.
	OutDir string
	// Options are passed to every figure driver.
	Options core.Options
	// Only restricts the run to these figure ids ("2".."9"); empty
	// means everything. Table II is always produced (it is free).
	Only []string
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// Now supplies timestamps for the manifest; nil uses time.Now
	// (injectable for deterministic tests).
	Now func() time.Time
	// Runner executes the sweep figures ("3".."7"); nil runs the
	// in-process drivers. Figure 2 (the MCA noise signatures) is always
	// produced locally — it is a single cheap run, not a sweep.
	Runner FigureRunner
}

// Artifact describes one produced result.
type Artifact struct {
	Name  string
	Rows  int
	Wall  time.Duration
	Files []string
}

// Result summarizes a campaign.
type Result struct {
	Artifacts []Artifact
	// Manifest is the rendered manifest table (also written to
	// OutDir/MANIFEST.txt).
	Manifest *report.Table
}

// Run executes the campaign. It is RunContext with a background
// context, kept for existing callers.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the campaign, checking ctx between artifacts so
// a serving layer (e.g. a future cesimd /v1/reproduce job) can cancel
// a long reproduction; the artifacts finished before cancellation stay
// on disk.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.OutDir == "" {
		return nil, fmt.Errorf("campaign: output directory required")
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, err
	}
	logf := func(format string, args ...interface{}) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	selected := map[string]bool{}
	for _, id := range cfg.Only {
		selected[strings.TrimSpace(id)] = true
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	res := &Result{Manifest: report.New(
		fmt.Sprintf("reproduction manifest (seed %d)", cfg.Options.Seed),
		"artifact", "rows", "wall-time", "files")}
	add := func(a Artifact) {
		res.Artifacts = append(res.Artifacts, a)
		res.Manifest.AddRow(a.Name, fmt.Sprintf("%d", a.Rows),
			a.Wall.Truncate(time.Millisecond).String(), strings.Join(a.Files, ","))
		logf("campaign: %s done in %s (%d rows)", a.Name, a.Wall.Truncate(time.Millisecond), a.Rows)
	}

	start := now()
	if err := WriteTable(cfg.OutDir, "table2", core.Table2()); err != nil {
		return nil, err
	}
	add(Artifact{Name: "table2", Rows: 10, Wall: now().Sub(start),
		Files: []string{"table2.txt", "table2.csv"}})

	if want("2") {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = now()
		_, t, err := core.Figure2(cfg.Options.Seed)
		if err != nil {
			return nil, err
		}
		if err := WriteTable(cfg.OutDir, "fig2", t); err != nil {
			return nil, err
		}
		add(Artifact{Name: "fig2", Rows: 5, Wall: now().Sub(start),
			Files: []string{"fig2.txt", "fig2.csv"}})
	}

	ids := make([]string, 0, 5)
	for id := range core.Figures() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !want(id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = now()
		var f *core.Figure
		var err error
		if cfg.Runner != nil {
			f, err = cfg.Runner.Figure(ctx, id, cfg.Options)
		} else {
			f, err = core.Figures()[id](cfg.Options)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: figure %s: %w", id, err)
		}
		name := "fig" + id
		if err := WriteFigure(cfg.OutDir, name, f); err != nil {
			return nil, err
		}
		add(Artifact{Name: name, Rows: len(f.Rows), Wall: now().Sub(start),
			Files: []string{name + ".txt", name + ".csv", name + ".json"}})
	}

	mf, err := os.Create(filepath.Join(cfg.OutDir, "MANIFEST.txt"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	if err := res.Manifest.WriteASCII(mf); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTable stores a table as <name>.txt and <name>.csv in dir.
func WriteTable(dir, name string, t *report.Table) error {
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.WriteASCII(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	return t.WriteCSV(csv)
}

// WriteFigure stores a figure as .txt, .csv and .json in dir.
func WriteFigure(dir, name string, f *core.Figure) error {
	if err := WriteTable(dir, name, f.Table()); err != nil {
		return err
	}
	js, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	defer js.Close()
	return f.WriteJSON(js)
}
