package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

func tinyOptions() core.Options {
	return core.Options{Nodes: 16, Iterations: 2, Reps: 1, Seed: 1, Workloads: []string{"minife"}}
}

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	res, err := Run(Config{
		OutDir:  dir,
		Options: tinyOptions(),
		Only:    []string{"4"},
		Log:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	// table2 + fig4.
	if len(res.Artifacts) != 2 {
		t.Fatalf("artifacts = %d, want 2: %+v", len(res.Artifacts), res.Artifacts)
	}
	for _, want := range []string{"table2.txt", "table2.csv", "fig4.txt", "fig4.csv", "fig4.json", "MANIFEST.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing artifact %s: %v", want, err)
		}
	}
	// Figures not selected are absent.
	if _, err := os.Stat(filepath.Join(dir, "fig5.txt")); err == nil {
		t.Fatal("unselected figure produced")
	}
	if !strings.Contains(log.String(), "fig4 done") {
		t.Fatalf("progress log missing: %q", log.String())
	}
}

func TestRunJSONParsesBack(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(Config{OutDir: dir, Options: tinyOptions(), Only: []string{"4"}}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fig, err := core.ReadFigureJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig4" || len(fig.Rows) == 0 {
		t.Fatalf("bad parsed figure: %s, %d rows", fig.ID, len(fig.Rows))
	}
}

func TestRunRequiresOutDir(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing output dir accepted")
	}
}

func TestRunTable2Only(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{OutDir: dir, Options: tinyOptions(), Only: []string{"none-such"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Artifacts) != 1 || res.Artifacts[0].Name != "table2" {
		t.Fatalf("artifacts: %+v", res.Artifacts)
	}
}

func TestManifestContents(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{OutDir: dir, Options: tinyOptions(), Only: []string{"4"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Manifest.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table2", "fig4", "fig4.json"} {
		if !strings.Contains(out, want) {
			t.Fatalf("manifest missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Fatal("written manifest differs from returned manifest")
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Config{OutDir: dir, Options: tinyOptions()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("canceled campaign wrote artifacts: %v", entries)
	}
}

// cancelAfter cancels the context once the progress log mentions a
// marker, simulating a client abandoning a campaign mid-run.
type cancelAfter struct {
	marker string
	cancel context.CancelFunc
	buf    bytes.Buffer
}

func (c *cancelAfter) Write(p []byte) (int, error) {
	c.buf.Write(p)
	if strings.Contains(c.buf.String(), c.marker) {
		c.cancel()
	}
	return len(p), nil
}

// TestCancelSiteMidSweepDiscardsPartials injects a cancellation inside
// the repetition loop — mid-sweep, not between artifacts — and checks
// the aborted figure leaves no partial files, the error surfaces as
// context.Canceled, and no worker goroutines are left behind.
func TestCancelSiteMidSweepDiscardsPartials(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	// Every repetition attempt in fig4 observes context.Canceled;
	// cancellation must stop the run, not burn the retry budget.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteRepetition: {Kind: faultinject.KindCancel, Probability: 1, Seed: 5},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{OutDir: dir, Options: tinyOptions(), Only: []string{"4"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the injected cancel", err)
	}
	// The artifact before the sweep survives; the canceled figure left
	// nothing partial on disk.
	if _, err := os.Stat(filepath.Join(dir, "table2.txt")); err != nil {
		t.Fatalf("pre-sweep artifact missing: %v", err)
	}
	for _, leftover := range []string{"fig4.txt", "fig4.csv", "fig4.json", "MANIFEST.txt"} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); err == nil {
			t.Fatalf("canceled sweep left %s behind", leftover)
		}
	}
	faultinject.Disarm()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRunContextCancelMidCampaign(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	log := &cancelAfter{marker: "table2 done", cancel: cancel}
	_, err := RunContext(ctx, Config{OutDir: dir, Options: tinyOptions(), Only: []string{"4"}, Log: log})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The artifact finished before cancellation stays on disk; the
	// selected figure was never produced.
	if _, err := os.Stat(filepath.Join(dir, "table2.txt")); err != nil {
		t.Fatalf("pre-cancellation artifact missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.txt")); err == nil {
		t.Fatal("figure produced after cancellation")
	}
}
