// Package noise models correctable-error (CE) handling detours injected
// into the simulation.
//
// Following the paper's methodology (§III-D), CE occurrences on each node
// form a Poisson process: inter-arrival times are exponentially
// distributed with mean MTBCE(node). Each occurrence steals the CPU for a
// per-event handling duration determined by the logging mode (hardware
// correction only, OS/CMCI software logging, or firmware/EMCA logging).
// The simulator charges detours against CPU-busy intervals: whenever a
// rank's CPU is busy for a window of simulated time, every CE arriving in
// that (growing) window extends it by the event's handling time. CEs that
// arrive while the node is idle do not delay the application — exactly
// the semantics of LogGOPSim's noise injection.
//
// Because handling a CE occupies wall-clock time during which further CEs
// may arrive, the process is a renewal race: when the mean handling time
// approaches MTBCE the node stops making forward progress. The model
// detects this saturation and reports it instead of looping forever,
// mirroring the paper's Fig. 7 note that the MTBCE = 0.2 s × 133 ms
// configuration is omitted because "the application is essentially unable
// to make any reasonable forward progress".
package noise

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Model is the interface the simulator uses to account for detours.
// Extend returns the completion time of CPU work of length dur starting
// at start on the given node.
type Model interface {
	Extend(node int32, start, dur int64) int64
}

// ArrivalPeeker is implemented by models that can report the next
// detour arrival time on a node. Callers may skip Extend for any work
// interval ending at or before the reported time (no arrival lands in
// it, so Extend would be an expensive no-op), but must re-query after
// every Extend call on that node, which may advance the schedule.
type ArrivalPeeker interface {
	NextArrival(node int32) int64
}

// None is the noise-free model.
type None struct{}

// Extend returns start+dur: no detours.
func (None) Extend(_ int32, start, dur int64) int64 { return start + dur }

// Duration models the per-event handling time.
type Duration interface {
	// Sample returns the handling time of the next CE on a node.
	// Implementations may keep per-node state (the state argument) for
	// patterns such as "every 10th event pays the firmware decode".
	Sample(src *rng.Source, count uint64) int64
	// Mean returns the long-run mean handling time in nanoseconds,
	// used for saturation analysis.
	Mean() float64
	fmt.Stringer
}

// rngFreeDuration marks duration models whose Sample never draws from
// the rng stream. Only then may CE batch arrival-gap generation: a
// stream shared between arrivals and durations must be consumed in
// strict alternation to stay bit-identical with unbatched replay.
type rngFreeDuration interface{ rngFree() }

// Fixed is a constant per-event handling time.
type Fixed int64

func (Fixed) rngFree() {}

// Sample returns the fixed duration.
func (f Fixed) Sample(*rng.Source, uint64) int64 { return int64(f) }

// Mean returns the fixed duration.
func (f Fixed) Mean() float64 { return float64(f) }

func (f Fixed) String() string { return fmt.Sprintf("fixed(%dns)", int64(f)) }

// EveryNth charges Base per event plus Extra on every Nth event, the
// shape of firmware (EMCA) logging with a correctable-error threshold:
// each CE raises an SMI (Base, ~7 ms measured on Blake) and every Nth CE
// additionally pays the firmware decode+log (Extra, ~500 ms).
type EveryNth struct {
	Base  int64
	Extra int64
	N     uint64
}

func (EveryNth) rngFree() {}

// Sample returns Base, plus Extra when count is a multiple of N.
func (e EveryNth) Sample(_ *rng.Source, count uint64) int64 {
	if e.N > 0 && count%e.N == e.N-1 {
		return e.Base + e.Extra
	}
	return e.Base
}

// Mean returns Base + Extra/N.
func (e EveryNth) Mean() float64 {
	if e.N == 0 {
		return float64(e.Base)
	}
	return float64(e.Base) + float64(e.Extra)/float64(e.N)
}

func (e EveryNth) String() string {
	return fmt.Sprintf("every%d(base=%dns,extra=%dns)", e.N, e.Base, e.Extra)
}

// Exponential is an exponentially distributed handling time, for
// sensitivity studies on duration variance.
type Exponential int64

// Sample draws from the exponential distribution with the given mean.
func (e Exponential) Sample(src *rng.Source, _ uint64) int64 {
	return int64(src.Exp(float64(e)))
}

// Mean returns the distribution mean.
func (e Exponential) Mean() float64 { return float64(e) }

func (e Exponential) String() string { return fmt.Sprintf("exp(%dns)", int64(e)) }

// AllNodes targets CE injection at every node.
const AllNodes int32 = -1

// Config describes a CE injection scenario.
type Config struct {
	// Seed drives all randomness; same seed, same detour schedule.
	Seed uint64
	// MTBCE is the mean time between correctable errors per node, in
	// nanoseconds. Used when Arrivals is nil (Poisson process, the
	// paper's model).
	MTBCE int64
	// Arrivals overrides the arrival process (e.g. Bursty). When set,
	// MTBCE is ignored.
	Arrivals Arrivals
	// Duration is the per-event handling time model.
	Duration Duration
	// Target selects the node experiencing CEs, or AllNodes.
	Target int32
	// SaturationFactor bounds the detour time charged against a single
	// work interval, as a multiple of max(work, MTBCE). When exceeded
	// the node is marked saturated and further charging on that
	// interval stops. Zero means the default of 10,000.
	SaturationFactor int64
	// DisableBatch draws arrival gaps one at a time even when the
	// arrival process supports prefetching. The gap sequence is
	// bit-identical either way; the toggle exists so differential
	// tests can replay both paths in one process.
	DisableBatch bool
}

// arrivals returns the effective arrival process.
func (c Config) arrivals() Arrivals {
	if c.Arrivals != nil {
		return c.Arrivals
	}
	return Poisson(c.MTBCE)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Arrivals == nil && c.MTBCE <= 0 {
		return fmt.Errorf("noise: MTBCE must be positive, got %d", c.MTBCE)
	}
	if c.Arrivals != nil {
		// A custom process must report a positive, finite mean gap:
		// NaN compares false against every bound and would otherwise
		// slip through both this check and the saturation guard in
		// core (NaN >= 1 is false), and an infinite or non-positive
		// gap makes the load factor meaningless.
		mg := c.Arrivals.MeanGap()
		if math.IsNaN(mg) || math.IsInf(mg, 0) || mg <= 0 {
			return fmt.Errorf("noise: arrival process %v must have a positive finite mean gap, got %v", c.Arrivals, mg)
		}
	}
	if c.Duration == nil {
		return fmt.Errorf("noise: nil duration model")
	}
	if c.Duration.Mean() < 0 {
		return fmt.Errorf("noise: negative mean handling time")
	}
	if c.Target < AllNodes {
		return fmt.Errorf("noise: bad target node %d", c.Target)
	}
	return nil
}

// LoadFactor returns the long-run fraction of CPU time consumed by CE
// handling, rho = E[D] / E[inter-arrival]. Values >= 1 mean the node
// cannot make forward progress. A degenerate arrival process (NaN or
// non-positive mean gap — rejected by Validate, but callers may skip
// it) reports +Inf so saturation guards comparing against a threshold
// fail safe instead of letting NaN slip past.
func (c Config) LoadFactor() float64 {
	mg := c.arrivals().MeanGap()
	if math.IsNaN(mg) || mg <= 0 {
		return math.Inf(1)
	}
	return c.Duration.Mean() / mg
}

// gapBatch is the number of inter-arrival gaps drawn per refill when
// the arrival process supports batching. Small enough that a run's
// worth of prefetched gaps stays in one cache line, large enough to
// amortize the per-gap interface call.
const gapBatch = 16

// nodeState is the lazily generated arrival stream of one node.
type nodeState struct {
	src      *rng.Source
	next     int64  // next CE arrival time
	count    uint64 // CEs handled so far (drives EveryNth)
	arrState uint64 // arrival-process state (e.g. remaining burst)
	started  bool
	// Prefetched inter-arrival gaps (batching enabled): gaps[gi:gn]
	// are pending. Prefetching reorders nothing — the stream feeds
	// only the arrival process when batching is on.
	gi, gn int32
	gaps   [gapBatch]int64
}

// CE is the correctable-error detour model.
type CE struct {
	cfg Config
	// arr is the effective arrival process, resolved once at
	// construction: converting Config.MTBCE to a Poisson value inside
	// Extend would box it into the Arrivals interface on every call —
	// one heap allocation per CPU-busy interval, dominating the
	// simulator's allocation profile.
	arr Arrivals
	// batcher is non-nil when arrival gaps are drawn gapBatch at a
	// time: the process implements GapBatcher and the duration model
	// draws no randomness, so prefetching cannot reorder the stream.
	batcher GapBatcher
	// meanGap is the guard gap for saturation analysis, cached so
	// Extend does not re-derive it (a float call, and for Weibull a
	// Gamma evaluation) per interval: arr.MeanGap() truncated to ns,
	// raised to the slowest component's mean for composite processes
	// (see ComponentGapper).
	meanGap int64
	// nodes is indexed by node id; states are created on first use.
	nodes []nodeState

	// Counters (not synchronized; the simulator is single-goroutine).
	events    uint64 // detours charged
	stolen    int64  // total detour time charged, ns
	saturated bool
}

// NewCE builds a detour model for n nodes. It returns an error for
// invalid configurations.
func NewCE(n int, cfg Config) (*CE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Target != AllNodes && int(cfg.Target) >= n {
		return nil, fmt.Errorf("noise: target node %d outside [0,%d)", cfg.Target, n)
	}
	if cfg.SaturationFactor == 0 {
		cfg.SaturationFactor = 10000
	}
	m := &CE{cfg: cfg, arr: cfg.arrivals(), nodes: make([]nodeState, n)}
	m.meanGap = int64(m.arr.MeanGap())
	if cg, ok := m.arr.(ComponentGapper); ok {
		// A mixture's combined mean gap is dominated by its fastest
		// mode; guard against the slowest one so a rare mode's burst
		// train is not misread as saturation.
		if g := int64(cg.MaxComponentMeanGap()); g > m.meanGap {
			m.meanGap = g
		}
	}
	if b, ok := m.arr.(GapBatcher); ok && !cfg.DisableBatch {
		if _, free := cfg.Duration.(rngFreeDuration); free {
			m.batcher = b
		}
	}
	return m, nil
}

// start initializes a node's arrival stream and draws its first gap.
func (m *CE) start(st *nodeState, node int32) {
	st.src = rng.NewStream(m.cfg.Seed, uint64(node))
	st.started = true
	st.next = m.nextGap(st)
}

// nextGap draws the node's next inter-arrival gap, refilling the
// prefetch buffer when batching is enabled. The gap sequence is
// bit-identical either way.
func (m *CE) nextGap(st *nodeState) int64 {
	if m.batcher == nil {
		return m.arr.NextGap(st.src, &st.arrState)
	}
	if st.gi == st.gn {
		g := m.batcher.AppendGaps(st.gaps[:0], st.src, &st.arrState, gapBatch)
		st.gi, st.gn = 0, int32(len(g))
	}
	g := st.gaps[st.gi]
	st.gi++
	return g
}

// NextArrival returns the time of the node's next CE arrival, starting
// the node's stream on first use. The simulator caches this to skip
// Extend entirely for work intervals that no arrival can reach — the
// overwhelmingly common case at realistic MTBCEs — and must refresh
// the cache after every Extend call on the node.
func (m *CE) NextArrival(node int32) int64 {
	if m.cfg.Target != AllNodes && node != m.cfg.Target {
		return math.MaxInt64
	}
	st := &m.nodes[node]
	if !st.started {
		m.start(st, node)
	}
	return st.next
}

// Extend implements Model. The rank's CPU timeline must be queried with
// non-decreasing start times per node, which the simulator guarantees
// (each rank's CPU-busy intervals are scheduled in order).
func (m *CE) Extend(node int32, start, dur int64) int64 {
	if m.cfg.Target != AllNodes && node != m.cfg.Target {
		return start + dur
	}
	st := &m.nodes[node]
	if !st.started {
		m.start(st, node)
	}
	end := start + dur
	if st.next >= end {
		// No arrival can land in this window; don't touch the stream.
		return end
	}
	// CEs that arrived while the node was idle are skipped without
	// charge: the handling happened while the application had nothing
	// to do. (Handling durations comparable to the idle gap blur this,
	// but the first-order model matches LogGOPSim's noise injection.)
	for st.next < start {
		st.count++
		st.next += m.nextGap(st)
	}
	limit := dur
	if m.meanGap > limit {
		limit = m.meanGap
	}
	maxSteal := limit * m.cfg.SaturationFactor
	var stolenHere int64
	for st.next < end {
		d := m.cfg.Duration.Sample(st.src, st.count)
		st.count++
		end += d
		stolenHere += d
		m.events++
		m.stolen += d
		st.next += m.nextGap(st)
		if stolenHere > maxSteal {
			m.saturated = true
			break
		}
	}
	return end
}

// Events returns the number of detours charged so far.
func (m *CE) Events() uint64 { return m.events }

// Stolen returns the total CPU time consumed by detours so far.
func (m *CE) Stolen() int64 { return m.stolen }

// Saturated reports whether any work interval hit the saturation bound,
// meaning the simulated application is effectively unable to progress.
func (m *CE) Saturated() bool { return m.saturated }

// Reset restores the model to its initial state (same seed, same future
// schedule).
func (m *CE) Reset() {
	for i := range m.nodes {
		m.nodes[i] = nodeState{}
	}
	m.events = 0
	m.stolen = 0
	m.saturated = false
}
