package noise

import (
	"testing"
)

func TestSharedCEValidation(t *testing.T) {
	good := Config{Seed: 1, MTBCE: s, Duration: Fixed(ms), Target: AllNodes}
	if _, err := NewSharedCE(4, 2, good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := NewSharedCE(4, 0, good); err == nil {
		t.Fatal("0 ranks per node accepted")
	}
	if _, err := NewSharedCE(4, 2, Config{Seed: 1, MTBCE: s, Duration: Fixed(ms), Target: 4}); err == nil {
		t.Fatal("target beyond node count accepted")
	}
	if _, err := NewSharedCE(4, 2, Config{MTBCE: 0, Duration: Fixed(1)}); err == nil {
		t.Fatal("invalid noise config accepted")
	}
}

func TestSharedCECorrelatedAcrossRanks(t *testing.T) {
	// Two ranks on the same node, identical busy windows: both must be
	// extended identically (the SMI halts the whole node).
	m, err := NewSharedCE(2, 2, Config{Seed: 3, MTBCE: 10 * ms, Duration: Fixed(ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Extend(0, 0, s) // rank 0, node 0
	b := m.Extend(1, 0, s) // rank 1, node 0
	if a != b {
		t.Fatalf("co-located ranks diverged: %d vs %d", a, b)
	}
	// A rank on the other node sees a different schedule.
	c := m.Extend(2, 0, s) // rank 2, node 1
	if c == a {
		t.Fatal("distinct nodes share a schedule")
	}
}

func TestSharedCEOutOfOrderQueries(t *testing.T) {
	// Co-located ranks query in arbitrary time order; results must
	// depend only on the window, not on the query order.
	mk := func() *SharedCE {
		m, err := NewSharedCE(1, 4, Config{Seed: 7, MTBCE: 5 * ms, Duration: Fixed(100 * us), Target: AllNodes})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := mk()
	early1 := m1.Extend(0, 0, 20*ms)
	late1 := m1.Extend(1, 500*ms, 20*ms)
	m2 := mk()
	late2 := m2.Extend(1, 500*ms, 20*ms) // reverse order
	early2 := m2.Extend(0, 0, 20*ms)
	if early1 != early2 || late1 != late2 {
		t.Fatalf("query order changed results: (%d,%d) vs (%d,%d)", early1, late1, early2, late2)
	}
}

func TestSharedCEMatchesStreamingStatistically(t *testing.T) {
	// With one rank per node, SharedCE and CE should charge similar
	// total detour time over a long window (they draw durations at
	// different points of the stream, so exact equality is not
	// expected).
	cfg := Config{Seed: 9, MTBCE: 2 * ms, Duration: Fixed(50 * us), Target: AllNodes}
	shared, err := NewSharedCE(1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := NewCE(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := shared.Extend(0, 0, 10*s)
	b := streaming.Extend(0, 0, 10*s)
	ratio := float64(a-10*s) / float64(b-10*s)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("shared vs streaming detour totals diverge: %d vs %d", a-10*s, b-10*s)
	}
}

func TestSharedCETargetedNode(t *testing.T) {
	m, err := NewSharedCE(2, 2, Config{Seed: 5, MTBCE: ms, Duration: Fixed(100 * us), Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0,1 on node 0: unaffected. Ranks 2,3 on node 1: affected.
	if got := m.Extend(0, 0, s); got != s {
		t.Fatal("untargeted node extended")
	}
	if got := m.Extend(1, 0, s); got != s {
		t.Fatal("untargeted node extended (rank 1)")
	}
	if got := m.Extend(2, 0, s); got == s {
		t.Fatal("targeted node not extended")
	}
}

func TestSharedCESaturationGuard(t *testing.T) {
	m, err := NewSharedCE(1, 1, Config{
		Seed: 1, MTBCE: ms, Duration: Fixed(100 * ms), Target: AllNodes, SaturationFactor: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Extend(0, 0, s)
	if !m.Saturated() {
		t.Fatal("divergent load not flagged")
	}
}

func TestSharedCENodeSchedule(t *testing.T) {
	m, err := NewSharedCE(1, 1, Config{Seed: 2, MTBCE: 10 * ms, Duration: Fixed(ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	m.Extend(0, 0, s)
	times, durs := m.NodeSchedule(0)
	if len(times) == 0 || len(times) != len(durs) {
		t.Fatalf("schedule lengths: %d times, %d durs", len(times), len(durs))
	}
	last := int64(-1)
	for i, tm := range times {
		if tm <= last {
			t.Fatal("schedule not strictly increasing")
		}
		last = tm
		if durs[i] != ms {
			t.Fatalf("duration %d, want %d", durs[i], ms)
		}
	}
}

func TestSharedCECounters(t *testing.T) {
	m, err := NewSharedCE(1, 2, Config{Seed: 4, MTBCE: 10 * ms, Duration: Fixed(ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	m.Extend(0, 0, s)
	ev1 := m.Events()
	m.Extend(1, 0, s) // same node, same window: same detours charged again
	if m.Events() != 2*ev1 {
		t.Fatalf("events = %d after symmetric double charge, want %d", m.Events(), 2*ev1)
	}
	if m.Stolen() != int64(m.Events())*ms {
		t.Fatal("stolen/events mismatch")
	}
}
