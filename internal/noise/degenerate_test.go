package noise

// Regression tests for degenerate arrival processes. NaN compares
// false against every bound, so a NaN mean gap used to slip through
// both Validate (NaN <= 0 is false) and the analytic saturation guard
// in core (NaN >= 1 is false), silently simulating a meaningless
// configuration.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// gapStub is an Arrivals implementation with a fixed reported mean gap,
// standing in for a buggy or misconfigured custom process.
type gapStub float64

func (g gapStub) NextGap(*rng.Source, *uint64) int64 { return 1 * ms }
func (g gapStub) MeanGap() float64                   { return float64(g) }
func (g gapStub) String() string                     { return "stub" }

func TestValidateRejectsDegenerateMeanGaps(t *testing.T) {
	for _, mg := range []float64{math.NaN(), 0, -5 * float64(ms), math.Inf(1), math.Inf(-1)} {
		cfg := Config{Arrivals: gapStub(mg), Duration: Fixed(1 * ms), Target: AllNodes}
		if err := cfg.Validate(); err == nil {
			t.Errorf("mean gap %v accepted by Validate", mg)
		}
		if _, err := NewCE(4, cfg); err == nil {
			t.Errorf("mean gap %v accepted by NewCE", mg)
		}
	}
}

func TestValidateAcceptsFiniteMeanGap(t *testing.T) {
	cfg := Config{Arrivals: gapStub(20 * float64(ms)), Duration: Fixed(1 * ms), Target: AllNodes}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("finite positive mean gap rejected: %v", err)
	}
}

func TestLoadFactorFailsSafeOnDegenerateGap(t *testing.T) {
	for _, mg := range []float64{math.NaN(), 0, -1} {
		cfg := Config{Arrivals: gapStub(mg), Duration: Fixed(1 * ms), Target: AllNodes}
		lf := cfg.LoadFactor()
		// +Inf trips any `lf >= threshold` saturation guard; NaN would
		// slip every comparison.
		if !math.IsInf(lf, 1) {
			t.Errorf("LoadFactor with mean gap %v = %v, want +Inf", mg, lf)
		}
	}
	// Sanity: a real configuration still reports rho = E[D]/E[gap].
	cfg := Config{MTBCE: 100 * ms, Duration: Fixed(50 * ms), Target: AllNodes}
	if lf := cfg.LoadFactor(); math.Abs(lf-0.5) > 1e-12 {
		t.Fatalf("LoadFactor = %v, want 0.5", lf)
	}
}
