package noise

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPoissonMeanGap(t *testing.T) {
	p := Poisson(5 * ms)
	if p.MeanGap() != float64(5*ms) {
		t.Fatalf("MeanGap = %v", p.MeanGap())
	}
	src := rng.New(1)
	var state uint64
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(p.NextGap(src, &state))
	}
	got := sum / n
	if math.Abs(got-float64(5*ms))/float64(5*ms) > 0.02 {
		t.Fatalf("empirical mean gap %v, want ~%v", got, float64(5*ms))
	}
	if state != 0 {
		t.Fatal("poisson touched the state word")
	}
}

func TestBurstyValidate(t *testing.T) {
	good := Bursty{QuietGap: 10 * s, BurstGap: 10 * ms, BurstLen: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid bursty rejected: %v", err)
	}
	bad := []Bursty{
		{QuietGap: 0, BurstGap: 1, BurstLen: 2},
		{QuietGap: 1, BurstGap: 0, BurstLen: 2},
		{QuietGap: 1, BurstGap: 1, BurstLen: 0.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad bursty %d accepted", i)
		}
	}
}

func TestBurstyMeanGapFormula(t *testing.T) {
	b := Bursty{QuietGap: 100 * ms, BurstGap: 1 * ms, BurstLen: 10}
	// (100ms + 9*1ms)/10 = 10.9ms
	want := (float64(100*ms) + 9*float64(ms)) / 10
	if math.Abs(b.MeanGap()-want) > 1e-6 {
		t.Fatalf("MeanGap = %v, want %v", b.MeanGap(), want)
	}
}

func TestBurstyEmpiricalMeanGap(t *testing.T) {
	b := Bursty{QuietGap: 50 * ms, BurstGap: 500 * us, BurstLen: 8}
	src := rng.New(7)
	var state uint64
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(b.NextGap(src, &state))
	}
	got := sum / n
	want := b.MeanGap()
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("empirical mean gap %v, want ~%v", got, want)
	}
}

func TestBurstyBurstStructure(t *testing.T) {
	// Gaps within a burst must be drawn from the short distribution:
	// classify gaps as quiet (> threshold) or burst, and verify mean
	// burst length.
	b := Bursty{QuietGap: 10 * s, BurstGap: 1 * ms, BurstLen: 6}
	src := rng.New(3)
	var state uint64
	threshold := int64(500 * ms) // far between the two regimes
	bursts := 0
	events := 0
	for i := 0; i < 100000; i++ {
		g := b.NextGap(src, &state)
		if g > threshold {
			bursts++
		}
		events++
	}
	meanLen := float64(events) / float64(bursts)
	if math.Abs(meanLen-6)/6 > 0.1 {
		t.Fatalf("mean burst length %v, want ~6", meanLen)
	}
}

func TestBurstyDegeneratesToSingleEvents(t *testing.T) {
	// BurstLen=1: every gap is a quiet gap; equivalent to Poisson.
	b := Bursty{QuietGap: 7 * ms, BurstGap: 1, BurstLen: 1}
	src := rng.New(5)
	var state uint64
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(b.NextGap(src, &state))
		if state != 0 {
			t.Fatal("burst state non-zero with BurstLen=1")
		}
	}
	got := sum / n
	if math.Abs(got-float64(7*ms))/float64(7*ms) > 0.02 {
		t.Fatalf("degenerate bursty mean %v, want ~%v", got, float64(7*ms))
	}
}

func TestCEWithBurstyArrivals(t *testing.T) {
	m, err := NewCE(1, Config{
		Seed:     1,
		Arrivals: Bursty{QuietGap: 100 * ms, BurstGap: 200 * us, BurstLen: 10},
		Duration: Fixed(10 * us),
		Target:   AllNodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := m.Extend(0, 0, 100*s)
	if end <= 100*s {
		t.Fatal("bursty arrivals produced no detours over 100s")
	}
	// Effective rate: MeanGap ~ (100ms+9*0.2ms)/10 = 10.18ms; over the
	// busy window events ~= end/10.18ms. Burst clustering makes the
	// count noisier than a Poisson process, hence the loose tolerance.
	got := float64(m.Events())
	want := float64(end) / 10.18e6
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("bursty event count %v, want ~%v", got, want)
	}
}

func TestConfigArrivalsOverridesMTBCE(t *testing.T) {
	// With Arrivals set, MTBCE is ignored: load factor must come from
	// the arrival process.
	c := Config{
		MTBCE:    1, // absurd, would be load 1e6
		Arrivals: Poisson(1 * s),
		Duration: Fixed(1 * ms),
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("config with arrivals rejected: %v", err)
	}
	if got := c.LoadFactor(); math.Abs(got-0.001) > 1e-9 {
		t.Fatalf("LoadFactor = %v, want 0.001", got)
	}
}

func TestConfigBadArrivalsRejected(t *testing.T) {
	c := Config{Arrivals: Poisson(0), Duration: Fixed(1)}
	if err := c.Validate(); err == nil {
		t.Fatal("zero-mean arrival process accepted")
	}
}

func TestBurstyDeterministic(t *testing.T) {
	b := Bursty{QuietGap: 10 * ms, BurstGap: 100 * us, BurstLen: 4}
	run := func() []int64 {
		src := rng.New(11)
		var state uint64
		out := make([]int64, 1000)
		for i := range out {
			out[i] = b.NextGap(src, &state)
		}
		return out
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("gap %d differs", i)
		}
	}
}

// Property: gaps are always positive and bursts always terminate.
func TestQuickBurstyGapsPositive(t *testing.T) {
	f := func(seed uint64, quietRaw, burstRaw uint16, lenRaw uint8) bool {
		b := Bursty{
			QuietGap: int64(quietRaw)*ms + 1,
			BurstGap: int64(burstRaw)*us + 1,
			BurstLen: 1 + float64(lenRaw%20),
		}
		src := rng.New(seed)
		var state uint64
		for i := 0; i < 200; i++ {
			if b.NextGap(src, &state) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w := Weibull{Scale: float64(5 * ms), Shape: 1}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.MeanGap()-float64(5*ms)) > 1 {
		t.Fatalf("shape-1 mean %v, want scale %v", w.MeanGap(), float64(5*ms))
	}
	src := rng.New(3)
	var state uint64
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		g := w.NextGap(src, &state)
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += float64(g)
	}
	got := sum / n
	if math.Abs(got-float64(5*ms))/float64(5*ms) > 0.02 {
		t.Fatalf("empirical mean %v, want ~%v", got, float64(5*ms))
	}
}

func TestWeibullClusteringShape(t *testing.T) {
	// Shape < 1: higher variance than exponential at the same mean —
	// check the coefficient of variation exceeds 1.
	w := Weibull{Scale: float64(ms), Shape: 0.5}
	src := rng.New(7)
	var state uint64
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := float64(w.NextGap(src, &state))
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if cv := sd / mean; cv < 1.5 {
		t.Fatalf("shape 0.5 CV = %v, want heavy-tailed (> 1.5)", cv)
	}
	// Mean matches lambda*Gamma(3) = 2*lambda.
	if math.Abs(mean-w.MeanGap())/w.MeanGap() > 0.05 {
		t.Fatalf("empirical mean %v vs analytic %v", mean, w.MeanGap())
	}
}

func TestWeibullValidate(t *testing.T) {
	if err := (Weibull{Scale: 0, Shape: 1}).Validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := (Weibull{Scale: 1, Shape: 0}).Validate(); err == nil {
		t.Fatal("zero shape accepted")
	}
}

func TestCEWithWeibullArrivals(t *testing.T) {
	m, err := NewCE(1, Config{
		Seed:     5,
		Arrivals: Weibull{Scale: float64(10 * ms), Shape: 0.7},
		Duration: Fixed(10 * us),
		Target:   AllNodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := m.Extend(0, 0, 10*s)
	if end <= 10*s || m.Events() == 0 {
		t.Fatal("weibull arrivals produced no detours")
	}
}
