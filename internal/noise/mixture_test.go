package noise

import (
	"testing"

	"repro/internal/rng"
)

// scripted replays a fixed gap cycle: a composite process whose
// combined mean gap is dominated by a fast component while a rare slow
// component contributes occasional burst trains.
type scripted struct {
	gaps []int64
	mean float64
}

func (s *scripted) NextGap(_ *rng.Source, state *uint64) int64 {
	g := s.gaps[int(*state)%len(s.gaps)]
	*state++
	return g
}

func (s *scripted) MeanGap() float64 { return s.mean }

func (s *scripted) String() string { return "scripted-mix" }

// scriptedMix additionally reports its slowest component, the
// ComponentGapper contract mixtures implement.
type scriptedMix struct {
	scripted
	maxComp float64
}

func (s *scriptedMix) MaxComponentMeanGap() float64 { return s.maxComp }

// mixGaps is a burst train of six CEs 10ns apart after a long quiet
// gap.
// The combined mean gap (advertised as 50ns by the fast component's
// dominance) is far below the quiet stretch, so a guard calibrated to
// the combined mean misreads the train as saturation.
func mixGaps() []int64 { return []int64{100000, 10, 10, 10, 10, 10} }

func TestMixtureBurstNotSaturation(t *testing.T) {
	// Without component information the guard gap is the combined mean
	// (50ns): a single burst train steals 5*200 = 1000ns > 50*10 and
	// trips the guard. This is the false positive the ComponentGapper
	// contract exists to prevent.
	cfg := Config{
		Seed:             1,
		Arrivals:         &scripted{gaps: mixGaps(), mean: 50},
		Duration:         Fixed(200),
		Target:           AllNodes,
		SaturationFactor: 10,
	}
	m, err := NewCE(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A short work interval overlapping the train: the guard budget is
	// max(20, 50)*10 = 500ns and the train steals 6*200 = 1200ns.
	m.Extend(0, 99990, 20)
	if !m.Saturated() {
		t.Fatal("combined-mean guard unexpectedly survived the burst train; the regression scenario no longer bites")
	}

	// The same schedule with the slow component's mean gap reported:
	// the guard budget becomes 100000*10 and the train passes as the
	// legitimate burst it is.
	cfg.Arrivals = &scriptedMix{scripted{gaps: mixGaps(), mean: 50}, 100000}
	m, err = NewCE(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	end := m.Extend(0, 99990, 20)
	if m.Saturated() {
		t.Fatal("burst train from a slow mode misread as saturation despite ComponentGapper")
	}
	if m.Events() != 6 || end != 100010+6*200 {
		t.Fatalf("burst train mischarged: events %d, end %d", m.Events(), end)
	}
}

func TestMixtureGenuineSaturationDetected(t *testing.T) {
	// A component that truly renews faster than its handling time must
	// still trip the guard even with the raised component budget.
	cfg := Config{
		Seed:             1,
		Arrivals:         &scriptedMix{scripted{gaps: []int64{10}, mean: 10}, 500},
		Duration:         Fixed(200),
		Target:           AllNodes,
		SaturationFactor: 10,
	}
	m, err := NewCE(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Extend(0, 0, 1000)
	if !m.Saturated() {
		t.Fatal("genuinely saturating mixture component not detected")
	}
}
