package noise

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const (
	us = int64(1000)
	ms = int64(1000 * 1000)
	s  = int64(1000 * 1000 * 1000)
)

func TestNoneIsIdentity(t *testing.T) {
	var m None
	if got := m.Extend(3, 100, 50); got != 150 {
		t.Fatalf("None.Extend = %d, want 150", got)
	}
}

func TestFixedDuration(t *testing.T) {
	d := Fixed(42)
	if d.Sample(nil, 0) != 42 || d.Sample(nil, 99) != 42 {
		t.Fatal("Fixed sample wrong")
	}
	if d.Mean() != 42 {
		t.Fatal("Fixed mean wrong")
	}
}

func TestEveryNth(t *testing.T) {
	d := EveryNth{Base: 7 * ms, Extra: 500 * ms, N: 10}
	total := int64(0)
	for c := uint64(0); c < 100; c++ {
		total += d.Sample(nil, c)
	}
	// 100 events: 100 * 7ms + 10 * 500ms
	want := 100*7*ms + 10*500*ms
	if total != want {
		t.Fatalf("EveryNth total over 100 events = %d, want %d", total, want)
	}
	if got, want := d.Mean(), float64(7*ms)+float64(500*ms)/10; got != want {
		t.Fatalf("EveryNth mean = %v, want %v", got, want)
	}
}

func TestEveryNthZeroN(t *testing.T) {
	d := EveryNth{Base: 5, Extra: 100, N: 0}
	if d.Sample(nil, 0) != 5 {
		t.Fatal("N=0 should never add Extra")
	}
	if d.Mean() != 5 {
		t.Fatal("N=0 mean should be Base")
	}
}

func TestExponentialDurationMean(t *testing.T) {
	d := Exponential(1 * ms)
	src := rng.New(1)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(src, 0))
	}
	got := sum / n
	if math.Abs(got-float64(ms))/float64(ms) > 0.02 {
		t.Fatalf("exponential duration mean = %v, want ~%v", got, float64(ms))
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Seed: 1, MTBCE: s, Duration: Fixed(ms), Target: AllNodes}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{MTBCE: 0, Duration: Fixed(1), Target: AllNodes},
		{MTBCE: -5, Duration: Fixed(1), Target: AllNodes},
		{MTBCE: s, Duration: nil, Target: AllNodes},
		{MTBCE: s, Duration: Fixed(1), Target: -7},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewCERejectsBadTarget(t *testing.T) {
	if _, err := NewCE(4, Config{Seed: 1, MTBCE: s, Duration: Fixed(1), Target: 4}); err == nil {
		t.Fatal("target beyond node count accepted")
	}
}

func TestLoadFactor(t *testing.T) {
	c := Config{MTBCE: 200 * ms, Duration: Fixed(133 * ms)}
	if got := c.LoadFactor(); math.Abs(got-0.665) > 1e-9 {
		t.Fatalf("LoadFactor = %v, want 0.665", got)
	}
}

func TestExtendDeterministic(t *testing.T) {
	mk := func() *CE {
		m, err := NewCE(8, Config{Seed: 7, MTBCE: 10 * ms, Duration: Fixed(ms), Target: AllNodes})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	tm := int64(0)
	for i := 0; i < 1000; i++ {
		ea := a.Extend(int32(i%8), tm, 5*ms)
		eb := b.Extend(int32(i%8), tm, 5*ms)
		if ea != eb {
			t.Fatalf("step %d: nondeterministic extension %d vs %d", i, ea, eb)
		}
		tm = ea
	}
	if a.Events() != b.Events() || a.Stolen() != b.Stolen() {
		t.Fatal("counters diverged")
	}
}

func TestExtendStatisticalRate(t *testing.T) {
	// Run a node busy for a long window; the number of charged events
	// should approximate window / MTBCE (since the node is always busy).
	mtbce := 10 * ms
	m, err := NewCE(1, Config{Seed: 3, MTBCE: mtbce, Duration: Fixed(10 * us), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	var tm int64
	work := int64(100 * s)
	end := m.Extend(0, tm, work)
	if end <= work {
		t.Fatal("no detours charged over a 100s busy window")
	}
	// The busy window is [0, end) in wall-clock; the expected count is
	// end/mtbce. 100s/10ms = 10000 base events.
	got := float64(m.Events())
	want := float64(end) / float64(mtbce)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("event count %v, want ~%v", got, want)
	}
	if m.Stolen() != int64(m.Events())*10*us {
		t.Fatalf("stolen %d != events*duration", m.Stolen())
	}
}

func TestIdleEventsNotCharged(t *testing.T) {
	// Work windows separated by huge idle gaps: the events arriving in
	// the gaps must not delay the work.
	m, err := NewCE(1, Config{Seed: 5, MTBCE: ms, Duration: Fixed(100 * ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny work separated by 10s gaps: probability a CE lands inside
	// any 1ns window is negligible.
	tm := int64(0)
	charged := uint64(0)
	for i := 0; i < 100; i++ {
		end := m.Extend(0, tm, 1)
		if end != tm+1 {
			charged++
		}
		tm = end + 10*s
	}
	if charged > 2 {
		t.Fatalf("idle-period CEs charged against work %d times", charged)
	}
}

func TestSingleNodeTargeting(t *testing.T) {
	m, err := NewCE(4, Config{Seed: 9, MTBCE: ms, Duration: Fixed(100 * us), Target: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Non-target nodes see no detours ever.
	for node := int32(0); node < 4; node++ {
		if node == 2 {
			continue
		}
		if end := m.Extend(node, 0, 100*s); end != 100*s {
			t.Fatalf("node %d extended despite targeting node 2", node)
		}
	}
	if end := m.Extend(2, 0, 100*s); end == 100*s {
		t.Fatal("target node saw no detours over 100s at 1ms MTBCE")
	}
}

func TestSaturationDetected(t *testing.T) {
	// Handling time 10x the MTBCE: the node can never finish; the model
	// must bail out and flag saturation rather than loop forever.
	m, err := NewCE(1, Config{Seed: 1, MTBCE: ms, Duration: Fixed(10 * ms), Target: AllNodes, SaturationFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	m.Extend(0, 0, s)
	if !m.Saturated() {
		t.Fatal("divergent configuration not flagged as saturated")
	}
}

func TestNoSaturationAtModestLoad(t *testing.T) {
	m, err := NewCE(1, Config{Seed: 1, MTBCE: 100 * ms, Duration: Fixed(ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	var tm int64
	for i := 0; i < 100; i++ {
		tm = m.Extend(0, tm, 10*ms)
	}
	if m.Saturated() {
		t.Fatal("1% load flagged as saturated")
	}
}

func TestReset(t *testing.T) {
	m, err := NewCE(2, Config{Seed: 11, MTBCE: ms, Duration: Fixed(ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	first := m.Extend(0, 0, s)
	ev := m.Events()
	m.Reset()
	if m.Events() != 0 || m.Stolen() != 0 || m.Saturated() {
		t.Fatal("reset did not clear counters")
	}
	second := m.Extend(0, 0, s)
	if first != second || m.Events() != ev {
		t.Fatal("reset did not reproduce the original schedule")
	}
}

func TestSeedsChangeSchedule(t *testing.T) {
	mk := func(seed uint64) int64 {
		m, err := NewCE(1, Config{Seed: seed, MTBCE: ms, Duration: Fixed(ms), Target: AllNodes})
		if err != nil {
			t.Fatal(err)
		}
		return m.Extend(0, 0, s)
	}
	if mk(1) == mk(2) {
		t.Fatal("different seeds produced identical extensions over 1s")
	}
}

func TestNodesIndependent(t *testing.T) {
	m, err := NewCE(2, Config{Seed: 13, MTBCE: ms, Duration: Fixed(ms), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Extend(0, 0, s)
	b := m.Extend(1, 0, s)
	if a == b {
		t.Fatal("two nodes produced identical detour schedules")
	}
}

// Property: Extend never returns a time before start+dur, and is
// monotone in dur.
func TestQuickExtendLowerBound(t *testing.T) {
	f := func(seed uint64, durRaw uint32) bool {
		m, err := NewCE(1, Config{Seed: seed, MTBCE: ms, Duration: Fixed(10 * us), Target: AllNodes})
		if err != nil {
			return false
		}
		dur := int64(durRaw)
		return m.Extend(0, 0, dur) >= dur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a longer MTBCE (rarer errors) the same workload never
// finishes later in expectation; we check with a paired-seed comparison
// over a long window where the law of large numbers applies.
func TestRareErrorsHurtLess(t *testing.T) {
	total := func(mtbce int64) int64 {
		m, err := NewCE(1, Config{Seed: 17, MTBCE: mtbce, Duration: Fixed(ms), Target: AllNodes})
		if err != nil {
			t.Fatal(err)
		}
		return m.Extend(0, 0, 1000*s)
	}
	frequent := total(10 * ms)
	rare := total(10 * s)
	if rare >= frequent {
		t.Fatalf("rarer CEs produced more delay: %d vs %d", rare, frequent)
	}
}

func BenchmarkExtend(b *testing.B) {
	m, err := NewCE(1, Config{Seed: 1, MTBCE: ms, Duration: Fixed(10 * us), Target: AllNodes})
	if err != nil {
		b.Fatal(err)
	}
	var tm int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm = m.Extend(0, tm, 100*us)
	}
}
