package noise

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// SharedCE is the correlated-detour variant of CE for simulations that
// place several ranks on each node. Firmware-first logging enters
// System Management Mode, which halts *all* cores of the node at once
// (§III-B); with more than one rank per node, every co-located rank
// must observe the same detour schedule. SharedCE materializes each
// node's (arrival, duration) schedule lazily and lets any rank charge
// the detours that fall into its own busy windows, in any time order.
//
// For the one-rank-per-node configuration the streaming CE model is
// cheaper; use SharedCE when ranks share nodes.
type SharedCE struct {
	cfg          Config
	ranksPerNode int
	nodes        []sharedNode

	events    uint64
	stolen    int64
	saturated bool
}

type sharedNode struct {
	src      *rng.Source
	arrState uint64
	count    uint64
	horizon  int64   // schedule materialized up to this time
	times    []int64 // arrival times, ascending
	durs     []int64 // handling durations, same index
	started  bool
}

// maxScheduleLen bounds per-node schedule growth; hitting it marks the
// model saturated (the configuration generates absurd event counts).
const maxScheduleLen = 1 << 22

// NewSharedCE builds a correlated detour model for nodes*ranksPerNode
// ranks. Rank r lives on node r/ranksPerNode.
func NewSharedCE(nodes, ranksPerNode int, cfg Config) (*SharedCE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranksPerNode < 1 {
		return nil, fmt.Errorf("noise: ranks per node must be >= 1, got %d", ranksPerNode)
	}
	if cfg.Target != AllNodes && int(cfg.Target) >= nodes {
		return nil, fmt.Errorf("noise: target node %d outside [0,%d)", cfg.Target, nodes)
	}
	if cfg.SaturationFactor == 0 {
		cfg.SaturationFactor = 10000
	}
	return &SharedCE{cfg: cfg, ranksPerNode: ranksPerNode, nodes: make([]sharedNode, nodes)}, nil
}

// ensure materializes node n's schedule up to at least time t.
func (m *SharedCE) ensure(n *sharedNode, node int32, t int64) {
	if !n.started {
		n.src = rng.NewStream(m.cfg.Seed, uint64(node))
		n.started = true
	}
	arr := m.cfg.arrivals()
	for n.horizon <= t {
		gap := arr.NextGap(n.src, &n.arrState)
		n.horizon += gap
		n.times = append(n.times, n.horizon)
		n.durs = append(n.durs, m.cfg.Duration.Sample(n.src, n.count))
		n.count++
		if len(n.times) >= maxScheduleLen {
			m.saturated = true
			return
		}
	}
}

// Extend implements Model for ranks; it accepts calls in any time order
// from the ranks sharing a node. The model argument is the *rank* id;
// the node is derived from the configured ranks-per-node.
func (m *SharedCE) Extend(rank int32, start, dur int64) int64 {
	node := rank / int32(m.ranksPerNode)
	if m.cfg.Target != AllNodes && node != m.cfg.Target {
		return start + dur
	}
	n := &m.nodes[node]
	end := start + dur
	limit := dur
	if mg := int64(m.cfg.arrivals().MeanGap()); mg > limit {
		limit = mg
	}
	maxSteal := limit * m.cfg.SaturationFactor
	m.ensure(n, node, end)
	if m.saturated {
		return end
	}
	// First arrival at or after start.
	i := sort.Search(len(n.times), func(k int) bool { return n.times[k] >= start })
	var stolenHere int64
	for {
		if i >= len(n.times) {
			m.ensure(n, node, end)
			if m.saturated || i >= len(n.times) {
				break
			}
		}
		if n.times[i] >= end {
			break
		}
		d := n.durs[i]
		end += d
		stolenHere += d
		m.events++
		m.stolen += d
		i++
		if stolenHere > maxSteal {
			m.saturated = true
			break
		}
	}
	return end
}

// Events returns the number of detours charged across all ranks. With
// several ranks per node a single CE can be charged by each co-located
// rank whose busy window covers it; Events counts charges, not CEs.
func (m *SharedCE) Events() uint64 { return m.events }

// Stolen returns total charged detour time across all ranks.
func (m *SharedCE) Stolen() int64 { return m.stolen }

// Saturated reports schedule blow-up or a diverging work interval.
func (m *SharedCE) Saturated() bool { return m.saturated }

// NodeSchedule returns a copy of the (arrival, duration) pairs
// materialized so far for a node — the detour trace for analysis.
func (m *SharedCE) NodeSchedule(node int32) (times, durs []int64) {
	n := &m.nodes[node]
	return append([]int64(nil), n.times...), append([]int64(nil), n.durs...)
}
