package noise

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Arrivals models the CE arrival process on one node. Implementations
// draw successive inter-arrival gaps; per-node process state (e.g. the
// remaining length of a burst) lives in the caller-provided word so a
// single Arrivals value serves every node.
type Arrivals interface {
	// NextGap returns the time to the next CE, in nanoseconds.
	NextGap(src *rng.Source, state *uint64) int64
	// MeanGap returns the long-run mean inter-arrival time.
	MeanGap() float64
	fmt.Stringer
}

// GapBatcher is implemented by arrival processes that can draw a block
// of gaps in one call. The draws must consume the rng stream exactly as
// the same number of successive NextGap calls would, so batched and
// unbatched generation yield bit-identical arrival schedules. CE uses
// this to amortize the per-arrival interface call when the duration
// model draws no randomness of its own.
type GapBatcher interface {
	AppendGaps(dst []int64, src *rng.Source, state *uint64, n int) []int64
}

// ComponentGapper is implemented by composite arrival processes (such
// as fault-mode mixtures) whose components renew at different time
// scales. MaxComponentMeanGap returns the mean inter-arrival time of
// the slowest component. CE calibrates its saturation guard to this
// instead of the combined MeanGap: the combined mean is dominated by
// the fastest component, so a legitimate burst train from a rare slow
// mode could otherwise be misread as saturation.
type ComponentGapper interface {
	MaxComponentMeanGap() float64
}

// Poisson is the paper's arrival model: exponential inter-arrivals with
// the given mean (MTBCE), i.e. a homogeneous Poisson process.
type Poisson int64

// NextGap draws an exponential gap.
func (p Poisson) NextGap(src *rng.Source, _ *uint64) int64 {
	return int64(src.Exp(float64(p)))
}

// AppendGaps draws n exponential gaps in one call.
func (p Poisson) AppendGaps(dst []int64, src *rng.Source, _ *uint64, n int) []int64 {
	mean := float64(p)
	for i := 0; i < n; i++ {
		dst = append(dst, int64(src.Exp(mean)))
	}
	return dst
}

// MeanGap returns the MTBCE.
func (p Poisson) MeanGap() float64 { return float64(p) }

func (p Poisson) String() string { return fmt.Sprintf("poisson(mtbce=%dns)", int64(p)) }

// Bursty is a two-state (Markov-modulated) arrival process for the
// bursty single-node CE behaviour the paper's conclusions call out: a
// faulty row or column produces trains of closely spaced CEs separated
// by long quiet periods. Quiet gaps are exponential with mean
// QuietGap; each quiet gap is followed by a burst of geometrically
// distributed length (mean BurstLen) whose internal gaps are
// exponential with mean BurstGap.
type Bursty struct {
	// QuietGap is the mean gap between bursts, ns.
	QuietGap int64
	// BurstGap is the mean gap between CEs inside a burst, ns.
	BurstGap int64
	// BurstLen is the mean number of CEs per burst (>= 1).
	BurstLen float64
}

// Validate reports configuration errors.
func (b Bursty) Validate() error {
	if b.QuietGap <= 0 || b.BurstGap <= 0 {
		return fmt.Errorf("noise: bursty gaps must be positive: %+v", b)
	}
	if b.BurstLen < 1 {
		return fmt.Errorf("noise: bursty mean burst length must be >= 1, got %v", b.BurstLen)
	}
	return nil
}

// NextGap draws the next inter-arrival. The state word holds the number
// of CEs remaining in the current burst.
func (b Bursty) NextGap(src *rng.Source, state *uint64) int64 {
	if *state == 0 {
		// Leaving quiet: draw the size of the next burst. A geometric
		// with mean BurstLen, shifted so every burst has at least one
		// event (the one this quiet gap leads to).
		n := uint64(1)
		if b.BurstLen > 1 {
			p := 1 / b.BurstLen
			for src.Float64() > p {
				n++
			}
		}
		*state = n - 1 // events remaining after this one
		return int64(src.Exp(float64(b.QuietGap)))
	}
	*state--
	return int64(src.Exp(float64(b.BurstGap)))
}

// AppendGaps draws n gaps in one call, consuming the rng stream exactly
// as n NextGap calls would.
func (b Bursty) AppendGaps(dst []int64, src *rng.Source, state *uint64, n int) []int64 {
	for i := 0; i < n; i++ {
		dst = append(dst, b.NextGap(src, state))
	}
	return dst
}

// MeanGap returns the long-run mean inter-arrival:
// (quiet + (L-1)*burstGap) / L for mean burst length L.
func (b Bursty) MeanGap() float64 {
	return (float64(b.QuietGap) + (b.BurstLen-1)*float64(b.BurstGap)) / b.BurstLen
}

func (b Bursty) String() string {
	return fmt.Sprintf("bursty(quiet=%dns,gap=%dns,len=%.1f)", b.QuietGap, b.BurstGap, b.BurstLen)
}

// Weibull inter-arrivals generalize the Poisson model: field studies of
// DRAM errors report clustered (shape < 1) inter-arrival distributions.
// Shape = 1 recovers the exponential; shape < 1 produces heavy-tailed
// clustering without explicit burst state.
type Weibull struct {
	// Scale is the characteristic time lambda, ns.
	Scale float64
	// Shape is the Weibull k parameter (> 0).
	Shape float64
}

// Validate reports parameter errors.
func (w Weibull) Validate() error {
	if w.Scale <= 0 || w.Shape <= 0 {
		return fmt.Errorf("noise: weibull parameters must be positive: %+v", w)
	}
	return nil
}

// NextGap draws via inverse transform: lambda * (-ln U)^(1/k).
func (w Weibull) NextGap(src *rng.Source, _ *uint64) int64 {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	return int64(w.Scale * math.Pow(-math.Log(u), 1/w.Shape))
}

// AppendGaps draws n Weibull gaps in one call.
func (w Weibull) AppendGaps(dst []int64, src *rng.Source, state *uint64, n int) []int64 {
	for i := 0; i < n; i++ {
		dst = append(dst, w.NextGap(src, state))
	}
	return dst
}

// MeanGap returns lambda * Gamma(1 + 1/k).
func (w Weibull) MeanGap() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

func (w Weibull) String() string {
	return fmt.Sprintf("weibull(scale=%.0fns,shape=%.2f)", w.Scale, w.Shape)
}
