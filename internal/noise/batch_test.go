package noise

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rng"
)

// fixedGaps is a deterministic arrival process: every inter-arrival gap
// is the same constant, so arrival times land at exact multiples of the
// gap and boundary semantics can be pinned precisely.
type fixedGaps int64

func (g fixedGaps) NextGap(*rng.Source, *uint64) int64 { return int64(g) }
func (g fixedGaps) MeanGap() float64                   { return float64(g) }
func (g fixedGaps) String() string                     { return fmt.Sprintf("fixedgaps(%dns)", int64(g)) }

// fixedGapsBatched is fixedGaps with batch support.
type fixedGapsBatched struct{ fixedGaps }

func (g fixedGapsBatched) AppendGaps(dst []int64, _ *rng.Source, _ *uint64, n int) []int64 {
	for i := 0; i < n; i++ {
		dst = append(dst, int64(g.fixedGaps))
	}
	return dst
}

// unbatched strips the GapBatcher implementation from an arrival
// process, forcing CE onto the one-at-a-time path.
type unbatched struct{ Arrivals }

// TestExactlyOnHorizonArrival pins the boundary contract: an arrival
// exactly at the start of a busy window is charged to that window; an
// arrival exactly at the end of a busy window is NOT charged to it, but
// to the next window that covers it — in both cases exactly once.
// Regression test for the batched-arrival rewrite: the prefetch buffer
// must not shift which window a boundary arrival lands in.
func TestExactlyOnHorizonArrival(t *testing.T) {
	for _, tc := range []struct {
		name string
		arr  Arrivals
	}{
		{"unbatched", fixedGaps(100)},
		{"batched", fixedGapsBatched{fixedGaps(100)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewCE(1, Config{Seed: 1, Arrivals: tc.arr, Duration: Fixed(7), Target: AllNodes})
			if err != nil {
				t.Fatal(err)
			}
			// Arrivals at t=100, 200, 300, ...
			// Window [0,100): arrival at 100 is exactly the horizon — not
			// charged here.
			if end := m.Extend(0, 0, 100); end != 100 {
				t.Fatalf("window [0,100): end = %d, want 100 (horizon arrival charged early)", end)
			}
			if m.Events() != 0 {
				t.Fatalf("window [0,100): %d events charged, want 0", m.Events())
			}
			// Window [100,150): arrival at 100 is exactly the start —
			// charged here, exactly once.
			if end := m.Extend(0, 100, 50); end != 157 {
				t.Fatalf("window [100,150): end = %d, want 157", end)
			}
			if m.Events() != 1 {
				t.Fatalf("window [100,150): %d events charged, want 1", m.Events())
			}
			// Window [157,200): next arrival at 200 is the horizon again.
			if end := m.Extend(0, 157, 43); end != 200 {
				t.Fatalf("window [157,200): end = %d, want 200", end)
			}
			if m.Events() != 1 {
				t.Fatalf("window [157,200): arrival at 200 charged twice or early: %d events", m.Events())
			}
			// Window [250,260): the arrival at 200 fell in idle time
			// [200,250) — dropped without charge, not carried forward.
			if end := m.Extend(0, 250, 10); end != 260 {
				t.Fatalf("window [250,260): end = %d, want 260", end)
			}
			if m.Events() != 1 {
				t.Fatalf("idle arrival was charged: %d events", m.Events())
			}
			// Window [260,301): arrival at 300 charged once.
			if end := m.Extend(0, 260, 41); end != 308 {
				t.Fatalf("window [260,301): end = %d, want 308", end)
			}
			if m.Events() != 2 {
				t.Fatalf("window [260,301): %d events, want 2", m.Events())
			}
		})
	}
}

// TestBatchedMatchesUnbatched replays identical random window sequences
// through a batching CE and a forced-unbatched CE with the same seed,
// for each batch-capable arrival process, and requires identical ends,
// event counts and stolen time. This is the bit-identity proof for the
// amortized block generation.
func TestBatchedMatchesUnbatched(t *testing.T) {
	arrs := []Arrivals{
		Poisson(50_000),
		Bursty{QuietGap: 200_000, BurstGap: 2_000, BurstLen: 5},
		Weibull{Scale: 60_000, Shape: 0.7},
	}
	durs := []Duration{Fixed(1_000), EveryNth{Base: 500, Extra: 20_000, N: 10}}
	for _, arr := range arrs {
		for _, dur := range durs {
			t.Run(fmt.Sprintf("%v/%v", arr, dur), func(t *testing.T) {
				a, err := NewCE(4, Config{Seed: 42, Arrivals: arr, Duration: dur, Target: AllNodes})
				if err != nil {
					t.Fatal(err)
				}
				b, err := NewCE(4, Config{Seed: 42, Arrivals: unbatched{arr}, Duration: dur, Target: AllNodes})
				if err != nil {
					t.Fatal(err)
				}
				if a.batcher == nil {
					t.Fatal("batching not engaged on batch-capable process")
				}
				if b.batcher != nil {
					t.Fatal("unbatched wrapper still batching")
				}
				r := rand.New(rand.NewSource(9))
				clock := [4]int64{}
				for i := 0; i < 4000; i++ {
					node := int32(r.Intn(4))
					start := clock[node] + int64(r.Intn(30_000))
					d := int64(r.Intn(20_000))
					ea, eb := a.Extend(node, start, d), b.Extend(node, start, d)
					if ea != eb {
						t.Fatalf("step %d node %d [%d,+%d): batched end %d, unbatched end %d", i, node, start, d, ea, eb)
					}
					clock[node] = ea
				}
				if a.Events() != b.Events() || a.Stolen() != b.Stolen() {
					t.Fatalf("counters diverged: events %d vs %d, stolen %d vs %d", a.Events(), b.Events(), a.Stolen(), b.Stolen())
				}
			})
		}
	}
}

// TestNextArrivalContract checks the cacheability contract the
// simulator relies on: NextArrival reports the next arrival time, a
// window ending at or before it is a no-op, and the value stays valid
// until the next Extend call on that node.
func TestNextArrivalContract(t *testing.T) {
	m, err := NewCE(2, Config{Seed: 3, MTBCE: 10_000, Duration: Fixed(100), Target: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	next := m.NextArrival(0)
	if next <= 0 {
		t.Fatalf("first arrival at %d, want positive", next)
	}
	// Windows that end exactly at the arrival charge nothing and leave
	// the schedule untouched.
	if end := m.Extend(0, 0, next); end != next {
		t.Fatalf("window up to arrival: end %d, want %d", end, next)
	}
	if got := m.NextArrival(0); got != next {
		t.Fatalf("no-op window moved the arrival: %d -> %d", next, got)
	}
	// A window that covers it charges it and advances the schedule.
	if end := m.Extend(0, 0, next+1); end != next+1+100 {
		t.Fatalf("covering window: end %d, want %d", end, next+1+100)
	}
	if got := m.NextArrival(0); got <= next {
		t.Fatalf("arrival schedule did not advance: %d -> %d", next, got)
	}
	// Targeted models report no arrivals on other nodes.
	tm, err := NewCE(2, Config{Seed: 3, MTBCE: 10_000, Duration: Fixed(100), Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.NextArrival(0); got != math.MaxInt64 {
		t.Fatalf("untargeted node reports arrival at %d, want MaxInt64", got)
	}
}
