package collectives

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/trace"
)

// collectiveMix builds a trace exercising every collective kind, with
// application p2p ops interleaved so tag/req rebasing is checked against
// surrounding traffic.
func collectiveMix(n int, size int64) *trace.Trace {
	tr := &trace.Trace{Name: "memo-mix", Ops: make([][]trace.Op, n)}
	for r := 0; r < n; r++ {
		tr.Ops[r] = []trace.Op{
			{Kind: trace.OpCalc, Dur: 1000},
			{Kind: trace.OpBarrier},
			{Kind: trace.OpAllreduce, Size: size},
			{Kind: trace.OpBcast, Peer: 0, Size: size},
			{Kind: trace.OpReduce, Peer: int32(n / 2), Size: size},
			{Kind: trace.OpAllgather, Size: size},
			{Kind: trace.OpAlltoall, Size: size},
			{Kind: trace.OpGather, Peer: 0, Size: size},
			{Kind: trace.OpScatter, Peer: int32(n - 1), Size: size},
			{Kind: trace.OpAllreduce, Size: size}, // repeat: exercises a cache hit
			{Kind: trace.OpCalc, Dur: 500},
		}
	}
	return tr
}

// TestMemoizedExpansionBitIdentical replays the full algorithm zoo
// through the memoized and the direct expansion paths and requires
// identical op streams — the bit-identity contract splice() relies on.
func TestMemoizedExpansionBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 31, 64} {
		for _, size := range []int64{0, 8, 4096, 64 << 10} {
			for _, algo := range []AllreduceAlgo{AllreduceAuto, AllreduceRecursiveDoubling, AllreduceRabenseifner, AllreduceRing} {
				t.Run(fmt.Sprintf("n=%d/size=%d/%v", n, size, algo), func(t *testing.T) {
					tr := collectiveMix(n, size)
					memo, err := Expand(tr, Config{Allreduce: algo})
					if err != nil {
						t.Fatal(err)
					}
					direct, err := Expand(tr, Config{Allreduce: algo, DisableMemo: true})
					if err != nil {
						t.Fatal(err)
					}
					for r := range direct.Ops {
						if !reflect.DeepEqual(memo.Ops[r], direct.Ops[r]) {
							t.Fatalf("rank %d: memoized expansion diverges from direct\nmemo:   %+v\ndirect: %+v",
								r, memo.Ops[r], direct.Ops[r])
						}
					}
				})
			}
		}
	}
}

// TestScheduleCacheHits: repeated expansion of the same trace must be
// served from the cache, not rebuilt.
func TestScheduleCacheHits(t *testing.T) {
	c := newScheduleCache(0)
	builds := 0
	key := schedKey{kind: trace.OpAllreduce, algo: AllreduceRing, n: 8, rank: 3, size: 1024}
	build := func() schedule { builds++; return buildCanonical(key) }
	first := c.getOrBuild(key, build)
	second := c.getOrBuild(key, build)
	if builds != 1 {
		t.Fatalf("schedule built %d times, want 1", builds)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cache returned a different schedule on the hit")
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestScheduleCacheEviction: the cache respects its byte bound, keeps
// the most recent entry even when it alone exceeds the bound, and
// counts evictions.
func TestScheduleCacheEviction(t *testing.T) {
	c := newScheduleCache(3 * (schedOpBytes*40 + schedEntryOverhead))
	for i := int32(0); i < 16; i++ {
		key := schedKey{kind: trace.OpAllreduce, algo: AllreduceRing, n: 16, rank: i, size: 2048}
		c.getOrBuild(key, func() schedule { return buildCanonical(key) })
	}
	st := c.stats()
	if st.Entries >= 16 {
		t.Fatalf("no eviction happened: %d entries resident", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("eviction counter not incremented")
	}
	if st.SizeBytes > st.CapBytes && st.Entries > 1 {
		t.Fatalf("cache over bound with %d entries: %d > %d", st.Entries, st.SizeBytes, st.CapBytes)
	}
}

// TestScheduleCacheCoalescing: concurrent misses on one key run the
// builder once; everyone gets the same schedule.
func TestScheduleCacheCoalescing(t *testing.T) {
	c := newScheduleCache(0)
	key := schedKey{kind: trace.OpAlltoall, n: 32, rank: 5, size: 4096}
	var mu sync.Mutex
	builds := 0
	gate := make(chan struct{})
	build := func() schedule {
		mu.Lock()
		builds++
		mu.Unlock()
		<-gate // hold the flight open so others must coalesce
		return buildCanonical(key)
	}

	const workers = 8
	var wg sync.WaitGroup
	results := make([]schedule, workers)
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			results[i] = c.getOrBuild(key, build)
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	if builds != 1 {
		t.Fatalf("builder ran %d times under concurrency, want 1", builds)
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("worker %d got a different schedule", i)
		}
	}
	if st := c.stats(); st.Coalesced == 0 {
		t.Fatalf("no coalesced lookups recorded: %+v", st)
	}
}

// TestScheduleCacheProcessWideStats: expanding through the public API
// touches the process-wide cache.
func TestScheduleCacheProcessWideStats(t *testing.T) {
	before := ScheduleCache()
	if _, err := Expand(collectiveMix(8, 512), Config{}); err != nil {
		t.Fatal(err)
	}
	after := ScheduleCache()
	if after.Hits+after.Misses <= before.Hits+before.Misses {
		t.Fatalf("process-wide cache untouched by Expand: before %+v after %+v", before, after)
	}
}
