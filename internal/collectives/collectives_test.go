package collectives

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// rankCounts covers powers of two, non-powers, primes, and tiny sizes.
var rankCounts = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32, 33, 64, 100}

// uniformTrace builds a trace where every rank executes the same single
// collective op.
func uniformTrace(n int, op trace.Op) *trace.Trace {
	t := &trace.Trace{Name: "coll", Ops: make([][]trace.Op, n)}
	for r := range t.Ops {
		t.Ops[r] = []trace.Op{op}
	}
	return t
}

func expandAndRun(t *testing.T, n int, op trace.Op, cfg Config) ([]knowledge, []rankStats) {
	t.Helper()
	tr := uniformTrace(n, op)
	ex, err := Expand(tr, cfg)
	if err != nil {
		t.Fatalf("n=%d %s: expand: %v", n, op.Kind, err)
	}
	if err := ex.Validate(); err != nil {
		t.Fatalf("n=%d %s: expanded trace invalid: %v", n, op.Kind, err)
	}
	know, stats, err := runDataFlow(ex)
	if err != nil {
		t.Fatalf("n=%d %s: dataflow: %v", n, op.Kind, err)
	}
	for r, st := range stats {
		if st.Leftover != 0 {
			t.Fatalf("n=%d %s: rank %d has %d unconsumed messages", n, op.Kind, r, st.Leftover)
		}
	}
	return know, stats
}

func TestBarrierFullDependency(t *testing.T) {
	for _, n := range rankCounts {
		know, _ := expandAndRun(t, n, trace.Barrier(), Config{})
		for r, k := range know {
			if !k.full(int32(n)) {
				t.Fatalf("n=%d: rank %d barrier completion does not depend on all ranks", n, r)
			}
		}
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, n := range rankCounts {
		for _, root := range []int32{0, int32(n / 2), int32(n - 1)} {
			if root >= int32(n) {
				continue
			}
			know, _ := expandAndRun(t, n, trace.Bcast(root, 1024), Config{})
			for r, k := range know {
				if !k.has(root) {
					t.Fatalf("n=%d root=%d: rank %d never received the broadcast", n, root, r)
				}
			}
		}
	}
}

func TestReduceGathersAll(t *testing.T) {
	for _, n := range rankCounts {
		for _, root := range []int32{0, int32(n - 1)} {
			if root >= int32(n) {
				continue
			}
			know, _ := expandAndRun(t, n, trace.Reduce(root, 64), Config{})
			if !know[root].full(int32(n)) {
				t.Fatalf("n=%d root=%d: reduce root missing contributions", n, root)
			}
		}
	}
}

func TestGatherGathersAll(t *testing.T) {
	for _, n := range rankCounts {
		know, _ := expandAndRun(t, n, trace.Gather(0, 8), Config{})
		if !know[0].full(int32(n)) {
			t.Fatalf("n=%d: gather root missing contributions", n)
		}
	}
}

func TestScatterReachesAll(t *testing.T) {
	for _, n := range rankCounts {
		for _, root := range []int32{0, int32(n - 1)} {
			if root >= int32(n) {
				continue
			}
			know, _ := expandAndRun(t, n, trace.Scatter(root, 8), Config{})
			for r, k := range know {
				if !k.has(root) {
					t.Fatalf("n=%d root=%d: rank %d never received its scatter block", n, root, r)
				}
			}
		}
	}
}

func TestAllreduceAlgorithms(t *testing.T) {
	algos := []AllreduceAlgo{AllreduceRecursiveDoubling, AllreduceRabenseifner, AllreduceRing, AllreduceAuto}
	for _, algo := range algos {
		for _, n := range rankCounts {
			know, _ := expandAndRun(t, n, trace.Allreduce(4096), Config{Allreduce: algo})
			for r, k := range know {
				if !k.full(int32(n)) {
					t.Fatalf("algo=%s n=%d: rank %d allreduce result incomplete", algo, n, r)
				}
			}
		}
	}
}

func TestAllreduceAutoSwitches(t *testing.T) {
	// Small payload should use recursive doubling, large Rabenseifner;
	// verify by comparing op counts with the forced variants at a
	// power-of-two rank count where the two differ.
	n := 32
	small := uniformTrace(n, trace.Allreduce(8))
	large := uniformTrace(n, trace.Allreduce(1<<20))
	autoSmall, err := Expand(small, Config{Allreduce: AllreduceAuto})
	if err != nil {
		t.Fatal(err)
	}
	rdSmall, err := Expand(small, Config{Allreduce: AllreduceRecursiveDoubling})
	if err != nil {
		t.Fatal(err)
	}
	if autoSmall.NumOps() != rdSmall.NumOps() {
		t.Fatalf("auto small != recursive doubling: %d vs %d ops", autoSmall.NumOps(), rdSmall.NumOps())
	}
	autoLarge, err := Expand(large, Config{Allreduce: AllreduceAuto})
	if err != nil {
		t.Fatal(err)
	}
	rabLarge, err := Expand(large, Config{Allreduce: AllreduceRabenseifner})
	if err != nil {
		t.Fatal(err)
	}
	if autoLarge.NumOps() != rabLarge.NumOps() {
		t.Fatalf("auto large != rabenseifner: %d vs %d ops", autoLarge.NumOps(), rabLarge.NumOps())
	}
}

func TestAllgatherReachesAll(t *testing.T) {
	for _, n := range rankCounts {
		know, _ := expandAndRun(t, n, trace.Allgather(256), Config{})
		for r, k := range know {
			if !k.full(int32(n)) {
				t.Fatalf("n=%d: rank %d allgather incomplete", n, r)
			}
		}
	}
}

func TestAlltoallReachesAll(t *testing.T) {
	for _, n := range rankCounts {
		know, _ := expandAndRun(t, n, trace.Alltoall(64), Config{})
		for r, k := range know {
			if !k.full(int32(n)) {
				t.Fatalf("n=%d: rank %d alltoall incomplete", n, r)
			}
		}
	}
}

func TestBytesConservation(t *testing.T) {
	// Total bytes sent must equal total bytes received for every
	// expansion (nothing is dropped, nothing received twice).
	ops := []trace.Op{
		trace.Barrier(), trace.Bcast(0, 512), trace.Reduce(0, 512),
		trace.Allreduce(2048), trace.Allgather(128), trace.Alltoall(32),
		trace.Gather(0, 16), trace.Scatter(0, 16),
	}
	for _, op := range ops {
		for _, n := range []int{2, 5, 8, 17} {
			_, stats := expandAndRun(t, n, op, Config{})
			var sent, recv int64
			for _, s := range stats {
				sent += s.BytesSent
				recv += s.BytesRecv
			}
			if sent != recv {
				t.Fatalf("%s n=%d: sent %d != received %d", op.Kind, n, sent, recv)
			}
		}
	}
}

func TestSingleRankCollectivesAreEmpty(t *testing.T) {
	ops := []trace.Op{
		trace.Barrier(), trace.Bcast(0, 512), trace.Reduce(0, 512),
		trace.Allreduce(2048), trace.Allgather(128), trace.Alltoall(32),
		trace.Gather(0, 16), trace.Scatter(0, 16),
	}
	for _, op := range ops {
		ex, err := Expand(uniformTrace(1, op), Config{})
		if err != nil {
			t.Fatalf("%s: %v", op.Kind, err)
		}
		if len(ex.Ops[0]) != 0 {
			t.Fatalf("%s: single-rank collective emitted %d ops", op.Kind, len(ex.Ops[0]))
		}
	}
}

func TestExpandPreservesP2PAndCalc(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100), trace.Send(1, 64, 5), trace.Barrier(), trace.Recv(1, 64, 6)},
		{trace.Recv(0, 64, 5), trace.Barrier(), trace.Calc(50), trace.Send(0, 64, 6)},
	}}
	ex, err := Expand(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Ops[0][0] != trace.Calc(100) || ex.Ops[0][1] != trace.Send(1, 64, 5) {
		t.Fatal("non-collective prefix not preserved")
	}
	last := ex.Ops[0][len(ex.Ops[0])-1]
	if last != trace.Recv(1, 64, 6) {
		t.Fatalf("non-collective suffix not preserved: %+v", last)
	}
}

func TestExpandDistinctTagsPerInstance(t *testing.T) {
	tr := uniformTrace(4, trace.Barrier())
	for r := range tr.Ops {
		tr.Ops[r] = append(tr.Ops[r], trace.Barrier())
	}
	ex, err := Expand(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tags := map[int32]bool{}
	for _, op := range ex.Ops[0] {
		if op.Kind == trace.OpSend {
			tags[op.Tag] = true
		}
	}
	if len(tags) != 2 {
		t.Fatalf("two barriers produced %d distinct tags, want 2", len(tags))
	}
}

func TestExpandRejectsReservedTag(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 8, TagBase)},
		{trace.Recv(0, 8, TagBase)},
	}}
	if _, err := Expand(tr, Config{}); err == nil {
		t.Fatal("reserved tag accepted")
	}
}

func TestExpandRejectsReservedReq(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Isend(1, 8, 0, ReqBase), trace.Wait(ReqBase)},
		{trace.Recv(0, 8, 0)},
	}}
	if _, err := Expand(tr, Config{}); err == nil {
		t.Fatal("reserved request id accepted")
	}
}

func TestExpandRejectsMismatchedCollectives(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Barrier()},
		{trace.Allreduce(8)},
	}}
	if _, err := Expand(tr, Config{}); err == nil {
		t.Fatal("mismatched collectives accepted")
	}
	tr2 := &trace.Trace{Ops: [][]trace.Op{
		{trace.Allreduce(8)},
		{trace.Allreduce(16)},
	}}
	if _, err := Expand(tr2, Config{}); err == nil {
		t.Fatal("mismatched collective sizes accepted")
	}
}

func TestExpandEmptyTrace(t *testing.T) {
	if _, err := Expand(&trace.Trace{}, Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestBcastMessageCount(t *testing.T) {
	// A binomial broadcast sends exactly n-1 messages in total.
	for _, n := range rankCounts {
		ex, err := Expand(uniformTrace(n, trace.Bcast(0, 8)), Config{})
		if err != nil {
			t.Fatal(err)
		}
		sends := 0
		for _, ops := range ex.Ops {
			for _, op := range ops {
				if op.Kind == trace.OpSend || op.Kind == trace.OpIsend {
					sends++
				}
			}
		}
		if sends != n-1 {
			t.Fatalf("n=%d: binomial bcast sent %d messages, want %d", n, sends, n-1)
		}
	}
}

func TestBarrierRoundCount(t *testing.T) {
	// Dissemination barrier: each rank sends exactly ceil(log2 n)
	// messages.
	for _, n := range rankCounts {
		if n == 1 {
			continue
		}
		ex, err := Expand(uniformTrace(n, trace.Barrier()), Config{})
		if err != nil {
			t.Fatal(err)
		}
		rounds := 0
		for v := 1; v < n; v *= 2 {
			rounds++
		}
		for r, ops := range ex.Ops {
			sends := 0
			for _, op := range ops {
				if op.Kind == trace.OpSend || op.Kind == trace.OpIsend {
					sends++
				}
			}
			if sends != rounds {
				t.Fatalf("n=%d rank=%d: %d sends, want %d", n, r, sends, rounds)
			}
		}
	}
}

// Property: expansion of any single collective at any rank count yields a
// valid, deadlock-free trace with conserved bytes.
func TestQuickExpansionSound(t *testing.T) {
	f := func(nRaw uint8, kindSel uint8, rootRaw uint8, sizeRaw uint16, algoSel uint8) bool {
		n := 2 + int(nRaw%40)
		size := int64(sizeRaw) + 1
		root := int32(int(rootRaw) % n)
		var op trace.Op
		switch kindSel % 8 {
		case 0:
			op = trace.Barrier()
		case 1:
			op = trace.Bcast(root, size)
		case 2:
			op = trace.Reduce(root, size)
		case 3:
			op = trace.Allreduce(size)
		case 4:
			op = trace.Allgather(size)
		case 5:
			op = trace.Alltoall(size)
		case 6:
			op = trace.Gather(root, size)
		case 7:
			op = trace.Scatter(root, size)
		}
		cfg := Config{Allreduce: AllreduceAlgo(algoSel % 4)}
		ex, err := Expand(uniformTrace(n, op), cfg)
		if err != nil {
			return false
		}
		if err := ex.Validate(); err != nil {
			return false
		}
		_, stats, err := runDataFlow(ex)
		if err != nil {
			return false
		}
		var sent, recv int64
		for _, s := range stats {
			sent += s.BytesSent
			recv += s.BytesRecv
			if s.Leftover != 0 {
				return false
			}
		}
		return sent == recv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExpandAllreduce1024(b *testing.B) {
	tr := uniformTrace(1024, trace.Allreduce(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expand(tr, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
