// Package collectives expands MPI collective operations into the
// point-to-point schedules the simulator executes.
//
// LogGOPSim dissolves collectives into their constituent messages so that
// the simulator reproduces the exact dependency structure of each
// algorithm — which is what makes local detours (correctable-error
// handling) propagate realistically. This package implements the standard
// algorithm zoo:
//
//   - broadcast / reduce / gather / scatter: binomial trees
//   - barrier: dissemination
//   - allreduce: recursive doubling, Rabenseifner (reduce-scatter +
//     allgather), or ring; selectable for ablation studies
//   - allgather: Bruck (dissemination)
//   - alltoall: Bruck
//
// Expansion rewrites a trace in place of each collective op using
// reserved tag and request-id spaces (TagBase, ReqBase), so expanded
// messages can never match application point-to-point traffic.
package collectives

import (
	"fmt"

	"repro/internal/trace"
)

// TagBase is the first tag used for expanded collective messages.
// Application traces must keep user tags below this value.
const TagBase int32 = 1 << 28

// ReqBase is the first request id used for expanded nonblocking
// operations. Application traces must keep request ids below this value.
const ReqBase int32 = 1 << 30

// AllreduceAlgo selects the allreduce expansion algorithm.
type AllreduceAlgo int

// Allreduce algorithm choices.
const (
	// AllreduceAuto picks recursive doubling for small payloads and
	// Rabenseifner above RabenseifnerMin bytes.
	AllreduceAuto AllreduceAlgo = iota
	AllreduceRecursiveDoubling
	AllreduceRabenseifner
	AllreduceRing
)

// String returns the algorithm name.
func (a AllreduceAlgo) String() string {
	switch a {
	case AllreduceAuto:
		return "auto"
	case AllreduceRecursiveDoubling:
		return "recursive-doubling"
	case AllreduceRabenseifner:
		return "rabenseifner"
	case AllreduceRing:
		return "ring"
	}
	return fmt.Sprintf("allreducealgo(%d)", int(a))
}

// Config controls expansion.
type Config struct {
	// Allreduce selects the allreduce algorithm (default AllreduceAuto).
	Allreduce AllreduceAlgo
	// RabenseifnerMin is the payload size (bytes) above which
	// AllreduceAuto switches from recursive doubling to Rabenseifner.
	// Zero means the default of 16 KiB.
	RabenseifnerMin int64
	// DisableMemo bypasses the process-wide schedule memoization (see
	// memo.go) and re-runs every expansion algorithm directly. Output
	// is bit-identical either way; the toggle exists so differential
	// tests can replay both paths in one process.
	DisableMemo bool
}

func (c Config) rabenseifnerMin() int64 {
	if c.RabenseifnerMin <= 0 {
		return 16 << 10
	}
	return c.RabenseifnerMin
}

// expander accumulates the rewritten op list for one rank.
type expander struct {
	rank int32
	n    int32
	out  []trace.Op
	tag  int32 // tag for the collective instance being expanded
	req  int32 // next request id in the reserved space
}

func (e *expander) emit(op trace.Op) { e.out = append(e.out, op) }

// sendRecv emits a simultaneous exchange with partner: post the receive,
// send, then wait for the receive. This is the deadlock-free sendrecv
// idiom used by all symmetric rounds.
func (e *expander) sendRecv(partner int32, sendSize, recvSize int64) {
	req := e.req
	e.req++
	e.emit(trace.Irecv(partner, recvSize, e.tag, req))
	e.emit(trace.Send(partner, sendSize, e.tag))
	e.emit(trace.Wait(req))
}

// Expand rewrites every collective in t into point-to-point operations
// and returns the new trace. The input is not modified. It returns an
// error if the trace is structurally invalid (mismatched collective
// sequences across ranks, tags or request ids inside the reserved space).
func Expand(t *trace.Trace, cfg Config) (*trace.Trace, error) {
	n := int32(t.NumRanks())
	if n == 0 {
		return nil, trace.ErrEmptyTrace
	}
	// Verify the reserved spaces are untouched and collective sequences
	// agree. (Validate checks collective agreement too, but Expand is
	// often called on generated traces without a separate Validate pass.)
	for r, ops := range t.Ops {
		for i, op := range ops {
			switch op.Kind {
			case trace.OpSend, trace.OpRecv, trace.OpIsend, trace.OpIrecv:
				if op.Tag >= TagBase {
					return nil, fmt.Errorf("collectives: rank %d op %d uses reserved tag %d", r, i, op.Tag)
				}
			}
			switch op.Kind {
			case trace.OpIsend, trace.OpIrecv, trace.OpWait:
				if op.Req >= ReqBase {
					return nil, fmt.Errorf("collectives: rank %d op %d uses reserved request id %d", r, i, op.Req)
				}
			}
		}
	}

	out := &trace.Trace{Name: t.Name, Ops: make([][]trace.Op, n)}
	var firstSeq []trace.Op // collective ops of rank 0, to check agreement
	for r := int32(0); r < n; r++ {
		e := &expander{rank: r, n: n, req: ReqBase}
		var seq []trace.Op
		instance := int32(0)
		for _, op := range t.Ops[r] {
			if !op.Kind.IsCollective() {
				e.emit(op)
				continue
			}
			seq = append(seq, op)
			e.tag = TagBase + instance
			instance++
			key, err := schedKeyFor(op, n, r, cfg)
			if err != nil {
				return nil, err
			}
			if cfg.DisableMemo {
				e.expandDirect(key)
				continue
			}
			sch := schedCache.getOrBuild(key, func() schedule { return buildCanonical(key) })
			e.splice(sch)
		}
		if r == 0 {
			firstSeq = seq
		} else if len(seq) != len(firstSeq) {
			return nil, fmt.Errorf("collectives: rank %d has %d collectives, rank 0 has %d", r, len(seq), len(firstSeq))
		} else {
			for i := range seq {
				if seq[i].Kind != firstSeq[i].Kind || seq[i].Size != firstSeq[i].Size || seq[i].Peer != firstSeq[i].Peer {
					return nil, fmt.Errorf("collectives: rank %d collective %d (%s) disagrees with rank 0 (%s)",
						r, i, seq[i].Kind, firstSeq[i].Kind)
				}
			}
		}
		out.Ops[r] = e.out
	}
	return out, nil
}

// dissemination emits the dissemination pattern: ceil(log2 n) rounds,
// in round k exchanging with ranks at distance 2^k. size is the payload
// per message (0 for barrier).
func (e *expander) dissemination(size int64) {
	n := e.n
	if n == 1 {
		return
	}
	for dist := int32(1); dist < n; dist *= 2 {
		to := (e.rank + dist) % n
		from := (e.rank - dist + n) % n
		if to == from {
			// n == 2: single partner exchange.
			e.sendRecv(to, size, size)
			continue
		}
		req := e.req
		e.req++
		e.emit(trace.Irecv(from, size, e.tag, req))
		e.emit(trace.Send(to, size, e.tag))
		e.emit(trace.Wait(req))
	}
}

// binomialBcast emits the binomial-tree broadcast rooted at root.
func (e *expander) binomialBcast(root int32, size int64) {
	n := e.n
	if n == 1 {
		return
	}
	vrank := (e.rank - root + n) % n
	mask := int32(1)
	for mask < n {
		if vrank&mask != 0 {
			src := e.rank - mask
			if src < 0 {
				src += n
			}
			e.emit(trace.Recv(src, size, e.tag))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			dst := e.rank + mask
			if dst >= n {
				dst -= n
			}
			e.emit(trace.Send(dst, size, e.tag))
		}
		mask >>= 1
	}
}

// binomialReduce emits the binomial-tree reduction rooted at root.
// Children send partial results to parents; the pattern is the mirror of
// binomialBcast.
func (e *expander) binomialReduce(root int32, size int64) {
	n := e.n
	if n == 1 {
		return
	}
	vrank := (e.rank - root + n) % n
	mask := int32(1)
	for mask < n {
		if vrank&mask == 0 {
			vsrc := vrank | mask
			if vsrc < n {
				src := (vsrc + root) % n
				e.emit(trace.Recv(src, size, e.tag))
			}
		} else {
			vdst := vrank &^ mask
			dst := (vdst + root) % n
			e.emit(trace.Send(dst, size, e.tag))
			break
		}
		mask <<= 1
	}
}

// recursiveDoublingAllreduce emits the recursive-doubling allreduce.
// For non-power-of-two rank counts it uses the standard preamble: the
// lowest 2*rem ranks pair up so that rem ranks drop out, the remaining
// power-of-two ranks run recursive doubling, and results fan back out.
func (e *expander) recursiveDoublingAllreduce(size int64) {
	n := e.n
	if n == 1 {
		return
	}
	pof2 := int32(1)
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	rank := e.rank
	var newRank int32
	switch {
	case rank < 2*rem && rank%2 == 0:
		// Even rank in the remainder region: send everything to the odd
		// neighbour and drop out until the end.
		e.emit(trace.Send(rank+1, size, e.tag))
		newRank = -1
	case rank < 2*rem:
		// Odd rank: absorb the even neighbour's contribution.
		e.emit(trace.Recv(rank-1, size, e.tag))
		newRank = rank / 2
	default:
		newRank = rank - rem
	}
	if newRank >= 0 {
		for mask := int32(1); mask < pof2; mask <<= 1 {
			newPartner := newRank ^ mask
			partner := newPartner
			if newPartner < rem {
				partner = newPartner*2 + 1
			} else {
				partner = newPartner + rem
			}
			e.sendRecv(partner, size, size)
		}
	}
	// Fan results back to the dropped-out even ranks.
	if rank < 2*rem {
		if rank%2 == 0 {
			e.emit(trace.Recv(rank+1, size, e.tag))
		} else {
			e.emit(trace.Send(rank-1, size, e.tag))
		}
	}
}

// rabenseifnerAllreduce emits Rabenseifner's algorithm: recursive-halving
// reduce-scatter followed by recursive-doubling allgather. Bandwidth
// optimal for large payloads. Non-power-of-two counts use the same
// remainder preamble as recursive doubling.
func (e *expander) rabenseifnerAllreduce(size int64) {
	n := e.n
	if n == 1 {
		return
	}
	pof2 := int32(1)
	for pof2*2 <= n {
		pof2 *= 2
	}
	if pof2 < 2 {
		e.recursiveDoublingAllreduce(size)
		return
	}
	rem := n - pof2
	rank := e.rank
	var newRank int32
	switch {
	case rank < 2*rem && rank%2 == 0:
		e.emit(trace.Send(rank+1, size, e.tag))
		newRank = -1
	case rank < 2*rem:
		e.emit(trace.Recv(rank-1, size, e.tag))
		newRank = rank / 2
	default:
		newRank = rank - rem
	}
	if newRank >= 0 {
		toReal := func(vr int32) int32 {
			if vr < rem {
				return vr*2 + 1
			}
			return vr + rem
		}
		// Reduce-scatter: halve the exchanged payload each round.
		chunk := size / 2
		for mask := pof2 / 2; mask > 0; mask /= 2 {
			partner := toReal(newRank ^ mask)
			if chunk < 1 {
				chunk = 1
			}
			e.sendRecv(partner, chunk, chunk)
			chunk /= 2
		}
		// Allgather: double the exchanged payload each round.
		chunk = size / pof2Int64(pof2)
		if chunk < 1 {
			chunk = 1
		}
		for mask := int32(1); mask < pof2; mask <<= 1 {
			partner := toReal(newRank ^ mask)
			e.sendRecv(partner, chunk, chunk)
			chunk *= 2
		}
	}
	if rank < 2*rem {
		if rank%2 == 0 {
			e.emit(trace.Recv(rank+1, size, e.tag))
		} else {
			e.emit(trace.Send(rank-1, size, e.tag))
		}
	}
}

func pof2Int64(v int32) int64 { return int64(v) }

// ringAllreduce emits the ring allreduce: (n-1) reduce-scatter steps plus
// (n-1) allgather steps, each moving size/n bytes to the right neighbour.
func (e *expander) ringAllreduce(size int64) {
	n := e.n
	if n == 1 {
		return
	}
	chunk := size / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	right := (e.rank + 1) % n
	left := (e.rank - 1 + n) % n
	for step := int32(0); step < 2*(n-1); step++ {
		if right == left {
			e.sendRecv(right, chunk, chunk)
			continue
		}
		req := e.req
		e.req++
		e.emit(trace.Irecv(left, chunk, e.tag, req))
		e.emit(trace.Send(right, chunk, e.tag))
		e.emit(trace.Wait(req))
	}
}

// bruckAllgather emits the Bruck allgather: ceil(log2 n) rounds; round k
// exchanges min(2^k, n-2^k) blocks with ranks at distance 2^k.
func (e *expander) bruckAllgather(size int64) {
	n := e.n
	if n == 1 {
		return
	}
	for dist := int32(1); dist < n; dist *= 2 {
		blocks := dist
		if n-dist < blocks {
			blocks = n - dist
		}
		payload := size * int64(blocks)
		to := (e.rank - dist + n) % n
		from := (e.rank + dist) % n
		if to == from {
			e.sendRecv(to, payload, payload)
			continue
		}
		req := e.req
		e.req++
		e.emit(trace.Irecv(from, payload, e.tag, req))
		e.emit(trace.Send(to, payload, e.tag))
		e.emit(trace.Wait(req))
	}
}

// bruckAlltoall emits the Bruck alltoall: ceil(log2 n) rounds, each
// moving about half the local data to a rank at distance 2^k.
func (e *expander) bruckAlltoall(size int64) {
	n := e.n
	if n == 1 {
		return
	}
	for dist := int32(1); dist < n; dist *= 2 {
		// Count blocks whose index has the dist bit set: that is the
		// amount relocated this round.
		blocks := int64(0)
		for b := int32(1); b < n; b++ {
			if b&dist != 0 {
				blocks++
			}
		}
		payload := size * blocks
		to := (e.rank + dist) % n
		from := (e.rank - dist + n) % n
		if to == from {
			e.sendRecv(to, payload, payload)
			continue
		}
		req := e.req
		e.req++
		e.emit(trace.Irecv(from, payload, e.tag, req))
		e.emit(trace.Send(to, payload, e.tag))
		e.emit(trace.Wait(req))
	}
}

// binomialGather emits a binomial-tree gather to root. Message sizes are
// proportional to the sender's subtree size.
func (e *expander) binomialGather(root int32, size int64) {
	n := e.n
	if n == 1 {
		return
	}
	vrank := (e.rank - root + n) % n
	mask := int32(1)
	for mask < n {
		if vrank&mask == 0 {
			vsrc := vrank | mask
			if vsrc < n {
				sub := subtreeSize(vsrc, mask, n)
				src := (vsrc + root) % n
				e.emit(trace.Recv(src, size*int64(sub), e.tag))
			}
		} else {
			vdst := vrank &^ mask
			sub := subtreeSize(vrank, mask, n)
			dst := (vdst + root) % n
			e.emit(trace.Send(dst, size*int64(sub), e.tag))
			break
		}
		mask <<= 1
	}
}

// binomialScatter emits a binomial-tree scatter from root: the mirror of
// gather, with parents sending subtree-sized blocks to children.
func (e *expander) binomialScatter(root int32, size int64) {
	n := e.n
	if n == 1 {
		return
	}
	vrank := (e.rank - root + n) % n
	mask := int32(1)
	recvMask := int32(0)
	for mask < n {
		if vrank&mask != 0 {
			recvMask = mask
			break
		}
		mask <<= 1
	}
	if recvMask != 0 {
		vsrc := vrank &^ recvMask
		sub := subtreeSize(vrank, recvMask, n)
		src := (vsrc + root) % n
		e.emit(trace.Recv(src, size*int64(sub), e.tag))
	} else {
		recvMask = mask // == first power of two >= n for root
	}
	for m := recvMask >> 1; m > 0; m >>= 1 {
		vdst := vrank | m
		if vdst < n && vdst != vrank {
			sub := subtreeSize(vdst, m, n)
			dst := (vdst + root) % n
			e.emit(trace.Send(dst, size*int64(sub), e.tag))
		}
	}
}

// subtreeSize returns the number of ranks in the binomial subtree rooted
// at virtual rank vroot whose incoming edge used the given mask: the
// subtree spans [vroot, min(vroot+mask, n)).
func subtreeSize(vroot, mask, n int32) int32 {
	end := vroot + mask
	if end > n {
		end = n
	}
	return end - vroot
}
