// Schedule memoization. Expanding a collective is pure: the emitted op
// list depends only on (collective kind, algorithm, communicator size,
// rank, root, payload size) plus the tag and request-id bases of the
// instance being expanded. The expansion drivers — repeated experiments,
// sweep workers, the serving daemon — expand the same handful of
// collectives over and over (every iteration of every trace, every
// fresh Simulate), so the schedules are memoized process-wide in a
// size-bounded LRU with in-flight coalescing, mirroring the shape of
// internal/simcache.
//
// Entries are stored in canonical form: tag 0 and request ids counted
// from 0. Splicing an entry into a trace rebases tags and request ids
// by addition, which reproduces exactly what direct emission would have
// produced — the algorithms use e.tag verbatim on every p2p op and
// allocate request ids sequentially — so memoized and direct expansion
// are bit-identical (see TestMemoizedExpansionBitIdentical).
package collectives

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// schedKey identifies one canonical collective schedule. The algorithm
// field is the resolved choice (AllreduceAuto is mapped to the concrete
// algorithm before keying), so configurations that behave identically
// share entries.
type schedKey struct {
	kind trace.OpKind
	algo AllreduceAlgo // resolved; 0 for non-allreduce collectives
	n    int32
	rank int32
	root int32
	size int64
}

// schedule is a memoized canonical expansion: tag 0, request ids
// 0..reqs-1. The ops slice is immutable once published.
type schedule struct {
	ops  []trace.Op
	reqs int32
}

// schedFlight is one in-progress canonical build, shared by every
// waiter for its key.
type schedFlight struct {
	done chan struct{}
	sch  schedule
}

// schedOpBytes approximates the resident size of one memoized op.
const schedOpBytes = 40

// schedEntryOverhead accounts for map and list bookkeeping per entry.
const schedEntryOverhead = 160

// DefaultScheduleCacheBytes bounds the process-wide schedule cache:
// 32 MiB, far more than any realistic algorithm/size/rank working set
// (a 4096-rank allreduce schedule is ~40 ops per rank).
const DefaultScheduleCacheBytes = 32 << 20

// ScheduleCacheStats is a point-in-time snapshot of the memoization
// cache's effectiveness.
type ScheduleCacheStats struct {
	// Entries is the number of memoized schedules.
	Entries int `json:"entries"`
	// SizeBytes is the estimated resident size of all entries.
	SizeBytes int64 `json:"size_bytes"`
	// CapBytes is the configured bound.
	CapBytes int64 `json:"cap_bytes"`
	// Hits counts expansions served from a resident schedule.
	Hits uint64 `json:"hits"`
	// Coalesced counts expansions that waited on a concurrent build of
	// the same schedule instead of building their own.
	Coalesced uint64 `json:"coalesced"`
	// Misses counts expansions that built the schedule.
	Misses uint64 `json:"misses"`
	// Evictions counts schedules discarded to respect CapBytes.
	Evictions uint64 `json:"evictions"`
}

// scheduleCache is a size-bounded LRU of canonical schedules with
// in-flight coalescing. All methods are safe for concurrent use.
type scheduleCache struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	ll       *list.List // front = most recently used; values are *schedEntry
	entries  map[schedKey]*list.Element
	inflight map[schedKey]*schedFlight

	hits      uint64
	coalesced uint64
	misses    uint64
	evictions uint64
}

type schedEntry struct {
	key  schedKey
	sch  schedule
	cost int64
}

func newScheduleCache(capBytes int64) *scheduleCache {
	if capBytes <= 0 {
		capBytes = DefaultScheduleCacheBytes
	}
	return &scheduleCache{
		capBytes: capBytes,
		ll:       list.New(),
		entries:  map[schedKey]*list.Element{},
		inflight: map[schedKey]*schedFlight{},
	}
}

// schedCache is the process-wide memoization cache.
var schedCache = newScheduleCache(DefaultScheduleCacheBytes)

// ScheduleCache returns a snapshot of the process-wide schedule cache
// counters.
func ScheduleCache() ScheduleCacheStats { return schedCache.stats() }

// getOrBuild returns the canonical schedule for key, building it with
// build on a miss. Concurrent requests for an absent key are coalesced:
// one goroutine builds, the rest wait for its result.
func (c *scheduleCache) getOrBuild(key schedKey, build func() schedule) schedule {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		sch := el.Value.(*schedEntry).sch
		c.mu.Unlock()
		return sch
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.sch
	}
	f := &schedFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	func() {
		// close runs even if the builder panics: waiters for this key
		// must not block forever on a flight that never completes.
		defer close(f.done)
		f.sch = build()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	c.insertLocked(key, f.sch)
	c.mu.Unlock()
	return f.sch
}

// insertLocked adds the schedule at the LRU front and evicts from the
// back until the size bound holds; the most recent entry is always
// retained. c.mu must be held.
func (c *scheduleCache) insertLocked(key schedKey, sch schedule) {
	if _, ok := c.entries[key]; ok {
		return // a racing build of the same key already inserted
	}
	e := &schedEntry{key: key, sch: sch, cost: int64(len(sch.ops))*schedOpBytes + schedEntryOverhead}
	c.entries[key] = c.ll.PushFront(e)
	c.size += e.cost
	for c.size > c.capBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		ev := back.Value.(*schedEntry)
		c.ll.Remove(back)
		delete(c.entries, ev.key)
		c.size -= ev.cost
		c.evictions++
	}
}

func (c *scheduleCache) stats() ScheduleCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ScheduleCacheStats{
		Entries:   c.ll.Len(),
		SizeBytes: c.size,
		CapBytes:  c.capBytes,
		Hits:      c.hits,
		Coalesced: c.coalesced,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// resolveAllreduce maps the configured algorithm choice to the concrete
// algorithm used for a payload of the given size.
func (c Config) resolveAllreduce(size int64) AllreduceAlgo {
	if c.Allreduce == AllreduceAuto {
		if size <= c.rabenseifnerMin() {
			return AllreduceRecursiveDoubling
		}
		return AllreduceRabenseifner
	}
	return c.Allreduce
}

// schedKeyFor derives the memoization key for one collective op on one
// rank, resolving AllreduceAuto to its concrete algorithm. It reports
// the same configuration errors direct expansion did.
func schedKeyFor(op trace.Op, n, rank int32, cfg Config) (schedKey, error) {
	key := schedKey{kind: op.Kind, n: n, rank: rank, size: op.Size}
	switch op.Kind {
	case trace.OpBcast, trace.OpReduce, trace.OpGather, trace.OpScatter:
		key.root = op.Peer
	case trace.OpAllreduce:
		key.algo = cfg.resolveAllreduce(op.Size)
		switch key.algo {
		case AllreduceRecursiveDoubling, AllreduceRabenseifner, AllreduceRing:
		default:
			return schedKey{}, fmt.Errorf("collectives: unknown allreduce algorithm %d", cfg.Allreduce)
		}
	case trace.OpBarrier:
		key.size = 0 // dissemination barrier carries no payload
	case trace.OpAllgather, trace.OpAlltoall:
	default:
		return schedKey{}, fmt.Errorf("collectives: unhandled collective %s", op.Kind)
	}
	return key, nil
}

// runAlgo dispatches the expansion algorithm for key on this expander,
// emitting with whatever tag and request bases it carries. The direct
// (memo-disabled) path runs it on the live expander; buildCanonical
// runs it on a zero-based one.
func (e *expander) runAlgo(key schedKey) {
	switch key.kind {
	case trace.OpBarrier:
		e.dissemination(0)
	case trace.OpBcast:
		e.binomialBcast(key.root, key.size)
	case trace.OpReduce:
		e.binomialReduce(key.root, key.size)
	case trace.OpAllreduce:
		switch key.algo {
		case AllreduceRecursiveDoubling:
			e.recursiveDoublingAllreduce(key.size)
		case AllreduceRabenseifner:
			e.rabenseifnerAllreduce(key.size)
		case AllreduceRing:
			e.ringAllreduce(key.size)
		}
	case trace.OpAllgather:
		e.bruckAllgather(key.size)
	case trace.OpAlltoall:
		e.bruckAlltoall(key.size)
	case trace.OpGather:
		e.binomialGather(key.root, key.size)
	case trace.OpScatter:
		e.binomialScatter(key.root, key.size)
	}
}

// expandDirect is the memo-disabled path: run the algorithm in place
// with the live tag and request bases.
func (e *expander) expandDirect(key schedKey) { e.runAlgo(key) }

// buildCanonical runs the expansion algorithm for key with tag 0 and
// request ids from 0, producing the canonical schedule.
func buildCanonical(key schedKey) schedule {
	e := &expander{rank: key.rank, n: key.n, tag: 0, req: 0}
	e.runAlgo(key)
	return schedule{ops: e.out, reqs: e.req}
}

// splice appends the canonical schedule to the expander's output,
// rebasing tags by the instance tag and request ids by the expander's
// running request counter — exactly the values direct emission would
// have assigned.
func (e *expander) splice(sch schedule) {
	tag, req := e.tag, e.req
	for _, op := range sch.ops {
		switch op.Kind {
		case trace.OpSend, trace.OpRecv, trace.OpIsend, trace.OpIrecv:
			op.Tag += tag
		}
		switch op.Kind {
		case trace.OpIsend, trace.OpIrecv, trace.OpWait:
			op.Req += req
		}
		e.out = append(e.out, op)
	}
	e.req += sch.reqs
}
