package collectives

import (
	"fmt"

	"repro/internal/trace"
)

// This file implements a small message-passing interpreter used by the
// tests to verify that expanded collective schedules move information
// correctly: every message carries the sender's current "knowledge set"
// (the set of ranks whose contribution it has absorbed), and receivers
// union it in. A correct allreduce must leave every rank with the full
// set; a correct broadcast must deliver the root's token everywhere; and
// so on. This checks exactly the dependency structure the simulator
// relies on for delay propagation.

type knowledge []uint64

func newKnowledge(n int) knowledge { return make(knowledge, (n+63)/64) }

func (k knowledge) set(i int32)      { k[i/64] |= 1 << (uint(i) % 64) }
func (k knowledge) has(i int32) bool { return k[i/64]&(1<<(uint(i)%64)) != 0 }

func (k knowledge) union(other knowledge) {
	for i := range k {
		k[i] |= other[i]
	}
}

func (k knowledge) clone() knowledge {
	out := make(knowledge, len(k))
	copy(out, k)
	return out
}

func (k knowledge) full(n int32) bool {
	for i := int32(0); i < n; i++ {
		if !k.has(i) {
			return false
		}
	}
	return true
}

type message struct {
	from    int32
	tag     int32
	size    int64
	payload knowledge
}

// rankState is one rank's execution state in the interpreter.
type rankState struct {
	ops       []trace.Op
	pc        int
	know      knowledge
	inbox     []message           // unexpected-message queue, send order
	posted    map[int32]*postSlot // request id -> posted irecv slot
	postOrder []int32             // request ids in post order for matching
	bytesSent int64
	bytesRecv int64
}

type postSlot struct {
	peer     int32
	tag      int32
	size     int64
	done     bool
	payload  knowledge
	isRecv   bool
	consumed bool // matched against an inbox message
}

func match(want *postSlot, m message) bool {
	if want.peer != trace.AnySource && want.peer != m.from {
		return false
	}
	if want.tag != trace.AnyTag && want.tag != m.tag {
		return false
	}
	return true
}

// runDataFlow executes the expanded trace with eager message semantics
// and returns the final knowledge set of each rank. It fails with a
// deadlock error when no rank can make progress.
func runDataFlow(t *trace.Trace) ([]knowledge, []rankStats, error) {
	n := int32(t.NumRanks())
	states := make([]*rankState, n)
	for r := int32(0); r < n; r++ {
		know := newKnowledge(int(n))
		know.set(r)
		states[r] = &rankState{ops: t.Ops[r], know: know, posted: map[int32]*postSlot{}}
	}
	deliver := func(dst int32, m message) {
		s := states[dst]
		// Try to match an already-posted irecv in request order is not
		// well-defined; MPI matches in post order. Track post order via
		// a slice scan: acceptable for tests.
		for _, slot := range s.postedInOrder() {
			if slot.isRecv && !slot.done && match(slot, m) {
				slot.done = true
				slot.payload = m.payload
				return
			}
		}
		s.inbox = append(s.inbox, m)
	}
	progress := true
	for progress {
		progress = false
		for r := int32(0); r < n; r++ {
			s := states[r]
			for s.pc < len(s.ops) {
				op := s.ops[s.pc]
				switch op.Kind {
				case trace.OpCalc:
					// no-op for dataflow
				case trace.OpSend, trace.OpIsend:
					deliver(op.Peer, message{from: r, tag: op.Tag, size: op.Size, payload: s.know.clone()})
					s.bytesSent += op.Size
					if op.Kind == trace.OpIsend {
						s.posted[op.Req] = &postSlot{done: true}
					}
				case trace.OpRecv:
					m, ok := s.takeInbox(op)
					if !ok {
						goto blocked
					}
					s.know.union(m.payload)
					s.bytesRecv += m.size
				case trace.OpIrecv:
					slot := &postSlot{peer: op.Peer, tag: op.Tag, size: op.Size, isRecv: true}
					s.posted[op.Req] = slot
					s.postOrder = append(s.postOrder, op.Req)
					// Immediately try to match inbox.
					for i, m := range s.inbox {
						if match(slot, m) {
							slot.done = true
							slot.payload = m.payload
							s.inbox = append(s.inbox[:i], s.inbox[i+1:]...)
							break
						}
					}
				case trace.OpWait:
					slot, ok := s.posted[op.Req]
					if !ok {
						return nil, nil, fmt.Errorf("rank %d waits on unknown request %d", r, op.Req)
					}
					if !slot.done {
						goto blocked
					}
					if slot.isRecv {
						s.know.union(slot.payload)
						s.bytesRecv += slot.size
					}
					delete(s.posted, op.Req)
					s.removePostOrder(op.Req)
				case trace.OpWaitAll:
					allDone := true
					for _, slot := range s.posted {
						if !slot.done {
							allDone = false
							break
						}
					}
					if !allDone {
						goto blocked
					}
					for req, slot := range s.posted {
						if slot.isRecv {
							s.know.union(slot.payload)
							s.bytesRecv += slot.size
						}
						delete(s.posted, req)
					}
					s.postOrder = nil
				default:
					return nil, nil, fmt.Errorf("rank %d: unexpanded op %s", r, op.Kind)
				}
				s.pc++
				progress = true
			}
		blocked:
		}
		done := true
		for _, s := range states {
			if s.pc < len(s.ops) {
				done = false
				break
			}
		}
		if done {
			out := make([]knowledge, n)
			stats := make([]rankStats, n)
			for r, s := range states {
				out[r] = s.know
				stats[r] = rankStats{BytesSent: s.bytesSent, BytesRecv: s.bytesRecv, Leftover: len(s.inbox)}
			}
			return out, stats, nil
		}
	}
	var stuck []int32
	for r, s := range states {
		if s.pc < len(s.ops) {
			stuck = append(stuck, int32(r))
		}
	}
	return nil, nil, fmt.Errorf("deadlock: ranks %v blocked", stuck)
}

type rankStats struct {
	BytesSent int64
	BytesRecv int64
	Leftover  int
}

func (s *rankState) takeInbox(op trace.Op) (message, bool) {
	want := &postSlot{peer: op.Peer, tag: op.Tag, isRecv: true}
	for i, m := range s.inbox {
		if match(want, m) {
			s.inbox = append(s.inbox[:i], s.inbox[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// postOrder tracking for deterministic irecv matching.
func (s *rankState) postedInOrder() []*postSlot {
	out := make([]*postSlot, 0, len(s.postOrder))
	for _, req := range s.postOrder {
		if slot, ok := s.posted[req]; ok {
			out = append(out, slot)
		}
	}
	return out
}

func (s *rankState) removePostOrder(req int32) {
	for i, v := range s.postOrder {
		if v == req {
			s.postOrder = append(s.postOrder[:i], s.postOrder[i+1:]...)
			return
		}
	}
}
