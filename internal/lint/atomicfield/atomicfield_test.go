package atomicfield_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), atomicfield.Analyzer)
}
