// Package a is an atomicfield fixture: plain accesses of fields that
// feed sync/atomic elsewhere must be flagged; consistent atomic use,
// typed wrappers and untouched sibling fields must not.
package a

import "sync/atomic"

type counters struct {
	hits   uint64 // atomic
	misses uint64 // atomic
	plain  uint64 // never touched by sync/atomic: free to access
	typed  atomic.Uint64
}

func (c *counters) hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) miss() {
	atomic.AddUint64(&c.misses, 1)
}

func (c *counters) loadOK() uint64 {
	return atomic.LoadUint64(&c.hits) + atomic.LoadUint64(&c.misses)
}

func (c *counters) racyRead() uint64 {
	return c.hits // want "field hits is accessed through sync/atomic elsewhere"
}

func (c *counters) racyWrite() {
	c.misses = 0 // want "field misses is accessed through sync/atomic elsewhere"
}

func (c *counters) racyIncrement() {
	c.hits++ // want "field hits is accessed through sync/atomic elsewhere"
}

func (c *counters) plainOK() uint64 {
	c.plain++
	return c.plain
}

func (c *counters) typedOK() uint64 {
	c.typed.Add(1)
	return c.typed.Load()
}

func (c *counters) suppressed() uint64 {
	return c.hits //ceslint:allow atomicfield fixture proves the suppression path
}

// Construction through a composite literal names fields without
// selecting them and is initialization, not a racy access.
func fresh() *counters {
	return &counters{hits: 0, misses: 0}
}
