// Package atomicfield forbids mixing sync/atomic and plain access on
// one struct field.
//
// A counter read with atomic.LoadUint64 in one place and `s.n++` in
// another is a data race the race detector only catches when both
// paths run in one test; the mistake survives review because each site
// looks correct in isolation. atomicfield closes the gap module-wide:
// any struct field whose address is passed to a sync/atomic function
// anywhere in its package must be accessed through sync/atomic
// everywhere — a plain read, write, increment or compound assignment
// of that field is reported.
//
// The typed wrappers (atomic.Uint64, atomic.Pointer, ...) make this
// mistake unrepresentable — their inner state is unexported — and are
// the recommended fix; the analyzer exists for the legacy
// address-taking style, which is the style a hurried bugfix reaches
// for. The server/metrics, jobs and journal.Stats counters are the
// motivating surface: all currently mutex-guarded or typed-atomic,
// and this check keeps any future atomic migration honest.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed through sync/atomic anywhere must never " +
		"be read or written plainly elsewhere (module-wide)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: collect fields whose address feeds a sync/atomic call,
	// remembering the exact &x.f selector nodes so pass 2 can skip
	// them.
	atomicFields := map[types.Object]bool{}
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				sel := addrOfField(arg)
				if sel == nil {
					continue
				}
				if obj := fieldObject(pass, sel); obj != nil {
					atomicFields[obj] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: report every other selector access to those fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil || !atomicFields[obj] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed through sync/atomic elsewhere in this package; this plain access races with those atomics — use sync/atomic (or the typed atomic wrappers) here too",
				sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether the call targets a sync/atomic
// package-level function (AddUint64, LoadInt32, CompareAndSwap..., the
// address-taking API).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // typed-wrapper methods are safe by construction
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// addrOfField unwraps &x.f (with any parens) to the field selector.
func addrOfField(arg ast.Expr) *ast.SelectorExpr {
	for {
		if p, ok := arg.(*ast.ParenExpr); ok {
			arg = p.X
			continue
		}
		break
	}
	u, ok := arg.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	inner := u.X
	for {
		if p, ok := inner.(*ast.ParenExpr); ok {
			inner = p.X
			continue
		}
		break
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel
}

// fieldObject resolves a selector to a struct-field object, or nil
// when the selector is a method, package member or non-field.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
