package runner_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/load"
	"repro/internal/lint/runner"
	"repro/internal/lint/senterr"
)

// check type-checks one in-memory file as package "p" and runs the
// given analyzers through the runner.
func check(t *testing.T, src string, analyzers ...*analysis.Analyzer) []runner.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &load.Package{Path: "p", Dir: ".", Files: []*ast.File{f}, Types: tpkg, Info: info}
	diags, err := runner.Run(fset, []*load.Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func messages(diags []runner.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestSuppressionConsumesDiagnostic(t *testing.T) {
	diags := check(t, `package p

import "errors"

var ErrX = errors.New("x")

func f(err error) bool {
	return err == ErrX //ceslint:allow senterr unit test exercises suppression
}
`, senterr.Analyzer)
	if len(diags) != 0 {
		t.Fatalf("suppressed diagnostic leaked: %v", messages(diags))
	}
}

func TestUnusedSuppressionReported(t *testing.T) {
	diags := check(t, `package p

//ceslint:allow senterr nothing here triggers senterr
func f() {}
`, senterr.Analyzer)
	if len(diags) != 1 || diags[0].Analyzer != "ceslint" ||
		!strings.Contains(diags[0].Message, "unused suppression") {
		t.Fatalf("diags = %v", messages(diags))
	}
}

func TestUnknownAnalyzerInDirectiveReported(t *testing.T) {
	diags := check(t, `package p

//ceslint:allow nosuchcheck misspelled analyzer names must not silently pass
func f() {}
`, senterr.Analyzer)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "nosuchcheck"`) {
		t.Fatalf("diags = %v", messages(diags))
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	diags := check(t, `package p

//ceslint:allow senterr
func f() {}
`, senterr.Analyzer)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "reason is mandatory") {
		t.Fatalf("diags = %v", messages(diags))
	}
}

func TestSuppressionForOneAnalyzerDoesNotHideAnother(t *testing.T) {
	// The directive names maporder, so the senterr finding on the same
	// line must survive, and the maporder directive (running senterr
	// only here, so "unknown") is flagged too.
	diags := check(t, `package p

import "errors"

var ErrX = errors.New("x")

func f(err error) bool {
	return err == ErrX //ceslint:allow nosuch wrong analyzer name
}
`, senterr.Analyzer)
	var sawSenterr, sawUnknown bool
	for _, d := range diags {
		if d.Analyzer == "senterr" && strings.Contains(d.Message, "errors.Is") {
			sawSenterr = true
		}
		if strings.Contains(d.Message, "unknown analyzer") {
			sawUnknown = true
		}
	}
	if !sawSenterr || !sawUnknown {
		t.Fatalf("diags = %v", messages(diags))
	}
}

// TestNewAnalyzerNamesKnownToDirectives pins the directive hygiene
// contract for the concurrency-and-durability analyzers: a suppression
// naming lockcheck, durio, gorolife or atomicfield is a known name
// (never "unknown analyzer"), and when nothing fires it is reported as
// unused like any other.
func TestNewAnalyzerNamesKnownToDirectives(t *testing.T) {
	diags := check(t, `package p

//ceslint:allow lockcheck nothing here holds a lock
func a() {}

//ceslint:allow durio nothing here renames a file
func b() {}

//ceslint:allow gorolife nothing here spawns a goroutine
func c() {}

//ceslint:allow atomicfield nothing here touches an atomic field
func d() {}
`, lint.All()...)
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4 unused suppressions: %v", len(diags), messages(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "ceslint" || !strings.Contains(d.Message, "unused suppression") {
			t.Fatalf("diags = %v", messages(diags))
		}
		if strings.Contains(d.Message, "unknown analyzer") {
			t.Fatalf("new analyzer name treated as unknown: %v", messages(diags))
		}
	}
}

// TestNewAnalyzerMalformedReasonReported pins the mandatory-reason
// rule for the new names.
func TestNewAnalyzerMalformedReasonReported(t *testing.T) {
	diags := check(t, `package p

//ceslint:allow lockcheck
func f() {}
`, lint.All()...)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "reason is mandatory") {
		t.Fatalf("diags = %v", messages(diags))
	}
}

// TestAtomicFieldSuppressionConsumed exercises end-to-end suppression
// of a new analyzer through the runner (atomicfield is module-wide, so
// the scratch package is in scope without touching any scope map).
func TestAtomicFieldSuppressionConsumed(t *testing.T) {
	diags := check(t, `package p

import "sync/atomic"

type c struct{ n uint64 }

func (x *c) inc() { atomic.AddUint64(&x.n, 1) }

func (x *c) read() uint64 {
	return x.n //ceslint:allow atomicfield unit test exercises suppression
}
`, atomicfield.Analyzer)
	if len(diags) != 0 {
		t.Fatalf("suppressed atomicfield diagnostic leaked: %v", messages(diags))
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := check(t, `package p

import "errors"

var ErrA = errors.New("a")
var ErrB = errors.New("b")

func f(err error) bool {
	b := err == ErrB
	a := err == ErrA
	return a && b
}
`, senterr.Analyzer)
	if len(diags) != 2 {
		t.Fatalf("diags = %v", messages(diags))
	}
	if diags[0].Position.Line >= diags[1].Position.Line {
		t.Fatalf("not sorted by position: %v then %v", diags[0].Position, diags[1].Position)
	}
}
