// Package runner executes ceslint analyzers over loaded packages and
// applies the //ceslint:allow suppression policy: every diagnostic is
// matched against the directives in its file; surviving diagnostics,
// malformed directives and directives that suppressed nothing are
// returned sorted by position.
package runner

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/load"
)

// Diagnostic is one printable finding.
type Diagnostic struct {
	// Analyzer names the check that fired ("ceslint" for directive
	// hygiene findings produced by the runner itself).
	Analyzer string
	// Position is the resolved file position.
	Position token.Position
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Run executes every analyzer on every package and returns the
// diagnostics that survive suppression, plus directive-hygiene
// findings. An analyzer returning an error aborts the run.
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(fset, pkg, analyzers, known)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

func runPackage(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer, known map[string]bool) ([]Diagnostic, error) {
	type fileDirs struct {
		ds  []*directive.Directive
		idx *directive.Index
	}
	dirs := map[string]*fileDirs{} // by filename
	var out []Diagnostic
	for _, f := range pkg.Files {
		ds, bad := directive.Collect(f)
		name := fset.Position(f.Pos()).Filename
		dirs[name] = &fileDirs{ds: ds, idx: directive.NewIndex(fset, ds)}
		for _, m := range bad {
			out = append(out, Diagnostic{
				Analyzer: "ceslint",
				Position: fset.Position(m.Pos),
				Message:  m.Message,
			})
		}
		for _, d := range ds {
			if !known[d.Analyzer] {
				out = append(out, Diagnostic{
					Analyzer: "ceslint",
					Position: fset.Position(d.Pos),
					Message:  fmt.Sprintf("suppression names unknown analyzer %q", d.Analyzer),
				})
				d.Used = true // don't double-report it as unused below
			}
		}
	}

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		var raw []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { raw = append(raw, d) }
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			pos := fset.Position(d.Pos)
			if fd := dirs[pos.Filename]; fd != nil {
				if dir := fd.idx.Match(pos.Line, a.Name); dir != nil {
					dir.Used = true
					continue
				}
			}
			out = append(out, Diagnostic{Analyzer: a.Name, Position: pos, Message: d.Message})
		}
	}

	// A suppression that silenced nothing is dead weight that hides
	// future regressions; report it so it gets removed.
	for _, fd := range dirs {
		for _, d := range fd.ds {
			if !d.Used {
				out = append(out, Diagnostic{
					Analyzer: "ceslint",
					Position: fset.Position(d.Pos),
					Message:  fmt.Sprintf("unused suppression for %s (nothing on this or the next line triggers it)", d.Analyzer),
				})
			}
		}
	}
	return out, nil
}
