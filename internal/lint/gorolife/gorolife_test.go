package gorolife_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/gorolife"
)

func TestGorolife(t *testing.T) {
	gorolife.Packages["g"] = true
	defer delete(gorolife.Packages, "g")
	analysistest.Run(t, filepath.Join("testdata", "src", "g"), gorolife.Analyzer)
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	if gorolife.Packages["g"] {
		t.Fatal("fixture path leaked into gorolife scope map")
	}
}
