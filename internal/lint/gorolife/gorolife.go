// Package gorolife ties every goroutine to a lifecycle.
//
// A `go func` with no cancellation signal is a leak waiting for a
// graceful-drain test to find it: the daemon's SIGTERM path waits on
// WaitGroups and contexts, and any goroutine tied to neither outlives
// the drain (or blocks it forever). gorolife requires the body of
// every go statement in the service tier to reference at least one
// lifecycle mechanism:
//
//   - a context.Context value (checked in a loop, passed to a blocking
//     call, or selected on via Done());
//   - a sync.WaitGroup (Done/Wait) — the pool-shutdown idiom;
//   - a channel operation: receive, send, range, select or close —
//     the goroutine is sequenced against another's signal.
//
// Named same-package functions launched with `go q.worker()` are
// resolved and their bodies checked the same way; a goroutine whose
// body lives in another package must at least receive a context,
// channel or WaitGroup argument at the launch site.
//
// Separately, any for-loop that polls with time.Sleep and checks no
// context and no channel in its body is flagged wherever it appears:
// such a loop cannot be stopped, only abandoned.
package gorolife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the gorolife check.
var Analyzer = &analysis.Analyzer{
	Name: "gorolife",
	Doc: "every goroutine must be tied to a lifecycle (context, WaitGroup " +
		"or channel); time.Sleep polling loops with no cancellation check " +
		"are flagged",
	Run: run,
}

// Packages scopes the check to the packages that spawn goroutines in
// production: the service tier, the parallel engine driver and the
// daemon binary. Tests may add fixture paths.
var Packages = map[string]bool{
	"repro/internal/jobs":        true,
	"repro/internal/cluster":     true,
	"repro/internal/journal":     true,
	"repro/internal/simcache":    true,
	"repro/internal/tenant":      true,
	"repro/internal/advise":      true,
	"repro/internal/server":      true,
	"repro/internal/collectives": true,
	"repro/internal/core":        true,
	"repro/internal/faultinject": true,
	"repro/cmd/cesimd":           true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	// Index top-level function and method declarations by object so
	// `go q.worker()` resolves to its body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				checkGo(pass, x, decls)
			case *ast.ForStmt:
				checkSleepLoop(pass, x)
			case *ast.RangeStmt:
				checkSleepLoop(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

// checkGo verifies one go statement has a lifecycle tie.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if fd := decls[obj]; fd != nil {
				body = fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			if fd := decls[obj]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body != nil {
		if !hasLifecycle(pass, body) {
			pass.Reportf(g.Pos(),
				"goroutine has no lifecycle tie: its body checks no context, joins no WaitGroup and touches no channel, so nothing can stop or await it")
		}
		return
	}
	// Body out of reach (another package): the launch site must at
	// least hand the goroutine a lifecycle-capable argument.
	for _, arg := range g.Call.Args {
		if isLifecycleType(pass.TypesInfo.Types[arg].Type) {
			return
		}
	}
	pass.Reportf(g.Pos(),
		"goroutine launches an external function with no context, channel or WaitGroup argument: nothing can stop or await it")
}

// hasLifecycle reports whether the body references a context value, a
// WaitGroup join, or any channel operation. Nested function literals
// are included: a lifecycle registered in a deferred closure counts.
func hasLifecycle(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// Any expression of type context.Context counts — an ident, a
		// field, or a call result like context.Background().
		if e, ok := n.(ast.Expr); ok {
			if t := pass.TypesInfo.Types[e].Type; t != nil && isContextType(t) {
				found = true
				return false
			}
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					found = true // builtin close: the goroutine signals completion
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					switch fn.FullName() {
					case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// checkSleepLoop flags a loop that calls time.Sleep directly but
// references no context (in its condition or body) and performs no
// channel operation: the loop polls forever with no way to stop it.
func checkSleepLoop(pass *analysis.Pass, loop ast.Stmt) {
	sleeps := false
	cancellable := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if t := pass.TypesInfo.Types[e].Type; t != nil && isContextType(t) {
				cancellable = true
			}
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure is its own scope
		case *ast.SendStmt, *ast.SelectStmt:
			cancellable = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				cancellable = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					sleeps = true
				}
			}
		}
		return true
	})
	if sleeps && !cancellable {
		pass.Reportf(loop.Pos(),
			"polling loop sleeps with no cancellation check: select on the context's Done channel (or pass a context into the sleep) so the loop can stop")
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isLifecycleType reports whether an argument type can carry a
// lifecycle into an opaque goroutine: a context, a channel, or a
// WaitGroup pointer.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return true
			}
		}
	}
	return false
}
