// Package g is a gorolife fixture: untied goroutines and
// uncancellable polling loops must be flagged; goroutines tied to a
// context, WaitGroup or channel must not.
package g

import (
	"context"
	"sync"
	"time"
)

type pool struct {
	wg   sync.WaitGroup
	work chan int
	quit chan struct{}
}

// --- positives -------------------------------------------------------

func untied() {
	go func() { // want "goroutine has no lifecycle tie"
		for {
			_ = 1 + 1
		}
	}()
}

func untiedNamed() {
	go spin() // want "goroutine has no lifecycle tie"
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

func (p *pool) untiedMethod() {
	go p.orphan() // want "goroutine has no lifecycle tie"
}

func (p *pool) orphan() {
	x := 0
	for {
		x++
	}
}

func externalNoArgs() {
	go time.Sleep(time.Second) // want "external function with no context, channel or WaitGroup argument"
}

func sleepPoll(done *bool) {
	for !*done { // want "polling loop sleeps with no cancellation check"
		time.Sleep(10 * time.Millisecond)
	}
}

func sleepPollForever() {
	for { // want "polling loop sleeps with no cancellation check"
		time.Sleep(time.Second)
		_ = probe()
	}
}

func probe() bool { return true }

// --- negatives -------------------------------------------------------

func ctxTied(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			_ = probe()
		}
	}()
}

func ctxSelectTied(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

func (p *pool) wgTied() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_ = probe()
	}()
}

func (p *pool) chanTied() {
	go func() {
		for range p.work {
			_ = probe()
		}
	}()
}

func (p *pool) quitTied() {
	go func() {
		for {
			select {
			case <-p.quit:
				return
			case v := <-p.work:
				_ = v
			}
		}
	}()
}

func (p *pool) namedWorker() {
	go p.worker()
}

func (p *pool) worker() {
	for v := range p.work {
		_ = v
	}
}

func closeTied(ready chan struct{}) {
	go func() {
		_ = probe()
		close(ready)
	}()
}

func externalWithCtx(ctx context.Context, run func(context.Context)) {
	go run(ctx)
}

// A context minted inside the body (the releaseOnExit idiom: the
// goroutine parks on a blocking wait that takes a context) counts —
// the context expression is a call result, not an ident.
func backgroundWaitTied(wait func(context.Context) error) {
	go func() {
		_ = wait(context.Background())
	}()
}

func externalWithChan(drain func(<-chan int), ch chan int) {
	go drain(ch)
}

func sleepWithCtx(ctx context.Context) {
	for ctx.Err() == nil {
		time.Sleep(10 * time.Millisecond)
	}
}

func sleepWithChan(quit chan struct{}) {
	for {
		select {
		case <-quit:
			return
		default:
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A closure inside the loop body that sleeps is its own scope, not the
// loop polling.
func closureSleepOK(fs []func()) {
	for _, f := range fs {
		g := func() { time.Sleep(time.Millisecond) }
		g()
		f()
	}
}

// --- suppression -----------------------------------------------------

func suppressed() {
	//ceslint:allow gorolife fixture proves the suppression path
	go func() {
		for {
			_ = probe()
		}
	}()
}
