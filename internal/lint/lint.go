// Package lint assembles the ceslint analyzer suite: the determinism
// and safety checks that mechanically enforce the simulator's
// bit-identity invariants (docs/LINT.md). cmd/ceslint is the CLI; the
// analyzers live in the subpackages and the execution machinery in
// analysis, load, directive and runner.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detrand"
	"repro/internal/lint/maporder"
	"repro/internal/lint/senterr"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detrand.Analyzer,
		maporder.Analyzer,
		senterr.Analyzer,
	}
}
