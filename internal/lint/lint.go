// Package lint assembles the ceslint analyzer suite: the determinism
// and safety checks that mechanically enforce the simulator's
// bit-identity invariants (docs/LINT.md). cmd/ceslint is the CLI; the
// analyzers live in the subpackages and the execution machinery in
// analysis, load, directive and runner.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detrand"
	"repro/internal/lint/durio"
	"repro/internal/lint/gorolife"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/maporder"
	"repro/internal/lint/senterr"
)

// All returns the full analyzer suite in stable order: the determinism
// checks from PR 4 plus the concurrency and durability contract
// analyzers (lockcheck, durio, atomicfield, gorolife).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		detrand.Analyzer,
		durio.Analyzer,
		gorolife.Analyzer,
		lockcheck.Analyzer,
		maporder.Analyzer,
		senterr.Analyzer,
	}
}
