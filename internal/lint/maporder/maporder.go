// Package maporder flags map iteration whose body is order-sensitive.
//
// Go randomizes map iteration order per run. Inside the packages that
// produce figures, tables, statistics and cache keys, a `range` over a
// map that appends to an outer slice, accumulates floating-point
// values, writes output, or feeds a hash therefore breaks the
// bit-identity the paper's reproduction relies on (float addition is
// not associative; emitted rows and hashed bytes change order per
// process). The fix is the sorted-keys idiom used by
// campaign.RunContext: collect the keys, sort, then range the sorted
// slice. A loop that does exactly that — only collects the range keys
// into a slice that is sorted later in the same block — is recognized
// and not flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map whose body appends to outer slices, accumulates " +
		"floats, emits output or feeds a hash — map order is nondeterministic",
	Run: run,
}

// Packages scopes the check to the code whose output must be
// bit-identical: the deterministic simulation set plus the reporting,
// caching and orchestration layers that turn results into rows, files
// and cache keys. Tests may add fixture paths.
var Packages = map[string]bool{
	"repro/internal/loggopsim":   true,
	"repro/internal/noise":       true,
	"repro/internal/eventq":      true,
	"repro/internal/collectives": true,
	"repro/internal/extrapolate": true,
	"repro/internal/rng":         true,
	"repro/internal/stats":       true,
	"repro/internal/core":        true,
	"repro/internal/mca":         true,
	"repro/internal/report":      true,
	"repro/internal/simcache":    true,
	"repro/internal/campaign":    true,
	"repro/internal/systems":     true,
	"repro/internal/cluster":     true,
	"repro/internal/advise":      true,
	"repro/internal/faultmodel":  true,
	"repro/internal/journal":     true,
	"repro/internal/tenant":      true,
}

// emitMethods are method names whose call inside a map-range body means
// the iteration order reaches an output stream, a hasher or a report
// row.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "AddRow": true, "Print": true, "Printf": true,
	"Println": true,
}

// fmtEmitFuncs are fmt package functions that emit directly.
var fmtEmitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// parent tracks enclosing statement lists so the sorted-keys
		// idiom can look at what follows the loop.
		var stack []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkRange(pass, rs, stack)
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil, nil
}

func inScope(path string) bool {
	return Packages[path]
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	sinks := collectSinks(pass, rs)
	if len(sinks) == 0 {
		return
	}
	if onlySortedKeyCollection(pass, rs, sinks, stack) {
		return
	}
	for _, s := range sinks {
		pass.Reportf(s.pos, "range over map %s %s; map iteration order is nondeterministic — sort the keys first (collect, sort.Strings/slices.Sort, then range the slice)",
			exprString(rs.X), s.what)
	}
}

// sink is one order-sensitive operation found in a range body.
type sink struct {
	pos  token.Pos
	what string
	// appendTo is the outer slice object for append sinks (nil
	// otherwise); appendsOnlyKey records whether every appended value
	// is exactly the range key — together they drive the sorted-keys
	// exemption.
	appendTo       types.Object
	appendsOnlyKey bool
}

func collectSinks(pass *analysis.Pass, rs *ast.RangeStmt) []sink {
	var sinks []sink
	keyObj := rangeVarObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(pass, rs, n, keyObj)...)
		case *ast.CallExpr:
			if s, ok := callSink(pass, n); ok {
				sinks = append(sinks, s)
			}
		}
		return true
	})
	return sinks
}

func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// assignSinks finds appends to outer slices and float accumulation
// into outer variables.
func assignSinks(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, keyObj types.Object) []sink {
	var sinks []sink
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if obj := outerObj(pass, rs, lhs); obj != nil && isFloat(pass.TypesInfo.TypeOf(lhs)) {
				sinks = append(sinks, sink{pos: as.Pos(),
					what: "accumulates floating-point values into " + exprString(lhs) + " (float addition is not associative)"})
			}
		}
	case token.ASSIGN:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			lhs := as.Lhs[i]
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				obj := outerObj(pass, rs, lhs)
				if obj == nil {
					continue
				}
				sinks = append(sinks, sink{
					pos:            as.Pos(),
					what:           "appends to outer slice " + exprString(lhs),
					appendTo:       obj,
					appendsOnlyKey: appendsOnlyKey(pass, call, keyObj),
				})
				continue
			}
			// x = x + delta float accumulation spelled out longhand.
			if bin, ok := rhs.(*ast.BinaryExpr); ok && isFloat(pass.TypesInfo.TypeOf(lhs)) {
				if obj := outerObj(pass, rs, lhs); obj != nil && mentionsObj(pass, bin, obj) {
					sinks = append(sinks, sink{pos: as.Pos(),
						what: "accumulates floating-point values into " + exprString(lhs) + " (float addition is not associative)"})
				}
			}
		}
	}
	return sinks
}

// callSink recognizes emission and hashing calls.
func callSink(pass *analysis.Pass, call *ast.CallExpr) (sink, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return sink{}, false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return sink{}, false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtEmitFuncs[fn.Name()] {
				return sink{pos: call.Pos(), what: "emits output via fmt." + fn.Name()}, true
			}
			return sink{}, false
		}
		if emitMethods[fn.Name()] {
			return sink{pos: call.Pos(),
				what: "feeds " + exprString(sel.X) + "." + fn.Name() + " (output, report rows or hash/cache-key bytes)"}, true
		}
		// Sum/Encode are only order-sensitive on hashers and stream
		// encoders, not on arbitrary getters that share the name.
		if pkg := fn.Pkg(); pkg != nil {
			p := pkg.Path()
			hashy := p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasPrefix(p, "crypto")
			encodey := strings.HasPrefix(p, "encoding")
			if (fn.Name() == "Sum" && hashy) || (fn.Name() == "Encode" && encodey) {
				return sink{pos: call.Pos(),
					what: "feeds " + exprString(sel.X) + "." + fn.Name() + " (hash or encoded stream)"}, true
			}
		}
	}
	return sink{}, false
}

// onlySortedKeyCollection reports whether every sink is an append of
// exactly the range key into one outer slice that a later statement in
// an enclosing block sorts — the canonical deterministic idiom.
func onlySortedKeyCollection(pass *analysis.Pass, rs *ast.RangeStmt, sinks []sink, stack []ast.Node) bool {
	var target types.Object
	for _, s := range sinks {
		if s.appendTo == nil || !s.appendsOnlyKey {
			return false
		}
		if target == nil {
			target = s.appendTo
		} else if target != s.appendTo {
			return false
		}
	}
	if target == nil {
		return false
	}
	// Find the statement list containing the range (directly or via a
	// labeled statement) and look for a sort of the collected slice in
	// any following statement of any enclosing block.
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		after := false
		for _, st := range block.List {
			if containsNode(st, rs) {
				after = true
				continue
			}
			if after && sortsObj(pass, st, target) {
				return true
			}
		}
	}
	return false
}

// sortsObj reports whether stmt contains a sort.*/slices.Sort* call
// over obj.
func sortsObj(pass *analysis.Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// outerObj resolves lhs to a variable declared outside the range body
// (the range's own key/value vars count as inner). Selector
// expressions resolve through their root identifier.
func outerObj(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil // declared by the range or inside its body
	}
	return obj
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsOnlyKey reports whether every appended element is exactly the
// range key identifier.
func appendsOnlyKey(pass *analysis.Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != keyObj {
			return false
		}
	}
	return true
}

func mentionsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func containsNode(outer ast.Node, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
