package maporder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	maporder.Packages["m"] = true
	defer delete(maporder.Packages, "m")
	analysistest.Run(t, filepath.Join("testdata", "src", "m"), maporder.Analyzer)
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	// The same fixture without scope registration must produce no
	// diagnostics — except the now-unused suppression directive, which
	// would itself be reported; that is covered by the runner tests, so
	// here the fixture is simply not run out of scope. This test pins
	// the scope gate instead.
	if maporder.Packages["m"] {
		t.Fatal("fixture path leaked into maporder.Packages")
	}
}
