// Package m is a maporder fixture (registered in maporder.Packages):
// order-sensitive map iteration must be flagged, the sorted-keys idiom
// and order-insensitive bodies must not.
package m

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

func appendValues(in map[string]int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v) // want "appends to outer slice out"
	}
	return out
}

func unsortedKeys(in map[string]int) []string {
	var keys []string
	for k := range in {
		keys = append(keys, k) // want "appends to outer slice keys"
	}
	return keys
}

func sortedKeysIdiom(in map[string]int) []string {
	keys := make([]string, 0, len(in))
	for k := range in {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedViaSlices(in map[int]string) []int {
	var keys []int
	for k := range in {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func floatAccumulate(in map[string]float64) float64 {
	var total float64
	for _, v := range in {
		total += v // want "accumulates floating-point values into total"
	}
	return total
}

func floatAccumulateLonghand(in map[string]float64) float64 {
	var total float64
	for _, v := range in {
		total = total + v // want "accumulates floating-point values into total"
	}
	return total
}

func intAccumulateOK(in map[string]int) int {
	// Integer addition is associative and commutative: order-safe.
	var total int
	for _, v := range in {
		total += v
	}
	return total
}

func emit(in map[string]int) {
	for k, v := range in {
		fmt.Println(k, v) // want "emits output via fmt.Println"
	}
}

func buildString(in map[string]string) string {
	var b strings.Builder
	for k := range in {
		b.WriteString(k) // want "feeds b.WriteString"
	}
	return b.String()
}

func hashKey(in map[string]string) uint64 {
	h := fnv.New64a()
	for k, v := range in {
		h.Write([]byte(k + v)) // want "feeds h.Write"
	}
	return h.Sum64()
}

func copyMapOK(in map[string]int) map[string]int {
	// Map-to-map copies are order-insensitive.
	out := make(map[string]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func rangeSliceOK(in []float64) float64 {
	var total float64
	for _, v := range in {
		total += v
	}
	return total
}

func suppressed(in map[string]int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v) //ceslint:allow maporder fixture proves the suppression path
	}
	return out
}
