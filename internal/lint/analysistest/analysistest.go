// Package analysistest runs a ceslint analyzer over golden fixture
// packages, mirroring golang.org/x/tools/go/analysis/analysistest:
// fixture files annotate the lines where diagnostics are expected with
//
//	code() // want "regexp" "another regexp"
//
// and the harness fails the test on any missing or unexpected
// diagnostic. Fixtures are type-checked against the standard library
// only, with the directory base name as the package import path — so a
// fixture directory named "det" can be registered in an analyzer's
// scope map to exercise scope-dependent rules.
//
// Diagnostics pass through the real runner, so //ceslint:allow
// suppression, malformed-directive and unused-directive behaviour is
// testable with the same golden mechanism (the runner's own findings
// carry the analyzer name "ceslint").
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/runner"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run checks analyzer a against the fixture package in dir (e.g.
// "testdata/src/det"). The fixture's import path is filepath.Base(dir).
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkg := loadFixture(t, fset, dir)
	diags, err := runner.Run(fset, []*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	compare(t, fset, pkg, diags)
}

func loadFixture(t *testing.T, fset *token.FileSet, dir string) *load.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	path := filepath.Base(dir)
	info := load.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", path, err)
	}
	return &load.Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

func compare(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []runner.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	unmatched := append([]runner.Diagnostic(nil), diags...)
	for _, w := range wants {
		idx := -1
		for i, d := range unmatched {
			if d.Position.Filename == w.file && d.Position.Line == w.line && w.re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			continue
		}
		unmatched = append(unmatched[:idx], unmatched[idx+1:]...)
	}
	sort.Slice(unmatched, func(i, j int) bool { return unmatched[i].Position.Line < unmatched[j].Position.Line })
	for _, d := range unmatched {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
