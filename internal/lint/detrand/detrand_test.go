package detrand_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detrand"
)

func TestDeterministicPackage(t *testing.T) {
	detrand.DeterministicPackages["det"] = true
	defer delete(detrand.DeterministicPackages, "det")
	analysistest.Run(t, filepath.Join("testdata", "src", "det"), detrand.Analyzer)
}

func TestNonDeterministicPackage(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "anypkg"), detrand.Analyzer)
}
