// Package anypkg is a detrand fixture NOT registered as deterministic:
// only the module-wide global-rand rule applies; wall-clock reads are
// allowed (serving-layer code measures latency legitimately).
package anypkg

import (
	mrand "math/rand"
	"time"
)

func globalRandStillBanned() int {
	return mrand.Intn(6) // want "rand.Intn draws from the global math/rand state"
}

func wallClockAllowed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
