// Package det is a detrand fixture registered as a deterministic
// simulation package: both the module-wide global-rand rule and the
// wall-clock/entropy rules apply here.
package det

import (
	crand "crypto/rand"
	mrand "math/rand"
	rv2 "math/rand/v2"
	"time"
)

func globalRand() int {
	n := mrand.Int()                    // want "rand.Int draws from the global math/rand state"
	n += rv2.IntN(10)                   // want "rand/v2.IntN draws from the global math/rand state"
	mrand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the global math/rand state"
	return n
}

func seededOK() int {
	r := mrand.New(mrand.NewSource(42))
	p := rv2.New(rv2.NewPCG(1, 2))
	return r.Int() + p.IntN(10)
}

func wallClock() time.Duration {
	t0 := time.Now()      // want "time.Now reads the wall clock"
	time.Sleep(0)         // want "time.Sleep reads the wall clock"
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func entropy(b []byte) {
	crand.Read(b) // want "crypto/rand.Read draws OS entropy"
}

func constOK() time.Duration {
	// Durations and virtual-time arithmetic are fine; only clock reads
	// are banned.
	return 5 * time.Millisecond
}

func suppressed() int {
	return mrand.Int() //ceslint:allow detrand fixture proves the suppression path
}

func suppressedAbove() int {
	//ceslint:allow detrand stacked directive on the line above
	return mrand.Int()
}
