// Package detrand forbids hidden entropy in the simulation pipeline.
//
// The paper's headline numbers depend on CE detour injection being
// seeded: the same (scenario, seed) pair must produce bit-identical
// results across simulator reuse, cache bypass, retry-after-panic and
// chaos runs (docs/MODEL.md §7, docs/FAULTS.md). Two classes of code
// silently break that:
//
//   - the global math/rand and math/rand/v2 top-level functions, which
//     draw from shared, unseeded (v2) or racily-seeded (v1) state —
//     banned module-wide, because even "timing-only" jitter should come
//     from an explicit stream so reviewers never have to guess;
//   - wall-clock and OS-entropy reads (time.Now, time.Since, crypto/rand,
//     ...) inside the deterministic simulation packages, where virtual
//     time is the only clock — banned in DeterministicPackages.
//
// Seeded constructors (rand.New, rand.NewSource, rand.NewPCG, ...) are
// always allowed: they force the caller to name a seed.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand state everywhere and wall-clock/OS-entropy " +
		"reads inside the deterministic simulation packages",
	Run: run,
}

// DeterministicPackages lists the packages whose results must be a
// pure function of (configuration, seed). Tests may add fixture paths.
var DeterministicPackages = map[string]bool{
	"repro/internal/loggopsim":   true,
	"repro/internal/noise":       true,
	"repro/internal/eventq":      true,
	"repro/internal/collectives": true,
	"repro/internal/extrapolate": true,
	"repro/internal/rng":         true,
	"repro/internal/stats":       true,
	"repro/internal/core":        true,
	"repro/internal/mca":         true,
	"repro/internal/advise":      true,
	"repro/internal/faultmodel":  true,
	"repro/internal/journal":     true,
}

// allowedRandConstructors are math/rand(/v2) functions that take an
// explicit source or seed and therefore stay reproducible.
var allowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// wallClockFuncs are the time package functions that read the machine
// clock (directly or by arming timers against it).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	det := DeterministicPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkgPath, name := obj.Pkg().Path(), obj.Name()
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if _, isFunc := obj.(*types.Func); isFunc && !allowedRandConstructors[name] && exportedTopLevel(obj) {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global math/rand state; use a seeded stream (internal/rng, or %s.New with an explicit seed) so runs stay reproducible",
						pkgBase(pkgPath), name, pkgBase(pkgPath))
				}
			case "time":
				if det && wallClockFuncs[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock inside deterministic simulation package %s; inject a clock or use virtual time",
						name, pass.Pkg.Path())
				}
			case "crypto/rand":
				if det {
					pass.Reportf(sel.Pos(),
						"crypto/rand.%s draws OS entropy inside deterministic simulation package %s; use the seeded internal/rng streams",
						name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}

// exportedTopLevel reports whether obj is a package-scope function (a
// method named New etc. on some type never matches the global-state
// rule).
func exportedTopLevel(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Parent() == fn.Pkg().Scope()
}

func pkgBase(path string) string {
	if strings.HasSuffix(path, "/v2") {
		return "rand/v2"
	}
	return path[strings.LastIndex(path, "/")+1:]
}
