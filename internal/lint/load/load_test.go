package load_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/load"
)

// writeTree lays out a throwaway module.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestPatternsWalkSkipsTestdataAndTestFiles(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                    "module tmpmod\n\ngo 1.22\n",
		"a/a.go":                    "package a\n\nfunc A() int { return 1 }\n",
		"a/a_test.go":               "package a\n\nthis would not even parse",
		"a/testdata/src/fix/fix.go": "package fix\n\nalso broken on purpose",
		"b/b.go":                    "package b\n\nimport \"tmpmod/a\"\n\nfunc B() int { return a.A() }\n",
		"docsonly/README.md":        "no go files here",
	})
	l, err := load.Module(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Patterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"tmpmod/a", "tmpmod/b"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
}

func TestCrossPackageTypeResolution(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"errors\"\n\nvar ErrX = errors.New(\"x\")\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nfunc Match(err error) bool { return err == a.ErrX }\n",
	})
	l, err := load.Module(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Types == nil {
		t.Fatal("package b not loaded")
	}
	// The imported sentinel must resolve to a real object so analyzers
	// can inspect it.
	found := false
	for id, obj := range p.Info.Uses {
		if id.Name == "ErrX" && obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "tmpmod/a" {
			found = true
		}
	}
	if !found {
		t.Fatal("cross-package sentinel did not resolve")
	}
}

func TestTypeErrorSurfaces(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return \"not an int\" }\n",
	})
	l, err := load.Module(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Patterns([]string{"./..."}); err == nil {
		t.Fatal("type error silently swallowed")
	}
}

func TestModuleRootDiscoveryFromSubdir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n",
	})
	l, err := load.Module(filepath.Join(root, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if l.ModuleRoot() != root {
		t.Fatalf("root = %s, want %s", l.ModuleRoot(), root)
	}
	if l.ModulePath() != "tmpmod" {
		t.Fatalf("module path = %s", l.ModulePath())
	}
}
