// Package load type-checks the repository's packages from source using
// only the standard library. The sandboxed build has no module proxy,
// so golang.org/x/tools/go/packages is unavailable; instead this
// loader resolves imports itself: standard-library packages come from
// the gc importer's export data (go/importer), and module-internal
// packages ("repro/...") are parsed and type-checked recursively from
// their directories under the module root.
//
// Only non-test files are loaded: ceslint's invariants target
// production code, and keeping test files out of the type-check unit
// keeps the loader to one package per directory.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/jobs").
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds object and type resolution for Files.
	Info *types.Info
}

// Loader loads and caches packages for one module.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*entry
}

type entry struct {
	pkg     *Package
	err     error
	loading bool
}

// Module creates a loader for the Go module rooted at or above dir.
func Module(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.Default(),
		pkgs:       map[string]*entry{},
	}, nil
}

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Patterns resolves command-line package patterns to loaded packages.
// Supported forms: "./..." (or "all") for the whole module, "dir/..."
// for a subtree, and plain directory paths, all relative to the module
// root or absolute.
func (l *Loader) Patterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var pkgs []*Package
	add := func(ps []*Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./..." || pat == "...":
			ps, err := l.loadTree(l.moduleRoot)
			if err != nil {
				return nil, err
			}
			add(ps)
		case strings.HasSuffix(pat, "/..."):
			dir := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			ps, err := l.loadTree(dir)
			if err != nil {
				return nil, err
			}
			add(ps)
		default:
			p, err := l.LoadDir(l.resolveDir(pat))
			if err != nil {
				return nil, err
			}
			if p != nil {
				add([]*Package{p})
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) resolveDir(pat string) string {
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.moduleRoot, pat)
}

// loadTree loads every buildable package under dir, skipping testdata,
// hidden directories and vendor-ish clutter.
func (l *Loader) loadTree(dir string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "bench_results") {
			return filepath.SkipDir
		}
		p, err := l.LoadDir(path)
		if err != nil {
			return err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
		return nil
	})
	return pkgs, err
}

// LoadDir loads the package in dir, or (nil, nil) if the directory has
// no buildable non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	p, err := l.load(path)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, nil
		}
		return nil, err
	}
	return p, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", dir, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleRoot
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
}

// load parses and type-checks the module package with the given import
// path, memoizing the result.
func (l *Loader) load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("load: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &entry{loading: true}
	l.pkgs[path] = e
	pkg, err := l.loadUncached(path)
	e.pkg, e.err, e.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	dir := l.dirFor(path)
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err // may be *build.NoGoError; callers inspect
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: &moduleImporter{l}}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// moduleImporter resolves module-internal imports from source and
// defers everything else to the standard gc importer.
type moduleImporter struct{ l *Loader }

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	switch {
	case path == "unsafe":
		return types.Unsafe, nil
	case path == m.l.modulePath || strings.HasPrefix(path, m.l.modulePath+"/"):
		p, err := m.l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	default:
		return m.l.std.Import(path)
	}
}
