package senterr_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/senterr"
)

func TestSentErr(t *testing.T) {
	senterr.DeprecatedAliases["s.ErrOld"] = "s.ErrNew"
	defer delete(senterr.DeprecatedAliases, "s.ErrOld")
	analysistest.Run(t, filepath.Join("testdata", "src", "s"), senterr.Analyzer)
}
