// Package s is a senterr fixture: sentinel errors must flow through
// errors.Is and %w, never identity or message matching.
package s

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinels following the repo's naming convention.
var (
	ErrQueueFull = errors.New("queue full")
	errInternal  = errors.New("internal")
	ErrOld       = errors.New("old") // deprecated alias registered by the test
	ErrNew       = errors.New("new")
)

func eqCompare(err error) bool {
	return err == ErrQueueFull // want "sentinel ErrQueueFull compared with =="
}

func neqCompare(err error) bool {
	return err != errInternal // want "sentinel errInternal compared with !="
}

func nilCompareOK(err error) bool {
	return err == nil
}

func localCompareOK(err error) bool {
	errStop := errors.New("stop") // local, not a package-level sentinel
	return err == errStop
}

func switchSentinel(err error) string {
	switch err {
	case ErrQueueFull: // want "value switch compares by identity"
		return "full"
	case nil:
		return ""
	}
	return "other"
}

func textContains(err error) bool {
	return strings.Contains(err.Error(), "full") // want "matching err.Error"
}

func textCompare(err error) bool {
	return err.Error() == "queue full" // want "comparing err.Error"
}

func wrapWrongVerb(id string) error {
	return fmt.Errorf("submit %s: %v", id, ErrQueueFull) // want "wrap it with %w"
}

func wrapRightVerbOK(id string) error {
	return fmt.Errorf("submit %s: %w", id, ErrQueueFull)
}

func errorsIsOK(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, errInternal)
}

func useDeprecated() error {
	return ErrOld // want "deprecated sentinel alias ErrOld"
}

func useReplacementOK() error {
	return ErrNew
}

func suppressed(err error) bool {
	return err == ErrQueueFull //ceslint:allow senterr fixture proves the suppression path
}
