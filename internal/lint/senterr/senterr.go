// Package senterr enforces sentinel-error hygiene module-wide.
//
// The service layers deliberately wrap every failure (%w, *JobError,
// *BuildError, *RepetitionError), so sentinel errors such as
// jobs.ErrQueueFull, server.ErrShed, server.ErrBreakerOpen and
// stats.ErrEmptySample only match through errors.Is. Four patterns
// defeat that contract and are flagged:
//
//   - comparing a sentinel with == or != (or a case clause in a value
//     switch), which stops matching the moment anyone adds wrapping;
//   - matching on error text (err.Error() compared or fed to strings
//     predicates), which breaks on any reworded message;
//   - passing a sentinel to fmt.Errorf under a verb other than %w,
//     which erases the chain errors.Is needs;
//   - referencing a deprecated sentinel alias (DeprecatedAliases).
//
// A sentinel here is any package-level variable of error type whose
// name starts with Err/err — the universal Go naming convention this
// repo follows.
package senterr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the senterr check.
var Analyzer = &analysis.Analyzer{
	Name: "senterr",
	Doc: "sentinel errors must be matched with errors.Is and wrapped with %w, " +
		"never compared with == or by message text",
	Run: run,
}

// DeprecatedAliases maps "pkgpath.Name" of retired sentinel aliases to
// the replacement to suggest. Entries outlive the alias itself:
// jobs.ErrFull has been deleted from the codebase, and its entry stays
// so any reintroduction (or a stale branch referencing it) is flagged
// immediately. Tests may add fixture entries.
var DeprecatedAliases = map[string]string{
	"repro/internal/jobs.ErrFull": "jobs.ErrQueueFull",
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkStringMatch(pass, n)
				checkWrapVerb(pass, n)
			case *ast.Ident:
				checkDeprecated(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelName returns a display name when e refers to a package-level
// error variable following the Err naming convention.
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	if !strings.HasPrefix(obj.Name(), "Err") && !strings.HasPrefix(obj.Name(), "err") {
		return ""
	}
	if !implementsError(obj.Type()) {
		return ""
	}
	if obj.Pkg().Path() == pass.Pkg.Path() {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

func implementsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

func checkComparison(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if name := sentinelName(pass, side); name != "" {
			pass.Reportf(bin.Pos(),
				"sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, bin.Op)
			return
		}
	}
	// err.Error() == "..." — message-text matching.
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if isErrorTextCall(pass, side) {
			pass.Reportf(bin.Pos(),
				"comparing err.Error() text; match the error with errors.Is (or errors.As) instead of its message")
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name := sentinelName(pass, e); name != "" {
				pass.Reportf(e.Pos(),
					"sentinel %s in a value switch compares by identity; use errors.Is in an if/else chain", name)
			}
		}
	}
}

// stringPredicates are strings-package functions that, fed err.Error(),
// constitute message matching.
var stringPredicates = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringPredicates[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(pass, arg) {
			pass.Reportf(call.Pos(),
				"matching err.Error() text with strings.%s; use errors.Is (or errors.As) instead of message matching", fn.Name())
			return
		}
	}
}

// isErrorTextCall reports whether e is a call of the error interface's
// Error method.
func isErrorTextCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	return recv != nil && implementsError(recv)
}

// checkWrapVerb flags fmt.Errorf("... %v ...", sentinel): the sentinel
// must travel under %w to stay visible to errors.Is.
func checkWrapVerb(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	verbs, ok := scanVerbs(strings.Trim(lit.Value, "`\""))
	if !ok {
		return // indexed or otherwise exotic format; stay quiet
	}
	for i, arg := range call.Args[1:] {
		name := sentinelName(pass, arg)
		if name == "" || i >= len(verbs) {
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s formatted with %%%c; wrap it with %%w so errors.Is keeps matching", name, verbs[i])
		}
	}
}

// scanVerbs extracts the verb letter consumed by each successive
// argument of a Printf-style format. Returns ok=false on %[n] indexing,
// which would invalidate the positional mapping.
func scanVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision; '*' consumes an argument of its own.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.0123456789", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// checkDeprecated flags uses of retired sentinel aliases.
func checkDeprecated(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if repl, ok := DeprecatedAliases[key]; ok {
		pass.Reportf(id.Pos(), "deprecated sentinel alias %s; use %s (the alias is slated for removal)", obj.Name(), repl)
	}
}
