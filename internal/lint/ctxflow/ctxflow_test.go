package ctxflow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	ctxflow.Packages["c"] = true
	defer delete(ctxflow.Packages, "c")
	analysistest.Run(t, filepath.Join("testdata", "src", "c"), ctxflow.Analyzer)
}
