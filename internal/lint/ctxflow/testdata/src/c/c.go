// Package c is a ctxflow fixture (registered in ctxflow.Packages):
// request-path context discipline.
package c

import (
	"context"
	"errors"
)

func ctxSecond(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = name
	return ctx.Err()
}

func ctxFirstOK(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

func methodCtxFirstOK() {
	var w worker
	_ = w.do
}

type worker struct{}

func (w worker) do(ctx context.Context) error { return ctx.Err() }

func detaches(ctx context.Context) context.Context {
	return context.Background() // want "detaches this call chain"
}

func todoDetaches(ctx context.Context) context.Context {
	return context.TODO() // want "detaches this call chain"
}

func closureDetaches(ctx context.Context) {
	f := func() context.Context {
		return context.Background() // want "detaches this call chain"
	}
	_ = f()
}

func literalWithParam() {
	f := func(ctx context.Context) context.Context {
		return context.Background() // want "detaches this call chain"
	}
	_ = f(context.Background())
}

func freshRootOK() context.Context {
	// No ctx parameter in scope: building a detached lifetime on
	// purpose (main, job execution) is allowed.
	return context.Background()
}

func identityCompare(err error) bool {
	if err == context.Canceled { // want "errors.Is"
		return true
	}
	return err != context.DeadlineExceeded // want "errors.Is"
}

func switchIdentity(err error) string {
	switch err {
	case context.Canceled: // want "errors.Is"
		return "canceled"
	case nil:
		return ""
	}
	return "other"
}

func errorsIsOK(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func suppressed(ctx context.Context) context.Context {
	return context.Background() //ceslint:allow ctxflow fixture proves the suppression path
}
