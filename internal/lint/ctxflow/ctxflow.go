// Package ctxflow enforces context discipline on the serving path.
//
// cesimd's request handling (server → jobs → simcache → core) promises
// that cancellation propagates end-to-end: a client disconnect or a
// drain deadline must reach the repetition loop (docs/SERVICE.md). Three
// patterns quietly break that chain:
//
//   - a context.Context parameter that is not the first parameter, which
//     hides it from reviewers and from this very analyzer's other rules;
//   - calling context.Background()/context.TODO() inside a function that
//     already has a ctx in lexical scope, which detaches all downstream
//     work from the caller's cancellation;
//   - comparing cancellation errors with == instead of
//     errors.Is(err, context.Canceled): every layer here wraps errors
//     (%w, JobError, BuildError, RepetitionError), so identity
//     comparison silently stops matching.
//
// Functions with no ctx parameter may create a fresh context — that is
// how detached lifetimes (job execution, main) are built on purpose.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require ctx-first signatures, forbid context.Background/TODO where a " +
		"ctx is in scope, and require errors.Is for cancellation errors",
	Run: run,
}

// Packages scopes the check to the request path. Tests may add fixture
// paths.
var Packages = map[string]bool{
	"repro/internal/server":     true,
	"repro/internal/jobs":       true,
	"repro/internal/simcache":   true,
	"repro/internal/core":       true,
	"repro/internal/campaign":   true,
	"repro/internal/cluster":    true,
	"repro/internal/advise":     true,
	"repro/internal/faultmodel": true,
	"repro/internal/journal":    true,
	"repro/internal/tenant":     true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// ctxDepth > 0 while walking nodes lexically enclosed by a
	// function that binds a context.Context parameter.
	ctxDepth := 0
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkSignature(pass, n.Type)
			has := bindsCtx(pass, n.Type)
			if has {
				ctxDepth++
			}
			if n.Body != nil {
				ast.Inspect(n.Body, visit)
			}
			if has {
				ctxDepth--
			}
			return false
		case *ast.FuncLit:
			checkSignature(pass, n.Type)
			has := bindsCtx(pass, n.Type)
			if has {
				ctxDepth++
			}
			ast.Inspect(n.Body, visit)
			if has {
				ctxDepth--
			}
			return false
		case *ast.CallExpr:
			checkCall(pass, n, ctxDepth > 0)
		case *ast.BinaryExpr:
			checkComparison(pass, n)
		case *ast.SwitchStmt:
			checkSwitch(pass, n)
		}
		return true
	}
	ast.Inspect(f, visit)
}

// checkSignature flags context.Context parameters that are not first.
func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(pass, field.Type) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter so cancellation flow stays visible")
		}
		idx += n
	}
}

// bindsCtx reports whether the function type has a context.Context
// parameter.
func bindsCtx(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass, field.Type) {
			return true
		}
	}
	return false
}

func isCtxType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCall flags context.Background()/TODO() where a ctx parameter is
// lexically in scope.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, ctxInScope bool) {
	if !ctxInScope {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s() detaches this call chain from the caller's cancellation; propagate the ctx parameter instead",
			fn.Name())
	}
}

// checkComparison flags == / != against context.Canceled or
// context.DeadlineExceeded.
func checkComparison(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if name := ctxSentinel(pass, side); name != "" {
			pass.Reportf(bin.Pos(),
				"cancellation errors are wrapped on this path; use errors.Is(err, context.%s) instead of %s",
				name, bin.Op)
		}
	}
}

// checkSwitch flags `switch err { case context.Canceled: ... }`.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name := ctxSentinel(pass, e); name != "" {
				pass.Reportf(e.Pos(),
					"switching on context.%s compares by identity; use errors.Is so wrapped cancellation still matches",
					name)
			}
		}
	}
}

// ctxSentinel returns "Canceled"/"DeadlineExceeded" when e refers to
// that context package variable.
func ctxSentinel(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Canceled" || obj.Name() == "DeadlineExceeded" {
		return obj.Name()
	}
	return ""
}
