// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface that ceslint needs.
// The build environment vendors nothing, so rather than importing
// x/tools we mirror its shape: an Analyzer owns a Run function that
// receives a Pass (one type-checked package) and reports Diagnostics.
// Analyzers written against this package read exactly like stock
// go/analysis analyzers and could be ported to the real framework by
// changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one ceslint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ceslint:allow directives. Must be a single lower-case word.
	Name string
	// Doc is the one-paragraph description shown by `ceslint -help`.
	Doc string
	// Run performs the check on a single package and reports findings
	// through pass.Report. The returned value is unused by the runner
	// (kept for x/tools API parity).
	Run func(*Pass) (interface{}, error)
}

// Pass carries one type-checked package to an Analyzer's Run.
type Pass struct {
	// Analyzer is the analyzer being run (for self-identification).
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions; shared across packages.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for expressions in
	// Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The runner
// attaches the analyzer name when printing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
