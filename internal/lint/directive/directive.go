// Package directive parses ceslint's suppression comments.
//
// A finding is silenced by placing, on the same line or on the
// line(s) immediately above it:
//
//	//ceslint:allow <analyzer> <reason...>
//
// The analyzer name selects exactly one check (never a wildcard) and
// the reason is mandatory: a suppression with no justification is
// itself reported as a violation, as is a directive naming an unknown
// analyzer or one that ends up suppressing nothing. This keeps every
// suppression narrow, auditable and alive.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker, following the //go:build convention of
// no space after "//".
const Prefix = "//ceslint:allow"

// Directive is one parsed //ceslint:allow comment.
type Directive struct {
	// Analyzer is the single analyzer name the directive silences.
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
	// Used records whether the directive suppressed at least one
	// diagnostic during a run (set by the runner).
	Used bool
}

// Malformed describes a syntactically invalid directive.
type Malformed struct {
	Pos     token.Pos
	Message string
}

// Collect extracts every well- and ill-formed directive from a file's
// comments.
func Collect(f *ast.File) (ds []*Directive, bad []Malformed) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, Prefix) {
				// Tolerate the common "// ceslint:allow" misspacing by
				// flagging it rather than silently ignoring it.
				if strings.HasPrefix(text, "// ceslint:allow") {
					bad = append(bad, Malformed{Pos: c.Pos(),
						Message: "malformed suppression: write //ceslint:allow with no space after //"})
				}
				continue
			}
			rest := strings.TrimPrefix(text, Prefix)
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad = append(bad, Malformed{Pos: c.Pos(),
					Message: "malformed suppression: missing analyzer name and reason"})
				continue
			}
			if len(fields) < 2 {
				bad = append(bad, Malformed{Pos: c.Pos(),
					Message: "malformed suppression: a reason is mandatory (//ceslint:allow " +
						fields[0] + " <why this is safe>)"})
				continue
			}
			ds = append(ds, &Directive{
				Analyzer: fields[0],
				Reason:   strings.Join(fields[1:], " "),
				Pos:      c.Pos(),
			})
		}
	}
	return ds, bad
}

// Index locates directives by file line for the suppression scan.
type Index struct {
	byLine map[int][]*Directive
}

// NewIndex builds a line index over one file's directives.
func NewIndex(fset *token.FileSet, ds []*Directive) *Index {
	idx := &Index{byLine: map[int][]*Directive{}}
	for _, d := range ds {
		line := fset.Position(d.Pos).Line
		idx.byLine[line] = append(idx.byLine[line], d)
	}
	return idx
}

// Match returns the first unused-or-used directive for analyzer that
// covers a diagnostic on line: one on the same line, or one on a
// contiguous run of directive-bearing lines immediately above (so
// suppressions for different analyzers can stack).
func (idx *Index) Match(line int, analyzer string) *Directive {
	if d := idx.at(line, analyzer); d != nil {
		return d
	}
	for k := line - 1; len(idx.byLine[k]) > 0; k-- {
		if d := idx.at(k, analyzer); d != nil {
			return d
		}
	}
	return nil
}

func (idx *Index) at(line int, analyzer string) *Directive {
	for _, d := range idx.byLine[line] {
		if d.Analyzer == analyzer {
			return d
		}
	}
	return nil
}
