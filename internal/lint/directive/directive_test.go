package directive_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/directive"
)

func parse(t *testing.T, src string) (*token.FileSet, []*directive.Directive, []directive.Malformed) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds, bad := directive.Collect(f)
	return fset, ds, bad
}

func TestCollectWellFormed(t *testing.T) {
	_, ds, bad := parse(t, `package x

func f() {
	_ = 1 //ceslint:allow detrand timing-only jitter, documented in LINT.md
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed: %+v", bad)
	}
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	if ds[0].Analyzer != "detrand" {
		t.Fatalf("analyzer %q", ds[0].Analyzer)
	}
	if want := "timing-only jitter, documented in LINT.md"; ds[0].Reason != want {
		t.Fatalf("reason %q, want %q", ds[0].Reason, want)
	}
}

func TestCollectMissingReason(t *testing.T) {
	_, ds, bad := parse(t, `package x

//ceslint:allow detrand
func f() {}
`)
	if len(ds) != 0 {
		t.Fatalf("directive without reason accepted: %+v", ds[0])
	}
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "reason is mandatory") {
		t.Fatalf("malformed = %+v", bad)
	}
}

func TestCollectMissingEverything(t *testing.T) {
	_, _, bad := parse(t, `package x

//ceslint:allow
func f() {}
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "missing analyzer name") {
		t.Fatalf("malformed = %+v", bad)
	}
}

func TestCollectSpacedPrefixFlagged(t *testing.T) {
	_, ds, bad := parse(t, `package x

// ceslint:allow detrand looks right but the space disarms it
func f() {}
`)
	if len(ds) != 0 {
		t.Fatalf("spaced directive should not parse as valid")
	}
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "no space after //") {
		t.Fatalf("malformed = %+v", bad)
	}
}

func TestIndexMatchSameLineAndStacked(t *testing.T) {
	fset, ds, _ := parse(t, `package x

func f() int {
	//ceslint:allow maporder reason one
	//ceslint:allow detrand reason two
	return 1
}
`)
	idx := directive.NewIndex(fset, ds)
	// Line 6 is `return 1`; both stacked directives (lines 4-5) cover it.
	if d := idx.Match(6, "detrand"); d == nil {
		t.Fatal("adjacent directive not matched")
	}
	if d := idx.Match(6, "maporder"); d == nil {
		t.Fatal("stacked directive two lines above not matched")
	}
	if d := idx.Match(6, "senterr"); d != nil {
		t.Fatal("matched a directive for the wrong analyzer")
	}
	// A diagnostic further down is not covered.
	if d := idx.Match(8, "detrand"); d != nil {
		t.Fatal("directive leaked past its line")
	}
}
