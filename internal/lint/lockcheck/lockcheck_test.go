package lockcheck_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockcheck"
)

func TestLockCheck(t *testing.T) {
	lockcheck.Packages["l"] = true
	defer delete(lockcheck.Packages, "l")
	analysistest.Run(t, filepath.Join("testdata", "src", "l"), lockcheck.Analyzer)
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	if lockcheck.Packages["l"] {
		t.Fatal("fixture path leaked into lockcheck.Packages")
	}
}
