// Package lockcheck enforces the service tier's mutex discipline.
//
// The durable service tier (jobs, cluster, journal, simcache, tenant,
// advise, server, collectives) is heavily concurrent, and its
// correctness contracts were until now enforced only by tests and
// review — PR 8's review alone found a same-key double-count race in
// simcache.Store.put that a static pass would have flagged. lockcheck
// walks every function with a small path-sensitive interpreter that
// tracks which sync.Mutex/RWMutex values are held and reports:
//
//   - a return (or explicit panic) reached while a lock acquired in the
//     same function is still held and no defer releases it — the
//     classic missing-unlock-on-early-return bug;
//   - acquiring a lock that is already held on the same path (double
//     lock, or RLock/Lock mixing on one RWMutex: self-deadlock);
//   - releasing a read lock with Unlock or a write lock with RUnlock;
//   - blocking operations performed while any lock is held: channel
//     send/receive (outside a select with a default), ranging over a
//     channel, select without default, sync.WaitGroup.Wait,
//     time.Sleep, (*os.File).Sync and net/http calls — the shape of
//     the critical-section stall the WAL batching design must opt
//     into explicitly (//ceslint:allow with a reason);
//   - lock-containing values copied: parameters, results and plain
//     assignments that pass a sync.Mutex/RWMutex by value (the
//     constructor-smuggling variant go vet's copylocks misses when the
//     lock is buried in a nested struct is covered the same way).
//
// The interpreter is intentionally conservative: states from branches
// are merged by intersection (a lock is "held" after a branch only if
// every surviving path holds it), unlocks of locks the function never
// acquired are assumed to be *Locked-helper convention and ignored,
// and function literals are analyzed as independent functions.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "enforce mutex discipline in the service tier: unlock on every " +
		"return path, no double lock, no RLock/Unlock mixing, no blocking " +
		"calls under a lock, no locks copied by value",
	Run: run,
}

// Packages scopes the check to the concurrent service tier. Engine
// packages are lock-free by design and stay out so the check can be
// strict where it matters. Tests may add fixture paths.
var Packages = map[string]bool{
	"repro/internal/jobs":        true,
	"repro/internal/cluster":     true,
	"repro/internal/journal":     true,
	"repro/internal/simcache":    true,
	"repro/internal/tenant":      true,
	"repro/internal/advise":      true,
	"repro/internal/server":      true,
	"repro/internal/collectives": true,
	"repro/internal/faultinject": true,
}

// lockKind distinguishes how a mutex is held.
type lockKind int

const (
	heldWrite lockKind = iota
	heldRead
)

// state is the interpreter's per-path lock state.
type state struct {
	held     map[string]lockKind // canonical lock expr -> how it is held
	deferred map[string]bool     // locks a registered defer will release
}

func newState() *state {
	return &state{held: map[string]lockKind{}, deferred: map[string]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge intersects the held sets of two surviving paths: a lock still
// counts as held only when both paths hold it the same way. Deferred
// releases are unioned — a defer registered on any path runs at exit.
func (s *state) merge(o *state) {
	for k, v := range s.held {
		if ov, ok := o.held[k]; !ok || ov != v {
			delete(s.held, k)
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

// checker analyzes one function body.
type checker struct {
	pass *analysis.Pass
	fn   string // for messages
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c := &checker{pass: pass, fn: fn.Name.Name}
					c.checkSignature(fn.Type)
					c.walkBody(fn.Body)
				}
			case *ast.FuncLit:
				c := &checker{pass: pass, fn: "func literal"}
				c.checkSignature(fn.Type)
				c.walkBody(fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// walkBody interprets a function body with fresh lock state and checks
// the implicit return at its end.
func (c *checker) walkBody(body *ast.BlockStmt) {
	st := newState()
	terminated := c.walkStmts(body.List, st)
	if !terminated {
		c.checkExit(st, body.Rbrace, "function end")
	}
}

// walkStmts interprets a statement list, returning true when every
// path through it terminates (return, panic, fatal exit).
func (c *checker) walkStmts(list []ast.Stmt, st *state) bool {
	for _, stmt := range list {
		if c.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

// walkStmt interprets one statement. It returns true when the
// statement terminates the current path.
func (c *checker) walkStmt(stmt ast.Stmt, st *state) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.scanExpr(s.X, st)
		c.applyCall(s.X, st)
		if c.terminates(s.X) {
			// panic/os.Exit/log.Fatal ends this path: a lock still held
			// here leaks exactly like an early return does.
			c.checkExit(st, s.X.Pos(), "panic/exit")
			return true
		}
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, st)
		}
		c.checkLockCopy(s)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, st)
					}
				}
			}
		}
		return false
	case *ast.DeferStmt:
		c.applyDefer(s, st)
		return false
	case *ast.GoStmt:
		// The spawned goroutine runs with its own (empty) lock state;
		// its body is analyzed as an independent function literal.
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, st)
		}
		c.checkExit(st, s.Pos(), "return")
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.scanExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := c.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = c.walkStmts(e.List, elseSt)
			case *ast.IfStmt:
				elseTerm = c.walkStmt(e, elseSt)
			}
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			thenSt.merge(elseSt)
			*st = *thenSt
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, st)
		}
		bodySt := st.clone()
		c.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			c.walkStmt(s.Post, bodySt)
		}
		// One symbolic iteration: locks balanced inside the body leave
		// the state unchanged; imbalance is merged conservatively.
		st.merge(bodySt)
		// for{} with no condition and no break-out analysis: assume it
		// may terminate paths only via return inside (handled above).
		return false
	case *ast.RangeStmt:
		c.scanExpr(s.X, st)
		if len(st.held) > 0 && c.isChanType(s.X) {
			c.reportHeld(st, s.Pos(), "ranges over a channel")
		}
		bodySt := st.clone()
		c.walkStmts(s.Body.List, bodySt)
		st.merge(bodySt)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st)
		}
		return c.walkCases(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		return c.walkCases(s.Body, st, false)
	case *ast.SelectStmt:
		// A select with a default never blocks; one without blocks the
		// whole statement, which is reported once here. Either way the
		// comm clauses themselves are walked with channel-op reporting
		// suppressed (walkCases) so one select never double-reports.
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(st.held) > 0 {
			c.reportHeld(st, s.Pos(), "blocks in a select with no default")
		}
		return c.walkCases(s.Body, st, true)
	case *ast.SendStmt:
		c.scanExpr(s.Value, st)
		if len(st.held) > 0 {
			c.reportHeld(st, s.Pos(), "sends on a channel")
		}
		return false
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto end this path's statement list; lock
		// balance across them is out of scope for one-iteration loops.
		return true
	case *ast.IncDecStmt:
		c.scanExpr(s.X, st)
		return false
	default:
		return false
	}
}

// walkCases interprets the clauses of a switch or select body. comm
// selects CommClause handling (whose comm statement was checked by the
// caller).
func (c *checker) walkCases(body *ast.BlockStmt, st *state, comm bool) bool {
	var surviving []*state
	sawDefault := false
	allTerm := true
	for _, cl := range body.List {
		clSt := st.clone()
		var list []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				sawDefault = true
			}
			for _, e := range cc.List {
				c.scanExpr(e, clSt)
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				sawDefault = true
			}
			// The comm statement's channel op was accounted for at the
			// select level; it changes no lock state, so it is skipped.
			list = cc.Body
		}
		if c.walkStmts(list, clSt) {
			continue // this clause terminates
		}
		allTerm = false
		surviving = append(surviving, clSt)
	}
	if !sawDefault && !comm {
		// Fall-through past every case is possible.
		surviving = append(surviving, st.clone())
		allTerm = false
	}
	if len(surviving) == 0 {
		return allTerm && len(body.List) > 0
	}
	merged := surviving[0]
	for _, o := range surviving[1:] {
		merged.merge(o)
	}
	*st = *merged
	return false
}

// applyCall updates lock state for a direct Lock/Unlock-family call.
func (c *checker) applyCall(e ast.Expr, st *state) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	recv, method, isRW := c.lockMethod(call)
	if method == "" {
		return
	}
	key := exprKey(recv)
	switch method {
	case "Lock":
		if k, held := st.held[key]; held {
			if k == heldWrite {
				c.pass.Reportf(call.Pos(), "%s.Lock: lock is already held on this path (double lock deadlocks)", key)
			} else {
				c.pass.Reportf(call.Pos(), "%s.Lock while the read lock is held: lock upgrade self-deadlocks", key)
			}
			return
		}
		st.held[key] = heldWrite
	case "RLock":
		if k, held := st.held[key]; held && k == heldWrite {
			c.pass.Reportf(call.Pos(), "%s.RLock while the write lock is held on this path (self-deadlock)", key)
			return
		}
		st.held[key] = heldRead
	case "Unlock":
		if k, held := st.held[key]; held {
			if k == heldRead && isRW {
				c.pass.Reportf(call.Pos(), "%s.Unlock releases a lock acquired with RLock; use RUnlock", key)
			}
			delete(st.held, key)
		}
		// Unlock of a lock this function never acquired: *Locked-helper
		// convention (the caller holds it); not reported.
	case "RUnlock":
		if k, held := st.held[key]; held {
			if k == heldWrite {
				c.pass.Reportf(call.Pos(), "%s.RUnlock releases a lock acquired with Lock; use Unlock", key)
			}
			delete(st.held, key)
		}
	}
}

// applyDefer registers deferred unlocks, including those buried in a
// deferred closure.
func (c *checker) applyDefer(d *ast.DeferStmt, st *state) {
	if recv, method, _ := c.lockMethod(d.Call); method == "Unlock" || method == "RUnlock" {
		st.deferred[exprKey(recv)] = true
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, method, _ := c.lockMethod(call); method == "Unlock" || method == "RUnlock" {
					st.deferred[exprKey(recv)] = true
				}
			}
			return true
		})
	}
}

// checkExit reports locks still held at a return/panic that no defer
// releases.
func (c *checker) checkExit(st *state, pos token.Pos, what string) {
	for key := range st.held {
		if st.deferred[key] {
			continue
		}
		c.pass.Reportf(pos, "%s with %s still locked and no deferred unlock (missing unlock on this path)", what, key)
	}
}

// reportHeld reports one blocking operation performed under each held
// lock.
func (c *checker) reportHeld(st *state, pos token.Pos, what string) {
	for key := range st.held {
		c.pass.Reportf(pos, "%s while holding %s: the critical section blocks on I/O or another goroutine", what, key)
	}
}

// scanExpr inspects an expression tree (not descending into function
// literals) for blocking operations performed while a lock is held.
func (c *checker) scanExpr(e ast.Expr, st *state) {
	if e == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.reportHeld(st, x.Pos(), "receives from a channel")
			}
		case *ast.CallExpr:
			if name := c.blockingCall(x); name != "" {
				c.reportHeld(st, x.Pos(), "calls "+name)
			}
		}
		return true
	})
}

// terminates reports whether a call expression never returns.
func (c *checker) terminates(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		obj, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return false
		}
		full := obj.Pkg().Path() + "." + obj.Name()
		switch full {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
		if obj.Pkg().Path() == "log" && strings.HasPrefix(obj.Name(), "Fatal") {
			return true
		}
	}
	return false
}

// blockingCall returns a printable name when the call blocks by
// nature: WaitGroup.Wait, time.Sleep, (*os.File).Sync, net/http
// round-trips.
func (c *checker) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	full := obj.FullName()
	switch full {
	case "(*sync.WaitGroup).Wait":
		return "sync.WaitGroup.Wait"
	case "time.Sleep":
		return "time.Sleep"
	case "(*os.File).Sync":
		return "os.File.Sync"
	}
	if obj.Pkg().Path() == "net/http" {
		switch obj.Name() {
		case "Get", "Head", "Post", "PostForm", "Do":
			return "net/http." + obj.Name()
		}
	}
	return ""
}

// lockMethod resolves a call to a sync.Mutex/RWMutex method, returning
// the receiver expression, the method name and whether the receiver is
// an RWMutex. method is "" when the call is not a lock operation.
func (c *checker) lockMethod(call *ast.CallExpr) (recv ast.Expr, method string, isRW bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	tname := recvTypeName(sig.Recv().Type())
	if tname != "Mutex" && tname != "RWMutex" {
		return nil, "", false
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return sel.X, obj.Name(), tname == "RWMutex"
	}
	return nil, "", false
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// exprKey renders a canonical name for a lock receiver expression so
// "s.mu" in two statements resolves to the same lock.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[" + exprKey(x.Index) + "]"
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	case *ast.BasicLit:
		return x.Value
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}

// isChanType reports whether e has a channel type.
func (c *checker) isChanType(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// checkSignature reports parameters and results that pass a
// sync.Mutex/RWMutex by value.
func (c *checker) checkSignature(ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := c.pass.TypesInfo.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if containsLock(tv.Type, nil) {
				c.pass.Reportf(field.Pos(), "%s passes a sync.Mutex/RWMutex by value; pass a pointer so the lock is shared, not copied", what)
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkLockCopy reports assignments that copy a lock-containing value.
func (c *checker) checkLockCopy(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		switch rhs.(type) {
		case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue // composite literals, calls, &x: not a copy of a live lock
		}
		if _, isIdent := rhs.(*ast.Ident); isIdent {
			// Plain `x := y` of a zero-value local is common and mostly
			// benign; only deref and field/index copies are confidently
			// copies of a shared lock.
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if containsLock(tv.Type, nil) {
			c.pass.Reportf(rhs.Pos(), "assignment copies a value containing a sync.Mutex/RWMutex; copy a pointer instead")
		}
	}
}

// containsLock reports whether t holds a sync.Mutex or sync.RWMutex by
// value (directly, in a struct field, or in an array element).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				return true
			}
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
