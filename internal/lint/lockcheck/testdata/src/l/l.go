// Package l is a lockcheck fixture (registered in lockcheck.Packages):
// broken mutex discipline must be flagged; the repo's real idioms —
// defer unlock, branch-balanced unlock, *Locked helpers, select with
// default under a lock — must not.
package l

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
	f  *os.File
	wg sync.WaitGroup
}

// --- missing unlock on early return ---

func earlyReturnLeak(b *box, bad bool) int {
	b.mu.Lock()
	if bad {
		return -1 // want "return with b.mu still locked"
	}
	b.mu.Unlock()
	return b.n
}

func endOfFunctionLeak(b *box) {
	b.mu.Lock()
	b.n++
} // want "function end with b.mu still locked"

func panicLeak(b *box) {
	b.mu.Lock()
	if b.n < 0 {
		panic("negative") // want "panic/exit with b.mu still locked"
	}
	b.mu.Unlock()
}

// --- correct shapes ---

func deferredOK(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n > 10 {
		return 10
	}
	return b.n
}

func deferredClosureOK(b *box) {
	b.mu.Lock()
	defer func() {
		b.n = 0
		b.mu.Unlock()
	}()
	b.n++
}

func branchBalancedOK(b *box, bad bool) int {
	b.mu.Lock()
	if bad {
		b.mu.Unlock()
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// helperLocked follows the *Locked convention: the caller holds b.mu,
// so the bare unlock here is not a finding.
func helperLocked(b *box) {
	b.n++
}

func unlockForCaller(b *box) {
	// Releasing a lock acquired elsewhere (lock handoff) is ignored.
	b.mu.Unlock()
}

// --- double lock and RWMutex mixing ---

func doubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want "already held on this path"
	b.mu.Unlock()
	b.mu.Unlock()
}

func upgradeDeadlock(b *box) {
	b.rw.RLock()
	b.rw.Lock() // want "lock upgrade self-deadlocks"
	b.rw.RUnlock()
}

func readWithWriteUnlock(b *box) {
	b.rw.RLock()
	b.rw.Unlock() // want "use RUnlock"
}

func writeWithReadUnlock(b *box) {
	b.rw.Lock()
	b.rw.RUnlock() // want "use Unlock"
}

func readersOK(b *box) int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

func twoLocksOK(b *box, o *box) {
	b.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	b.mu.Unlock()
}

// --- blocking operations under a lock ---

func sendUnderLock(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want "sends on a channel while holding b.mu"
	b.mu.Unlock()
}

func recvUnderLock(b *box) int {
	b.mu.Lock()
	v := <-b.ch // want "receives from a channel while holding b.mu"
	b.mu.Unlock()
	return v
}

func rangeChanUnderLock(b *box) {
	b.mu.Lock()
	for v := range b.ch { // want "ranges over a channel while holding b.mu"
		b.n += v
	}
	b.mu.Unlock()
}

func selectBlocksUnderLock(b *box) {
	b.mu.Lock()
	select { // want "blocks in a select with no default while holding b.mu"
	case v := <-b.ch:
		b.n = v
	case b.ch <- 2:
	}
	b.mu.Unlock()
}

func selectWithDefaultOK(b *box) {
	b.mu.Lock()
	select {
	case b.ch <- 1:
		b.n++
	default:
	}
	b.mu.Unlock()
}

func sleepUnderLock(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "calls time.Sleep while holding b.mu"
	b.mu.Unlock()
}

func fsyncUnderLock(b *box) {
	b.mu.Lock()
	_ = b.f.Sync() // want "calls os.File.Sync while holding b.mu"
	b.mu.Unlock()
}

func httpUnderLock(b *box) {
	b.mu.Lock()
	_, _ = http.Get("http://example.com") // want "calls net/http.Get while holding b.mu"
	b.mu.Unlock()
}

func waitUnderLock(b *box) {
	b.mu.Lock()
	b.wg.Wait() // want "calls sync.WaitGroup.Wait while holding b.mu"
	b.mu.Unlock()
}

func blockingAfterUnlockOK(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.ch <- b.n
	time.Sleep(time.Millisecond)
}

// --- locks copied by value ---

type holder struct {
	mu sync.Mutex
	v  int
}

type nested struct{ h holder }

func passByValue(h holder) int { // want "parameter passes a sync.Mutex/RWMutex by value"
	return h.v
}

func nestedByValue(n nested) int { // want "parameter passes a sync.Mutex/RWMutex by value"
	return n.h.v
}

func returnByValue(p *holder) holder { // want "result passes a sync.Mutex/RWMutex by value"
	return *p
}

func derefCopy(p *holder) {
	h := *p // want "assignment copies a value containing a sync.Mutex/RWMutex"
	_ = h
}

func pointerOK(p *holder) int {
	q := p
	return q.v
}

// --- suppression ---

func suppressedSend(b *box) {
	b.mu.Lock()
	b.ch <- 1 //ceslint:allow lockcheck fixture proves the suppression path
	b.mu.Unlock()
}
