// Package dj is the journal-rules durio fixture (registered in both
// durio.Packages and durio.JournalPackages): inside the journal, the
// only legal rename is quarantine to *.corrupt.
package dj

import (
	"os"
	"path/filepath"
)

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func quarantineOK(path string) error {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func clobberingRename(dir string) error {
	err := os.Rename(filepath.Join(dir, "wal-1.seg"), filepath.Join(dir, "wal-2.seg")) // want "can clobber a live segment" "not followed by a parent-directory fsync"
	return err
}
