// Package d is a durio fixture (registered in durio.Packages): broken
// durability ordering must be flagged; the repo's full publish idiom —
// write temp, Sync, checked Close, rename, syncDir — must not.
package d

import (
	"os"
	"path/filepath"
)

// syncDir is the parent-directory fsync idiom the analyzer recognizes
// by name.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- the correct publish sequence ---

func publishOK(dir string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, filepath.Join(dir, "final")); err != nil {
		return err
	}
	return syncDir(dir)
}

// --- missing file sync before the publish rename ---

func publishNoFileSync(dir string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, "final")); err != nil { // want "no File.Sync before the rename"
		return err
	}
	return syncDir(dir)
}

// --- rename without a parent-directory fsync ---

func renameNoDirSync(dir string) error {
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) // want "not followed by a parent-directory fsync"
}

// --- discarded write-path Close ---

func discardedCloses(dir string, payload []byte) {
	f, _ := os.Create(filepath.Join(dir, "x"))
	f.Write(payload)
	f.Close() // want "Close error of a file opened for writing is discarded"

	g, _ := os.Create(filepath.Join(dir, "y"))
	defer g.Close() // want "defer discards the Close error"
	g.Write(payload)

	h, _ := os.Create(filepath.Join(dir, "z"))
	h.Write(payload)
	_ = h.Close() // want "explicitly discarded"
}

func readCloseOK(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only open: a discarded Close loses nothing
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// --- torn frames: header and payload in separate writes ---

func tornFrame(dir string, hdr, payload []byte) error {
	f, err := os.Create(filepath.Join(dir, "rec"))
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil { // want "record framed across 2 Write calls"
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func singleFrameOK(dir string, hdr, payload []byte) error {
	f, err := os.Create(filepath.Join(dir, "rec"))
	if err != nil {
		return err
	}
	rec := append(append([]byte(nil), hdr...), payload...)
	if _, err := f.Write(rec); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// --- suppression ---

func suppressedRename(dir string) error {
	//ceslint:allow durio fixture proves the suppression path
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
}
