// Package durio enforces the durable-write contract on the WAL and the
// on-disk result store (docs/DURABILITY.md).
//
// Crash safety in internal/journal and internal/simcache rests on a
// precise ordering of write(2), fsync and rename — an ordering a
// reviewer can silently lose in any refactor, which is exactly how the
// Ramulator re-evaluation papers describe simulators drifting from
// their claimed contracts. durio makes the ordering machine-checked:
//
//   - a temp-write→rename publish (os.CreateTemp/os.Create followed by
//     os.Rename in one function) must Sync the file before the rename,
//     or a crash can publish an empty or partial entry under the final
//     name;
//   - every os.Rename must be followed, in the same function, by a
//     parent-directory fsync — the repo's syncDir idiom — because a
//     rename only becomes durable once the directory entry reaches
//     disk;
//   - Close errors on files opened for writing must be checked, not
//     discarded: the OS may surface a delayed write error only at
//     close (deferred closes inside cleanup closures on already-failed
//     paths are exempt);
//   - a record frame must go out in a single Write call, so a crash
//     between two writes can never tear a header from its payload;
//   - inside internal/journal, os.Rename may only target *.corrupt
//     quarantine names — any other destination risks clobbering a live
//     segment.
package durio

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the durio check.
var Analyzer = &analysis.Analyzer{
	Name: "durio",
	Doc: "enforce the fsync-before-rename durability contract on the WAL " +
		"and result store: file sync before rename, directory sync after, " +
		"checked write-path closes, single-write record framing",
	Run: run,
}

// Packages scopes the check to the two packages that own durable
// bytes. Tests may add fixture paths.
var Packages = map[string]bool{
	"repro/internal/journal":  true,
	"repro/internal/simcache": true,
}

// JournalPackages additionally enforces the no-clobber rename rule
// (renames only to *.corrupt): segment files are live history and a
// rename over one destroys committed records.
var JournalPackages = map[string]bool{
	"repro/internal/journal": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	journalRules := JournalPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body, journalRules)
				}
				return true
			case *ast.FuncLit:
				// Literals are checked through their enclosing function:
				// the write/rename/sync calls of one publish sequence can
				// straddle a closure (cleanup defers), so the unit of
				// analysis is the outermost declaration.
				return true
			}
			return true
		})
	}
	return nil, nil
}

// fileVars records how each *os.File variable in a function was
// opened, keyed by the variable object.
type funcFacts struct {
	renames    []*ast.CallExpr // os.Rename calls in source order
	fileSyncs  []token.Pos     // (*os.File).Sync calls
	dirSyncs   []token.Pos     // syncDir-idiom calls
	tempOpens  int             // os.Create/os.CreateTemp/os.OpenFile calls
	writeFiles map[types.Object]bool
	writes     map[types.Object][]token.Pos // (*os.File).Write* per file var
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, journalRules bool) {
	facts := &funcFacts{
		writeFiles: map[types.Object]bool{},
		writes:     map[types.Object][]token.Pos{},
	}

	// Pass 1: collect calls and classify file variables.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			collectOpens(pass, x, facts)
		case *ast.CallExpr:
			classifyCall(pass, x, facts)
		}
		return true
	})

	// Rule: temp-write→rename without a file sync.
	if len(facts.renames) > 0 && facts.tempOpens > 0 && len(facts.fileSyncs) == 0 {
		pass.Reportf(facts.renames[0].Pos(),
			"temp-write→rename publish with no File.Sync before the rename: a crash can publish an empty or partial entry")
	}

	// Rule: every rename is followed by a directory sync.
	for _, rn := range facts.renames {
		if !hasDirSyncAfter(facts, rn.Pos()) {
			pass.Reportf(rn.Pos(),
				"os.Rename is not followed by a parent-directory fsync (syncDir) in this function: the rename may not survive a crash")
		}
		if journalRules && !renameTargetsQuarantine(rn) {
			pass.Reportf(rn.Pos(),
				"os.Rename inside the journal may only target a *.corrupt quarantine name: any other destination can clobber a live segment")
		}
	}

	// Rule: a frame must be one Write call.
	for _, poss := range facts.writes {
		if len(poss) > 1 {
			pass.Reportf(poss[1],
				"record framed across %d Write calls: assemble one buffer and write it in a single call so a crash cannot tear the frame",
				len(poss))
		}
	}

	// Rule: write-path Close results must be checked.
	checkCloses(pass, body, facts)
}

// collectOpens records file variables assigned from a write-capable
// open (os.Create, os.CreateTemp, os.OpenFile).
func collectOpens(pass *analysis.Pass, as *ast.AssignStmt, facts *funcFacts) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		switch calleeName(pass, call) {
		case "os.Create", "os.CreateTemp", "os.OpenFile":
			facts.tempOpens++
			// Multi-value assignment f, err := ... : the file is LHS[0]
			// when RHS has one call, else positional.
			idx := 0
			if len(as.Rhs) == len(as.Lhs) {
				idx = i
			}
			if idx < len(as.Lhs) {
				if id, ok := as.Lhs[idx].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						facts.writeFiles[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						facts.writeFiles[obj] = true
					}
				}
			}
		}
	}
}

// classifyCall files renames, syncs and writes into facts.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, facts *funcFacts) {
	name := calleeName(pass, call)
	switch {
	case name == "os.Rename":
		facts.renames = append(facts.renames, call)
	case name == "(*os.File).Sync":
		facts.fileSyncs = append(facts.fileSyncs, call.Pos())
	case isDirSyncIdiom(call):
		facts.dirSyncs = append(facts.dirSyncs, call.Pos())
	case name == "(*os.File).Write" || name == "(*os.File).WriteString" || name == "(*os.File).WriteAt":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					facts.writes[obj] = append(facts.writes[obj], call.Pos())
				}
			}
		}
	}
}

// hasDirSyncAfter reports whether a syncDir call appears after pos.
func hasDirSyncAfter(facts *funcFacts, pos token.Pos) bool {
	for _, p := range facts.dirSyncs {
		if p > pos {
			return true
		}
	}
	return false
}

// isDirSyncIdiom recognizes the repo's parent-directory fsync helper
// by name: any function or method whose name contains "syncdir"
// (case-insensitive) — syncDir, SyncDir, fsyncDir. Name-based so
// golden fixtures (type-checked against the standard library only)
// can exercise the rule with a local helper.
func isDirSyncIdiom(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "syncdir")
}

// renameTargetsQuarantine reports whether the rename destination is a
// string concatenation ending in the ".corrupt" literal — the only
// rename the journal's replay is allowed to perform.
func renameTargetsQuarantine(call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	bin, ok := call.Args[1].(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	lit, ok := bin.Y.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && strings.HasSuffix(strings.Trim(lit.Value, `"`), ".corrupt")
}

// checkCloses flags discarded Close results on write-opened files:
// bare `f.Close()`, `_ = f.Close()` and direct `defer f.Close()`.
// Closes inside deferred closures are cleanup on already-failed paths
// and stay exempt.
func checkCloses(pass *analysis.Pass, body *ast.BlockStmt, facts *funcFacts) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if obj := closeTarget(pass, x.Call); obj != nil && facts.writeFiles[obj] {
				pass.Reportf(x.Pos(),
					"defer discards the Close error of a file opened for writing: delayed write errors surface at close; check it explicitly")
			}
			// Do not descend into deferred closures: their closes are
			// cleanup for paths that already returned an error.
			if _, ok := x.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
			return false
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if obj := closeTarget(pass, call); obj != nil && facts.writeFiles[obj] {
					pass.Reportf(x.Pos(),
						"Close error of a file opened for writing is discarded: delayed write errors surface at close; check it")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				obj := closeTarget(pass, call)
				if obj == nil || !facts.writeFiles[obj] {
					continue
				}
				if i < len(x.Lhs) && isBlank(x.Lhs[i]) {
					pass.Reportf(x.Pos(),
						"Close error of a file opened for writing is explicitly discarded: delayed write errors surface at close; check it")
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// closeTarget resolves f in a `f.Close()` call to its variable object
// when f is an *os.File, else nil.
func closeTarget(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	if calleeName(pass, call) != "(*os.File).Close" {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeName resolves a call to "pkg.Func" or "(*pkg.Type).Method"
// form via type information.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return obj.FullName()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
