package durio_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/durio"
)

func TestDurio(t *testing.T) {
	durio.Packages["d"] = true
	defer delete(durio.Packages, "d")
	analysistest.Run(t, filepath.Join("testdata", "src", "d"), durio.Analyzer)
}

func TestDurioJournalRules(t *testing.T) {
	durio.Packages["dj"] = true
	durio.JournalPackages["dj"] = true
	defer delete(durio.Packages, "dj")
	defer delete(durio.JournalPackages, "dj")
	analysistest.Run(t, filepath.Join("testdata", "src", "dj"), durio.Analyzer)
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	if durio.Packages["d"] || durio.Packages["dj"] || durio.JournalPackages["dj"] {
		t.Fatal("fixture path leaked into durio scope maps")
	}
}
