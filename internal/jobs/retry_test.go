package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// transientErr is a retryable failure for tests.
type transientErr struct{}

func (transientErr) Error() string   { return "transient" }
func (transientErr) Retryable() bool { return true }

func TestPanicRecoveredAndRetried(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	var calls atomic.Int32
	id, err := q.SubmitSpec(Spec{Kind: "flaky", Retries: 3, BaseBackoff: time.Millisecond}, func(context.Context) (any, error) {
		if calls.Add(1) < 3 {
			panic("injected-ish")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Succeeded || s.Result != "ok" {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", s.Attempts)
	}
	st := q.Stats()
	if st.PanicsRecovered != 2 || st.Retries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPanicExhaustsRetryBudget(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	id, err := q.SubmitSpec(Spec{Kind: "doomed", Retries: 1, BaseBackoff: time.Millisecond}, func(context.Context) (any, error) {
		panic("always")
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Failed {
		t.Fatalf("state %s", s.State)
	}
	if !strings.Contains(s.Error, "recovered panic: always") {
		t.Fatalf("error %q lacks the panic value", s.Error)
	}
	if s.Stack == "" || !strings.Contains(s.Stack, "goroutine") {
		t.Fatalf("stack not captured: %q", s.Stack)
	}
	if s.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", s.Attempts)
	}
	// The worker survived the panics: the queue still runs work.
	id2, err := q.Submit("after", func(context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, q, id2); s.State != Succeeded {
		t.Fatalf("worker died: %+v", s)
	}
}

func TestRetryableErrorRetried(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	var calls atomic.Int32
	id, err := q.SubmitSpec(Spec{Kind: "flaky", Retries: 5, BaseBackoff: time.Millisecond}, func(context.Context) (any, error) {
		if calls.Add(1) < 4 {
			return nil, transientErr{}
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Succeeded || s.Attempts != 4 {
		t.Fatalf("snapshot %+v", s)
	}
	if st := q.Stats(); st.Retries != 3 || st.PanicsRecovered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPlainErrorNotRetried(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	var calls atomic.Int32
	id, err := q.SubmitSpec(Spec{Kind: "hard", Retries: 5, BaseBackoff: time.Millisecond}, func(context.Context) (any, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Failed || s.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("snapshot %+v, calls %d", s, calls.Load())
	}
	if st := q.Stats(); st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCancelRacesPanickingWorker covers the satellite case: a job that
// keeps panicking is canceled mid-recovery/backoff. The job must reach
// exactly one terminal state (canceled), with no double-completion
// visible in the counters or the retention list.
func TestCancelRacesPanickingWorker(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	id, err := q.SubmitSpec(Spec{Kind: "panicky", Retries: 1000, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 5 * time.Millisecond}, func(context.Context) (any, error) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		panic("thrash")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel(id) {
		t.Fatal("cancel refused")
	}
	s := waitTerminal(t, q, id)
	if s.State != Canceled {
		t.Fatalf("state %s, want canceled", s.State)
	}
	// Give any straggling retry machinery time to misbehave, then
	// verify the terminal accounting happened exactly once.
	time.Sleep(50 * time.Millisecond)
	st := q.Stats()
	if st.Canceled != 1 || st.Failed != 0 || st.Succeeded != 0 {
		t.Fatalf("double completion: %+v", st)
	}
	if s2, ok := q.Get(id); !ok || s2.State != Canceled {
		t.Fatalf("terminal state changed: %+v", s2)
	}
	if q.Cancel(id) {
		t.Fatal("cancel of terminal job accepted")
	}
}

// TestCancelQueuedThenWorkerArrives pins the other side of the race: a
// job canceled while queued is finished by Cancel itself; when the
// worker later dequeues it, it must not run or re-finish it.
func TestCancelQueuedThenWorkerArrives(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 4})
	defer q.Drain(context.Background())
	block := make(chan struct{})
	if _, err := q.Submit("blocker", func(context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	id, err := q.SubmitSpec(Spec{Kind: "victim", Retries: 3}, func(context.Context) (any, error) {
		panic("must never run")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(id) {
		t.Fatal("cancel refused")
	}
	close(block)
	s := waitTerminal(t, q, id)
	if s.State != Canceled {
		t.Fatalf("state %s", s.State)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Canceled != 1 || st.PanicsRecovered != 0 {
		t.Fatalf("canceled queued job ran: %+v", st)
	}
}

func TestBackoffBoundedAndJittered(t *testing.T) {
	s := Spec{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	jr := jitterStream("job-backoff-test")
	for attempt := 0; attempt < 10; attempt++ {
		d := s.Backoff(attempt, jr)
		if d <= 0 || d > s.MaxBackoff {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, s.MaxBackoff)
		}
	}
	// Defaults apply when the spec leaves the knobs zero.
	d := Spec{}.Backoff(0, jr)
	if d < 5*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("default first backoff %v outside [5ms, 10ms]", d)
	}
}

func TestBackoffDeterministicPerJobID(t *testing.T) {
	// Regression note for the detrand rework: jitter used to come from
	// the global math/rand/v2 state; it now derives from the job id, so
	// the same id must replay the same sleep schedule and distinct ids
	// must decorrelate.
	s := Spec{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	a1, a2 := jitterStream("job-a"), jitterStream("job-a")
	b := jitterStream("job-b")
	same, diff := true, false
	for attempt := 0; attempt < 8; attempt++ {
		d1, d2, d3 := s.Backoff(attempt, a1), s.Backoff(attempt, a2), s.Backoff(attempt, b)
		if d1 != d2 {
			same = false
		}
		if d1 != d3 {
			diff = true
		}
	}
	if !same {
		t.Fatal("same job id produced different backoff schedules")
	}
	if !diff {
		t.Fatal("distinct job ids produced identical backoff schedules (streams not decorrelated)")
	}
}
