package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, q *Queue, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if s.State.Terminal() {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, s.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunsToSuccess(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Drain(context.Background())
	id, err := q.Submit("test", func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Succeeded || s.Result != 42 || s.Error != "" {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Started == nil || s.Finished == nil {
		t.Fatalf("timestamps missing: %+v", s)
	}
	if st := q.Stats(); st.Succeeded != 1 || st.Submitted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFailureSurfaces(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	id, err := q.Submit("test", func(context.Context) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Failed || s.Error != "boom" {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestQueueFullRejects(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 1})
	defer q.Drain(context.Background())
	block := make(chan struct{})
	wait := func(context.Context) (any, error) { <-block; return nil, nil }
	// First job occupies the worker, second fills the queue; the
	// worker may not have picked the first up yet, so allow one retry.
	if _, err := q.Submit("a", wait); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Submit("b", wait); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("c", wait); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: %v", err)
	}
	if st := q.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
	close(block)
}

func TestTimeoutCancelsJob(t *testing.T) {
	q := New(Config{Workers: 1, Timeout: 20 * time.Millisecond})
	defer q.Drain(context.Background())
	id, err := q.Submit("slow", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.State != Canceled {
		t.Fatalf("state %s, want canceled", s.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	started := make(chan struct{})
	id, err := q.Submit("slow", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel(id) {
		t.Fatal("cancel refused")
	}
	s := waitTerminal(t, q, id)
	if s.State != Canceled {
		t.Fatalf("state %s, want canceled", s.State)
	}
	if q.Cancel(id) {
		t.Fatal("cancel of terminal job accepted")
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 4})
	defer q.Drain(context.Background())
	block := make(chan struct{})
	if _, err := q.Submit("blocker", func(context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	ran := false
	id, err := q.Submit("victim", func(context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(id) {
		t.Fatal("cancel refused")
	}
	close(block)
	s := waitTerminal(t, q, id)
	if s.State != Canceled {
		t.Fatalf("state %s", s.State)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("canceled queued job still ran")
	}
}

func TestDrainFinishesQueuedWork(t *testing.T) {
	q := New(Config{Workers: 2, Capacity: 16})
	var mu sync.Mutex
	done := 0
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		id, err := q.Submit("work", func(context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			mu.Lock()
			done++
			mu.Unlock()
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if done != 8 {
		t.Fatalf("drain lost work: %d/8 done", done)
	}
	if _, err := q.Submit("late", func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v", err)
	}
	for _, id := range ids {
		if s, ok := q.Get(id); !ok || s.State != Succeeded {
			t.Fatalf("job %s after drain: %+v", id, s)
		}
	}
}

func TestDrainHonorsContext(t *testing.T) {
	q := New(Config{Workers: 1})
	block := make(chan struct{})
	defer close(block)
	if _, err := q.Submit("stuck", func(context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck job: %v", err)
	}
}

func TestRetentionForgetsOldest(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 16, Retain: 2})
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := q.Submit("w", func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		waitTerminal(t, q, id)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:2] {
		if _, ok := q.Get(id); ok {
			t.Fatalf("job %s retained beyond bound", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := q.Get(id); !ok {
			t.Fatalf("recent job %s forgotten", id)
		}
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	q := New(Config{Workers: 4, Capacity: 256})
	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				id, err := q.Submit("w", func(context.Context) (any, error) { return "ok", nil })
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- id
			}
		}()
	}
	wg.Wait()
	close(ids)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for id := range ids {
		if s, ok := q.Get(id); !ok || s.State != Succeeded {
			t.Fatalf("job %s: %+v", id, s)
		}
	}
	if st := q.Stats(); st.Succeeded != 64 || st.Submitted != 64 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnknownJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Drain(context.Background())
	if _, ok := q.Get("nope"); ok {
		t.Fatal("unknown id found")
	}
	if q.Cancel("nope") {
		t.Fatal("unknown id canceled")
	}
}
