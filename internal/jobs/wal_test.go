package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

// openJournal builds a real WAL writer in a temp dir.
func openJournal(t *testing.T, dir string) *journal.Writer {
	t.Helper()
	w, err := journal.Open(dir, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestJournalRecoverPendingJobs(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(Config{Workers: 1, Journal: w})

	// One job completes; one is accepted but never run (its Func blocks
	// until we let go, so the accepted record lands without a terminal).
	id1, err := q.SubmitSpec(Spec{Kind: "fast", Payload: json.RawMessage(`{"n":1}`)},
		func(ctx context.Context) (any, error) { return "done", nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := q.Wait(context.Background(), id1); !ok || err != nil {
		t.Fatalf("wait: ok=%v err=%v", ok, err)
	}

	block := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(block) })
	id2, err := q.SubmitSpec(Spec{
		Kind:      "slow",
		RequestID: "req-abc",
		Retries:   2,
		Payload:   json.RawMessage(`{"n":2}`),
	}, func(ctx context.Context) (any, error) { <-block; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker time to journal the started record; the job then
	// blocks forever — the shape of a crash mid-run.
	time.Sleep(50 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	pending, st, err := Recover(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 0 {
		t.Fatalf("clean journal quarantined segments: %+v", st)
	}
	if len(pending) != 1 {
		t.Fatalf("pending jobs: %d, want 1 (%+v)", len(pending), pending)
	}
	p := pending[0]
	if p.ID != id2 || p.Spec.Kind != "slow" || p.Spec.RequestID != "req-abc" || p.Spec.Retries != 2 {
		t.Fatalf("recovered job mismatch: %+v", p)
	}
	if string(p.Spec.Payload) != `{"n":2}` {
		t.Fatalf("payload not preserved: %q", p.Spec.Payload)
	}
}

func TestSubmitRecoveredPreservesID(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(Config{Workers: 1, Journal: w})
	p := PendingJob{ID: "j000042-deadbeef", Spec: Spec{Kind: "sweep", RequestID: "r-1"}}
	id, err := q.SubmitRecovered(p, func(ctx context.Context) (any, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if id != p.ID {
		t.Fatalf("recovered submit changed the id: %s", id)
	}
	snap, ok, err := q.Wait(context.Background(), id)
	if !ok || err != nil || snap.State != Succeeded {
		t.Fatalf("recovered job did not run: ok=%v err=%v snap=%+v", ok, err, snap)
	}
	if q.Stats().Recovered != 1 {
		t.Fatalf("recovered counter: %+v", q.Stats())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The extended log replays to an empty pending set: acceptance was
	// re-journaled and the terminal record closes it.
	pending, _, err := Recover(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("completed recovered job still pending: %+v", pending)
	}
}

// TestRecoverTornTailAcrossTwoRestarts mirrors the daemon's recovery
// cycle — replay, THEN open a new writer, then re-submit — across two
// crashes, the first of which tears the WAL's tail mid-append. After
// the second crash the torn segment is no longer the log's last; it
// must still replay its whole records instead of being quarantined, or
// the unfinished job silently vanishes on the second restart.
func TestRecoverTornTailAcrossTwoRestarts(t *testing.T) {
	dir := t.TempDir()
	w1 := openJournal(t, dir)
	q1 := New(Config{Workers: 1, Journal: w1})
	block := make(chan struct{})
	defer close(block)
	id, err := q1.SubmitSpec(Spec{Kind: "slow", RequestID: "r-torn", Payload: json.RawMessage(`{}`)},
		func(ctx context.Context) (any, error) { <-block; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// SIGKILL mid-append: partial record bytes at the tail, no Close.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("wal dir: %v (%d)", err, len(entries))
	}
	seg := filepath.Join(dir, entries[len(entries)-1].Name())
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart 1, in daemon order: replay first, then open the writer,
	// then re-submit (which re-journals the acceptance).
	pending1, st1, err := Recover(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending1) != 1 || pending1[0].ID != id {
		t.Fatalf("first recovery: %+v", pending1)
	}
	if !st1.TornTail || st1.Quarantined != 0 {
		t.Fatalf("first recovery stats: %+v", st1)
	}
	w2 := openJournal(t, dir)
	q2 := New(Config{Workers: 1, Journal: w2})
	if _, err := q2.SubmitRecovered(pending1[0],
		func(ctx context.Context) (any, error) { <-block; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Second SIGKILL (no Close), restart 2: the once-torn segment now
	// sits behind the writer's newer segments.
	pending2, st2, err := Recover(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Quarantined != 0 {
		t.Fatalf("second recovery quarantined valid history: %+v", st2)
	}
	if len(pending2) != 1 || pending2[0].ID != id || pending2[0].Spec.RequestID != "r-torn" {
		t.Fatalf("job lost across second restart: %+v", pending2)
	}
}

// TestRecoverTwiceSameState: same WAL bytes, same recovered state.
func TestRecoverTwiceSameState(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(Config{Workers: 1, Journal: w})
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 3; i++ {
		if _, err := q.SubmitSpec(Spec{Kind: "k", Payload: json.RawMessage(`{}`)},
			func(ctx context.Context) (any, error) { <-block; return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, _, err := Recover(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Recover(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("pending: %d and %d, want 3 and 3", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("replay order diverged at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
}

// failingAppender fails every append, standing in for a full disk.
type failingAppender struct{}

func (failingAppender) Append(context.Context, []byte) error {
	return errors.New("disk full")
}

// TestJournalFailureDegradesNotFails: WAL trouble must never fail the
// job itself, only count and log.
func TestJournalFailureDegradesNotFails(t *testing.T) {
	var buf strings.Builder
	q := New(Config{
		Workers: 1,
		Journal: failingAppender{},
		Log:     log.New(&buf, "", 0),
	})
	id, err := q.Submit("k", func(ctx context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatalf("submit failed on journal error: %v", err)
	}
	snap, ok, err := q.Wait(context.Background(), id)
	if !ok || err != nil || snap.State != Succeeded {
		t.Fatalf("job failed on journal error: %+v", snap)
	}
	if st := q.Stats(); st.WALErrors == 0 {
		t.Fatalf("wal errors not counted: %+v", st)
	}
	if !strings.Contains(buf.String(), "journal append failed") {
		t.Fatalf("journal failure not logged: %q", buf.String())
	}
}

// TestDrainAbandonmentLogged is the satellite: a drain that times out
// with queued-unstarted jobs must log each with its request id and
// count them, not discard them silently.
func TestDrainAbandonmentLogged(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	safe := log.New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), "", 0)

	q := New(Config{Workers: 1, Capacity: 8, Log: safe})
	block := make(chan struct{})
	defer close(block)
	// First job occupies the lone worker; the rest stay queued.
	if _, err := q.Submit("busy", func(ctx context.Context) (any, error) { <-block; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := q.SubmitSpec(Spec{Kind: "queued", RequestID: "req-q"},
			func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); err == nil {
		t.Fatal("drain finished although a job blocks forever")
	}
	if st := q.Stats(); st.Abandoned != 2 {
		t.Fatalf("abandoned: %d, want 2 (%+v)", st.Abandoned, st)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "abandoning queued job") || !strings.Contains(out, "request_id=req-q") {
		t.Fatalf("abandonment log missing request ids: %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
