package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/journal"
)

// Appender is the slice of journal.Writer the queue needs: append one
// durable record. Kept as an interface so tests can observe or fail
// appends without a real directory.
type Appender interface {
	Append(ctx context.Context, payload []byte) error
}

// WAL record operations. accepted opens a job's journal history;
// started and retried narrate progress (a job with no terminal record
// is incomplete whatever its last narration says); the three terminal
// ops close it.
const (
	opAccepted  = "accepted"
	opStarted   = "started"
	opRetried   = "retried"
	opSucceeded = "succeeded"
	opFailed    = "failed"
	opCanceled  = "canceled"
)

// walRecord is the JSON payload of every queue journal record. Only
// accepted records carry the spec; later records reference the id.
type walRecord struct {
	Op        string          `json:"op"`
	ID        string          `json:"id"`
	Kind      string          `json:"kind,omitempty"`
	RequestID string          `json:"request_id,omitempty"`
	Tenant    string          `json:"tenant,omitempty"`
	Retries   int             `json:"retries,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
}

// journalLocked appends one record to the configured journal. Called
// with q.mu held so the WAL's record order always matches the order
// the state transitions were applied in — that ordering is what makes
// replay deterministic. A WAL failure degrades durability, never the
// job: it is counted and logged, and the in-memory queue proceeds.
func (q *Queue) journalLocked(rec walRecord) {
	if q.cfg.Journal == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		err = q.cfg.Journal.Append(context.Background(), b)
	}
	if err != nil {
		q.walErrors++
		q.logf("jobs: journal append failed (op=%s id=%s): %v", rec.Op, rec.ID, err)
	}
}

// logf writes to the configured logger, if any.
func (q *Queue) logf(format string, args ...any) {
	if q.cfg.Log != nil {
		q.cfg.Log.Printf(format, args...)
	}
}

// terminalOp maps a terminal state to its journal op.
func terminalOp(s State) string {
	switch s {
	case Succeeded:
		return opSucceeded
	case Failed:
		return opFailed
	default:
		return opCanceled
	}
}

// PendingJob is a journaled job that had no terminal record when the
// process died: it was queued or mid-run, and must be re-enqueued for
// the daemon's restart guarantee to hold. Payload is the replayable
// request the submitter journaled (Spec.Payload); the HTTP layer turns
// it back into a Func by Kind.
type PendingJob struct {
	ID   string
	Spec Spec
}

// Recover replays a queue journal directory and returns the jobs that
// never reached a terminal state, in original acceptance order. The
// caller re-submits each with SubmitRecovered, preserving ids (and so
// request correlation) across the restart. Corrupt segments are
// quarantined by the journal layer and reported in the stats, never an
// error.
func Recover(ctx context.Context, dir string) ([]PendingJob, journal.ReplayStats, error) {
	pending := map[string]*PendingJob{}
	var order []string
	st, err := journal.Replay(ctx, dir, func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A record that passed its CRC but does not parse is a
			// version skew problem, not disk damage; fail loudly.
			return fmt.Errorf("jobs: recover: bad record: %w", err)
		}
		switch rec.Op {
		case opAccepted:
			if _, ok := pending[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			pending[rec.ID] = &PendingJob{
				ID: rec.ID,
				Spec: Spec{
					Kind:      rec.Kind,
					RequestID: rec.RequestID,
					Tenant:    rec.Tenant,
					Retries:   rec.Retries,
					Payload:   rec.Payload,
				},
			}
		case opSucceeded, opFailed, opCanceled:
			delete(pending, rec.ID)
		}
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	var out []PendingJob
	for _, id := range order {
		if p, ok := pending[id]; ok {
			out = append(out, *p)
		}
	}
	return out, st, nil
}

// SubmitRecovered re-enqueues a job recovered from the journal under
// its original id, so clients polling a pre-crash job id find their
// job again. The acceptance is re-journaled: replaying the extended
// log after a second crash reaches the same pending set.
func (q *Queue) SubmitRecovered(p PendingJob, fn Func) (string, error) {
	return q.submit(p.ID, p.Spec, fn, true)
}
