// Package jobs is the daemon's execution engine: a bounded work queue
// drained by a fixed worker pool, with per-job deadlines, cooperative
// cancellation and a graceful drain for SIGTERM handling. Simulation
// requests accepted by internal/server become jobs here; the heavy
// lifting inside a job fans out further via core.RunRepeatedParallel.
//
// The pool is self-healing: a panicking job body is recovered and
// converted into a typed *JobError with the goroutine stack captured
// (the worker survives), and failures that declare themselves
// retryable — injected faults, recovered panics, anything exposing
// Retryable() bool — are re-run with exponential backoff and jitter up
// to the submission's retry budget (Spec.Retries). The jobs.worker
// fault-injection site (internal/faultinject) fires at the start of
// every attempt, inside the recovery scope, so the whole path can be
// exercised deterministically.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/rng"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are live; the rest are terminal.
const (
	Queued    State = "queued"
	Running   State = "running"
	Succeeded State = "succeeded"
	Failed    State = "failed"
	Canceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Succeeded || s == Failed || s == Canceled
}

// Func is the work a job performs. It must honor ctx: the queue
// cancels it on Cancel, on the per-job deadline, and never reuses it.
// The returned value is stored as the job's result and must be
// JSON-marshalable when served over HTTP.
type Func func(ctx context.Context) (any, error)

// Snapshot is an observer's copy of a job. Result is shared, not
// deep-copied; treat it as read-only.
type Snapshot struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// RequestID is the X-Request-Id of the submission, when one was
	// attached (Spec.RequestID).
	RequestID string     `json:"request_id,omitempty"`
	State     State      `json:"state"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    any        `json:"result,omitempty"`
	// Attempts is how many times the job body ran (1 + retries used).
	Attempts int `json:"attempts,omitempty"`
	// Stack is the captured goroutine stack when the job failed
	// terminally on a recovered panic.
	Stack string `json:"stack,omitempty"`
}

// Stats counts queue activity since construction.
type Stats struct {
	// Depth is the number of jobs waiting for a worker.
	Depth int `json:"depth"`
	// Capacity is the queue bound.
	Capacity int `json:"capacity"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Running is the number of jobs currently executing.
	Running int `json:"running"`
	// Submitted counts accepted jobs.
	Submitted uint64 `json:"submitted"`
	// Rejected counts submissions refused because the queue was full
	// or draining.
	Rejected uint64 `json:"rejected"`
	// Succeeded, Failed and Canceled count terminal outcomes.
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// PanicsRecovered counts job attempts that panicked and were
	// converted to a *JobError instead of crashing the worker.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// Retries counts extra attempts spent re-running retryable
	// failures.
	Retries uint64 `json:"retries"`
	// Abandoned counts queued-but-unstarted jobs given up on when a
	// drain deadline expired; each is logged with its request id, and
	// with a journal configured each is recoverable at restart.
	Abandoned uint64 `json:"abandoned"`
	// Recovered counts jobs re-enqueued from the journal at startup.
	Recovered uint64 `json:"recovered"`
	// WALErrors counts journal appends that failed (durability
	// degraded; the in-memory queue proceeded).
	WALErrors uint64 `json:"wal_errors"`
}

// Config sizes the queue.
type Config struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Capacity bounds the number of queued (not yet running) jobs;
	// <= 0 selects 64. Submissions beyond it fail with ErrQueueFull.
	Capacity int
	// Timeout is the per-job deadline measured from when a worker
	// picks the job up; 0 means none.
	Timeout time.Duration
	// Retain bounds the number of finished jobs kept for polling;
	// <= 0 selects 512. The oldest finished jobs are forgotten first.
	Retain int
	// Journal, when non-nil, receives a durable record for every job
	// state transition (see wal.go). A restarted daemon replays it with
	// Recover to re-enqueue incomplete jobs under their original ids.
	Journal Appender
	// Log receives operational messages (abandoned jobs, journal append
	// failures); nil silences them.
	Log *log.Logger
}

// Sentinel submission errors.
var (
	// ErrQueueFull reports a bounded queue at capacity. Callers (the
	// HTTP layer) match it with errors.Is to answer 429.
	//
	// The deprecated ErrFull alias was removed after its one-release
	// grace period; senterr.DeprecatedAliases still maps it so any
	// reintroduction is flagged by the lint suite.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining reports a queue that stopped accepting work.
	ErrDraining = errors.New("jobs: queue draining")
)

// Retryable is implemented by errors that may succeed when the same
// work is re-run: injected faults (internal/faultinject), recovered
// panics (*JobError), and repetition failures (core.RepetitionError).
type Retryable interface{ Retryable() bool }

// retryable reports whether any error in err's chain declares itself
// retryable. Cancellation and deadline expiry are never retryable,
// whatever the chain says: the caller asked the work to stop.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var r Retryable
	return errors.As(err, &r) && r.Retryable()
}

// JobError is the typed failure produced when a job attempt panics:
// the panic value plus the captured goroutine stack. It is retryable —
// a panic from an injected or transient fault deserves the same
// bounded re-run a transient error gets; a deterministic panic simply
// exhausts the budget and fails with the stack attached.
type JobError struct {
	// PanicValue is the value the job body panicked with.
	PanicValue any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("jobs: recovered panic: %v", e.PanicValue)
}

// Retryable marks recovered panics eligible for the retry budget.
func (e *JobError) Retryable() bool { return true }

// Spec describes a submission: its kind label and retry policy.
type Spec struct {
	// Kind labels the job for observers.
	Kind string
	// RequestID correlates the job with the HTTP request (or cluster
	// shard attempt) that submitted it; surfaced in Snapshot so
	// cross-node lease traffic can be traced end to end.
	RequestID string
	// Tenant attributes the job to a tenant for quota accounting and
	// result-store ownership; journaled and restored on recovery.
	Tenant string
	// Retries is how many times a retryable failure is re-run after
	// the first attempt; 0 disables retry.
	Retries int
	// BaseBackoff is the backoff before the first retry (default
	// 10ms); each further retry doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 2s).
	MaxBackoff time.Duration
	// Payload is the replayable request behind the job's Func, stored
	// verbatim in the journal's accepted record. Funcs are closures and
	// cannot be persisted; recovery rebuilds them from Kind + Payload.
	// Jobs submitted without a payload run normally but cannot be
	// recovered after a crash.
	Payload json.RawMessage
}

// Backoff returns the jittered exponential backoff before retry
// attempt (0-based): uniformly drawn from [d/2, d] where d doubles
// from BaseBackoff up to MaxBackoff. The jitter decorrelates retry
// storms; jr is a per-job stream seeded from the job id (see
// jitterStream), so sleep lengths are reproducible given the id —
// regression note for detrand: this used to draw from the global
// math/rand/v2 state, the one unseeded entropy source in the module.
// Exported so other retry loops (the cluster coordinator's shard
// re-offers) share the same backoff discipline.
func (s Spec) Backoff(attempt int, jr *rng.Source) time.Duration {
	base, max := s.BaseBackoff, s.MaxBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(jr.Intn(int(half)+1))
}

// jitterStream seeds a backoff jitter stream from a job id. Distinct
// ids land on decorrelated streams (that is all the jitter needs), and
// the same id always produces the same sleep schedule, keeping retry
// timing inside the determinism contract the rest of the pipeline
// honours.
func jitterStream(id string) *rng.Source {
	h := fnv.New64a()
	h.Write([]byte(id))
	return rng.New(h.Sum64())
}

// job is the internal mutable record behind a Snapshot.
type job struct {
	id        string
	spec      Spec
	fn        Func
	state     State
	created   time.Time
	started   time.Time
	finished  time.Time
	err       string
	stack     string
	attempts  int
	result    any
	cancel    context.CancelFunc // set while running
	abandoned bool               // counted by a failed drain already
	done      chan struct{}      // closed on terminal transition
}

// Queue runs submitted jobs on a worker pool. Construct with New.
type Queue struct {
	cfg  Config
	work chan *job
	wg   sync.WaitGroup
	seq  atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // ids in completion order, for retention
	draining bool
	running  int

	submitted uint64
	rejected  uint64
	succeeded uint64
	failed    uint64
	canceled  uint64
	panics    uint64
	retries   uint64
	abandoned uint64
	recovered uint64
	walErrors uint64
}

// New builds the queue and starts its workers.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 512
	}
	q := &Queue{
		cfg:  cfg,
		work: make(chan *job, cfg.Capacity),
		jobs: map[string]*job{},
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues fn with no retry budget and returns the new job's
// id. It never blocks: a full queue returns ErrQueueFull, a draining
// queue ErrDraining.
func (q *Queue) Submit(kind string, fn Func) (string, error) {
	return q.SubmitSpec(Spec{Kind: kind}, fn)
}

// SubmitSpec enqueues fn under the given spec (kind label and retry
// policy). It never blocks: a full queue returns ErrQueueFull, a
// draining queue ErrDraining.
func (q *Queue) SubmitSpec(spec Spec, fn Func) (string, error) {
	return q.submit(q.newID(), spec, fn, false)
}

// submit is the shared enqueue path behind SubmitSpec and
// SubmitRecovered.
func (q *Queue) submit(id string, spec Spec, fn Func, recovered bool) (string, error) {
	j := &job{
		id:      id,
		spec:    spec,
		fn:      fn,
		state:   Queued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	q.mu.Lock()
	if q.draining {
		q.rejected++
		q.mu.Unlock()
		return "", ErrDraining
	}
	select {
	case q.work <- j:
		q.jobs[j.id] = j
		q.submitted++
		if recovered {
			q.recovered++
		}
		q.journalLocked(walRecord{
			Op:        opAccepted,
			ID:        j.id,
			Kind:      spec.Kind,
			RequestID: spec.RequestID,
			Tenant:    spec.Tenant,
			Retries:   spec.Retries,
			Payload:   spec.Payload,
		})
		q.mu.Unlock()
		return j.id, nil
	default:
		q.rejected++
		q.mu.Unlock()
		return "", ErrQueueFull
	}
}

// newID returns a unique, unguessable job id.
func (q *Queue) newID() string {
	var r [6]byte
	if _, err := rand.Read(r[:]); err != nil {
		// crypto/rand failing is unrecoverable misconfiguration, but a
		// sequence-only id keeps the queue functional.
		return fmt.Sprintf("j%06d", q.seq.Add(1))
	}
	return fmt.Sprintf("j%06d-%s", q.seq.Add(1), hex.EncodeToString(r[:]))
}

// Get returns a snapshot of the job, or ok=false for unknown (or
// forgotten) ids.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return snapshotLocked(j), true
}

func snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:        j.id,
		Kind:      j.spec.Kind,
		RequestID: j.spec.RequestID,
		State:     j.state,
		Created:   j.created,
		Error:     j.err,
		Result:    j.result,
		Attempts:  j.attempts,
		Stack:     j.stack,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// Cancel asks the job to stop. A queued job is marked canceled and
// skipped when a worker reaches it; a running job has its context
// canceled and finishes when its Func returns. Cancel reports whether
// the job existed and was still live.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.state.Terminal() {
		return false
	}
	if j.state == Queued {
		q.finishLocked(j, Canceled, context.Canceled)
		return true
	}
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// Wait blocks until the job reaches a terminal state and returns its
// final snapshot, or ctx.Err() if ctx expires first (the job keeps
// running). Unknown (or already forgotten) ids return ok=false
// immediately. Cluster workers use this to run shard work through the
// queue — panic recovery, retries and metrics included — without
// polling.
func (q *Queue) Wait(ctx context.Context, id string) (Snapshot, bool, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return Snapshot{}, false, nil
	}
	done := j.done
	q.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
		return Snapshot{}, true, ctx.Err()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return snapshotLocked(j), true, nil
}

// Depth returns the number of jobs waiting for a worker.
func (q *Queue) Depth() int { return len(q.work) }

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:           len(q.work),
		Capacity:        q.cfg.Capacity,
		Workers:         q.cfg.Workers,
		Running:         q.running,
		Submitted:       q.submitted,
		Rejected:        q.rejected,
		Succeeded:       q.succeeded,
		Failed:          q.failed,
		Canceled:        q.canceled,
		PanicsRecovered: q.panics,
		Retries:         q.retries,
		Abandoned:       q.abandoned,
		Recovered:       q.recovered,
		WALErrors:       q.walErrors,
	}
}

// Drain stops accepting submissions, lets queued and running jobs
// finish, and returns when the pool is idle or ctx expires (the
// workers keep finishing in the background in that case). When the
// deadline expires with jobs still queued, those jobs are abandoned in
// practice — the caller is about to exit — so each is logged with its
// id, kind and request id and counted in Stats.Abandoned rather than
// vanishing silently. With a journal configured they carry no terminal
// record, so a restart recovers them.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	already := q.draining
	q.draining = true
	q.mu.Unlock()
	if !already {
		close(q.work)
	}
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.noteAbandoned()
		return ctx.Err()
	}
}

// noteAbandoned logs and counts every job still queued when a drain
// deadline expired.
func (q *Queue) noteAbandoned() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range q.jobs {
		if j.state != Queued || j.abandoned {
			continue
		}
		j.abandoned = true
		q.abandoned++
		q.logf("jobs: abandoning queued job id=%s kind=%s request_id=%s (drain deadline expired)",
			j.id, j.spec.Kind, j.spec.RequestID)
	}
}

// worker drains the channel until Drain closes it.
func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.work {
		q.run(j)
	}
}

// run executes one job with its deadline attached, re-running
// retryable failures with backoff up to the submission's budget.
func (q *Queue) run(j *job) {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if q.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), q.cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	defer cancel()

	q.mu.Lock()
	if j.state != Queued { // canceled while waiting
		q.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	q.running++
	q.journalLocked(walRecord{Op: opStarted, ID: j.id})
	q.mu.Unlock()

	var (
		res      any
		err      error
		attempts int
		jitter   *rng.Source
	)
	for attempt := 0; ; attempt++ {
		res, err = q.attempt(ctx, j)
		attempts = attempt + 1
		if err == nil || ctx.Err() != nil || !retryable(err) || attempt >= j.spec.Retries {
			break
		}
		q.mu.Lock()
		q.retries++
		q.journalLocked(walRecord{Op: opRetried, ID: j.id})
		q.mu.Unlock()
		if jitter == nil {
			jitter = jitterStream(j.id)
		}
		if !sleepCtx(ctx, j.spec.Backoff(attempt, jitter)) {
			// Canceled or timed out while backing off; the last
			// failure stands but the job finishes as canceled below.
			break
		}
	}

	q.mu.Lock()
	q.running--
	j.cancel = nil
	j.attempts = attempts
	switch {
	case err == nil:
		j.result = res
		q.finishLocked(j, Succeeded, nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		q.finishLocked(j, Canceled, err)
	case ctx.Err() != nil:
		// The retry loop was abandoned mid-backoff by cancellation or
		// the deadline; report the job canceled, keeping the failure
		// it was retrying for the record.
		q.finishLocked(j, Canceled, fmt.Errorf("%v (while retrying: %w)", ctx.Err(), err))
	default:
		var je *JobError
		if errors.As(err, &je) {
			j.stack = je.Stack
		}
		q.finishLocked(j, Failed, err)
	}
	q.mu.Unlock()
}

// attempt runs the job body once, firing the jobs.worker fault site
// and converting a panic into a retryable *JobError with the stack
// captured, so one misbehaving job cannot take down its worker.
func (q *Queue) attempt(ctx context.Context, j *job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			q.mu.Lock()
			q.panics++
			q.mu.Unlock()
			res = nil
			err = &JobError{PanicValue: r, Stack: string(debug.Stack())}
		}
	}()
	if err := faultinject.Fire(ctx, faultinject.SiteJobWorker); err != nil {
		return nil, err
	}
	return j.fn(ctx)
}

// sleepCtx sleeps for d, returning false if ctx expires first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// finishLocked moves a job to a terminal state and applies retention.
// q.mu must be held. A job already terminal is left untouched, so a
// cancellation racing a worker's own completion can never
// double-complete (double-count, double-retain) the job.
func (q *Queue) finishLocked(j *job, s State, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.finished = time.Now()
	if j.done != nil {
		close(j.done)
	}
	if err != nil {
		j.err = err.Error()
	}
	switch s {
	case Succeeded:
		q.succeeded++
	case Failed:
		q.failed++
	case Canceled:
		q.canceled++
	}
	q.journalLocked(walRecord{Op: terminalOp(s), ID: j.id})
	q.finished = append(q.finished, j.id)
	for len(q.finished) > q.cfg.Retain {
		delete(q.jobs, q.finished[0])
		q.finished = q.finished[1:]
	}
}
