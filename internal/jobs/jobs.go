// Package jobs is the daemon's execution engine: a bounded work queue
// drained by a fixed worker pool, with per-job deadlines, cooperative
// cancellation and a graceful drain for SIGTERM handling. Simulation
// requests accepted by internal/server become jobs here; the heavy
// lifting inside a job fans out further via core.RunRepeatedParallel.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are live; the rest are terminal.
const (
	Queued    State = "queued"
	Running   State = "running"
	Succeeded State = "succeeded"
	Failed    State = "failed"
	Canceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Succeeded || s == Failed || s == Canceled
}

// Func is the work a job performs. It must honor ctx: the queue
// cancels it on Cancel, on the per-job deadline, and never reuses it.
// The returned value is stored as the job's result and must be
// JSON-marshalable when served over HTTP.
type Func func(ctx context.Context) (any, error)

// Snapshot is an observer's copy of a job. Result is shared, not
// deep-copied; treat it as read-only.
type Snapshot struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	State    State      `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	Result   any        `json:"result,omitempty"`
}

// Stats counts queue activity since construction.
type Stats struct {
	// Depth is the number of jobs waiting for a worker.
	Depth int `json:"depth"`
	// Capacity is the queue bound.
	Capacity int `json:"capacity"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Running is the number of jobs currently executing.
	Running int `json:"running"`
	// Submitted counts accepted jobs.
	Submitted uint64 `json:"submitted"`
	// Rejected counts submissions refused because the queue was full
	// or draining.
	Rejected uint64 `json:"rejected"`
	// Succeeded, Failed and Canceled count terminal outcomes.
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
}

// Config sizes the queue.
type Config struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Capacity bounds the number of queued (not yet running) jobs;
	// <= 0 selects 64. Submissions beyond it fail with ErrFull.
	Capacity int
	// Timeout is the per-job deadline measured from when a worker
	// picks the job up; 0 means none.
	Timeout time.Duration
	// Retain bounds the number of finished jobs kept for polling;
	// <= 0 selects 512. The oldest finished jobs are forgotten first.
	Retain int
}

// Sentinel submission errors.
var (
	// ErrFull reports a bounded queue at capacity.
	ErrFull = errors.New("jobs: queue full")
	// ErrDraining reports a queue that stopped accepting work.
	ErrDraining = errors.New("jobs: queue draining")
)

// job is the internal mutable record behind a Snapshot.
type job struct {
	id       string
	kind     string
	fn       Func
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	err      string
	result   any
	cancel   context.CancelFunc // set while running
}

// Queue runs submitted jobs on a worker pool. Construct with New.
type Queue struct {
	cfg  Config
	work chan *job
	wg   sync.WaitGroup
	seq  atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // ids in completion order, for retention
	draining bool
	running  int

	submitted uint64
	rejected  uint64
	succeeded uint64
	failed    uint64
	canceled  uint64
}

// New builds the queue and starts its workers.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 512
	}
	q := &Queue{
		cfg:  cfg,
		work: make(chan *job, cfg.Capacity),
		jobs: map[string]*job{},
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues fn and returns the new job's id. It never blocks:
// a full queue returns ErrFull, a draining queue ErrDraining.
func (q *Queue) Submit(kind string, fn Func) (string, error) {
	j := &job{
		id:      q.newID(),
		kind:    kind,
		fn:      fn,
		state:   Queued,
		created: time.Now(),
	}
	q.mu.Lock()
	if q.draining {
		q.rejected++
		q.mu.Unlock()
		return "", ErrDraining
	}
	select {
	case q.work <- j:
		q.jobs[j.id] = j
		q.submitted++
		q.mu.Unlock()
		return j.id, nil
	default:
		q.rejected++
		q.mu.Unlock()
		return "", ErrFull
	}
}

// newID returns a unique, unguessable job id.
func (q *Queue) newID() string {
	var r [6]byte
	if _, err := rand.Read(r[:]); err != nil {
		// crypto/rand failing is unrecoverable misconfiguration, but a
		// sequence-only id keeps the queue functional.
		return fmt.Sprintf("j%06d", q.seq.Add(1))
	}
	return fmt.Sprintf("j%06d-%s", q.seq.Add(1), hex.EncodeToString(r[:]))
}

// Get returns a snapshot of the job, or ok=false for unknown (or
// forgotten) ids.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return snapshotLocked(j), true
}

func snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:      j.id,
		Kind:    j.kind,
		State:   j.state,
		Created: j.created,
		Error:   j.err,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// Cancel asks the job to stop. A queued job is marked canceled and
// skipped when a worker reaches it; a running job has its context
// canceled and finishes when its Func returns. Cancel reports whether
// the job existed and was still live.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.state.Terminal() {
		return false
	}
	if j.state == Queued {
		q.finishLocked(j, Canceled, context.Canceled)
		return true
	}
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// Depth returns the number of jobs waiting for a worker.
func (q *Queue) Depth() int { return len(q.work) }

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:     len(q.work),
		Capacity:  q.cfg.Capacity,
		Workers:   q.cfg.Workers,
		Running:   q.running,
		Submitted: q.submitted,
		Rejected:  q.rejected,
		Succeeded: q.succeeded,
		Failed:    q.failed,
		Canceled:  q.canceled,
	}
}

// Drain stops accepting submissions, lets queued and running jobs
// finish, and returns when the pool is idle or ctx expires (the
// workers keep finishing in the background in that case).
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	already := q.draining
	q.draining = true
	q.mu.Unlock()
	if !already {
		close(q.work)
	}
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the channel until Drain closes it.
func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.work {
		q.run(j)
	}
}

// run executes one job with its deadline attached.
func (q *Queue) run(j *job) {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if q.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), q.cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	defer cancel()

	q.mu.Lock()
	if j.state != Queued { // canceled while waiting
		q.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	q.running++
	q.mu.Unlock()

	res, err := j.fn(ctx)

	q.mu.Lock()
	q.running--
	j.cancel = nil
	switch {
	case err == nil:
		j.result = res
		q.finishLocked(j, Succeeded, nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		q.finishLocked(j, Canceled, err)
	default:
		q.finishLocked(j, Failed, err)
	}
	q.mu.Unlock()
}

// finishLocked moves a job to a terminal state and applies retention.
// q.mu must be held.
func (q *Queue) finishLocked(j *job, s State, err error) {
	j.state = s
	j.finished = time.Now()
	if err != nil {
		j.err = err.Error()
	}
	switch s {
	case Succeeded:
		q.succeeded++
	case Failed:
		q.failed++
	case Canceled:
		q.canceled++
	}
	q.finished = append(q.finished, j.id)
	for len(q.finished) > q.cfg.Retain {
		delete(q.jobs, q.finished[0])
		q.finished = q.finished[1:]
	}
}
