package predict

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/tracegen"
)

const (
	us = int64(1000)
	ms = int64(1000 * 1000)
	s  = int64(1000 * 1000 * 1000)
)

func mustSlowdown(t *testing.T, in Inputs) Estimate {
	t.Helper()
	est, err := Slowdown(in)
	if err != nil {
		t.Fatalf("slowdown: %v", err)
	}
	return est
}

func TestValidate(t *testing.T) {
	bad := []Inputs{
		{Nodes: 0, MTBCENanos: s, PerEventNanos: 1, SyncIntervalNanos: ms},
		{Nodes: 1, MTBCENanos: 0, PerEventNanos: 1, SyncIntervalNanos: ms},
		{Nodes: 1, MTBCENanos: s, PerEventNanos: -1, SyncIntervalNanos: ms},
		{Nodes: 1, MTBCENanos: s, PerEventNanos: 1, SyncIntervalNanos: 0},
	}
	for i, in := range bad {
		if _, err := Slowdown(in); err == nil {
			t.Fatalf("bad input %d accepted", i)
		}
	}
}

func TestNoProgressRegime(t *testing.T) {
	est := mustSlowdown(t, Inputs{
		Nodes: 16384, MTBCENanos: 100 * ms, PerEventNanos: 133 * ms, SyncIntervalNanos: 20 * ms,
	})
	if est.Regime != RegimeNoProgress || !math.IsInf(est.Pct, 1) {
		t.Fatalf("load 1.33 not no-progress: %+v", est)
	}
}

func TestNegligibleRegime(t *testing.T) {
	// Hardware-only correction at Cielo's rate: nothing to see.
	est := mustSlowdown(t, Inputs{
		Nodes: 8192, MTBCENanos: 1_200_000 * s, PerEventNanos: 150, SyncIntervalNanos: 20 * ms,
	})
	if est.Regime != RegimeNegligible {
		t.Fatalf("hardware-only at Cielo rate not negligible: %+v", est)
	}
	if est.Pct > 0.01 {
		t.Fatalf("predicted %v%%, want ~0", est.Pct)
	}
}

func TestMonotoneInMTBCE(t *testing.T) {
	base := Inputs{Nodes: 16384, PerEventNanos: 133 * ms, SyncIntervalNanos: 20 * ms}
	last := math.Inf(1)
	for _, mtbce := range []int64{1 * s, 10 * s, 100 * s, 1000 * s, 10000 * s, 100000 * s} {
		in := base
		in.MTBCENanos = mtbce
		est := mustSlowdown(t, in)
		if !math.IsInf(est.Pct, 1) && est.Pct > last {
			t.Fatalf("slowdown increased with rarer CEs at mtbce=%d: %v > %v", mtbce, est.Pct, last)
		}
		if !math.IsInf(est.Pct, 1) {
			last = est.Pct
		}
	}
}

func TestMonotoneInDuration(t *testing.T) {
	base := Inputs{Nodes: 16384, MTBCENanos: 5544 * s, SyncIntervalNanos: 20 * ms}
	last := -1.0
	for _, d := range []int64{150, 1 * us, 775 * us, 10 * ms, 133 * ms} {
		in := base
		in.PerEventNanos = d
		est := mustSlowdown(t, in)
		if est.Pct < last {
			t.Fatalf("slowdown decreased with longer events at d=%d: %v < %v", d, est.Pct, last)
		}
		last = est.Pct
	}
}

func TestMonotoneInNodes(t *testing.T) {
	base := Inputs{MTBCENanos: 5544 * s, PerEventNanos: 133 * ms, SyncIntervalNanos: 20 * ms}
	last := -1.0
	for _, n := range []int{64, 512, 4096, 16384} {
		in := base
		in.Nodes = n
		est := mustSlowdown(t, in)
		if est.Pct < last {
			t.Fatalf("slowdown decreased with more nodes at n=%d: %v < %v", n, est.Pct, last)
		}
		last = est.Pct
	}
}

func TestPaperConclusionFirmwareBoundary(t *testing.T) {
	// Paper conclusion (i): with firmware-first logging, an exascale
	// system's MTBCE(node) must stay above ~3,024-5,544 s for < 10%
	// overhead. The analytic boundary should land within an order of
	// magnitude of that band.
	sync := SyncInterval(mustSpec(t, "lulesh"))
	min, err := MinMTBCE(16384, 133*ms, sync, 10)
	if err != nil {
		t.Fatal(err)
	}
	minSec := float64(min) / 1e9
	if minSec < 300 || minSec > 60000 {
		t.Fatalf("firmware 10%% boundary at %.0fs, want within [300s, 60000s] around the paper's 3024-5544s", minSec)
	}
}

func TestPaperConclusionSoftwareHeadroom(t *testing.T) {
	// Paper conclusion (ii): with OS logging an MTBCE of 432 s (120x
	// Cielo) is fine. The predictor must agree it is below 10%.
	sync := SyncInterval(mustSpec(t, "hpcg"))
	est := mustSlowdown(t, Inputs{
		Nodes: 16384, MTBCENanos: 432 * s, PerEventNanos: 775 * us, SyncIntervalNanos: sync,
	})
	if est.Pct >= 10 {
		t.Fatalf("software at 432s MTBCE predicted %v%%, paper says well under 10%%", est.Pct)
	}
}

func TestMinMTBCEInverse(t *testing.T) {
	// Slowdown(MinMTBCE(budget)) <= budget, and slightly below the
	// boundary it exceeds the budget.
	for _, budget := range []float64{1, 10, 50} {
		min, err := MinMTBCE(4096, 133*ms, 50*ms, budget)
		if err != nil {
			t.Fatal(err)
		}
		at := mustSlowdown(t, Inputs{Nodes: 4096, MTBCENanos: min, PerEventNanos: 133 * ms, SyncIntervalNanos: 50 * ms})
		if at.Pct > budget+1e-6 {
			t.Fatalf("budget %v: slowdown at boundary = %v", budget, at.Pct)
		}
		if min > 2 {
			below := mustSlowdown(t, Inputs{Nodes: 4096, MTBCENanos: min / 2, PerEventNanos: 133 * ms, SyncIntervalNanos: 50 * ms})
			if !math.IsInf(below.Pct, 1) && below.Pct <= budget {
				t.Fatalf("budget %v: half the boundary MTBCE still within budget (%v%%)", budget, below.Pct)
			}
		}
	}
}

func TestMinMTBCEBadBudget(t *testing.T) {
	if _, err := MinMTBCE(16, 1*ms, 1*ms, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func mustSpec(t *testing.T, name string) tracegen.Spec {
	t.Helper()
	spec, err := tracegen.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSyncIntervalDerivation(t *testing.T) {
	// lulesh: allreduce every iteration -> interval = grain.
	lul := mustSpec(t, "lulesh")
	if got := SyncInterval(lul); got != lul.ComputeNs {
		t.Fatalf("lulesh sync interval %d, want %d", got, lul.ComputeNs)
	}
	// hpcg: 2 dots per iteration -> grain/2.
	hp := mustSpec(t, "hpcg")
	if got := SyncInterval(hp); got != hp.ComputeNs/2 {
		t.Fatalf("hpcg sync interval %d, want %d", got, hp.ComputeNs/2)
	}
	// lammps-lj: allreduce every 50 iterations -> 50 grains.
	lj := mustSpec(t, "lammps-lj")
	if got := SyncInterval(lj); got != lj.ComputeNs*50 {
		t.Fatalf("lammps-lj sync interval %d, want %d", got, lj.ComputeNs*50)
	}
	// milc: one dot and one control allreduce -> grain/2.
	milc := mustSpec(t, "milc")
	if got := SyncInterval(milc); got != milc.ComputeNs/2 {
		t.Fatalf("milc sync interval %d, want %d", got, milc.ComputeNs/2)
	}
}

func TestWorkloadSensitivityOrdering(t *testing.T) {
	// The predictor must reproduce the paper's headline ordering: the
	// frequently synchronizing workloads (lammps-crack, lulesh) are
	// hurt far more by firmware logging than lammps-lj/snap.
	pct := func(name string) float64 {
		est := mustSlowdown(t, Inputs{
			Nodes: 16384, MTBCENanos: 5544 * s, PerEventNanos: 133 * ms,
			SyncIntervalNanos: SyncInterval(mustSpec(t, name)),
		})
		return est.Pct
	}
	crack, lul := pct("lammps-crack"), pct("lulesh")
	lj, snap := pct("lammps-lj"), pct("lammps-snap")
	if crack <= lj || lul <= lj {
		t.Fatalf("ordering broken: crack=%v lulesh=%v lj=%v", crack, lul, lj)
	}
	if crack <= snap || lul <= snap {
		t.Fatalf("ordering broken vs snap: crack=%v lulesh=%v snap=%v", crack, lul, snap)
	}
}

// The predictor should track the simulator's ordering across logging
// modes on a fixed scenario.
func TestPredictorTracksSimulatorOrdering(t *testing.T) {
	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload: "minife", Nodes: 32, Iterations: 20, TraceSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := mustSpec(t, "minife")
	sync := SyncInterval(spec)
	type point struct{ sim, pred float64 }
	var pts []point
	for _, d := range []int64{775 * us, 10 * ms, 133 * ms} {
		rep, err := exp.RunRepeated(core.Scenario{
			MTBCE: 2 * s, PerEvent: noise.Fixed(d), Target: noise.AllNodes, Seed: 3,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		est := mustSlowdown(t, Inputs{
			Nodes: 32, MTBCENanos: 2 * s, PerEventNanos: d, SyncIntervalNanos: sync,
		})
		pts = append(pts, point{sim: rep.Sample.Mean(), pred: est.Pct})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].sim > pts[i-1].sim && pts[i].pred < pts[i-1].pred {
			t.Fatalf("prediction ordering disagrees with simulation: %+v", pts)
		}
	}
}

// Property: estimates are finite and non-negative whenever rho < 1.
func TestQuickEstimateSane(t *testing.T) {
	f := func(nRaw uint16, mtbceRaw, durRaw uint32, syncRaw uint16) bool {
		in := Inputs{
			Nodes:             1 + int(nRaw%20000),
			MTBCENanos:        int64(mtbceRaw)*ms + int64(durRaw)*2 + 1,
			PerEventNanos:     int64(durRaw),
			SyncIntervalNanos: int64(syncRaw)*us + 1,
		}
		est, err := Slowdown(in)
		if err != nil {
			return false
		}
		if est.LoadFactor >= 1 {
			return math.IsInf(est.Pct, 1)
		}
		return est.Pct >= 0 && !math.IsNaN(est.Pct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
