package predict

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBudgetFirmwareExascale(t *testing.T) {
	sync := SyncInterval(mustSpec(t, "lulesh"))
	res, err := Budget(16384, 133*ms, sync, 10, 700)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: with firmware logging an exascale machine
	// can only tolerate a small multiple of Cielo's per-GiB CE rate.
	if res.VsCielo > 20 {
		t.Fatalf("firmware budget allows %vx Cielo, paper says ~10-20x is already too much", res.VsCielo)
	}
	// Current systems pass, the x10+ hypotheticals fail.
	if !contains(res.Satisfying, "cielo") || !contains(res.Satisfying, "summit") {
		t.Fatalf("current systems not satisfying: %v", res.Satisfying)
	}
	for _, name := range []string{"exascale-cielo-x100", "exascale-facebook-median"} {
		if !contains(res.Violating, name) {
			t.Fatalf("%s not flagged as violating: %v", name, res.Violating)
		}
	}
	// Internal consistency: rates derive from the MTBCE.
	wantPerNode := 365.25 * 24 * 3600 / (float64(res.MinMTBCENanos) / 1e9)
	if math.Abs(res.MaxCEPerNodeYear-wantPerNode) > 1e-6*wantPerNode {
		t.Fatalf("per-node rate inconsistent: %v vs %v", res.MaxCEPerNodeYear, wantPerNode)
	}
	if math.Abs(res.MaxCEPerGiBYear-res.MaxCEPerNodeYear/700) > 1e-9 {
		t.Fatal("per-GiB rate inconsistent")
	}
}

func TestBudgetSoftwareGenerous(t *testing.T) {
	sync := SyncInterval(mustSpec(t, "hpcg"))
	res, err := Budget(16384, 775*us, sync, 10, 700)
	if err != nil {
		t.Fatal(err)
	}
	// Paper conclusion (ii): software logging tolerates at least the
	// Facebook-median rate (120x Cielo); every Table II row passes.
	if len(res.Violating) != 0 {
		t.Fatalf("software budget rejects systems: %v", res.Violating)
	}
	if res.VsCielo < 120 {
		t.Fatalf("software budget allows only %vx Cielo, want >= 120x", res.VsCielo)
	}
}

func TestBudgetErrors(t *testing.T) {
	if _, err := Budget(16, 1*ms, 1*ms, 10, 0); err == nil {
		t.Fatal("zero GiB accepted")
	}
	if _, err := Budget(16, 1*ms, 1*ms, -1, 16); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestNoFeasibleMTBCESentinel: when no CE rate keeps the mode within
// budget, the error must be the typed sentinel so callers (the advisor
// policy layer) can treat infeasibility as an answer, not a failure.
func TestNoFeasibleMTBCESentinel(t *testing.T) {
	// A per-event cost of ~31 years cannot fit any budget.
	_, err := Budget(16384, int64(1e18), 1*ms, 10, 700)
	if err == nil {
		t.Fatal("absurd per-event cost reported feasible")
	}
	if !errors.Is(err, ErrNoFeasibleMTBCE) {
		t.Fatalf("err = %v, not matchable as ErrNoFeasibleMTBCE", err)
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("sentinel wrap lost the context: %v", err)
	}

	// Feasible configurations must not match the sentinel.
	if _, err := Budget(16384, 133*ms, 1*ms, 10, 700); errors.Is(err, ErrNoFeasibleMTBCE) {
		t.Fatalf("feasible budget matched the sentinel: %v", err)
	}

	// Parameter errors are not infeasibility.
	if _, err := Budget(16, 1*ms, 1*ms, -1, 16); errors.Is(err, ErrNoFeasibleMTBCE) {
		t.Fatalf("validation error matched the sentinel: %v", err)
	}
}

func TestBudgetTighterIsStricter(t *testing.T) {
	sync := SyncInterval(mustSpec(t, "milc"))
	loose, err := Budget(4096, 133*ms, sync, 25, 512)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Budget(4096, 133*ms, sync, 2, 512)
	if err != nil {
		t.Fatal(err)
	}
	if tight.MinMTBCENanos <= loose.MinMTBCENanos {
		t.Fatalf("tighter budget did not raise the MTBCE floor: %d vs %d",
			tight.MinMTBCENanos, loose.MinMTBCENanos)
	}
	if tight.MaxCEPerGiBYear >= loose.MaxCEPerGiBYear {
		t.Fatal("tighter budget did not reduce the tolerable rate")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
