// Package predict provides a closed-form, first-order estimate of the
// application slowdown caused by correctable-error logging, and inverts
// it into the prescriptive guidance the paper's conclusions give
// ("MTBCE(node) for an exascale system should not drop below
// 3,024-5,544 seconds").
//
// The model captures the three regimes the simulation exhibits:
//
//   - no progress: per-node handling load rho = D/MTBCE >= 1;
//   - serialized: in a bulk-synchronous application that synchronizes
//     every T nanoseconds, each synchronization interval is stretched by
//     the *maximum* CE handling time over all nodes in that interval.
//     When detours are rare (N*T/MTBCE < 1) nearly every detour lands in
//     its own interval and serializes fully into the makespan;
//   - parallel-absorbed: when many nodes are hit in the same interval
//     (N*T/MTBCE >> 1), their detours overlap in wall-clock time and
//     only the per-interval maximum count matters.
//
// The estimate is deliberately simple: it needs only the node count,
// the MTBCE, the per-event cost and the workload's synchronization
// interval. It tracks the simulator's orderings and regime boundaries;
// treat absolute values as an upper-bound heuristic (the simulator
// additionally models slack absorption in halo exchanges, NIC gaps and
// non-blocking overlap).
package predict

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tracegen"
)

// ErrNoFeasibleMTBCE reports that no per-node MTBCE — not even one CE
// per century — keeps the predicted slowdown within the requested
// budget at the given per-event cost. MinMTBCE and Budget wrap it with
// the offending parameters; match with errors.Is. Callers building
// policy matrices (internal/advise, cmd/advisor) use it to mark a
// logging mode infeasible instead of failing the whole request.
var ErrNoFeasibleMTBCE = errors.New("predict: no feasible MTBCE meets the budget")

// Inputs describe a deployment scenario.
type Inputs struct {
	// Nodes is the machine size (one rank per node).
	Nodes int
	// MTBCENanos is the per-node mean time between CEs.
	MTBCENanos int64
	// PerEventNanos is the per-CE handling (logging) time.
	PerEventNanos int64
	// SyncIntervalNanos is the application's synchronization period:
	// the compute time between collectives. Use SyncInterval to derive
	// it from a workload skeleton.
	SyncIntervalNanos int64
}

// Validate reports errors in the inputs.
func (in Inputs) Validate() error {
	if in.Nodes < 1 {
		return fmt.Errorf("predict: nodes must be >= 1, got %d", in.Nodes)
	}
	if in.MTBCENanos <= 0 {
		return fmt.Errorf("predict: MTBCE must be positive, got %d", in.MTBCENanos)
	}
	if in.PerEventNanos < 0 {
		return fmt.Errorf("predict: per-event cost must be non-negative, got %d", in.PerEventNanos)
	}
	if in.SyncIntervalNanos <= 0 {
		return fmt.Errorf("predict: sync interval must be positive, got %d", in.SyncIntervalNanos)
	}
	return nil
}

// Regime labels the dominant mechanism behind an estimate.
type Regime string

// Regimes.
const (
	RegimeNoProgress Regime = "no-progress"
	RegimeSerialized Regime = "serialized"
	RegimeParallel   Regime = "parallel-absorbed"
	RegimeNegligible Regime = "negligible"
)

// Estimate is a predicted slowdown.
type Estimate struct {
	// Pct is the predicted slowdown percentage; +Inf for no-progress.
	Pct float64
	// Regime labels the dominant mechanism.
	Regime Regime
	// LoadFactor is the per-node handling load rho = D/MTBCE.
	LoadFactor float64
	// HitsPerInterval is N*T/MTBCE, the expected number of nodes hit
	// per synchronization interval.
	HitsPerInterval float64
}

// negligibleThreshold separates "negligible" labelling from the real
// regimes; purely cosmetic.
const negligibleThreshold = 0.1 // percent

// Slowdown estimates the slowdown for the scenario.
func Slowdown(in Inputs) (Estimate, error) {
	if err := in.Validate(); err != nil {
		return Estimate{}, err
	}
	d := float64(in.PerEventNanos)
	m := float64(in.MTBCENanos)
	t := float64(in.SyncIntervalNanos)
	n := float64(in.Nodes)

	rho := d / m
	if rho >= 1 {
		return Estimate{Pct: math.Inf(1), Regime: RegimeNoProgress, LoadFactor: rho}, nil
	}
	// Local dilation on each node: work takes 1/(1-rho) longer.
	local := rho / (1 - rho)

	// Expected per-node detour count per synchronization interval, and
	// the expected maximum over all nodes. For small mu the max over N
	// nodes of Poisson(mu) is well approximated by the expected count
	// of intervals with at least one hit; for large mu the Gumbel-like
	// tail mu + sqrt(2 mu ln N) + ln N is a serviceable upper estimate.
	mu := t / m
	hits := n * mu
	var maxHits float64
	if hits <= 1 {
		maxHits = hits
	} else if lnN := math.Log(n); mu < 1 {
		maxHits = 1 + lnN/math.Max(1, math.Log(lnN/mu+1))
	} else {
		maxHits = mu + math.Sqrt(2*mu*math.Log(n)) + math.Log(n)
	}
	// Each synchronization interval of length t is stretched by the
	// per-interval maximum handling time, discounted by the slack
	// fraction a detour can hide in (detours much shorter than the
	// interval partially overlap communication and imbalance).
	w := d / (d + t)
	sync := maxHits * d / t * math.Max(w, 1/(1+math.Sqrt(n)))

	pct := 100 * (local + sync)
	est := Estimate{Pct: pct, LoadFactor: rho, HitsPerInterval: hits}
	switch {
	case pct < negligibleThreshold:
		est.Regime = RegimeNegligible
	case hits > 1:
		est.Regime = RegimeParallel
	default:
		est.Regime = RegimeSerialized
	}
	return est, nil
}

// SyncInterval derives a workload's synchronization period from its
// skeleton: the compute grain divided by the number of synchronizing
// collectives per iteration. Workloads that only synchronize every k
// iterations (LAMMPS-lj/snap) get k full grains.
func SyncInterval(spec tracegen.Spec) int64 {
	colls := spec.DotsPerIter
	if spec.AllreduceEvery > 0 {
		colls++
	}
	if colls == 0 {
		// No collectives at all: halo exchange still synchronizes with
		// neighbours once per iteration.
		return spec.ComputeNs
	}
	interval := spec.ComputeNs / int64(colls)
	if spec.DotsPerIter == 0 && spec.AllreduceEvery > 1 {
		interval = spec.ComputeNs * int64(spec.AllreduceEvery)
	}
	return interval
}

// MinMTBCE returns the smallest per-node MTBCE that keeps the predicted
// slowdown at or below budgetPct, by bisection over MTBCE. The paper's
// conclusion (i) is exactly this quantity for firmware logging on an
// exascale system with a 10% budget.
func MinMTBCE(nodes int, perEventNanos, syncIntervalNanos int64, budgetPct float64) (int64, error) {
	if budgetPct <= 0 {
		return 0, fmt.Errorf("predict: budget must be positive, got %v", budgetPct)
	}
	probe := func(mtbce int64) (float64, error) {
		est, err := Slowdown(Inputs{
			Nodes: nodes, MTBCENanos: mtbce,
			PerEventNanos: perEventNanos, SyncIntervalNanos: syncIntervalNanos,
		})
		if err != nil {
			return 0, err
		}
		return est.Pct, nil
	}
	lo, hi := int64(1), int64(100*365*24)*3600*1e9 // 1 ns .. 100 years
	// Slowdown is monotone non-increasing in MTBCE; find the boundary.
	pctHi, err := probe(hi)
	if err != nil {
		return 0, err
	}
	if pctHi > budgetPct {
		return 0, fmt.Errorf("%w: budget %v%% unreachable even at MTBCE=100y (per-event cost %dns, %d nodes)",
			ErrNoFeasibleMTBCE, budgetPct, perEventNanos, nodes)
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		pct, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if pct <= budgetPct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
