package predict

import (
	"fmt"

	"repro/internal/systems"
)

// BudgetResult is the reliability budget implied by an overhead target:
// the paper's conclusions expressed as numbers a procurement or RAS
// team can act on.
type BudgetResult struct {
	// MinMTBCENanos is the smallest per-node MTBCE keeping the
	// predicted slowdown within budget.
	MinMTBCENanos int64
	// MaxCEPerNodeYear is the equivalent maximum CE rate per node.
	MaxCEPerNodeYear float64
	// MaxCEPerGiBYear is the equivalent rate per GiB of node DRAM.
	MaxCEPerGiBYear float64
	// VsCielo is MaxCEPerGiBYear relative to the Cielo-measured rate
	// (0.82 CE/GiB/year), the paper's baseline for "how much worse can
	// future DRAM get".
	VsCielo float64
	// Satisfying lists the Table II systems (simulated rows) whose
	// stated MTBCE meets the requirement.
	Satisfying []string
	// Violating lists the rows that do not.
	Violating []string
}

// Budget inverts the overhead model into a reliability requirement for
// a machine of the given size running an application with the given
// synchronization cadence.
func Budget(nodes int, perEventNanos, syncIntervalNanos int64, budgetPct, gibPerNode float64) (*BudgetResult, error) {
	if gibPerNode <= 0 {
		return nil, fmt.Errorf("predict: GiB per node must be positive, got %v", gibPerNode)
	}
	min, err := MinMTBCE(nodes, perEventNanos, syncIntervalNanos, budgetPct)
	if err != nil {
		return nil, err
	}
	mtbceSec := float64(min) / 1e9
	perNodeYear := systems.SecondsPerYear / mtbceSec
	perGiBYear := perNodeYear / gibPerNode
	cielo, err := systems.ByName("cielo")
	if err != nil {
		return nil, err
	}
	res := &BudgetResult{
		MinMTBCENanos:    min,
		MaxCEPerNodeYear: perNodeYear,
		MaxCEPerGiBYear:  perGiBYear,
		VsCielo:          perGiBYear / cielo.CEPerGiBYear,
	}
	for _, s := range systems.Simulated() {
		if s.MTBCESeconds >= mtbceSec {
			res.Satisfying = append(res.Satisfying, s.Name)
		} else {
			res.Violating = append(res.Violating, s.Name)
		}
	}
	return res, nil
}
