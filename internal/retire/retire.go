// Package retire models DRAM fault modes and memory page retirement
// (offlining), the mitigation the paper's background section points to
// (Tang et al. [13]) and the mechanism that connects a machine's fault
// population to the correctable-error *rates* of Table II.
//
// Physical DRAM faults come in modes with very different spatial
// footprints — the Cielo field studies (Levy et al. [24], Siddiqua et
// al. [39]) report a stable mix of single-cell, row, column and bank
// faults. A fault is persistent: it produces a stream of correctable
// errors whose addresses fall inside the fault's footprint. The OS can
// retire (offline) a 4 KiB page once it has logged enough CEs from it;
// retirement is effective exactly when the fault's footprint is
// concentrated on few pages:
//
//   - single-cell and row faults live on one or two pages — a handful
//     of retirements silences them;
//   - column and bank faults scatter across hundreds of pages — the
//     page budget runs out long before the fault is contained.
//
// Simulate produces the logged-CE stream with and without retirement,
// yielding the effective MTBCE(node) a deployment would observe — the
// quantity the rest of this repository consumes.
package retire

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// FaultKind is a DRAM fault mode.
type FaultKind int

// Fault modes, in decreasing page-locality.
const (
	FaultCell FaultKind = iota
	FaultRow
	FaultColumn
	FaultBank
	numFaultKinds
)

// String returns the mode name.
func (k FaultKind) String() string {
	switch k {
	case FaultCell:
		return "cell"
	case FaultRow:
		return "row"
	case FaultColumn:
		return "column"
	case FaultBank:
		return "bank"
	}
	return fmt.Sprintf("faultkind(%d)", int(k))
}

// FootprintPages returns how many distinct 4 KiB pages a fault of this
// kind can produce CEs on. Cell faults hit one page; a row (8 KiB on
// typical geometries) spans two; columns and banks scatter widely. The
// advise policy layer compares this footprint against the OS page
// budget to decide whether retirement can contain a classified fault.
func (k FaultKind) FootprintPages() int {
	switch k {
	case FaultCell:
		return 1
	case FaultRow:
		return 2
	case FaultColumn:
		return 512
	case FaultBank:
		return 4096
	}
	return 1
}

// Kinds returns the fault modes in taxonomy order.
func Kinds() []FaultKind {
	out := make([]FaultKind, 0, numFaultKinds)
	for k := FaultKind(0); k < numFaultKinds; k++ {
		out = append(out, k)
	}
	return out
}

// ParseKind maps a mode name ("cell", "row", "column", "bank") back to
// its FaultKind.
func ParseKind(name string) (FaultKind, error) {
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("retire: unknown fault kind %q (want cell, row, column or bank)", name)
}

// Mix is the relative frequency of each fault mode. The default follows
// the Cielo studies: single-cell faults dominate, bank faults are rare.
type Mix [numFaultKinds]float64

// DefaultMix returns the Cielo-like fault-mode mix.
func DefaultMix() Mix {
	return Mix{
		FaultCell:   0.55,
		FaultRow:    0.15,
		FaultColumn: 0.15,
		FaultBank:   0.15,
	}
}

func (m Mix) total() float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

// Policy is the OS page-retirement policy.
type Policy struct {
	// Threshold is the number of logged CEs on a page before it is
	// retired. Zero disables retirement.
	Threshold int
	// MaxPages bounds the number of retired pages (the kernel keeps a
	// budget so a flaky column cannot eat the whole node). Zero means
	// a default of 64 pages.
	MaxPages int
}

// Config describes a retirement simulation.
type Config struct {
	Seed uint64
	// Hours is the simulated wall-clock span.
	Hours float64
	// FaultsPerYear is the fault arrival rate per node.
	FaultsPerYear float64
	// CEsPerFaultHour is the mean CE rate of an active fault. Each
	// fault draws its own rate from an exponential around this mean —
	// field data shows orders-of-magnitude spread between faults.
	CEsPerFaultHour float64
	// Mix is the fault-mode mix; zero value means DefaultMix.
	Mix Mix
	// Policy is the retirement policy.
	Policy Policy
	// MaxCEs bounds the generated event count (guards against
	// pathological configurations). Zero means 2^22.
	MaxCEs int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Hours <= 0 {
		return fmt.Errorf("retire: hours must be positive, got %v", c.Hours)
	}
	if c.FaultsPerYear < 0 || c.CEsPerFaultHour < 0 {
		return fmt.Errorf("retire: negative rates: %+v", c)
	}
	if c.Policy.Threshold < 0 || c.Policy.MaxPages < 0 {
		return fmt.Errorf("retire: negative policy fields: %+v", c.Policy)
	}
	return nil
}

// Result summarizes one simulated node-lifetime.
type Result struct {
	// Faults is the number of faults that appeared, by kind.
	Faults [numFaultKinds]int
	// CEsGenerated counts all CE events the fault population produced.
	CEsGenerated int
	// CEsLogged counts the events that reached the OS log (i.e. whose
	// page was not yet retired).
	CEsLogged int
	// CEsSuppressed = CEsGenerated - CEsLogged.
	CEsSuppressed int
	// PagesRetired is the number of pages taken offline.
	PagesRetired int
	// BytesRetired is PagesRetired * 4096.
	BytesRetired int64
	// Truncated is set when MaxCEs clipped the event stream.
	Truncated bool
}

// SuppressionPct returns the percentage of CEs silenced by retirement.
func (r Result) SuppressionPct() float64 {
	if r.CEsGenerated == 0 {
		return 0
	}
	return 100 * float64(r.CEsSuppressed) / float64(r.CEsGenerated)
}

// LoggedMTBCENanos returns the effective mean time between *logged* CEs
// over the simulated span; this is the MTBCE(node) the logging-overhead
// simulations should use. Returns a very large value when nothing was
// logged.
func (r Result) LoggedMTBCENanos(hours float64) int64 {
	if r.CEsLogged == 0 {
		return int64(hours * 3600 * 1e9 * 1000)
	}
	return int64(hours * 3600 * 1e9 / float64(r.CEsLogged))
}

const pageBytes = 4096

// ceEvent is one correctable error occurrence.
type ceEvent struct {
	at   float64 // hours since start
	page int64   // global page id
}

// Simulate runs the fault population against the retirement policy.
func Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.MaxCEs == 0 {
		cfg.MaxCEs = 1 << 22
	}
	maxPages := cfg.Policy.MaxPages
	if maxPages == 0 {
		maxPages = 64
	}

	src := rng.New(cfg.Seed)
	res := &Result{}

	// Fault arrivals: Poisson over the span.
	faultMeanGapHours := 365.25 * 24 / cfg.FaultsPerYear
	var events []ceEvent
	pageBase := int64(0)
	total := cfg.Mix.total()
	for t := src.Exp(faultMeanGapHours); t < cfg.Hours; t += src.Exp(faultMeanGapHours) {
		kind := pickKind(src, cfg.Mix, total)
		res.Faults[kind]++
		// Every fault owns a disjoint page footprint; real faults can
		// collide on pages, but collisions are vanishingly rare at
		// node DRAM sizes and would only help retirement.
		footprint := kind.FootprintPages()
		rate := src.Exp(cfg.CEsPerFaultHour) // this fault's CE rate
		if rate <= 0 {
			rate = cfg.CEsPerFaultHour
		}
		for at := t + src.Exp(1/rate); at < cfg.Hours; at += src.Exp(1 / rate) {
			events = append(events, ceEvent{at: at, page: pageBase + int64(src.Intn(footprint))})
			if len(events) >= cfg.MaxCEs {
				res.Truncated = true
				break
			}
		}
		pageBase += int64(footprint)
		if res.Truncated {
			break
		}
	}

	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	// Replay against the policy.
	counts := map[int64]int{}
	retired := map[int64]bool{}
	res.CEsGenerated = len(events)
	for _, ev := range events {
		if retired[ev.page] {
			res.CEsSuppressed++
			continue
		}
		res.CEsLogged++
		if cfg.Policy.Threshold <= 0 {
			continue
		}
		counts[ev.page]++
		if counts[ev.page] >= cfg.Policy.Threshold && res.PagesRetired < maxPages {
			retired[ev.page] = true
			res.PagesRetired++
		}
	}
	res.BytesRetired = int64(res.PagesRetired) * pageBytes
	return res, nil
}

func pickKind(src *rng.Source, mix Mix, total float64) FaultKind {
	u := src.Float64() * total
	acc := 0.0
	for k := FaultKind(0); k < numFaultKinds; k++ {
		acc += mix[k]
		if u < acc {
			return k
		}
	}
	return FaultBank
}
