package retire

import (
	"testing"
	"testing/quick"
)

func baseCfg() Config {
	return Config{
		Seed:            1,
		Hours:           24 * 365, // one year
		FaultsPerYear:   6,
		CEsPerFaultHour: 0.5,
		Policy:          Policy{Threshold: 3, MaxPages: 64},
	}
}

func mustSim(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Hours: 0},
		{Hours: 1, FaultsPerYear: -1},
		{Hours: 1, CEsPerFaultHour: -1},
		{Hours: 1, Policy: Policy{Threshold: -1}},
		{Hours: 1, Policy: Policy{MaxPages: -1}},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := mustSim(t, baseCfg())
	b := mustSim(t, baseCfg())
	if *a != *b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestAccounting(t *testing.T) {
	res := mustSim(t, baseCfg())
	if res.CEsGenerated != res.CEsLogged+res.CEsSuppressed {
		t.Fatalf("accounting broken: %d != %d + %d", res.CEsGenerated, res.CEsLogged, res.CEsSuppressed)
	}
	if res.BytesRetired != int64(res.PagesRetired)*4096 {
		t.Fatal("bytes/pages mismatch")
	}
	totalFaults := 0
	for _, n := range res.Faults {
		totalFaults += n
	}
	if totalFaults == 0 || res.CEsGenerated == 0 {
		t.Fatalf("nothing happened in a year with 6 faults/yr: %+v", res)
	}
}

func TestRetirementSuppressesCEs(t *testing.T) {
	with := mustSim(t, baseCfg())
	cfg := baseCfg()
	cfg.Policy.Threshold = 0 // disabled
	without := mustSim(t, cfg)
	if with.CEsSuppressed == 0 {
		t.Fatal("retirement suppressed nothing")
	}
	if without.CEsSuppressed != 0 || without.PagesRetired != 0 {
		t.Fatalf("disabled policy still retired: %+v", without)
	}
	// Identical seeds generate identical CE streams; logged CEs must
	// strictly drop with retirement on.
	if with.CEsLogged >= without.CEsLogged {
		t.Fatalf("retirement did not reduce logged CEs: %d vs %d", with.CEsLogged, without.CEsLogged)
	}
}

func TestCellFaultsWellContained(t *testing.T) {
	// A population of only cell faults: each is silenced after
	// Threshold logged CEs, so logged <= faults * threshold (plus the
	// page-budget edge).
	cfg := baseCfg()
	cfg.Mix = Mix{FaultCell: 1}
	cfg.Policy = Policy{Threshold: 2, MaxPages: 1 << 20}
	res := mustSim(t, cfg)
	maxLogged := res.Faults[FaultCell] * cfg.Policy.Threshold
	if res.CEsLogged > maxLogged {
		t.Fatalf("cell faults logged %d CEs, containment bound %d", res.CEsLogged, maxLogged)
	}
	if res.SuppressionPct() < 50 {
		t.Fatalf("cell-fault suppression only %.1f%%, expected high", res.SuppressionPct())
	}
}

func TestColumnFaultsEvadeRetirement(t *testing.T) {
	// Column faults scatter over 512 pages; with the default 64-page
	// budget and per-page threshold, most CEs keep being logged.
	cell := baseCfg()
	cell.Mix = Mix{FaultCell: 1}
	col := baseCfg()
	col.Mix = Mix{FaultColumn: 1}
	cellRes := mustSim(t, cell)
	colRes := mustSim(t, col)
	if colRes.SuppressionPct() >= cellRes.SuppressionPct() {
		t.Fatalf("column suppression %.1f%% >= cell suppression %.1f%%; footprint effect missing",
			colRes.SuppressionPct(), cellRes.SuppressionPct())
	}
}

func TestPageBudgetRespected(t *testing.T) {
	cfg := baseCfg()
	cfg.Policy = Policy{Threshold: 1, MaxPages: 5}
	res := mustSim(t, cfg)
	if res.PagesRetired > 5 {
		t.Fatalf("retired %d pages with a budget of 5", res.PagesRetired)
	}
}

func TestDefaultPageBudget(t *testing.T) {
	cfg := baseCfg()
	cfg.Mix = Mix{FaultColumn: 1}
	cfg.FaultsPerYear = 50
	cfg.Policy = Policy{Threshold: 1, MaxPages: 0} // default 64
	res := mustSim(t, cfg)
	if res.PagesRetired > 64 {
		t.Fatalf("default budget exceeded: %d", res.PagesRetired)
	}
}

func TestLowerThresholdRetiresEarlier(t *testing.T) {
	strict := baseCfg()
	strict.Policy = Policy{Threshold: 1, MaxPages: 1 << 20}
	lax := baseCfg()
	lax.Policy = Policy{Threshold: 10, MaxPages: 1 << 20}
	s := mustSim(t, strict)
	l := mustSim(t, lax)
	if s.CEsLogged >= l.CEsLogged {
		t.Fatalf("threshold 1 logged %d >= threshold 10 logged %d", s.CEsLogged, l.CEsLogged)
	}
}

func TestLoggedMTBCE(t *testing.T) {
	res := mustSim(t, baseCfg())
	mtbce := res.LoggedMTBCENanos(baseCfg().Hours)
	if mtbce <= 0 {
		t.Fatalf("MTBCE = %d", mtbce)
	}
	want := int64(baseCfg().Hours * 3600 * 1e9 / float64(res.CEsLogged))
	if mtbce != want {
		t.Fatalf("MTBCE = %d, want %d", mtbce, want)
	}
	// No logged CEs: sentinel large value.
	empty := Result{}
	if empty.LoggedMTBCENanos(1) <= int64(3600*1e9) {
		t.Fatal("empty MTBCE not large")
	}
}

func TestTruncationGuard(t *testing.T) {
	cfg := baseCfg()
	cfg.FaultsPerYear = 1000
	cfg.CEsPerFaultHour = 1000
	cfg.MaxCEs = 10000
	res := mustSim(t, cfg)
	if !res.Truncated {
		t.Fatal("pathological config not truncated")
	}
	if res.CEsGenerated > 10000 {
		t.Fatalf("generated %d > MaxCEs", res.CEsGenerated)
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultCell: "cell", FaultRow: "row", FaultColumn: "column", FaultBank: "bank",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFootprintOrdering(t *testing.T) {
	if !(FaultCell.FootprintPages() < FaultRow.FootprintPages() &&
		FaultRow.FootprintPages() < FaultColumn.FootprintPages() &&
		FaultColumn.FootprintPages() < FaultBank.FootprintPages()) {
		t.Fatal("footprints not ordered cell < row < column < bank")
	}
}

// Property: accounting identity and budget hold for arbitrary configs.
func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64, faultsRaw, rateRaw, thrRaw, budgetRaw uint8) bool {
		cfg := Config{
			Seed:            seed,
			Hours:           24 * 30,
			FaultsPerYear:   float64(faultsRaw%50) + 1,
			CEsPerFaultHour: float64(rateRaw%40)/10 + 0.05,
			Policy:          Policy{Threshold: int(thrRaw % 8), MaxPages: int(budgetRaw%100) + 1},
			MaxCEs:          1 << 16,
		}
		res, err := Simulate(cfg)
		if err != nil {
			return false
		}
		if res.CEsGenerated != res.CEsLogged+res.CEsSuppressed {
			return false
		}
		if res.PagesRetired > cfg.Policy.MaxPages {
			return false
		}
		if cfg.Policy.Threshold == 0 && res.PagesRetired != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulateYear(b *testing.B) {
	cfg := baseCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
