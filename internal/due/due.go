// Package due models detected uncorrectable errors (DUEs) and
// checkpoint/restart, the failure class the paper contrasts correctable
// errors against: "correctable error rates are 20 times higher than
// uncorrectable errors" (§I), but each DUE costs a restart from the
// last checkpoint rather than a sub-second logging detour.
//
// The package provides the standard first-order machinery — Young's and
// Daly's optimal checkpoint intervals and Daly's exponential-model
// expected completion time — plus a Monte Carlo simulator that
// validates the closed forms and covers the regimes where they break
// (checkpoint interval comparable to the MTBF). Together with package
// predict this lets a deployment compare its CE-logging overhead
// against its DUE/restart overhead on equal footing.
package due

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Config describes a checkpointing deployment.
type Config struct {
	// NodeMTBF is the per-node mean time between DUE-class failures,
	// ns. The system-level MTBF is NodeMTBF/Nodes (failures are
	// independent and exponential).
	NodeMTBF int64
	// Nodes is the machine size.
	Nodes int
	// Checkpoint is the time to write one checkpoint (delta), ns.
	Checkpoint int64
	// Restart is the time to restore after a failure (R), ns.
	Restart int64
	// Interval is the checkpoint interval (tau), ns. Zero selects
	// Daly's optimum.
	Interval int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NodeMTBF <= 0 {
		return fmt.Errorf("due: node MTBF must be positive, got %d", c.NodeMTBF)
	}
	if c.Nodes < 1 {
		return fmt.Errorf("due: nodes must be >= 1, got %d", c.Nodes)
	}
	if c.Checkpoint < 0 || c.Restart < 0 || c.Interval < 0 {
		return fmt.Errorf("due: negative time parameter: %+v", c)
	}
	return nil
}

// SystemMTBF returns the machine-level mean time between failures.
func (c Config) SystemMTBF() float64 {
	return float64(c.NodeMTBF) / float64(c.Nodes)
}

// YoungInterval returns Young's first-order optimal checkpoint
// interval: sqrt(2 * delta * M).
func YoungInterval(checkpoint int64, systemMTBF float64) int64 {
	if checkpoint <= 0 || systemMTBF <= 0 {
		return 0
	}
	return int64(math.Sqrt(2 * float64(checkpoint) * systemMTBF))
}

// DalyInterval returns Daly's higher-order optimal interval for the
// exponential model. For delta < M/2 it is
//
//	tau = sqrt(2 delta M) * (1 + sqrt(delta/(2M))/3 + delta/(9M)) - delta
//
// and M otherwise (checkpointing that expensive cannot pay off more
// than once per failure).
func DalyInterval(checkpoint int64, systemMTBF float64) int64 {
	d := float64(checkpoint)
	m := systemMTBF
	if d <= 0 || m <= 0 {
		return 0
	}
	if d >= m/2 {
		return int64(m)
	}
	x := math.Sqrt(2 * d * m)
	tau := x*(1+math.Sqrt(d/(2*m))/3+d/(9*m)) - d
	if tau < 1 {
		tau = 1
	}
	return int64(tau)
}

// interval returns the effective checkpoint interval.
func (c Config) interval() int64 {
	if c.Interval > 0 {
		return c.Interval
	}
	return DalyInterval(c.Checkpoint, c.SystemMTBF())
}

// ExpectedOverheadPct returns the percentage runtime inflation from
// checkpointing, failures and rework under Daly's exponential model:
//
//	T(W) = M e^{R/M} (e^{(tau+delta)/M} - 1) W / tau
//
// so overhead% = 100 (T/W - 1).
func (c Config) ExpectedOverheadPct() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	m := c.SystemMTBF()
	tau := float64(c.interval())
	delta := float64(c.Checkpoint)
	r := float64(c.Restart)
	if tau <= 0 {
		// Free checkpoints (delta == 0, no explicit interval) drive
		// Daly's optimum to zero: continuous checkpointing, where the
		// tau -> 0 limit of the model leaves restarts as the only
		// overhead.
		return 100 * (math.Exp(r/m) - 1), nil
	}
	perWork := m * math.Exp(r/m) * (math.Exp((tau+delta)/m) - 1) / tau
	return 100 * (perWork - 1), nil
}

// SimResult is a Monte Carlo outcome.
type SimResult struct {
	// OverheadPct is the measured runtime inflation.
	OverheadPct float64
	// Failures counts the DUEs encountered.
	Failures int
	// Checkpoints counts completed checkpoint writes.
	Checkpoints int
	// WallNanos is the total simulated wall-clock time.
	WallNanos int64
}

// Simulate runs the checkpoint/restart loop for work nanoseconds of
// useful computation under exponential system failures.
func Simulate(c Config, work int64, seed uint64) (*SimResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if work <= 0 {
		return nil, fmt.Errorf("due: work must be positive, got %d", work)
	}
	src := rng.New(seed)
	m := c.SystemMTBF()
	tau := c.interval()
	res := &SimResult{}
	var wall int64
	var done int64 // completed, checkpointed work
	nextFailure := int64(src.Exp(m))
	if tau <= 0 {
		// Free checkpoints (Checkpoint == 0 with no explicit Interval)
		// make continuous checkpointing optimal: a failure loses no
		// work, only the restart. Without this branch the segmented
		// loop below would make zero progress per iteration.
		for done < work {
			if wall+(work-done) <= nextFailure {
				wall += work - done
				done = work
				break
			}
			done += nextFailure - wall
			res.Failures++
			wall = nextFailure + c.Restart
			nextFailure = wall + int64(src.Exp(m))
		}
		res.WallNanos = wall
		res.OverheadPct = 100 * (float64(wall) - float64(work)) / float64(work)
		return res, nil
	}
	for done < work {
		segment := tau
		if remaining := work - done; remaining < segment {
			segment = remaining
		}
		// Attempt segment + checkpoint; a failure anywhere in it loses
		// the whole attempt back to the last checkpoint.
		attempt := segment + c.Checkpoint
		if remaining := work - done; remaining <= tau {
			// Final stretch needs no checkpoint after it.
			attempt = segment
		}
		if wall+attempt <= nextFailure {
			wall += attempt
			done += segment
			if attempt != segment {
				res.Checkpoints++
			}
			continue
		}
		// Failure mid-attempt: burn time to the failure, restart.
		res.Failures++
		wall = nextFailure + c.Restart
		nextFailure = wall + int64(src.Exp(m))
	}
	res.WallNanos = wall
	res.OverheadPct = 100 * (float64(wall) - float64(work)) / float64(work)
	return res, nil
}
