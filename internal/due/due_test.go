package due

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	ms   = int64(1000 * 1000)
	sec  = int64(1000 * 1000 * 1000)
	hour = 3600 * sec
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{NodeMTBF: 0, Nodes: 1},
		{NodeMTBF: 1, Nodes: 0},
		{NodeMTBF: 1, Nodes: 1, Checkpoint: -1},
		{NodeMTBF: 1, Nodes: 1, Restart: -1},
		{NodeMTBF: 1, Nodes: 1, Interval: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSystemMTBFScales(t *testing.T) {
	c := Config{NodeMTBF: 1000 * hour, Nodes: 1000}
	if got := c.SystemMTBF(); got != float64(hour) {
		t.Fatalf("system MTBF = %v, want %v", got, float64(hour))
	}
}

func TestYoungInterval(t *testing.T) {
	// sqrt(2 * 60s * 3600s) = 657.2s
	got := YoungInterval(60*sec, float64(hour))
	want := math.Sqrt(2 * 60e9 * 3600e9)
	if math.Abs(float64(got)-want) > 1e6 {
		t.Fatalf("young interval %d, want ~%v", got, want)
	}
	if YoungInterval(0, 1) != 0 || YoungInterval(1, 0) != 0 {
		t.Fatal("degenerate young interval not zero")
	}
}

func TestDalyCloseToYoungForCheapCheckpoints(t *testing.T) {
	m := float64(100 * hour)
	delta := 10 * sec
	young := YoungInterval(delta, m)
	daly := DalyInterval(delta, m)
	rel := math.Abs(float64(daly-young)) / float64(young)
	if rel > 0.05 {
		t.Fatalf("daly %d vs young %d differ by %.1f%% for cheap checkpoints", daly, young, rel*100)
	}
}

func TestDalyClampsExpensiveCheckpoints(t *testing.T) {
	m := float64(60 * sec)
	if got := DalyInterval(40*sec, m); got != int64(m) {
		t.Fatalf("expensive checkpoint interval %d, want clamp to MTBF %v", got, m)
	}
}

func TestOptimalIntervalBeatsNeighbors(t *testing.T) {
	base := Config{NodeMTBF: 10000 * hour, Nodes: 1000, Checkpoint: 30 * sec, Restart: 60 * sec}
	opt := base
	opt.Interval = 0 // Daly optimum
	optPct, err := opt.ExpectedOverheadPct()
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []float64{0.25, 0.5, 2, 4} {
		alt := base
		alt.Interval = int64(float64(DalyInterval(base.Checkpoint, base.SystemMTBF())) * factor)
		altPct, err := alt.ExpectedOverheadPct()
		if err != nil {
			t.Fatal(err)
		}
		if altPct < optPct-0.01 {
			t.Fatalf("interval x%v beats the optimum: %v%% vs %v%%", factor, altPct, optPct)
		}
	}
}

func TestOverheadIncreasesWithFailureRate(t *testing.T) {
	mk := func(nodes int) float64 {
		c := Config{NodeMTBF: 50000 * hour, Nodes: nodes, Checkpoint: 60 * sec, Restart: 120 * sec}
		pct, err := c.ExpectedOverheadPct()
		if err != nil {
			t.Fatal(err)
		}
		return pct
	}
	small, large := mk(1000), mk(16384)
	if large <= small {
		t.Fatalf("16x nodes did not increase DUE overhead: %v%% vs %v%%", large, small)
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	c := Config{NodeMTBF: 20000 * hour, Nodes: 4096, Checkpoint: 60 * sec, Restart: 120 * sec}
	want, err := c.ExpectedOverheadPct()
	if err != nil {
		t.Fatal(err)
	}
	// Long run, several seeds: mean within a relative band. The closed
	// form slightly overestimates (it models a checkpoint after every
	// segment including the last).
	total := 0.0
	const seeds = 5
	for seed := uint64(1); seed <= seeds; seed++ {
		res, err := Simulate(c, 200*hour, seed)
		if err != nil {
			t.Fatal(err)
		}
		total += res.OverheadPct
	}
	got := total / seeds
	if math.Abs(got-want) > 0.35*want+1 {
		t.Fatalf("monte carlo %v%% vs closed form %v%%", got, want)
	}
}

func TestSimulateCountsEvents(t *testing.T) {
	c := Config{NodeMTBF: 1000 * hour, Nodes: 10000, Checkpoint: 30 * sec, Restart: 60 * sec}
	res, err := Simulate(c, 20*hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures over 20h at 6m system MTBF")
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	if res.WallNanos <= 20*hour {
		t.Fatal("wall time not inflated")
	}
	if res.OverheadPct <= 0 {
		t.Fatalf("overhead %v", res.OverheadPct)
	}
}

func TestSimulateFailureFree(t *testing.T) {
	// Enormous MTBF: overhead is checkpoints only, tau/(tau+delta).
	c := Config{NodeMTBF: 1 << 62, Nodes: 1, Checkpoint: 10 * sec, Interval: 100 * sec}
	res, err := Simulate(c, 1000*sec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("failures at near-infinite MTBF: %d", res.Failures)
	}
	// 1000s of work in 100s segments: 9 checkpoints (none after the
	// final segment), overhead = 90s/1000s = 9%.
	if res.Checkpoints != 9 {
		t.Fatalf("checkpoints = %d, want 9", res.Checkpoints)
	}
	if math.Abs(res.OverheadPct-9) > 0.01 {
		t.Fatalf("failure-free overhead %v%%, want 9%%", res.OverheadPct)
	}
}

// A zero checkpoint cost with no explicit interval drives Daly's
// optimum to zero; this used to spin forever in Simulate's segmented
// loop. The config is one TestQuickSimulateSane actually drew.
func TestSimulateZeroCheckpointTerminates(t *testing.T) {
	c := Config{NodeMTBF: 46460 * hour, Nodes: 2604, Checkpoint: 0, Restart: 60 * sec}
	res, err := Simulate(c, hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallNanos < hour || res.OverheadPct < 0 {
		t.Fatalf("continuous-checkpoint result out of range: %+v", res)
	}
	// Failures cost only the restart: wall = work + failures*restart
	// plus nothing else, since no work is ever lost.
	want := hour + int64(res.Failures)*c.Restart
	if res.WallNanos != want {
		t.Fatalf("wall = %d, want work + failures*restart = %d", res.WallNanos, want)
	}
	pct, err := c.ExpectedOverheadPct()
	if err != nil {
		t.Fatal(err)
	}
	if pct < 0 || math.IsInf(pct, 0) || math.IsNaN(pct) {
		t.Fatalf("expected overhead = %v, want finite and non-negative", pct)
	}
}

func TestSimulateBadArgs(t *testing.T) {
	c := Config{NodeMTBF: hour, Nodes: 1}
	if _, err := Simulate(c, 0, 1); err == nil {
		t.Fatal("zero work accepted")
	}
	if _, err := Simulate(Config{}, hour, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	c := Config{NodeMTBF: 5000 * hour, Nodes: 8192, Checkpoint: 30 * sec, Restart: 60 * sec}
	a, err := Simulate(c, 10*hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, 10*hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// Property: overhead is non-negative and the simulator always
// terminates with done == work accounted in wall time.
func TestQuickSimulateSane(t *testing.T) {
	f := func(seed uint64, mtbfRaw, nodesRaw, ckptRaw uint16) bool {
		c := Config{
			NodeMTBF:   (int64(mtbfRaw) + 100) * hour,
			Nodes:      int(nodesRaw%8192) + 1,
			Checkpoint: int64(ckptRaw%120) * sec,
			Restart:    60 * sec,
		}
		res, err := Simulate(c, hour, seed)
		if err != nil {
			return false
		}
		return res.OverheadPct >= 0 && res.WallNanos >= hour
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
