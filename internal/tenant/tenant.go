// Package tenant enforces per-tenant service quotas for cesimd: a
// token-bucket request rate, an in-flight job cap, and a result-store
// disk budget. Tenants are named by the X-Tenant request header (the
// empty name is the shared default tenant); limits come from a default
// plus per-tenant overrides.
//
// The package deliberately owns no clock of its own: Config.Now is
// injectable so refill arithmetic is exact under test, and the zero
// value falls back to time.Now for production. Rejections carry a
// computed Retry-After so the HTTP layer can answer 429 with a useful
// hint instead of a bare refusal, matching the shed/breaker discipline
// the daemon already applies to global overload.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Limits bounds one tenant. Zero or negative fields are unlimited.
type Limits struct {
	// RatePerSec is the sustained request admission rate.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token bucket size; defaults to max(1, RatePerSec)
	// when a rate is set.
	Burst int `json:"burst,omitempty"`
	// MaxJobs caps the tenant's in-flight (queued or running) jobs.
	MaxJobs int `json:"max_jobs,omitempty"`
	// DiskBytes caps the tenant's result-store footprint. Overage skips
	// persisting new results — the job still succeeds, it just is not
	// cached durably.
	DiskBytes int64 `json:"disk_bytes,omitempty"`
}

// Sentinel rejection causes, matched with errors.Is.
var (
	// ErrRateLimited reports an empty token bucket.
	ErrRateLimited = errors.New("tenant: rate limited")
	// ErrJobQuota reports the in-flight job cap.
	ErrJobQuota = errors.New("tenant: job quota exceeded")
)

// LimitError is the typed rejection: which tenant, why, and how long
// until a retry can succeed (zero when waiting does not help, as with
// the job cap — the client must finish work, not wait wall time).
type LimitError struct {
	Tenant     string
	RetryAfter time.Duration
	cause      error
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%v (tenant=%q retry-after=%s)", e.cause, e.Tenant, e.RetryAfter)
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *LimitError) Unwrap() error { return e.cause }

// Stats is one tenant's counter snapshot.
type Stats struct {
	Tenant      string  `json:"tenant"`
	InFlight    int     `json:"in_flight"`
	Admitted    uint64  `json:"admitted"`
	RateLimited uint64  `json:"rate_limited"`
	JobLimited  uint64  `json:"job_limited"`
	DiskSkips   uint64  `json:"disk_skips"`
	Tokens      float64 `json:"tokens"`
}

// Config builds a Registry.
type Config struct {
	// Defaults applies to every tenant without an override.
	Defaults Limits
	// Overrides maps tenant names to their specific limits.
	Overrides map[string]Limits
	// Now supplies the clock; nil selects time.Now.
	Now func() time.Time
}

// state is one tenant's live bucket and counters.
type state struct {
	tokens      float64
	last        time.Time
	inFlight    int
	admitted    uint64
	rateLimited uint64
	jobLimited  uint64
	diskSkips   uint64
}

// Registry tracks every tenant seen so far. Construct with New.
type Registry struct {
	mu        sync.Mutex
	defaults  Limits
	overrides map[string]Limits
	states    map[string]*state
	now       func() time.Time
}

// New builds a Registry.
func New(cfg Config) *Registry {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ov := make(map[string]Limits, len(cfg.Overrides))
	for k, v := range cfg.Overrides {
		ov[k] = v
	}
	return &Registry{
		defaults:  cfg.Defaults,
		overrides: ov,
		states:    map[string]*state{},
		now:       now,
	}
}

// limitsFor resolves a tenant's limits.
func (r *Registry) limitsFor(tenant string) Limits {
	if l, ok := r.overrides[tenant]; ok {
		return l
	}
	return r.defaults
}

// stateFor returns (creating if needed) a tenant's state. r.mu held.
func (r *Registry) stateFor(tenant string, l Limits) *state {
	s, ok := r.states[tenant]
	if !ok {
		s = &state{tokens: float64(burst(l)), last: r.now()}
		r.states[tenant] = s
	}
	return s
}

// burst resolves the effective bucket size.
func burst(l Limits) int {
	if l.Burst > 0 {
		return l.Burst
	}
	if l.RatePerSec >= 1 {
		return int(l.RatePerSec)
	}
	return 1
}

// refill advances the bucket to now. r.mu held.
func refill(s *state, l Limits, now time.Time) {
	if l.RatePerSec <= 0 {
		return
	}
	dt := now.Sub(s.last).Seconds()
	if dt > 0 {
		s.tokens += dt * l.RatePerSec
		if max := float64(burst(l)); s.tokens > max {
			s.tokens = max
		}
	}
	s.last = now
}

// Admit applies the tenant's rate and job limits to one submission.
// On success it returns a release function the caller must invoke when
// the job leaves flight (terminal state or submit failure downstream).
// On rejection it returns a *LimitError wrapping ErrRateLimited or
// ErrJobQuota.
func (r *Registry) Admit(tenant string) (release func(), err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.limitsFor(tenant)
	s := r.stateFor(tenant, l)
	now := r.now()
	refill(s, l, now)

	if l.RatePerSec > 0 && s.tokens < 1 {
		s.rateLimited++
		wait := time.Duration((1 - s.tokens) / l.RatePerSec * float64(time.Second))
		if wait < time.Second {
			wait = time.Second // floor: Retry-After is whole seconds on the wire
		}
		return nil, &LimitError{Tenant: tenant, RetryAfter: wait, cause: ErrRateLimited}
	}
	if l.MaxJobs > 0 && s.inFlight >= l.MaxJobs {
		s.jobLimited++
		return nil, &LimitError{Tenant: tenant, cause: ErrJobQuota}
	}
	if l.RatePerSec > 0 {
		s.tokens--
	}
	s.inFlight++
	s.admitted++
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			if s.inFlight > 0 {
				s.inFlight--
			}
		})
	}, nil
}

// DiskAllowed reports whether persisting addBytes more for the tenant
// stays inside its disk quota, given its current store footprint. A
// false answer is counted as a skip — the caller proceeds without
// persisting.
func (r *Registry) DiskAllowed(tenant string, usedBytes, addBytes int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.limitsFor(tenant)
	if l.DiskBytes <= 0 || usedBytes+addBytes <= l.DiskBytes {
		return true
	}
	r.stateFor(tenant, l).diskSkips++
	return false
}

// StatsAll snapshots every tenant seen so far, sorted by name so the
// /metrics rendering is stable.
func (r *Registry) StatsAll() []Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.states))
	for name := range r.states {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Stats, 0, len(names))
	for _, name := range names {
		s := r.states[name]
		l := r.limitsFor(name)
		refill(s, l, r.now())
		out = append(out, Stats{
			Tenant:      name,
			InFlight:    s.inFlight,
			Admitted:    s.admitted,
			RateLimited: s.rateLimited,
			JobLimited:  s.jobLimited,
			DiskSkips:   s.diskSkips,
			Tokens:      s.tokens,
		})
	}
	return out
}
