package tenant

import (
	"errors"
	"testing"
	"time"
)

// clock is a hand-advanced test clock.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newClock() *clock {
	return &clock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func TestRateLimitAndRefill(t *testing.T) {
	c := newClock()
	r := New(Config{
		Defaults: Limits{RatePerSec: 1, Burst: 2},
		Now:      c.now,
	})
	// Burst of 2 admits twice, then rejects with a Retry-After.
	for i := 0; i < 2; i++ {
		rel, err := r.Admit("acme")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rel()
	}
	_, err := r.Admit("acme")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third admit: %v, want rate limited", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.RetryAfter < time.Second {
		t.Fatalf("limit error missing retry-after: %v", err)
	}
	// One second refills one token.
	c.advance(time.Second)
	if rel, err := r.Admit("acme"); err != nil {
		t.Fatalf("admit after refill: %v", err)
	} else {
		rel()
	}
	st := r.StatsAll()
	if len(st) != 1 || st[0].Admitted != 3 || st[0].RateLimited != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestJobQuotaReleasedOnCompletion(t *testing.T) {
	r := New(Config{Defaults: Limits{MaxJobs: 1}, Now: newClock().now})
	rel, err := r.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Admit("t"); !errors.Is(err, ErrJobQuota) {
		t.Fatalf("second in-flight admit: %v, want job quota", err)
	}
	rel()
	rel() // double release must not underflow
	rel2, err := r.Admit("t")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	if st := r.StatsAll(); st[0].InFlight != 0 || st[0].JobLimited != 1 {
		t.Fatalf("stats: %+v", st[0])
	}
}

func TestOverridesAndUnlimitedDefault(t *testing.T) {
	c := newClock()
	r := New(Config{
		Overrides: map[string]Limits{"capped": {RatePerSec: 1, Burst: 1}},
		Now:       c.now,
	})
	// Default tenant: unlimited.
	for i := 0; i < 100; i++ {
		rel, err := r.Admit("")
		if err != nil {
			t.Fatalf("unlimited admit %d: %v", i, err)
		}
		rel()
	}
	// Overridden tenant: one per second.
	rel, err := r.Admit("capped")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if _, err := r.Admit("capped"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("capped tenant not limited: %v", err)
	}
}

func TestDiskQuota(t *testing.T) {
	r := New(Config{Defaults: Limits{DiskBytes: 100}, Now: newClock().now})
	if !r.DiskAllowed("t", 50, 50) {
		t.Fatal("exact fit refused")
	}
	if r.DiskAllowed("t", 50, 51) {
		t.Fatal("overage allowed")
	}
	if !r.DiskAllowed("t", 0, 100) {
		t.Fatal("full budget refused")
	}
	if st := r.StatsAll(); st[0].DiskSkips != 1 {
		t.Fatalf("disk skips: %+v", st[0])
	}
}

func TestStatsSortedByTenant(t *testing.T) {
	r := New(Config{Now: newClock().now})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		rel, err := r.Admit(name)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	st := r.StatsAll()
	if len(st) != 3 || st[0].Tenant != "alpha" || st[1].Tenant != "mid" || st[2].Tenant != "zeta" {
		t.Fatalf("stats order: %+v", st)
	}
}
