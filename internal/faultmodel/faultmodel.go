// Package faultmodel generates per-node correctable-error arrival
// processes from a field-grounded mixture of DRAM fault modes.
//
// The rest of this repository draws CEs from a single homogeneous
// exponential MTBCE stream — the paper's §III-D model. The field data
// says real CE processes are a mixture: "A Systematic Study of DDR4
// DRAM Faults in the Field" reports distinct fault modes (single-cell,
// row, column, bank — package retire's taxonomy) with very different
// address footprints, transient vs permanent behaviour, correlated CE
// bursts, and heavy per-DIMM rate skew (a small fraction of DIMMs
// carries most of the errors); "DRAM Errors and Cosmic Rays" shows the
// transient component scales with altitude/particle flux.
//
// A Spec describes such a mixture. It compiles into:
//
//   - a Process, which implements noise.Arrivals (and noise.GapBatcher,
//     so the batched arrival fast path keeps working) and drops into
//     the simulator unchanged: the superposition of the per-mode
//     renewal processes, with a lognormal per-node rate multiplier;
//   - a Generator, which produces the same arrival schedule as Events
//     carrying fault-footprint addresses, for the advisor's footprint
//     classifiers and for NDJSON CE trace export;
//   - a node-level machine-check configuration (StormMCAConfig) whose
//     burst train feeds the mca CMCI-storm/poll path.
//
// Determinism contract: all randomness derives from (seed, node) via
// rng.NewStream. A node's stream yields one 64-bit key; per-(node,
// mode) streams are split from that key with rng.NewStream(key, ...),
// so every mode owns an independent splitmix64-derived stream. Modes
// are put in canonical order before any stream is assigned, which
// makes composition order-independent: permuting Spec.Modes yields
// bit-identical schedules. No wall clock, no map iteration feeds
// output; replay with the same seed and spec is bit-identical.
package faultmodel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/retire"
)

// Mode is one fault mode of a mixture.
type Mode struct {
	// Kind names the retire.FaultKind footprint: "cell", "row",
	// "column" or "bank".
	Kind string `json:"kind"`
	// Weight is the mode's share of the mixture's aggregate CE rate.
	// Weights must be positive and sum to 1 across the spec.
	Weight float64 `json:"weight"`
	// Transient marks the fault as particle-strike-like rather than a
	// permanent hardware defect: its rate scales with Spec.Flux, and
	// each burst train comes from a fresh footprint (a new strike)
	// instead of repeating one fault's addresses.
	Transient bool `json:"transient,omitempty"`
	// BurstLen is the mean number of CEs per correlated burst train
	// (geometrically distributed, >= 1). Zero means 1: no bursts, a
	// plain renewal process.
	BurstLen float64 `json:"burst_len,omitempty"`
	// BurstGapNanos is the mean gap between CEs inside a burst train.
	// Required when BurstLen > 1.
	BurstGapNanos int64 `json:"burst_gap_ns,omitempty"`
}

// Spec is a fault-mode mixture, the JSON format accepted by
// cmd/cesim -fault-mix and the cesimd fault_mix request field
// (docs/FAULTMODEL.md).
type Spec struct {
	// MTBCENanos is the aggregate per-node mean time between CEs of
	// the mixture at Flux 1 before per-DIMM skew. Optional in catalog
	// presets, where the scenario supplies the rate via WithMTBCE.
	MTBCENanos int64 `json:"mtbce_ns,omitempty"`
	// Modes is the mixture composition.
	Modes []Mode `json:"modes"`
	// SkewSigma is the sigma of the lognormal per-node rate multiplier
	// (median 1). Zero disables skew; the DDR4 field study's "few
	// DIMMs carry most errors" concentration corresponds to sigma in
	// the 1-2.5 range.
	SkewSigma float64 `json:"skew_sigma,omitempty"`
	// Flux scales the rate of every Transient mode, the altitude/
	// particle-flux knob of the cosmic-ray study (sea level = 1,
	// roughly x4-10 at aircraft altitudes). Zero means 1.
	Flux float64 `json:"flux,omitempty"`
}

// WithMTBCE returns a copy of the spec with the aggregate per-node
// MTBCE set, leaving an explicit spec value in place. Catalog presets
// carry composition only; the scenario's rate is attached here.
func (s Spec) WithMTBCE(mtbceNanos int64) Spec {
	if s.MTBCENanos == 0 {
		s.MTBCENanos = mtbceNanos
	}
	return s
}

// badNumber reports NaN or infinities, which would otherwise slip
// through ordering comparisons (NaN compares false against every
// bound) and poison every downstream rate computation.
func badNumber(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// Validate reports spec errors. Every error names the offending field
// and, for mode errors, the mode's index and kind, so a hand-written
// JSON spec fails with one precise line.
func (s Spec) Validate() error {
	if s.MTBCENanos < 0 {
		return fmt.Errorf("faultmodel: mtbce_ns must be >= 0, got %d", s.MTBCENanos)
	}
	if len(s.Modes) == 0 {
		return fmt.Errorf("faultmodel: spec has no modes")
	}
	sum := 0.0
	for i, m := range s.Modes {
		kind, err := retire.ParseKind(m.Kind)
		if err != nil {
			return fmt.Errorf("faultmodel: modes[%d]: unknown fault kind %q (want cell, row, column or bank)", i, m.Kind)
		}
		if badNumber(m.Weight) || m.Weight <= 0 {
			return fmt.Errorf("faultmodel: modes[%d] (%s): weight must be a positive finite number, got %v", i, kind, m.Weight)
		}
		if badNumber(m.BurstLen) || (m.BurstLen != 0 && m.BurstLen < 1) {
			return fmt.Errorf("faultmodel: modes[%d] (%s): burst_len must be >= 1 (or 0 for no bursts), got %v", i, kind, m.BurstLen)
		}
		if m.BurstGapNanos < 0 {
			return fmt.Errorf("faultmodel: modes[%d] (%s): burst_gap_ns must be >= 0, got %d", i, kind, m.BurstGapNanos)
		}
		if m.BurstLen > 1 && m.BurstGapNanos == 0 {
			return fmt.Errorf("faultmodel: modes[%d] (%s): burst_len %v needs a positive burst_gap_ns", i, kind, m.BurstLen)
		}
		sum += m.Weight
	}
	// The tolerance absorbs decimal-literal rounding ("0.1+0.2"), not
	// genuinely unnormalized mixtures.
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("faultmodel: mode weights must sum to 1, got %v", sum)
	}
	if badNumber(s.SkewSigma) || s.SkewSigma < 0 {
		return fmt.Errorf("faultmodel: skew_sigma must be a finite number >= 0, got %v", s.SkewSigma)
	}
	if badNumber(s.Flux) || s.Flux < 0 {
		return fmt.Errorf("faultmodel: flux must be a finite number >= 0 (0 means 1), got %v", s.Flux)
	}
	return nil
}

// flux returns the effective transient-rate multiplier.
func (s Spec) flux() float64 {
	if s.Flux == 0 {
		return 1
	}
	return s.Flux
}

// canonical returns the spec with modes sorted by a total order on
// their parameters. Stream assignment follows canonical position, so a
// permuted Spec.Modes compiles to the bit-identical process —
// composition is order-independent by construction.
func (s Spec) canonical() Spec {
	modes := make([]Mode, len(s.Modes))
	copy(modes, s.Modes)
	sort.SliceStable(modes, func(i, j int) bool {
		a, b := modes[i], modes[j]
		if a.Kind != b.Kind {
			ka, _ := retire.ParseKind(a.Kind)
			kb, _ := retire.ParseKind(b.Kind)
			return ka < kb
		}
		if a.Transient != b.Transient {
			return !a.Transient
		}
		if a.Weight != b.Weight {
			return a.Weight < b.Weight
		}
		if a.BurstLen != b.BurstLen {
			return a.BurstLen < b.BurstLen
		}
		return a.BurstGapNanos < b.BurstGapNanos
	})
	s.Modes = modes
	return s
}

// compiledMode is one mode with rates resolved against the spec's
// MTBCE and flux.
type compiledMode struct {
	kind      retire.FaultKind
	transient bool
	// rate is the mode's long-run CE rate in events per nanosecond at
	// skew multiplier 1.
	rate float64
	// meanGap is 1/rate.
	meanGap float64
	// quietGap is the mean gap between burst trains; burstGap the mean
	// gap inside a train of mean length burstLen. burstLen 1 recovers
	// a plain exponential renewal with mean quietGap = meanGap.
	quietGap float64
	burstGap float64
	burstLen float64
}

// compile resolves per-mode rates. The spec must already be canonical
// and validated; MTBCENanos must be positive.
func (s Spec) compile() ([]compiledMode, error) {
	if s.MTBCENanos <= 0 {
		return nil, fmt.Errorf("faultmodel: spec needs a positive mtbce_ns (set it in the spec or via WithMTBCE), got %d", s.MTBCENanos)
	}
	out := make([]compiledMode, len(s.Modes))
	for i, m := range s.Modes {
		kind, err := retire.ParseKind(m.Kind)
		if err != nil {
			return nil, err
		}
		c := compiledMode{kind: kind, transient: m.Transient, burstLen: m.BurstLen, burstGap: float64(m.BurstGapNanos)}
		if c.burstLen == 0 {
			c.burstLen = 1
		}
		c.rate = m.Weight / float64(s.MTBCENanos)
		if m.Transient {
			c.rate *= s.flux()
		}
		c.meanGap = 1 / c.rate
		// The long-run mean gap of the train process is
		// (quiet + (L-1)*burstGap) / L; solve for the quiet gap that
		// hits the mode's target rate.
		c.quietGap = c.burstLen*c.meanGap - (c.burstLen-1)*c.burstGap
		if c.quietGap <= 0 {
			return nil, fmt.Errorf("faultmodel: modes[%d] (%s): burst train (len %v, gap %vns) alone exceeds the mode's mean gap %.0fns; lower burst_len or burst_gap_ns", i, kind, c.burstLen, c.burstGap, c.meanGap)
		}
		out[i] = c
	}
	return out, nil
}

// ParseSpec decodes and validates a JSON mixture spec. Unknown fields
// are rejected, and syntax or type errors are reported with the line
// and column of the offending byte, so a typo in a hand-written file
// fails with one precise location.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, specError(data, err)
	}
	// A spec file is one JSON document; trailing garbage is a mangled
	// file, not a second spec.
	if dec.More() {
		return Spec{}, fmt.Errorf("faultmodel: %s: trailing data after spec document", lineCol(data, dec.InputOffset()))
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// specError attaches line:column positions to the decode errors that
// carry a byte offset.
func specError(data []byte, err error) error {
	switch e := err.(type) {
	case *json.SyntaxError:
		return fmt.Errorf("faultmodel: %s: %v", lineCol(data, e.Offset), err)
	case *json.UnmarshalTypeError:
		return fmt.Errorf("faultmodel: %s: %v", lineCol(data, e.Offset), err)
	}
	return fmt.Errorf("faultmodel: %v", err)
}

// lineCol converts a byte offset into a 1-based line:column label.
func lineCol(data []byte, off int64) string {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line, col := 1, 1
	for _, b := range data[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("line %d:%d", line, col)
}

// String renders the canonical composition, used in error messages and
// result metadata.
func (s Spec) String() string {
	c := s.canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "faultmix(mtbce=%dns", c.MTBCENanos)
	for _, m := range c.Modes {
		fmt.Fprintf(&b, ",%s:%.3g", m.Kind, m.Weight)
		if m.Transient {
			b.WriteString("t")
		}
		if m.BurstLen > 1 {
			fmt.Fprintf(&b, "x%.3g@%dns", m.BurstLen, m.BurstGapNanos)
		}
	}
	if c.SkewSigma > 0 {
		fmt.Fprintf(&b, ",skew=%.3g", c.SkewSigma)
	}
	if c.flux() != 1 {
		fmt.Fprintf(&b, ",flux=%.3g", c.flux())
	}
	b.WriteString(")")
	return b.String()
}
