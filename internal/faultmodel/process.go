package faultmodel

import (
	"math"
	"sync"

	"repro/internal/rng"
)

// Stream split identifiers under a node's 64-bit key. Every per-node
// random quantity lives on its own splitmix64-derived stream, so modes
// never share state and adding a mode never perturbs another mode's
// draws.
const (
	// streamSkew carries the node's lognormal rate multiplier.
	streamSkew = uint64(0)
	// streamGapBase + i carries mode i's inter-arrival draws.
	streamGapBase = uint64(1)
	// streamAddrBase + i carries mode i's footprint address draws
	// (Generator only), disjoint from every gap stream.
	streamAddrBase = uint64(1) << 32
)

// modeState is one mode's renewal state on one node.
type modeState struct {
	src *rng.Source
	// next is the absolute time of the mode's next arrival, in ns
	// since the node's stream started.
	next float64
	// burstLeft counts CEs remaining in the current burst train.
	burstLeft uint64
	// newTrain marks the next arrival as the first CE of a fresh burst
	// train; the Generator re-draws transient footprints on it.
	newTrain bool
}

// advance schedules the mode's next arrival. All gap means scale by
// 1/skew: a skewed node is the same process on a compressed clock, so
// its long-run rate is exactly skew times the base rate.
func (st *modeState) advance(c *compiledMode, invSkew float64) {
	if st.burstLeft == 0 {
		// Leaving quiet: draw the size of the train this quiet gap
		// leads to (geometric, mean burstLen, minimum 1).
		n := uint64(1)
		if c.burstLen > 1 {
			p := 1 / c.burstLen
			for st.src.Float64() > p {
				n++
			}
		}
		st.burstLeft = n - 1
		st.next += st.src.Exp(c.quietGap * invSkew)
		st.newTrain = true
	} else {
		st.burstLeft--
		st.next += st.src.Exp(c.burstGap * invSkew)
		st.newTrain = false
	}
}

// mixNode is the superposed mixture state of one node: every mode's
// independent renewal process, merged in time order.
type mixNode struct {
	modes   []modeState
	last    float64
	invSkew float64
}

// newMixNode derives a node's per-mode streams and skew from its
// 64-bit key. Draw order is fixed (skew, then modes in canonical
// order) and every draw comes from its own stream, so the node's
// schedule is a pure function of (key, canonical spec).
func newMixNode(key uint64, modes []compiledMode, skewSigma float64) *mixNode {
	n := &mixNode{modes: make([]modeState, len(modes)), invSkew: 1}
	if skewSigma > 0 {
		skew := math.Exp(skewSigma * rng.NewStream(key, streamSkew).Normal(0, 1))
		n.invSkew = 1 / skew
	}
	for i := range modes {
		st := &n.modes[i]
		st.src = rng.NewStream(key, streamGapBase+uint64(i))
		st.advance(&modes[i], n.invSkew)
	}
	return n
}

// step fires the earliest pending arrival across modes and returns the
// owning mode index, the gap since the previous arrival, and whether
// the fired arrival is the first CE of a new burst train. Ties break
// to the lowest canonical index — deterministic, and independent of
// the spec's original mode order.
func (n *mixNode) step(modes []compiledMode) (mode int, gap int64, newTrain bool) {
	mi := 0
	for i := 1; i < len(n.modes); i++ {
		if n.modes[i].next < n.modes[mi].next {
			mi = i
		}
	}
	st := &n.modes[mi]
	nt := st.newTrain
	g := st.next - n.last
	n.last = st.next
	st.advance(&modes[mi], n.invSkew)
	if g < 0 {
		g = 0 // float paranoia; gaps are non-negative by construction
	}
	return mi, int64(g), nt
}

// Process is the mixture's arrival process. It implements
// noise.Arrivals and noise.GapBatcher, so it drops into noise.CE (and
// from there into the simulator's batched fast path and cached
// next-arrival peeking) exactly like the built-in processes. It also
// implements noise.ComponentGapper: its components renew at different
// time scales, and the saturation guard must be calibrated to the
// slowest one, not the combined mean.
//
// One Process value serves every node of a simulation, and may be
// shared by concurrently running repetitions: per-node state is keyed
// by the caller-provided state word, and the handle table below is the
// only shared mutable state.
type Process struct {
	spec       Spec // canonical
	modes      []compiledMode
	meanGap    float64
	maxModeGap float64
	label      string

	// mu guards the handle table. A node's first NextGap allocates its
	// mixNode and stores handle+1 in the state word; subsequent calls
	// on that node resolve the handle under the lock and then operate
	// on the mixNode without it (each node is driven by exactly one
	// goroutine — its simulation's).
	mu    sync.Mutex
	nodes []*mixNode
}

// Process compiles the spec into an arrival process. The spec must
// carry a positive MTBCENanos (see WithMTBCE).
func (s Spec) Process() (*Process, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := s.canonical()
	modes, err := c.compile()
	if err != nil {
		return nil, err
	}
	total, maxGap := 0.0, 0.0
	for _, m := range modes {
		total += m.rate
		if m.meanGap > maxGap {
			maxGap = m.meanGap
		}
	}
	// E[lognormal(0, sigma)] = exp(sigma^2/2): skew preserves the
	// median node but raises the population-mean rate.
	skewMean := math.Exp(c.SkewSigma * c.SkewSigma / 2)
	return &Process{
		spec:       c,
		modes:      modes,
		meanGap:    1 / (total * skewMean),
		maxModeGap: maxGap,
		label:      c.String(),
	}, nil
}

// node resolves (or creates) the per-node mixture state behind a state
// word. The node key is one draw from the node's own rng stream —
// consumed identically on the batched and unbatched paths, so both
// yield bit-identical schedules.
func (p *Process) node(src *rng.Source, state *uint64) *mixNode {
	if h := *state; h != 0 {
		p.mu.Lock()
		n := p.nodes[h-1]
		p.mu.Unlock()
		return n
	}
	n := newMixNode(src.Uint64(), p.modes, p.spec.SkewSigma)
	p.mu.Lock()
	p.nodes = append(p.nodes, n)
	*state = uint64(len(p.nodes))
	p.mu.Unlock()
	return n
}

// NextGap implements noise.Arrivals.
func (p *Process) NextGap(src *rng.Source, state *uint64) int64 {
	n := p.node(src, state)
	_, gap, _ := n.step(p.modes)
	return gap
}

// AppendGaps implements noise.GapBatcher: n gaps in one call,
// consuming the streams exactly as n NextGap calls would.
func (p *Process) AppendGaps(dst []int64, src *rng.Source, state *uint64, n int) []int64 {
	nd := p.node(src, state)
	for i := 0; i < n; i++ {
		_, gap, _ := nd.step(p.modes)
		dst = append(dst, gap)
	}
	return dst
}

// MeanGap returns the population-mean inter-arrival time: the
// aggregate rate of all modes (flux applied) times the mean lognormal
// skew multiplier.
func (p *Process) MeanGap() float64 { return p.meanGap }

// MaxComponentMeanGap implements noise.ComponentGapper: the mean gap
// of the slowest mode at skew 1. A stall shorter than a few multiples
// of this is a legitimate burst train from a rare mode, not
// saturation.
func (p *Process) MaxComponentMeanGap() float64 { return p.maxModeGap }

// String implements fmt.Stringer with the canonical composition.
func (p *Process) String() string { return p.label }
