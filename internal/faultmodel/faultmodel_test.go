package faultmodel

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
)

// testSpec is a representative mixture: permanent cell and bursty row
// faults plus a transient cell component.
func testSpec() Spec {
	return Spec{
		MTBCENanos: 1e6,
		Modes: []Mode{
			{Kind: "cell", Weight: 0.5},
			{Kind: "row", Weight: 0.3, BurstLen: 8, BurstGapNanos: 2000},
			{Kind: "cell", Weight: 0.2, Transient: true},
		},
	}
}

func TestValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		spec Spec
		want string // error substring, "" for valid
	}{
		{"valid", testSpec(), ""},
		{"valid-skew-flux", Spec{MTBCENanos: 1e6, Modes: []Mode{{Kind: "bank", Weight: 1}}, SkewSigma: 2, Flux: 4}, ""},
		{"no-modes", Spec{MTBCENanos: 1e6}, "no modes"},
		{"negative-mtbce", Spec{MTBCENanos: -1, Modes: []Mode{{Kind: "cell", Weight: 1}}, SkewSigma: 0}, "mtbce_ns"},
		{"unknown-kind", Spec{Modes: []Mode{{Kind: "rank", Weight: 1}}}, `modes[0]: unknown fault kind "rank"`},
		{"zero-weight", Spec{Modes: []Mode{{Kind: "cell", Weight: 0}, {Kind: "row", Weight: 1}}}, "modes[0] (cell): weight"},
		{"negative-weight", Spec{Modes: []Mode{{Kind: "row", Weight: -0.5}, {Kind: "cell", Weight: 1.5}}}, "modes[0] (row): weight"},
		{"nan-weight", Spec{Modes: []Mode{{Kind: "cell", Weight: nan}}}, "modes[0] (cell): weight"},
		{"inf-weight", Spec{Modes: []Mode{{Kind: "cell", Weight: inf}}}, "modes[0] (cell): weight"},
		{"weights-dont-sum", Spec{Modes: []Mode{{Kind: "cell", Weight: 0.5}, {Kind: "row", Weight: 0.4}}}, "sum to 1"},
		{"fractional-burst", Spec{Modes: []Mode{{Kind: "cell", Weight: 1, BurstLen: 0.5}}}, "burst_len"},
		{"nan-burst", Spec{Modes: []Mode{{Kind: "cell", Weight: 1, BurstLen: nan}}}, "burst_len"},
		{"burst-without-gap", Spec{Modes: []Mode{{Kind: "row", Weight: 1, BurstLen: 4}}}, "needs a positive burst_gap_ns"},
		{"negative-burst-gap", Spec{Modes: []Mode{{Kind: "row", Weight: 1, BurstGapNanos: -5}}}, "burst_gap_ns"},
		{"nan-skew", Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}, SkewSigma: nan}, "skew_sigma"},
		{"inf-skew", Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}, SkewSigma: inf}, "skew_sigma"},
		{"negative-skew", Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}, SkewSigma: -1}, "skew_sigma"},
		{"nan-flux", Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}, Flux: nan}, "flux"},
		{"inf-flux", Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}, Flux: inf}, "flux"},
		{"negative-flux", Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}, Flux: -2}, "flux"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestProcessErrors(t *testing.T) {
	// A burst train that alone exceeds the mode's mean gap cannot hit
	// its target rate with any positive quiet gap.
	s := Spec{MTBCENanos: 1000, Modes: []Mode{{Kind: "row", Weight: 1, BurstLen: 10, BurstGapNanos: 2000}}}
	if _, err := s.Process(); err == nil || !strings.Contains(err.Error(), "exceeds the mode's mean gap") {
		t.Fatalf("Process() error = %v, want burst-train error", err)
	}
	// Composition-only specs (catalog presets) need a rate attached.
	s = Spec{Modes: []Mode{{Kind: "cell", Weight: 1}}}
	if _, err := s.Process(); err == nil || !strings.Contains(err.Error(), "mtbce_ns") {
		t.Fatalf("Process() error = %v, want mtbce_ns error", err)
	}
	if _, err := s.WithMTBCE(1e6).Process(); err != nil {
		t.Fatalf("WithMTBCE Process() = %v, want nil", err)
	}
	// WithMTBCE must not override an explicit spec value.
	if got := testSpec().WithMTBCE(42).MTBCENanos; got != 1e6 {
		t.Fatalf("WithMTBCE overrode explicit mtbce: got %d", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown-field", `{"modes":[{"kind":"cell","weight":1}],"skew":2}`, `unknown field "skew"`},
		{"syntax", "{\n  \"modes\": [,]\n}", "line 2:14"},
		{"type", "{\n\"modes\": [{\"kind\": 3}]\n}", "line 2:21"},
		{"trailing", `{"modes":[{"kind":"cell","weight":1}]} {}`, "trailing data"},
		{"invalid", `{"modes":[]}`, "no modes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseSpec(%q) error = %v, want containing %q", tc.in, err, tc.want)
			}
		})
	}
	got, err := ParseSpec([]byte(`{"mtbce_ns": 1000000, "modes":[{"kind":"cell","weight":1}], "flux": 2}`))
	if err != nil {
		t.Fatalf("ParseSpec(valid) = %v", err)
	}
	if got.MTBCENanos != 1e6 || got.Flux != 2 || len(got.Modes) != 1 {
		t.Fatalf("ParseSpec(valid) = %+v", got)
	}
}

// gaps drives a process the way noise.CE does for one node and returns
// the first n gaps.
func gaps(t *testing.T, s Spec, seed uint64, node uint64, n int) []int64 {
	t.Helper()
	p, err := s.Process()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewStream(seed, node)
	var state uint64
	out := make([]int64, n)
	for i := range out {
		out[i] = p.NextGap(src, &state)
	}
	return out
}

func TestDeterministicReplay(t *testing.T) {
	a := gaps(t, testSpec(), 7, 3, 2000)
	b := gaps(t, testSpec(), 7, 3, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs across replays: %d vs %d", i, a[i], b[i])
		}
	}
	// A different node must see a different schedule.
	c := gaps(t, testSpec(), 7, 4, 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("nodes 3 and 4 produced identical schedules")
	}
}

func TestPermutedModesBitIdentical(t *testing.T) {
	s := testSpec()
	perm := Spec{MTBCENanos: s.MTBCENanos, Modes: []Mode{s.Modes[2], s.Modes[0], s.Modes[1]}}
	a := gaps(t, s, 11, 5, 2000)
	b := gaps(t, perm, 11, 5, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs under mode permutation: %d vs %d", i, a[i], b[i])
		}
	}
	ea, err := s.Events(11, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := perm.Events(11, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs under mode permutation: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestAppendGapsMatchesNextGap(t *testing.T) {
	s := testSpec()
	want := gaps(t, s, 3, 9, 2000)
	p, err := s.Process()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewStream(3, 9)
	var state uint64
	var got []int64
	sizes := []int{1, 16, 7, 5}
	for i := 0; len(got) < 2000; i++ {
		got = p.AppendGaps(got, src, &state, sizes[i%len(sizes)])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batched gap %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMeanGapEmpirical(t *testing.T) {
	s := testSpec() // skew 0: every node runs at the population rate
	p, err := s.Process()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.MeanGap(), 1e6; math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("MeanGap() = %v, want %v", got, want)
	}
	const n = 200000
	var sum float64
	for _, g := range gaps(t, s, 1, 0, n) {
		sum += float64(g)
	}
	mean := sum / n
	if math.Abs(mean-1e6)/1e6 > 0.05 {
		t.Fatalf("empirical mean gap %v, want within 5%% of 1e6", mean)
	}
}

func TestFluxScalesTransientRate(t *testing.T) {
	base := Spec{MTBCENanos: 1e6, Modes: []Mode{{Kind: "cell", Weight: 1, Transient: true}}}
	p1, err := base.Process()
	if err != nil {
		t.Fatal(err)
	}
	quad := base
	quad.Flux = 4
	p4, err := quad.Process()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p4.MeanGap(), p1.MeanGap()/4; math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("flux-4 MeanGap = %v, want %v", got, want)
	}
	// Flux does not touch permanent modes.
	perm := Spec{MTBCENanos: 1e6, Modes: []Mode{{Kind: "cell", Weight: 1}}, Flux: 4}
	pp, err := perm.Process()
	if err != nil {
		t.Fatal(err)
	}
	if got := pp.MeanGap(); got != 1e6 {
		t.Fatalf("flux scaled a permanent mode: MeanGap = %v", got)
	}
}

func TestSkewVariesNodes(t *testing.T) {
	s := testSpec()
	s.SkewSigma = 2
	// Population mean folds in E[lognormal] = exp(sigma^2/2).
	p, err := s.Process()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.MeanGap(), 1e6/math.Exp(2); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("skewed MeanGap = %v, want %v", got, want)
	}
	// Node-level rates spread: with sigma 2, 8 nodes essentially never
	// land within 2x of each other all at once.
	const n = 20000
	var means []float64
	for node := uint64(0); node < 8; node++ {
		var sum float64
		for _, g := range gaps(t, s, 5, node, n) {
			sum += float64(g)
		}
		means = append(means, sum/n)
	}
	lo, hi := means[0], means[0]
	for _, m := range means[1:] {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if hi/lo < 2 {
		t.Fatalf("sigma-2 skew produced node mean gaps within 2x: min %v max %v", lo, hi)
	}
}

func TestProcessSharedAcrossGoroutines(t *testing.T) {
	// One Process value serves concurrently running repetitions; each
	// rep's nodes get their own handles and the schedules must match a
	// sequential run regardless of allocation order.
	s := testSpec()
	want := gaps(t, s, 9, 2, 500)
	p, err := s.Process()
	if err != nil {
		t.Fatal(err)
	}
	const reps = 8
	got := make([][]int64, reps)
	var wg sync.WaitGroup
	for r := 0; r < reps; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := rng.NewStream(9, 2)
			var state uint64
			out := make([]int64, 500)
			for i := range out {
				out[i] = p.NextGap(src, &state)
			}
			got[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < reps; r++ {
		for i := range want {
			if got[r][i] != want[i] {
				t.Fatalf("rep %d gap %d = %d, want %d", r, i, got[r][i], want[i])
			}
		}
	}
}
