package faultmodel

import (
	"repro/internal/retire"
	"repro/internal/rng"
)

// DRAM geometry for footprint addresses, mirroring the decomposition
// internal/advise's classifier assumes: 4 KiB pages, 8 KiB rows,
// column identity as the 8-byte-aligned offset within the row. The
// row-space and bank counts are per-device modeling choices large
// enough that independent draws essentially never collide.
const (
	pageShift = 12
	rowShift  = 13
	colShift  = 3
	numCols   = 1 << (rowShift - colShift)
	numRows   = 1 << 15
	numBanks  = 16
)

// Event is one generated CE observation: the arrival time produced by
// the mixture process plus the fault-footprint address, ready for the
// advisor's NDJSON ingest schema.
type Event struct {
	// TimeNanos is ns since the node's stream started, strictly
	// increasing (minimum 1, the ingest schema's floor).
	TimeNanos int64
	// Addr is the failing physical address.
	Addr uint64
	// Bank is the failing bank.
	Bank int
	// Kind is the generating fault mode.
	Kind retire.FaultKind
	// Transient echoes the generating mode's classification.
	Transient bool
}

// footprint is one fault instance's fixed coordinates. Which of them
// repeat across events is what distinguishes the kinds: a cell fault
// repeats the full address, a row fault the row, a column fault the
// intra-row offset, a bank fault only the bank.
type footprint struct {
	row  uint64
	col  uint64
	bank int
}

// genMode is one mode's address state.
type genMode struct {
	src *rng.Source
	fp  footprint
}

// draw picks fresh fault coordinates.
func (g *genMode) draw() {
	g.fp = footprint{
		row:  uint64(g.src.Intn(numRows)),
		col:  uint64(g.src.Intn(numCols)),
		bank: g.src.Intn(numBanks),
	}
}

// addr produces one event address inside the footprint.
func (g *genMode) addr(kind retire.FaultKind) uint64 {
	row, col := g.fp.row, g.fp.col
	switch kind {
	case retire.FaultCell:
		// fixed row and column: one address
	case retire.FaultRow:
		col = uint64(g.src.Intn(numCols))
	case retire.FaultColumn:
		row = uint64(g.src.Intn(numRows))
	default: // bank: scattered
		row = uint64(g.src.Intn(numRows))
		col = uint64(g.src.Intn(numCols))
	}
	return row<<rowShift | col<<colShift
}

// Generator produces one node's CE event stream: the identical arrival
// schedule the Process yields for that (seed, node) under noise.CE —
// address draws live on disjoint streams, so attaching footprints
// never perturbs the timing — with fault-footprint addresses per mode.
// Permanent modes keep one fault instance for the node's lifetime;
// transient modes re-draw the instance at every new burst train (each
// particle strike upsets a fresh location).
type Generator struct {
	modes []compiledMode
	node  *mixNode
	gens  []genMode
	t     int64
}

// Generator builds the event generator for one node. seed and node
// correspond to noise.Config.Seed and the node id: the event times
// equal the cumulative gaps Process produces for that node.
func (s Spec) Generator(seed, node uint64) (*Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := s.canonical()
	modes, err := c.compile()
	if err != nil {
		return nil, err
	}
	// Identical key derivation to the Process under noise.CE: the
	// model hands each node the stream rng.NewStream(seed, node), and
	// the node's first arrival draw takes one Uint64 from it.
	key := rng.NewStream(seed, node).Uint64()
	g := &Generator{
		modes: modes,
		node:  newMixNode(key, modes, c.SkewSigma),
		gens:  make([]genMode, len(modes)),
	}
	for i := range modes {
		gm := &g.gens[i]
		gm.src = rng.NewStream(key, streamAddrBase+uint64(i))
		gm.draw()
	}
	return g, nil
}

// Next returns the node's next CE event.
func (g *Generator) Next() Event {
	mi, gap, newTrain := g.node.step(g.modes)
	g.t += gap
	m := &g.modes[mi]
	gm := &g.gens[mi]
	// A transient fault's footprint is re-drawn at the first CE of
	// every burst train: each activation is a fresh particle strike,
	// not a repeat of a permanent defect.
	if m.transient && newTrain {
		gm.draw()
	}
	ts := g.t
	if ts < 1 {
		ts = 1 // the ingest schema requires ts_ns >= 1
	}
	return Event{
		TimeNanos: ts,
		Addr:      gm.addr(m.kind),
		Bank:      gm.fp.bank,
		Kind:      m.kind,
		Transient: m.transient,
	}
}

// Events generates the node's first n CE events.
func (s Spec) Events(seed, node uint64, n int) ([]Event, error) {
	g, err := s.Generator(seed, node)
	if err != nil {
		return nil, err
	}
	out := make([]Event, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out, nil
}
