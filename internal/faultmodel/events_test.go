package faultmodel

import (
	"testing"

	"repro/internal/mca"
	"repro/internal/retire"
	"repro/internal/rng"
)

func TestGeneratorMatchesProcessSchedule(t *testing.T) {
	// The Generator must reproduce the exact arrival times the Process
	// yields for the same (seed, node) under noise.CE — attaching
	// addresses never perturbs the timing.
	s := testSpec()
	p, err := s.Process()
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Generator(21, 6)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewStream(21, 6)
	var state uint64
	var at int64
	for i := 0; i < 1000; i++ {
		at += p.NextGap(src, &state)
		want := at
		if want < 1 {
			want = 1
		}
		ev := g.Next()
		if ev.TimeNanos != want {
			t.Fatalf("event %d at %d, process schedule says %d", i, ev.TimeNanos, want)
		}
	}
}

// uniques collects the distinct rows, columns, banks, and addresses of
// an event stream.
func uniques(evs []Event) (rows, cols, banks, addrs map[uint64]bool) {
	rows = map[uint64]bool{}
	cols = map[uint64]bool{}
	banks = map[uint64]bool{}
	addrs = map[uint64]bool{}
	for _, e := range evs {
		rows[e.Addr>>rowShift] = true
		cols[(e.Addr>>colShift)&(numCols-1)] = true
		banks[uint64(e.Bank)] = true
		addrs[e.Addr] = true
	}
	return
}

func TestFootprintShapes(t *testing.T) {
	single := func(kind string) []Event {
		s := Spec{MTBCENanos: 1e6, Modes: []Mode{{Kind: kind, Weight: 1}}}
		evs, err := s.Events(13, 1, 256)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	t.Run("cell", func(t *testing.T) {
		_, _, banks, addrs := uniques(single("cell"))
		if len(addrs) != 1 || len(banks) != 1 {
			t.Fatalf("permanent cell fault produced %d addrs in %d banks, want 1 in 1", len(addrs), len(banks))
		}
	})
	t.Run("row", func(t *testing.T) {
		rows, cols, banks, _ := uniques(single("row"))
		if len(rows) != 1 || len(banks) != 1 {
			t.Fatalf("row fault spanned %d rows, %d banks, want 1, 1", len(rows), len(banks))
		}
		if len(cols) < 32 {
			t.Fatalf("row fault hit only %d distinct columns", len(cols))
		}
	})
	t.Run("column", func(t *testing.T) {
		rows, cols, banks, _ := uniques(single("column"))
		if len(cols) != 1 || len(banks) != 1 {
			t.Fatalf("column fault spanned %d columns, %d banks, want 1, 1", len(cols), len(banks))
		}
		if len(rows) < 32 {
			t.Fatalf("column fault hit only %d distinct rows", len(rows))
		}
	})
	t.Run("bank", func(t *testing.T) {
		rows, cols, banks, _ := uniques(single("bank"))
		if len(banks) != 1 {
			t.Fatalf("bank fault spanned %d banks, want 1", len(banks))
		}
		if len(rows) < 32 || len(cols) < 32 {
			t.Fatalf("bank fault too concentrated: %d rows, %d cols", len(rows), len(cols))
		}
	})
}

func TestTransientRedrawsPerTrain(t *testing.T) {
	// A permanent cell fault repeats one address forever; a transient
	// one re-draws its footprint at every new burst train.
	perm := Spec{MTBCENanos: 1e5, Modes: []Mode{{Kind: "cell", Weight: 1, BurstLen: 4, BurstGapNanos: 100}}}
	evs, err := perm.Events(3, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, addrs := uniques(evs)
	if len(addrs) != 1 {
		t.Fatalf("permanent bursty cell fault produced %d addresses, want 1", len(addrs))
	}
	tr := perm
	tr.Modes[0].Transient = true
	evs, err = tr.Events(3, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, addrs = uniques(evs)
	// ~100 trains of mean length 4; distinct strikes collide rarely.
	if len(addrs) < 20 {
		t.Fatalf("transient cell fault produced only %d addresses across ~100 strikes", len(addrs))
	}
	// Events carry their generating mode.
	for _, e := range evs {
		if e.Kind != retire.FaultCell || !e.Transient {
			t.Fatalf("event misattributed: %+v", e)
		}
	}
	// Timestamps are non-decreasing and respect the ingest floor.
	last := int64(0)
	for _, e := range evs {
		if e.TimeNanos < 1 || e.TimeNanos < last {
			t.Fatalf("bad timestamp sequence: %d after %d", e.TimeNanos, last)
		}
		last = e.TimeNanos
	}
}

func TestStormBridge(t *testing.T) {
	s := Spec{
		MTBCENanos: 1e9,
		Modes: []Mode{
			{Kind: "cell", Weight: 0.5},
			{Kind: "row", Weight: 0.5, BurstLen: 32, BurstGapNanos: 1e6},
		},
	}
	cfg, err := s.StormMCAConfig(17, mca.Software)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BurstLen != 32 || cfg.BurstSpacing != 1e6 {
		t.Fatalf("storm config did not pick the burstiest mode: %+v", cfg)
	}
	sw, err := s.StormPerEventNanos(17, mca.Software)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := s.StormPerEventNanos(17, mca.Firmware)
	if err != nil {
		t.Fatal(err)
	}
	if sw <= 0 || fw <= 0 {
		t.Fatalf("non-positive per-event costs: software %d, firmware %d", sw, fw)
	}
	// Firmware pays an SMI (~7 ms) per CE; software pays CMCIs
	// (~0.7 ms) that collapse into polls once the storm threshold
	// trips. The gap between the two is the figure-9 story.
	if fw <= sw {
		t.Fatalf("firmware per-event %dns not above software %dns under storms", fw, sw)
	}
	sw2, err := s.StormPerEventNanos(17, mca.Software)
	if err != nil {
		t.Fatal(err)
	}
	if sw2 != sw {
		t.Fatalf("storm bridge not deterministic: %d vs %d", sw, sw2)
	}
}
