package faultmodel

import (
	"fmt"

	"repro/internal/mca"
)

// Node-level measurement window for the storm bridge. The full Blake
// configuration (96 cores, 2 minutes) costs seconds per run; the storm
// dynamics — CMCI threshold trip, poll-mode fallback, SMI trains —
// play out identically in a small window, and figure drivers call this
// once per (burst, mode) point.
const (
	stormCores     = 4
	stormWindow    = int64(12e9) // 12 s
	stormPeriod    = int64(2e9)  // burst train every 2 s
	stormThreshold = 15          // Linux CMCI storm threshold, CMCIs/s
)

// burstiest returns the canonical mode with the longest burst train.
func burstiest(modes []compiledMode) compiledMode {
	best := modes[0]
	for _, m := range modes[1:] {
		if m.burstLen > best.burstLen {
			best = m
		}
	}
	return best
}

// StormMCAConfig maps the mixture's dominant burst train onto the
// node-level machine-check model (package mca): each injection point
// fires the train's mean length at its mean spacing, with the Linux
// CMCI storm mitigation armed in Software mode. This is how a mixture
// feeds the storm/poll path the paper's Fig. 2 measurements exercise.
func (s Spec) StormMCAConfig(seed uint64, mode mca.Mode) (mca.Config, error) {
	if err := s.Validate(); err != nil {
		return mca.Config{}, err
	}
	modes, err := s.canonical().compile()
	if err != nil {
		return mca.Config{}, err
	}
	b := burstiest(modes)
	cfg := mca.Config{
		Seed:           seed,
		Mode:           mode,
		Cores:          stormCores,
		Duration:       stormWindow,
		InjectPeriod:   stormPeriod,
		StormThreshold: stormThreshold,
		BurstLen:       int(b.burstLen + 0.5),
	}
	if cfg.BurstLen < 1 {
		cfg.BurstLen = 1
	}
	if b.burstGap > 0 {
		cfg.BurstSpacing = int64(b.burstGap)
	}
	return cfg, nil
}

// StormPerEventNanos runs the node-level model under the mixture's
// burst train and returns the effective per-CE handling cost as one
// core experiences it — including the CMCI storm-poll detours that
// replace per-event interrupts once the threshold trips. This is the
// number the storm-tail figure feeds into the application sweep: under
// Software logging it shrinks as bursts intensify (the storm
// mitigation absorbs events into polls), under Firmware it does not
// (every CE raises its SMI regardless).
func (s Spec) StormPerEventNanos(seed uint64, mode mca.Mode) (int64, error) {
	cfg, err := s.StormMCAConfig(seed, mode)
	if err != nil {
		return 0, err
	}
	sig, err := mca.Run(cfg)
	if err != nil {
		return 0, err
	}
	injections := 0
	for t := cfg.InjectPeriod; t < cfg.Duration; t += cfg.InjectPeriod {
		injections++
	}
	ces := int64(injections) * int64(cfg.BurstLen)
	if ces == 0 {
		return 0, fmt.Errorf("faultmodel: storm window too short for any injection")
	}
	var total int64
	for _, d := range sig.Detours {
		switch mode {
		case mca.Software:
			// A CMCI lands on one core; polls replace interrupts
			// during a storm. Both interrupt whichever core the
			// application rank shares.
			if d.Source == "cmci" || d.Source == "cmci-poll" {
				total += d.Dur
			}
		case mca.Firmware:
			// SMIs halt every core; count one core's view so the
			// cost is per-CE per-core, comparable to the software
			// path.
			if d.Core == 0 && (d.Source == "smi" || d.Source == "decode") {
				total += d.Dur
			}
		case mca.CorrectionOnly:
			if d.Source == "correction" {
				total += d.Dur
			}
		default:
			return 0, fmt.Errorf("faultmodel: mca mode %v has no per-CE handling cost", mode)
		}
	}
	per := total / ces
	if per < 1 {
		per = 1
	}
	return per, nil
}
