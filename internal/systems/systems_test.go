package systems

import (
	"math"
	"testing"

	"repro/internal/mca"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d rows, Table II has 10", len(cat))
	}
	names := map[string]bool{}
	for _, s := range cat {
		if names[s.Name] {
			t.Fatalf("duplicate system %q", s.Name)
		}
		names[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("cielo")
	if err != nil {
		t.Fatal(err)
	}
	if s.MTBCESeconds != 1.2e6 || s.SimNodes != 8192 {
		t.Fatalf("cielo row wrong: %+v", s)
	}
	if _, err := ByName("k-computer"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestTableIIValues(t *testing.T) {
	// Spot-check stated values against the paper.
	cases := map[string]struct {
		mtbce    float64
		simNodes int
	}{
		"cielo":                    {1.2e6, 8192},
		"trinity":                  {311400, 16384},
		"summit":                   {62280, 4096},
		"exascale-cielo":           {55440, 16384},
		"exascale-cielo-x10":       {5544, 16384},
		"exascale-cielo-x20":       {3024, 16384},
		"exascale-cielo-x100":      {554.4, 16384},
		"exascale-facebook-median": {432, 16384},
	}
	for name, want := range cases {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.MTBCESeconds != want.mtbce {
			t.Fatalf("%s MTBCE = %v, want %v", name, s.MTBCESeconds, want.mtbce)
		}
		if s.SimNodes != want.simNodes {
			t.Fatalf("%s sim nodes = %d, want %d", name, s.SimNodes, want.simNodes)
		}
	}
}

func TestMTBCENanos(t *testing.T) {
	s, err := ByName("exascale-cielo-x10")
	if err != nil {
		t.Fatal(err)
	}
	if s.MTBCENanos() != 5544*1e9 {
		t.Fatalf("MTBCENanos = %d", s.MTBCENanos())
	}
}

func TestComputedMTBCECloseToStated(t *testing.T) {
	// The stated MTBCE values should be within ~25% of the values
	// derived from CE/node/year. Table II is internally inconsistent at
	// that level (e.g. Summit: 425.6 CE/yr implies 74,148 s but the
	// table states 62,280 s); the stated MTBCE column is authoritative.
	for _, s := range Catalog() {
		derived := s.ComputedMTBCESeconds()
		rel := math.Abs(derived-s.MTBCESeconds) / s.MTBCESeconds
		if rel > 0.25 {
			t.Fatalf("%s: derived MTBCE %v vs stated %v (%.0f%% off)", s.Name, derived, s.MTBCESeconds, rel*100)
		}
	}
}

func TestExascaleScaling(t *testing.T) {
	base, _ := ByName("exascale-cielo")
	x10, _ := ByName("exascale-cielo-x10")
	x100, _ := ByName("exascale-cielo-x100")
	if x10.CEPerNodeYear != 10*base.CEPerNodeYear {
		t.Fatal("x10 rate is not 10x base")
	}
	if x100.CEPerNodeYear != 100*base.CEPerNodeYear {
		t.Fatal("x100 rate is not 100x base")
	}
	// MTBCE scales inversely (to Table II rounding).
	if math.Abs(base.MTBCESeconds/10-x10.MTBCESeconds) > 1 {
		t.Fatalf("x10 MTBCE %v vs base/10 %v", x10.MTBCESeconds, base.MTBCESeconds/10)
	}
}

func TestFacebookMedianIsRoughly120xCielo(t *testing.T) {
	// The paper: "about 120X of that measured on Cielo".
	fb, _ := ByName("exascale-facebook-median")
	base, _ := ByName("exascale-cielo")
	ratio := fb.CEPerNodeYear / base.CEPerNodeYear
	if ratio < 100 || ratio > 140 {
		t.Fatalf("facebook-median/cielo rate ratio = %v, want ~120", ratio)
	}
}

func TestSimulatedSubset(t *testing.T) {
	sim := Simulated()
	if len(sim) != 8 {
		t.Fatalf("simulated rows = %d, want 8 (3 HPC + 5 exascale)", len(sim))
	}
	for _, s := range sim {
		if s.SimNodes == 0 {
			t.Fatalf("%s has no sim nodes", s.Name)
		}
	}
}

func TestExascaleRows(t *testing.T) {
	rows := ExascaleRows()
	if len(rows) != 5 {
		t.Fatalf("exascale rows = %d, want 5", len(rows))
	}
	for _, s := range rows {
		if s.Nodes != 16384 || s.GiBPerNode != 700 {
			t.Fatalf("%s: exascale systems are 16,384 nodes x 700 GiB, got %+v", s.Name, s)
		}
	}
}

func TestLoggingModes(t *testing.T) {
	modes := LoggingModes()
	if len(modes) != 3 {
		t.Fatalf("logging modes = %d, want 3", len(modes))
	}
	if HardwareOnly.PerEventNanos != 150 {
		t.Fatal("hardware-only is 150ns in the paper")
	}
	if SoftwareCMCI.PerEventNanos != 775000 {
		t.Fatal("software logging is 775us in the paper")
	}
	if FirmwareEMCA.PerEventNanos != 133000000 {
		t.Fatal("firmware logging is 133ms in the paper")
	}
	for _, m := range modes {
		got, err := LoggingModeByName(m.Name)
		if err != nil || got != m {
			t.Fatalf("LoggingModeByName(%q) = %+v, %v", m.Name, got, err)
		}
	}
	if _, err := LoggingModeByName("telepathy"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestFaultMixes(t *testing.T) {
	names := []string{"field-ddr4", "high-altitude", "skewed-dimms", "bursty-row"}
	mixes := FaultMixes()
	if len(mixes) != len(names) {
		t.Fatalf("fault mixes = %d, want %d", len(mixes), len(names))
	}
	for i, m := range mixes {
		if m.Name != names[i] {
			t.Fatalf("preset %d named %q, want %q (names are API; figures and flags key on them)", i, m.Name, names[i])
		}
		if m.Description == "" {
			t.Fatalf("%s: empty description", m.Name)
		}
		if m.Spec.MTBCENanos != 0 {
			t.Fatalf("%s: presets carry composition only; MTBCE comes from the scenario", m.Name)
		}
		// Every preset must compile at a scenario-supplied rate.
		if _, err := m.Spec.WithMTBCE(3_600_000_000_000).Process(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got, err := FaultMixByName(m.Name)
		if err != nil {
			t.Fatalf("FaultMixByName(%q): %v", m.Name, err)
		}
		if got.Name != m.Name || len(got.Spec.Modes) != len(m.Spec.Modes) {
			t.Fatalf("FaultMixByName(%q) returned %+v", m.Name, got)
		}
	}
	if _, err := FaultMixByName("gamma-rays"); err == nil {
		t.Fatal("unknown fault mix accepted")
	}
	if got := FaultMixNames(); len(got) != len(names) || got[0] != "field-ddr4" {
		t.Fatalf("FaultMixNames() = %v", got)
	}
	// The flux knob is what distinguishes high-altitude from field-ddr4.
	ha, _ := FaultMixByName("high-altitude")
	if ha.Spec.Flux != 4 {
		t.Fatalf("high-altitude flux = %v, want 4", ha.Spec.Flux)
	}
	// bursty-row must look storm-prone to the mca bridge.
	br, _ := FaultMixByName("bursty-row")
	cfg, err := br.Spec.WithMTBCE(3_600_000_000_000).StormMCAConfig(1, mca.Software)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BurstLen != 64 {
		t.Fatalf("bursty-row storm burst len = %d, want 64", cfg.BurstLen)
	}
}
