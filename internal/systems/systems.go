// Package systems encodes the correctable-error parameters of the
// measured and hypothesized systems in the paper's Table II, plus the
// three logging-overhead scenarios used throughout the evaluation.
package systems

import (
	"fmt"
	"math"

	"repro/internal/faultmodel"
)

// SecondsPerYear is the year length used to convert CE rates to MTBCE.
const SecondsPerYear = 365.25 * 24 * 3600

// Class groups Table II rows.
type Class int

// Classes of systems in Table II.
const (
	// DataCenter rows (Google, Facebook) are field-study rates with no
	// node counts; they calibrate the rate axis only.
	DataCenter Class = iota
	// HPC rows are existing systems simulated in Fig. 4.
	HPC
	// Exascale rows are the hypothetical systems of Fig. 5.
	Exascale
)

// System is one Table II row.
type System struct {
	Name          string
	Class         Class
	CEPerNodeYear float64 // correctable errors per node per year
	GiBPerNode    float64 // DRAM per node (midpoint when a range was given)
	CEPerGiBYear  float64 // correctable errors per GiB per year
	MTBCESeconds  float64 // mean time between CEs per node, as stated in Table II
	Nodes         int     // physical nodes (0 when not applicable)
	SimNodes      int     // nodes simulated in the paper (0 when not simulated)
}

// MTBCENanos returns the stated MTBCE(node) in nanoseconds.
func (s System) MTBCENanos() int64 {
	return int64(s.MTBCESeconds * 1e9)
}

// ComputedMTBCESeconds derives MTBCE from the CE-per-node-year column.
// Table II's stated MTBCE values differ from this derivation by up to
// ~13% for some rows (the paper rounded intermediate quantities); the
// stated values are authoritative for reproducing the figures.
func (s System) ComputedMTBCESeconds() float64 {
	if s.CEPerNodeYear <= 0 {
		return math.Inf(1)
	}
	return SecondsPerYear / s.CEPerNodeYear
}

// Catalog returns all Table II rows in presentation order.
func Catalog() []System {
	return []System{
		{Name: "google", Class: DataCenter, CEPerNodeYear: 22696, GiBPerNode: 2.5, CEPerGiBYear: 11384, MTBCESeconds: 1368},
		{Name: "facebook", Class: DataCenter, CEPerNodeYear: 5964, GiBPerNode: 13, CEPerGiBYear: 460, MTBCESeconds: 5292},
		{Name: "cielo", Class: HPC, CEPerNodeYear: 26.35, GiBPerNode: 32, CEPerGiBYear: 0.82, MTBCESeconds: 1.2e6, Nodes: 8894, SimNodes: 8192},
		{Name: "trinity", Class: HPC, CEPerNodeYear: 89.6, GiBPerNode: 128, CEPerGiBYear: 0.82, MTBCESeconds: 311400, Nodes: 19420, SimNodes: 16384},
		{Name: "summit", Class: HPC, CEPerNodeYear: 425.6, GiBPerNode: 608, CEPerGiBYear: 0.82, MTBCESeconds: 62280, Nodes: 4608, SimNodes: 4096},
		{Name: "exascale-cielo", Class: Exascale, CEPerNodeYear: 574, GiBPerNode: 700, CEPerGiBYear: 0.82, MTBCESeconds: 55440, Nodes: 16384, SimNodes: 16384},
		{Name: "exascale-cielo-x10", Class: Exascale, CEPerNodeYear: 5740, GiBPerNode: 700, CEPerGiBYear: 8.2, MTBCESeconds: 5544, Nodes: 16384, SimNodes: 16384},
		{Name: "exascale-cielo-x20", Class: Exascale, CEPerNodeYear: 11480, GiBPerNode: 700, CEPerGiBYear: 16.4, MTBCESeconds: 3024, Nodes: 16384, SimNodes: 16384},
		{Name: "exascale-cielo-x100", Class: Exascale, CEPerNodeYear: 57400, GiBPerNode: 700, CEPerGiBYear: 82, MTBCESeconds: 554.4, Nodes: 16384, SimNodes: 16384},
		{Name: "exascale-facebook-median", Class: Exascale, CEPerNodeYear: 75600, GiBPerNode: 700, CEPerGiBYear: 108, MTBCESeconds: 432, Nodes: 16384, SimNodes: 16384},
	}
}

// ByName returns the Table II row with the given name.
func ByName(name string) (System, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("systems: unknown system %q", name)
}

// Simulated returns the rows the paper simulates (Figs. 4 and 5).
func Simulated() []System {
	var out []System
	for _, s := range Catalog() {
		if s.SimNodes > 0 {
			out = append(out, s)
		}
	}
	return out
}

// ExascaleRows returns the hypothetical exascale systems (Fig. 5).
func ExascaleRows() []System {
	var out []System
	for _, s := range Catalog() {
		if s.Class == Exascale {
			out = append(out, s)
		}
	}
	return out
}

// LoggingMode is one of the three per-event CE handling scenarios used
// in every simulation figure.
type LoggingMode struct {
	Name string
	// PerEventNanos is the CPU detour per correctable error.
	PerEventNanos int64
}

// The paper's three logging scenarios (Figs. 3-7).
var (
	// HardwareOnly is ECC correction with all logging disabled: 150 ns.
	HardwareOnly = LoggingMode{Name: "hardware-only", PerEventNanos: 150}
	// SoftwareCMCI is OS decode+log from the corrected machine check
	// interrupt: 775 us per event.
	SoftwareCMCI = LoggingMode{Name: "software-cmci", PerEventNanos: 775 * 1000}
	// FirmwareEMCA is firmware-first decode+log via SMM: 133 ms per
	// event (the paper's headline number, from Gottscho et al.).
	FirmwareEMCA = LoggingMode{Name: "firmware-emca", PerEventNanos: 133 * 1000 * 1000}
)

// LoggingModes returns the three scenarios in presentation order.
func LoggingModes() []LoggingMode {
	return []LoggingMode{HardwareOnly, SoftwareCMCI, FirmwareEMCA}
}

// LoggingModeByName looks up a scenario by name.
func LoggingModeByName(name string) (LoggingMode, error) {
	for _, m := range LoggingModes() {
		if m.Name == name {
			return m, nil
		}
	}
	return LoggingMode{}, fmt.Errorf("systems: unknown logging mode %q", name)
}

// FaultMix is a named fault-mode mixture preset: a faultmodel
// composition without a rate, grounded in the PAPERS.md field studies.
// Scenarios attach the system's MTBCE via Spec.WithMTBCE, so the same
// composition runs at any Table II rate.
type FaultMix struct {
	Name        string
	Description string
	Spec        faultmodel.Spec
}

// FaultMixes returns the fault-mix presets in presentation order.
// Compositions follow "A Systematic Study of DDR4 DRAM Faults in the
// Field" (single-cell faults dominate, row/column faults arrive in
// correlated bursts, a minority of DIMMs carries most errors) and
// "DRAM Errors and Cosmic Rays" (the transient component scales with
// particle flux).
func FaultMixes() []FaultMix {
	return []FaultMix{
		{
			Name:        "field-ddr4",
			Description: "DDR4 field-study mixture: cell-dominant with bursty row/column faults and moderate per-DIMM skew",
			Spec: faultmodel.Spec{
				Modes: []faultmodel.Mode{
					{Kind: "cell", Weight: 0.45},
					{Kind: "cell", Weight: 0.20, Transient: true},
					{Kind: "row", Weight: 0.20, BurstLen: 8, BurstGapNanos: 2e6},
					{Kind: "column", Weight: 0.10, BurstLen: 4, BurstGapNanos: 5e6},
					{Kind: "bank", Weight: 0.05},
				},
				SkewSigma: 1.8,
			},
		},
		{
			Name:        "high-altitude",
			Description: "field-ddr4 composition at 4x particle flux (aircraft-altitude transient rates)",
			Spec: faultmodel.Spec{
				Modes: []faultmodel.Mode{
					{Kind: "cell", Weight: 0.45},
					{Kind: "cell", Weight: 0.20, Transient: true},
					{Kind: "row", Weight: 0.20, BurstLen: 8, BurstGapNanos: 2e6},
					{Kind: "column", Weight: 0.10, BurstLen: 4, BurstGapNanos: 5e6},
					{Kind: "bank", Weight: 0.05},
				},
				SkewSigma: 1.8,
				Flux:      4,
			},
		},
		{
			Name:        "skewed-dimms",
			Description: "heavy per-DIMM rate concentration: a few nodes carry most of the CE load",
			Spec: faultmodel.Spec{
				Modes: []faultmodel.Mode{
					{Kind: "cell", Weight: 0.75},
					{Kind: "row", Weight: 0.25, BurstLen: 8, BurstGapNanos: 2e6},
				},
				SkewSigma: 2.2,
			},
		},
		{
			Name:        "bursty-row",
			Description: "storm-prone row-fault mixture: long CE trains that trip the CMCI storm threshold",
			Spec: faultmodel.Spec{
				Modes: []faultmodel.Mode{
					{Kind: "cell", Weight: 0.30},
					{Kind: "row", Weight: 0.60, BurstLen: 64, BurstGapNanos: 1e6},
					{Kind: "bank", Weight: 0.10, Transient: true},
				},
				SkewSigma: 1.0,
			},
		},
	}
}

// FaultMixByName looks up a fault-mix preset by name.
func FaultMixByName(name string) (FaultMix, error) {
	for _, m := range FaultMixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return FaultMix{}, fmt.Errorf("systems: unknown fault mix %q", name)
}

// FaultMixNames returns the preset names in presentation order, for
// flag validation messages.
func FaultMixNames() []string {
	mixes := FaultMixes()
	out := make([]string, len(mixes))
	for i, m := range mixes {
		out[i] = m.Name
	}
	return out
}
