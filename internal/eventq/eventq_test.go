package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	q := New(0)
	times := []int64{5, 3, 9, 1, 7, 3, 0}
	for _, tm := range times {
		q.Push(Event{Time: tm})
	}
	sorted := append([]int64(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		got := q.Pop()
		if got.Time != want {
			t.Fatalf("pop %d: time %d, want %d", i, got.Time, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.Len())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	q := New(0)
	for i := int32(0); i < 100; i++ {
		q.Push(Event{Time: 42, A: i})
	}
	for i := int32(0); i < 100; i++ {
		e := q.Pop()
		if e.A != i {
			t.Fatalf("same-time events reordered: got %d at position %d", e.A, i)
		}
	}
}

func TestPeek(t *testing.T) {
	q := New(4)
	q.Push(Event{Time: 10})
	q.Push(Event{Time: 5})
	if q.Peek().Time != 5 {
		t.Fatalf("peek = %d, want 5", q.Peek().Time)
	}
	if q.Len() != 2 {
		t.Fatalf("peek changed length to %d", q.Len())
	}
}

func TestReset(t *testing.T) {
	q := New(0)
	q.Push(Event{Time: 1})
	q.Push(Event{Time: 2})
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset did not empty queue")
	}
	q.Push(Event{Time: 3})
	if q.Pop().Time != 3 {
		t.Fatal("queue unusable after reset")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New(0)
	r := rand.New(rand.NewSource(1))
	var last int64 = -1 << 62
	pending := 0
	for i := 0; i < 10000; i++ {
		if pending == 0 || r.Intn(2) == 0 {
			// Never push an event earlier than the last popped time;
			// mirrors the simulator's no-time-travel invariant.
			tm := last + int64(r.Intn(100))
			if tm < 0 {
				tm = 0
			}
			q.Push(Event{Time: tm})
			pending++
		} else {
			e := q.Pop()
			if e.Time < last {
				t.Fatalf("time went backwards: %d after %d", e.Time, last)
			}
			last = e.Time
			pending--
		}
	}
}

// Property: popping a fully loaded queue yields a non-decreasing sequence.
func TestQuickSorted(t *testing.T) {
	f := func(times []int64) bool {
		q := New(len(times))
		for _, tm := range times {
			q.Push(Event{Time: tm})
		}
		var last int64 = -1 << 63
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < last {
				return false
			}
			last = e.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: payload fields survive the round trip untouched.
func TestQuickPayloadPreserved(t *testing.T) {
	f := func(kind, rank, a, c int32, b int64) bool {
		q := New(1)
		q.Push(Event{Time: 1, Kind: kind, Rank: rank, A: a, B: b, C: c})
		e := q.Pop()
		return e.Kind == kind && e.Rank == rank && e.A == a && e.B == b && e.C == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New(1024)
	r := rand.New(rand.NewSource(1))
	times := make([]int64, 1024)
	for i := range times {
		times[i] = int64(r.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Event{Time: times[i%len(times)]})
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
