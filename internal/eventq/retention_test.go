package eventq

import (
	"math/rand"
	"testing"
)

// slabEvents returns every Event slot resident in the queue's backing
// arrays beyond the live entries: the truncated tails of calendar
// bucket slabs or the heap slab. Pooled simulators keep queues alive
// across runs, so stale payloads here would keep dead run state
// reachable for the lifetime of the pool.
func slabEvents(q *Queue) []Event {
	var out []Event
	if q.shadow {
		h := q.heap[:cap(q.heap)]
		out = append(out, h[len(q.heap):]...)
		return out
	}
	for _, b := range q.buckets {
		full := b[:cap(b)]
		out = append(out, full[len(b):]...)
	}
	// Popped agenda prefix, truncated agenda tail, and the resize spill
	// buffer are all retained capacity too.
	out = append(out, q.today[:q.ti]...)
	out = append(out, q.today[:cap(q.today)][len(q.today):]...)
	out = append(out, q.scratch[:cap(q.scratch)]...)
	return out
}

func testRetention(t *testing.T, mk func(int) *Queue) {
	t.Helper()
	q := mk(0)
	r := rand.New(rand.NewSource(7))
	push := func(n int) {
		for i := 0; i < n; i++ {
			q.Push(Event{Time: int64(r.Intn(1 << 20)), A: 0xdead, B: 0xbeef, C: 0xcafe})
		}
	}

	// Pop path: drain fully; every vacated slot must be zeroed.
	push(500)
	for q.Len() > 0 {
		q.Pop()
	}
	for i, e := range slabEvents(q) {
		if e != (Event{}) {
			t.Fatalf("after drain, slab slot %d retains %+v", i, e)
		}
	}

	// Reset path: truncation must zero the retained capacity too.
	push(500)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("reset left %d events", q.Len())
	}
	for i, e := range slabEvents(q) {
		if e != (Event{}) {
			t.Fatalf("after reset, slab slot %d retains %+v", i, e)
		}
	}

	// The queue must stay usable with the same slabs after both.
	push(100)
	var last int64 = -1 << 62
	for q.Len() > 0 {
		e := q.Pop()
		if e.Time < last {
			t.Fatalf("order violated after reuse: %d after %d", e.Time, last)
		}
		last = e.Time
	}
}

func TestNoPayloadRetentionCalendar(t *testing.T) { testRetention(t, New) }
func TestNoPayloadRetentionShadow(t *testing.T)   { testRetention(t, NewShadow) }
