// Package eventq provides the priority queue at the heart of the
// discrete-event simulator.
//
// The queue orders events by timestamp (int64 nanoseconds of simulated
// time) with a monotonically increasing sequence number as a tie-breaker,
// so that events scheduled at the same instant are delivered in FIFO
// order. Deterministic tie-breaking is essential: the simulator must
// produce bit-identical schedules for a given seed.
//
// The implementation is a two-level calendar queue (after Brown,
// CACM'88): the time axis is divided into power-of-two-width "days"
// arranged in a ring of buckets, and the day under the scan cursor is
// staged out of its bucket into a sorted agenda that serves pops in
// O(1). Pushes for future days append to their ring bucket unsorted;
// pushes for the current day insert into the agenda (almost always at
// its tail, since the simulator schedules forward from "now"). This
// shape fits the LogGOPS workload, where collective phases release
// bursts of events at identical timestamps: a plain calendar queue
// rescans the whole burst on every pop, while the agenda sorts each
// burst once. Ring geometry (bucket count and width) is re-estimated
// from the live population whenever the queue grows past the ring's
// capacity; it never shrinks mid-run, because barrier-induced drains
// would otherwise thrash resizes, and a sparse ring only costs the
// sweep an occasional skipped-ahead cursor jump. Because the pop order
// is the strict total order (Time, seq), the schedule a simulation
// observes is bit-identical to the heap's.
//
// The previous heap survives as a shadow implementation (NewShadow,
// or module-wide via the eventq_shadow build tag) so differential
// tests and benchmarks can replay both engines in one process.
package eventq

// Event is the unit of work scheduled in simulated time. Payload fields
// are deliberately untyped integers so the queue does not allocate per
// event; the simulator packs whatever it needs into them. The struct is
// kept to 40 bytes — every push, pop, stage and resize copies events by
// value, so its size is the unit cost of all queue memory traffic. A and
// C are 32-bit because the simulator stores ranks, message indices and
// tags there, all of which fit; B stays 64-bit for byte counts.
type Event struct {
	Time int64 // simulated time in nanoseconds
	B    int64 // payload (e.g. message size)
	seq  uint64
	Kind int32 // event discriminator, owned by the caller
	Rank int32 // primary rank the event applies to
	A    int32 // payload (e.g. peer rank, matched message index)
	C    int32 // payload (e.g. tag)
}

// Calendar geometry defaults. The ring starts at minBuckets buckets of
// 2^initLogWidth ns and re-estimates both from the live population when
// it grows.
const (
	minBuckets   = 64
	initLogWidth = 12 // 4.096 us — re-estimated on first resize
)

// Queue is a min-queue of events ordered by (Time, insertion order).
// The zero value is an empty, ready-to-use queue.
type Queue struct {
	// Ring of future days.
	buckets [][]Event
	mask    int64  // len(buckets)-1; bucket count is a power of two
	logW    uint   // log2 of the bucket width in nanoseconds
	curDay  int64  // absolute day (Time >> logW) staged in the agenda
	n       int    // pending events, agenda included
	seq     uint64 // next insertion sequence number

	// Agenda: curDay's events, sorted by (Time, seq). today[ti:] are
	// pending; today[:ti] have been popped and are zeroed. Invariant:
	// no bucket holds an event of curDay.
	today []Event
	ti    int

	scratch []Event // resize spill buffer, zeroed after use

	// Shadow state: the legacy 4-ary implicit heap (shadow.go).
	shadow bool
	heap   []Event
}

// New returns a queue with capacity preallocated for n events. Under
// the eventq_shadow build tag it returns the legacy heap instead, so a
// whole build can be flipped to the old engine for differential runs.
func New(n int) *Queue {
	if buildShadow {
		return NewShadow(n)
	}
	q := &Queue{}
	q.init()
	// Pre-size the ring for the hinted population so steady-state
	// pushes do not grow bucket slabs one append at a time.
	if per := n / len(q.buckets); per > 0 {
		for i := range q.buckets {
			q.buckets[i] = make([]Event, 0, per)
		}
	}
	return q
}

// init builds the initial calendar ring. Called lazily so the zero
// value stays valid.
func (q *Queue) init() {
	q.buckets = make([][]Event, minBuckets)
	q.mask = minBuckets - 1
	q.logW = initLogWidth
	q.curDay = 0
}

// Len reports the number of pending events.
func (q *Queue) Len() int {
	if q.shadow {
		return len(q.heap)
	}
	return q.n
}

// Push schedules an event. The event's seq field is assigned internally.
func (q *Queue) Push(e Event) {
	if q.shadow {
		q.pushShadow(e)
		return
	}
	if q.buckets == nil {
		q.init()
	}
	e.seq = q.seq
	q.seq++
	day := e.Time >> q.logW
	switch {
	case q.n == 0:
		q.curDay = day
		q.today = append(q.today[:0], e)
		q.ti = 0
	case day == q.curDay:
		q.insertToday(e)
	case day < q.curDay:
		// An event scheduled behind the scan cursor. The simulator
		// never time-travels, but the contract allows it: spill the
		// agenda back into its bucket and restage at the new day.
		q.unstage()
		idx := day & q.mask
		q.buckets[idx] = append(q.buckets[idx], e)
		q.stage(day)
	default:
		idx := day & q.mask
		q.buckets[idx] = append(q.buckets[idx], e)
	}
	q.n++
	if q.n > 2*len(q.buckets) {
		q.resize()
	}
}

// insertToday places e into the sorted agenda. The simulator schedules
// forward from the current time, so the common case is an append.
func (q *Queue) insertToday(e Event) {
	t := q.today
	if len(t) == q.ti || !less(&e, &t[len(t)-1]) {
		q.today = append(t, e)
		return
	}
	lo, hi := q.ti, len(t)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(&e, &t[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t = append(t, Event{})
	copy(t[lo+1:], t[lo:])
	t[lo] = e
	q.today = t
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; callers check Len first.
func (q *Queue) Pop() Event {
	if q.shadow {
		return q.popShadow()
	}
	if q.n == 0 {
		panic("eventq: Pop on empty queue")
	}
	if q.ti == len(q.today) {
		q.stageNext()
	}
	e := q.today[q.ti]
	q.today[q.ti] = Event{} // do not retain popped payloads in the slab
	q.ti++
	q.n--
	if q.ti == len(q.today) {
		q.today = q.today[:0]
		q.ti = 0
	}
	e.seq = 0
	return e
}

// Peek returns the earliest event without removing it. Like Pop it
// panics on an empty queue.
func (q *Queue) Peek() Event {
	if q.shadow {
		return q.heap[0]
	}
	if q.n == 0 {
		panic("eventq: Peek on empty queue")
	}
	if q.ti == len(q.today) {
		q.stageNext()
	}
	e := q.today[q.ti]
	e.seq = 0
	return e
}

// stageNext advances the cursor to the next day with pending events and
// stages it. Within a calendar year, ring order is time order, so the
// first day with a resident is the minimum; if the whole ring is at
// least a year ahead of the cursor, jump straight to the global
// minimum's day. The sweep consults only the bucket lengths — an empty
// bucket is skipped without touching its slab — and scans residents
// only for non-empty candidates.
func (q *Queue) stageNext() {
	nb := len(q.buckets)
	day := q.curDay + 1
	for step := 0; step < nb; step, day = step+1, day+1 {
		b := q.buckets[day&q.mask]
		if len(b) == 0 {
			continue
		}
		for j := range b {
			if b[j].Time>>q.logW == day {
				q.stage(day)
				return
			}
		}
	}
	minDay := int64(0)
	found := false
	for i := range q.buckets {
		b := q.buckets[i]
		for j := range b {
			if d := b[j].Time >> q.logW; !found || d < minDay {
				minDay, found = d, true
			}
		}
	}
	q.stage(minDay)
}

// stage moves every event belonging to day from its ring bucket into
// the agenda and sorts the agenda by (Time, seq). Each event is staged
// exactly once on its way out of the queue.
func (q *Queue) stage(day int64) {
	idx := day & q.mask
	b := q.buckets[idx]
	t := q.today[:0]
	w := 0
	for j := range b {
		if b[j].Time>>q.logW == day {
			t = append(t, b[j])
		} else {
			b[w] = b[j]
			w++
		}
	}
	for j := w; j < len(b); j++ {
		b[j] = Event{}
	}
	q.buckets[idx] = b[:w]
	// Insertion sort: bucket order is push order, which the simulator
	// emits in near-ascending time, so this is close to linear.
	for i := 1; i < len(t); i++ {
		e := t[i]
		j := i - 1
		for j >= 0 && less(&e, &t[j]) {
			t[j+1] = t[j]
			j--
		}
		t[j+1] = e
	}
	q.today = t
	q.ti = 0
	q.curDay = day
}

// unstage spills the live agenda back into curDay's ring bucket and
// zeroes the agenda slab.
func (q *Queue) unstage() {
	idx := q.curDay & q.mask
	q.buckets[idx] = append(q.buckets[idx], q.today[q.ti:]...)
	for i := range q.today {
		q.today[i] = Event{}
	}
	q.today = q.today[:0]
	q.ti = 0
}

// less orders events by (Time, seq): FIFO among same-time events.
func less(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

// resize rebuilds the ring for the grown population: the bucket count
// tracks the event count and the bucket width is re-estimated from the
// pending timestamp span, so a calendar year covers the live window
// with O(1) expected occupancy per bucket. The ring never shrinks —
// collective barriers drain the queue many times per run, and
// re-growing after each would dominate the queue's cost.
func (q *Queue) resize() {
	events := q.scratch[:0]
	events = append(events, q.today[q.ti:]...)
	for i := range q.buckets {
		events = append(events, q.buckets[i]...)
	}
	for i := range q.today {
		q.today[i] = Event{}
	}
	q.today = q.today[:0]
	q.ti = 0
	nb := minBuckets
	for nb < q.n {
		nb *= 2
	}
	lo, hi := events[0].Time, events[0].Time
	for i := range events[1:] {
		t := events[i+1].Time
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	// Width ~ twice the mean gap between pending events, as a power of
	// two so bucket mapping is a shift (correct for negative times,
	// immune to the div cost). The year nb<<logW then spans ~2x the
	// live window.
	gap := (hi - lo) / int64(q.n)
	logW := uint(0)
	for int64(1)<<logW < gap+1 {
		logW++
	}
	q.buckets = make([][]Event, nb)
	q.mask = int64(nb) - 1
	q.logW = logW
	for _, e := range events {
		idx := (e.Time >> logW) & q.mask
		q.buckets[idx] = append(q.buckets[idx], e)
	}
	for i := range events {
		events[i] = Event{}
	}
	q.scratch = events[:0]
	q.stage(lo >> logW)
}

// Reset discards all pending events but keeps the allocated bucket and
// agenda slabs, and the learned ring geometry, for the next run.
// Discarded slots are zeroed so payloads scheduled by one simulation
// run can never leak into — or remain reachable from — a pooled
// simulator's next run.
func (q *Queue) Reset() {
	if q.shadow {
		q.resetShadow()
		return
	}
	for i := range q.buckets {
		b := q.buckets[i]
		for j := range b {
			b[j] = Event{}
		}
		q.buckets[i] = b[:0]
	}
	for i := range q.today {
		q.today[i] = Event{}
	}
	q.today = q.today[:0]
	q.ti = 0
	q.n = 0
	q.seq = 0
	q.curDay = 0
}
