package eventq

import (
	"math/rand"
	"testing"
)

// TestCalendarMatchesShadow drives the calendar queue and the legacy
// heap with identical push/pop sequences — including same-time bursts,
// wide time jumps and mid-stream resets — and requires identical pop
// streams. The simulator's bit-identity across the queue rewrite rests
// on this equivalence (plus TestEngineBitIdentical at the engine
// level).
func TestCalendarMatchesShadow(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		q, s := New(0), NewShadow(0)
		r := rand.New(rand.NewSource(seed))
		now := int64(0)
		for i := 0; i < 20000; i++ {
			switch {
			case q.Len() == 0 || r.Intn(3) > 0:
				dt := int64(r.Intn(1000))
				if r.Intn(50) == 0 {
					dt = int64(r.Intn(1 << 30)) // sparse far-future jump
				}
				if r.Intn(10) == 0 {
					dt = 0 // same-time burst: exercises FIFO tie-break
				}
				e := Event{Time: now + dt, Kind: int32(i), Rank: int32(r.Intn(64)), A: int32(i), B: now, C: int32(dt)}
				q.Push(e)
				s.Push(e)
			case r.Intn(200) == 0:
				q.Reset()
				s.Reset()
				now = 0
			default:
				ge, we := q.Pop(), s.Pop()
				if ge != we {
					t.Fatalf("seed %d step %d: calendar popped %+v, shadow popped %+v", seed, i, ge, we)
				}
				now = ge.Time
			}
			if q.Len() != s.Len() {
				t.Fatalf("seed %d step %d: len %d vs %d", seed, i, q.Len(), s.Len())
			}
		}
		for q.Len() > 0 {
			ge, we := q.Pop(), s.Pop()
			if ge != we {
				t.Fatalf("seed %d drain: calendar popped %+v, shadow popped %+v", seed, ge, we)
			}
		}
	}
}

// TestZeroValueQueue: the documented contract says the zero value is an
// empty, ready-to-use queue.
func TestZeroValueQueue(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 2})
	q.Push(Event{Time: 1})
	if got := q.Pop().Time; got != 1 {
		t.Fatalf("zero-value queue popped %d, want 1", got)
	}
	if got := q.Pop().Time; got != 2 {
		t.Fatalf("zero-value queue popped %d, want 2", got)
	}
}

// TestSparseFallback exercises the global-min jump: a lone event many
// calendar years ahead of the cursor must still pop correctly.
func TestSparseFallback(t *testing.T) {
	q := New(0)
	q.Push(Event{Time: 5})
	if q.Pop().Time != 5 {
		t.Fatal("warmup pop")
	}
	q.Push(Event{Time: 1 << 50})
	q.Push(Event{Time: 1<<50 + 1})
	if got := q.Pop().Time; got != 1<<50 {
		t.Fatalf("sparse pop = %d", got)
	}
	if got := q.Peek().Time; got != 1<<50+1 {
		t.Fatalf("sparse peek = %d", got)
	}
	if got := q.Pop().Time; got != 1<<50+1 {
		t.Fatalf("sparse pop 2 = %d", got)
	}
}
