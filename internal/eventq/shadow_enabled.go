//go:build eventq_shadow

package eventq

// buildShadow: this build runs every simulation on the legacy 4-ary
// heap (see shadow_default.go for the normal configuration).
const buildShadow = true
