//go:build !eventq_shadow

package eventq

// buildShadow selects the queue implementation New returns: the
// calendar queue by default, the legacy heap when the binary is built
// with -tags eventq_shadow (whole-engine A/B differential runs).
const buildShadow = false
