package eventq

// Shadow implementation: the pre-calendar 4-ary implicit heap, kept
// compiled (not behind a build tag) so differential tests can replay
// the exact pre-rewrite engine against the calendar queue in a single
// process and assert bit-identical schedules. The eventq_shadow build
// tag flips New to return shadow queues module-wide, for whole-binary
// A/B runs (see buildShadow in shadow_default.go / shadow_enabled.go).

// NewShadow returns a queue backed by the legacy 4-ary implicit heap
// with capacity preallocated for n events. It honors the same
// (Time, seq) contract as the calendar queue; the two produce
// identical pop sequences for identical push sequences.
func NewShadow(n int) *Queue {
	return &Queue{shadow: true, heap: make([]Event, 0, n)}
}

func (q *Queue) pushShadow(e Event) {
	e.seq = q.seq
	q.seq++
	q.heap = append(q.heap, e)
	q.up(len(q.heap) - 1)
}

func (q *Queue) popShadow() Event {
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = Event{} // do not retain popped payloads in the slab
	q.heap = h[:last]
	if last > 0 {
		q.down(0)
	}
	top.seq = 0
	return top
}

func (q *Queue) resetShadow() {
	h := q.heap[:cap(q.heap)]
	for i := range h {
		h[i] = Event{}
	}
	q.heap = q.heap[:0]
	q.seq = 0
}

func (q *Queue) less(i, j int) bool {
	return less(&q.heap[i], &q.heap[j])
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !q.less(best, i) {
			return
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
}
