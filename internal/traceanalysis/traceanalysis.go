// Package traceanalysis extracts the structural metrics of an MPI trace
// that determine its sensitivity to correctable-error detours: the
// collective cadence (the paper's §IV-C explanation for cross-workload
// variance, citing Ferreira et al. [19]), communication volumes, and
// compute imbalance. The derived synchronization interval plugs
// directly into package predict, so the analytic model can be driven by
// real traces rather than workload skeletons.
package traceanalysis

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Report summarizes one trace.
type Report struct {
	Ranks int
	Ops   int

	// ComputeNanosMean is the mean total compute time per rank.
	ComputeNanosMean float64
	// ComputeImbalancePct is (max-min)/mean of per-rank compute time,
	// in percent — the natural slack available to absorb detours.
	ComputeImbalancePct float64

	// CollectivesPerRank is the number of collective operations each
	// rank participates in (identical across ranks in a valid trace).
	CollectivesPerRank int
	// SyncIntervalNanos is the mean compute time between consecutive
	// collectives on rank 0 — the cadence at which local detours
	// serialize into the application's critical path. Zero when the
	// trace has no collectives.
	SyncIntervalNanos int64

	// MessagesPerRank is the mean point-to-point send count per rank.
	MessagesPerRank float64
	// BytesPerRank is the mean point-to-point bytes sent per rank.
	BytesPerRank float64
	// MeanMessageBytes is the mean p2p message size.
	MeanMessageBytes float64
	// MaxMessageBytes is the largest p2p message.
	MaxMessageBytes int64

	// SizeClasses counts messages in power-of-4 size classes starting
	// at 64 B: [<64B, <256B, <1K, <4K, <16K, <64K, <256K, >=256K].
	SizeClasses [8]int
}

// Analyze scans the trace. The trace may contain collectives (typical)
// or be pre-expanded (then collective metrics are zero and the p2p
// metrics include the expanded schedule).
func Analyze(t *trace.Trace) (*Report, error) {
	n := t.NumRanks()
	if n == 0 {
		return nil, trace.ErrEmptyTrace
	}
	r := &Report{Ranks: n}
	minCompute := math.Inf(1)
	maxCompute := math.Inf(-1)
	var totalCompute, totalBytes float64
	var totalMsgs int
	for rank, ops := range t.Ops {
		r.Ops += len(ops)
		var compute int64
		colls := 0
		for _, op := range ops {
			switch {
			case op.Kind == trace.OpCalc:
				compute += op.Dur
			case op.Kind == trace.OpSend || op.Kind == trace.OpIsend:
				totalMsgs++
				totalBytes += float64(op.Size)
				if op.Size > r.MaxMessageBytes {
					r.MaxMessageBytes = op.Size
				}
				r.SizeClasses[sizeClass(op.Size)]++
			case op.Kind.IsCollective():
				colls++
			}
		}
		c := float64(compute)
		totalCompute += c
		if c < minCompute {
			minCompute = c
		}
		if c > maxCompute {
			maxCompute = c
		}
		if rank == 0 {
			r.CollectivesPerRank = colls
			if colls > 0 {
				r.SyncIntervalNanos = compute / int64(colls)
			}
		}
	}
	r.ComputeNanosMean = totalCompute / float64(n)
	if r.ComputeNanosMean > 0 {
		r.ComputeImbalancePct = 100 * (maxCompute - minCompute) / r.ComputeNanosMean
	}
	r.MessagesPerRank = float64(totalMsgs) / float64(n)
	r.BytesPerRank = totalBytes / float64(n)
	if totalMsgs > 0 {
		r.MeanMessageBytes = totalBytes / float64(totalMsgs)
	}
	return r, nil
}

// sizeClass buckets a message size: [<64B, <256B, <1K, <4K, <16K,
// <64K, <256K, >=256K].
func sizeClass(size int64) int {
	bound := int64(64)
	for i := 0; i < 7; i++ {
		if size < bound {
			return i
		}
		bound *= 4
	}
	return 7
}

// SizeClassLabel returns the human-readable label of a size class.
func SizeClassLabel(i int) string {
	labels := [8]string{"<64B", "<256B", "<1KiB", "<4KiB", "<16KiB", "<64KiB", "<256KiB", ">=256KiB"}
	if i < 0 || i >= len(labels) {
		return fmt.Sprintf("class(%d)", i)
	}
	return labels[i]
}

// CollectiveRatePerSecond returns the rank-0 collective rate implied by
// the trace (collectives per second of compute). Zero when the trace
// has no collectives or no compute.
func (r *Report) CollectiveRatePerSecond() float64 {
	if r.SyncIntervalNanos <= 0 {
		return 0
	}
	return 1e9 / float64(r.SyncIntervalNanos)
}
