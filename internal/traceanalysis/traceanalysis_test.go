package traceanalysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/collectives"
	"repro/internal/predict"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestEmptyTrace(t *testing.T) {
	if _, err := Analyze(&trace.Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestBasicCounts(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100), trace.Send(1, 1024, 0), trace.Allreduce(8), trace.Calc(100), trace.Allreduce(8)},
		{trace.Calc(300), trace.Recv(0, 1024, 0), trace.Allreduce(8), trace.Allreduce(8)},
	}}
	r, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ranks != 2 || r.Ops != 9 {
		t.Fatalf("ranks/ops = %d/%d", r.Ranks, r.Ops)
	}
	if r.CollectivesPerRank != 2 {
		t.Fatalf("collectives = %d, want 2", r.CollectivesPerRank)
	}
	// Rank 0: 200ns compute over 2 collectives -> 100ns interval.
	if r.SyncIntervalNanos != 100 {
		t.Fatalf("sync interval = %d, want 100", r.SyncIntervalNanos)
	}
	if r.MessagesPerRank != 0.5 {
		t.Fatalf("messages per rank = %v, want 0.5", r.MessagesPerRank)
	}
	if r.BytesPerRank != 512 {
		t.Fatalf("bytes per rank = %v, want 512", r.BytesPerRank)
	}
	if r.MeanMessageBytes != 1024 || r.MaxMessageBytes != 1024 {
		t.Fatalf("message sizes: mean %v max %d", r.MeanMessageBytes, r.MaxMessageBytes)
	}
}

func TestImbalance(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100)},
		{trace.Calc(300)},
	}}
	r, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// mean 200, spread 200 -> 100%.
	if math.Abs(r.ComputeImbalancePct-100) > 1e-9 {
		t.Fatalf("imbalance = %v%%, want 100%%", r.ComputeImbalancePct)
	}
}

func TestSizeClasses(t *testing.T) {
	cases := map[int64]int{
		0: 0, 63: 0, 64: 1, 255: 1, 256: 2, 1023: 2,
		1024: 3, 4096: 4, 16384: 5, 65536: 6, 262144: 7, 1 << 30: 7,
	}
	for size, want := range cases {
		if got := sizeClass(size); got != want {
			t.Fatalf("sizeClass(%d) = %d, want %d", size, got, want)
		}
	}
	for i := 0; i < 8; i++ {
		if SizeClassLabel(i) == "" {
			t.Fatal("empty label")
		}
	}
	if !strings.Contains(SizeClassLabel(99), "99") {
		t.Fatal("out-of-range label")
	}
}

func TestCollectiveRate(t *testing.T) {
	r := &Report{SyncIntervalNanos: 50_000_000} // 50 ms
	if got := r.CollectiveRatePerSecond(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("rate = %v, want 20/s", got)
	}
	if (&Report{}).CollectiveRatePerSecond() != 0 {
		t.Fatal("no-collective rate not zero")
	}
}

func TestWorkloadCadencesMatchSpecs(t *testing.T) {
	// The analyzer's measured sync interval should match the spec-
	// derived value used by the predictor, within compute jitter.
	for _, name := range []string{"lulesh", "hpcg", "milc", "lammps-crack"} {
		n := tracegen.PreferredRanks(name, 16)
		tr, err := tracegen.Generate(name, n, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(tr)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := tracegen.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(predict.SyncInterval(spec))
		got := float64(r.SyncIntervalNanos)
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("%s: measured sync interval %v, spec-derived %v", name, got, want)
		}
	}
}

func TestSensitivityOrderingFromTraces(t *testing.T) {
	// lammps-crack synchronizes far more often than lammps-snap.
	rate := func(name string) float64 {
		tr, err := tracegen.Generate(name, 16, 60, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(tr)
		if err != nil {
			t.Fatal(err)
		}
		return r.CollectiveRatePerSecond()
	}
	if crack, snap := rate("lammps-crack"), rate("lammps-snap"); crack < 100*snap {
		t.Fatalf("crack rate %v not >> snap rate %v", crack, snap)
	}
}

func TestExpandedTraceAnalyzable(t *testing.T) {
	tr, err := tracegen.Generate("minife", 16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(ex)
	if err != nil {
		t.Fatal(err)
	}
	if r.CollectivesPerRank != 0 {
		t.Fatal("expanded trace still reports collectives")
	}
	// Expansion adds messages.
	raw, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.MessagesPerRank <= raw.MessagesPerRank {
		t.Fatalf("expansion did not add messages: %v vs %v", r.MessagesPerRank, raw.MessagesPerRank)
	}
}
