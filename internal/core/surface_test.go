package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSurfaceShape(t *testing.T) {
	opts := Options{Nodes: 16, Iterations: 20, Reps: 2, Seed: 1}
	mtbces := []int64{200 * nsPerMs, 200 * nsPerS}
	durations := []int64{150, 775 * nsPerUs, 133 * nsPerMs}
	f, hm, err := Surface(opts, "minife", mtbces, durations)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != len(mtbces)*len(durations) {
		t.Fatalf("rows = %d, want %d", len(f.Rows), len(mtbces)*len(durations))
	}
	if len(hm.Values) != len(mtbces) || len(hm.Values[0]) != len(durations) {
		t.Fatalf("heatmap dims %dx%d", len(hm.Values), len(hm.Values[0]))
	}
	// 0.2s x 133ms is the no-progress sentinel.
	if hm.Values[0][2] != -1 {
		t.Fatalf("0.2s x 133ms cell = %v, want -1 sentinel", hm.Values[0][2])
	}
	// 150ns column is negligible everywhere.
	for r := range hm.Values {
		if hm.Values[r][0] > 1 {
			t.Fatalf("150ns column shows %v%%", hm.Values[r][0])
		}
	}
	// Heatmap renders without error and includes the sentinel mark.
	var buf bytes.Buffer
	if err := hm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X") {
		t.Fatalf("no-progress cell not rendered:\n%s", buf.String())
	}
}

func TestSurfaceDefaults(t *testing.T) {
	if got := DefaultSurfaceMTBCEs(); len(got) != 5 {
		t.Fatalf("default mtbce axis: %d points", len(got))
	}
	if got := DefaultSurfaceDurations(); len(got) != 7 || got[0] != 150 {
		t.Fatalf("default duration axis wrong: %v", got)
	}
}

func TestSurfaceUnknownWorkload(t *testing.T) {
	if _, _, err := Surface(Options{Nodes: 8, Iterations: 2, Reps: 1}, "bogus", nil, nil); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	f := &Figure{ID: "fig5", Title: "t", Rows: []Row{
		{Workload: "lulesh", System: "exascale-cielo", Mode: "firmware-emca",
			MTBCENanos: 55440 * nsPerS, PerEventNanos: 133 * nsPerMs,
			Nodes: 128, Reps: 3, MeanPct: 12.5, CI95Pct: 1.25},
		{Workload: "hpcg", Mode: "software-cmci", Saturated: true},
	}}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "\"mtbce_ns\"") {
		t.Fatal("expected snake_case keys")
	}
	back, err := ReadFigureJSON(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, f) {
		t.Fatalf("json round trip mismatch:\n%+v\n%+v", back, f)
	}
}

func TestReadFigureJSONErrors(t *testing.T) {
	if _, err := ReadFigureJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad json accepted")
	}
}
