package core

import (
	"reflect"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/noise"
)

func TestPreparedRoundTrip(t *testing.T) {
	cfg := ExperimentConfig{Workload: "minife", Nodes: 16, Iterations: 3, TraceSeed: 1}
	built, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := NewExperimentFromBaseline(cfg, built.Prepared())
	if err != nil {
		t.Fatal(err)
	}
	if injected.Ranks() != built.Ranks() {
		t.Fatalf("ranks %d != %d", injected.Ranks(), built.Ranks())
	}
	if injected.Baseline().Makespan != built.Baseline().Makespan {
		t.Fatalf("baseline makespan %d != %d",
			injected.Baseline().Makespan, built.Baseline().Makespan)
	}
	if injected.Config() != built.Config() {
		t.Fatalf("config drifted: %+v vs %+v", injected.Config(), built.Config())
	}

	sc := Scenario{MTBCE: 20 * nsPerMs, PerEvent: noise.Fixed(500 * nsPerUs), Target: noise.AllNodes, Seed: 7}
	want, err := built.RunRepeated(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := injected.RunRepeated(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Sample.Values(), got.Sample.Values()) {
		t.Fatalf("injected baseline diverged:\nbuilt    %v\ninjected %v",
			want.Sample.Values(), got.Sample.Values())
	}
}

func TestNewExperimentFromBaselineRejectsBadInput(t *testing.T) {
	cfg := ExperimentConfig{Workload: "minife", Nodes: 16, Iterations: 3, TraceSeed: 1}
	built, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := built.Prepared()
	cases := []struct {
		name string
		cfg  ExperimentConfig
		b    Baseline
	}{
		{"nil trace", cfg, Baseline{Result: b.Result, Ranks: b.Ranks}},
		{"nil result", cfg, Baseline{Expanded: b.Expanded, Ranks: b.Ranks}},
		{"rank mismatch", cfg, Baseline{Expanded: b.Expanded, Result: b.Result, Ranks: b.Ranks + 1}},
		{"bad nodes", ExperimentConfig{Workload: "minife", Nodes: 1, Iterations: 3}, b},
		{"bad iterations", ExperimentConfig{Workload: "minife", Nodes: 16}, b},
	}
	for _, tc := range cases {
		if _, err := NewExperimentFromBaseline(tc.cfg, tc.b); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCanonicalResolvesNetDefault(t *testing.T) {
	zero := ExperimentConfig{Workload: "hpcg", Nodes: 32, Iterations: 2}
	if zero.Canonical().Net != netmodel.CrayXC40() {
		t.Fatal("zero Net not canonicalized to Cray XC40")
	}
	explicit := zero
	explicit.Net = netmodel.CrayXC40()
	if zero.Canonical() != explicit.Canonical() {
		t.Fatal("equivalent configs canonicalize differently")
	}
	custom := zero
	custom.Net = netmodel.Params{L: 1, O: 1, Gap: 1, GPerByte: 0.1, OPerByte: 0.1, S: 1}
	if custom.Canonical().Net != custom.Net {
		t.Fatal("explicit Net overwritten")
	}
}
