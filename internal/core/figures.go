package core

import (
	"fmt"

	"repro/internal/mca"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/systems"
	"repro/internal/tracegen"
)

const (
	nsPerUs = int64(1000)
	nsPerMs = int64(1000 * 1000)
	nsPerS  = int64(1000 * 1000 * 1000)
)

// Scale selects between figure-fidelity and tractable runs.
type Scale int

// Scales.
const (
	// Reduced runs each figure on a small node count with the per-node
	// CE rate scaled up so the *aggregate* CE rate matches the paper's
	// system ("scale compensation"). First-order overheads — the
	// product of aggregate CE rate and per-event cost serialized
	// through collectives — are preserved; collective depth (log2 of
	// the rank count) is the main second-order difference.
	Reduced Scale = iota
	// Paper runs the figure at the paper's simulated node counts
	// (Table II). Expect minutes to hours per figure.
	Paper
)

// Options control the figure drivers.
type Options struct {
	// Scale selects Reduced (default) or Paper fidelity.
	Scale Scale
	// Nodes overrides the reduced-scale node count (default 512).
	// Ignored at Paper scale, where Table II's SimNodes are used.
	// Note that aggressive reduction inflates the per-node CE rate
	// through scale compensation, which pushes the short-detour
	// (software-logging) regime from "absorbed" toward "serialized";
	// keep the reduction factor modest (<= ~32x) when the software
	// rows matter.
	Nodes int
	// Iterations overrides the main-loop iteration count. When zero,
	// each workload runs enough iterations to cover SpanNanos of
	// simulated time (subject to OpsBudget), so short-grained workloads
	// (lammps-crack's 4 ms steps) see as many CE opportunities as
	// long-grained ones.
	Iterations int
	// SpanNanos is the target simulated run length per workload when
	// Iterations is zero (default 1.5 s).
	SpanNanos int64
	// OpsBudget caps the trace size (ranks x ops/rank) when Iterations
	// is zero (default 4M reduced, 64M paper).
	OpsBudget int
	// Reps overrides the repetitions per configuration
	// (default: 3 reduced, 8 paper — the paper averages >= 8).
	Reps int
	// Seed is the base seed for trace generation and CE schedules.
	Seed uint64
	// Workloads restricts the workload set (default: all nine).
	Workloads []string
	// Experiments optionally supplies prepared experiments to the
	// figure drivers — e.g. a simcache-backed provider on cluster
	// workers, so cells sharing a (workload, nodes) point reuse one
	// resident baseline. nil builds with NewExperiment. Baseline
	// construction is deterministic, so any correct provider returns
	// an experiment bit-identical to NewExperiment's and results never
	// depend on who supplied it.
	Experiments func(ExperimentConfig) (*Experiment, error) `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 512
	}
	if o.SpanNanos == 0 {
		o.SpanNanos = 1500 * nsPerMs
	}
	if o.OpsBudget == 0 {
		if o.Scale == Paper {
			o.OpsBudget = 64 << 20
		} else {
			o.OpsBudget = 4 << 20
		}
	}
	if o.Reps == 0 {
		if o.Scale == Paper {
			o.Reps = 8
		} else {
			o.Reps = 3
		}
	}
	if len(o.Workloads) == 0 {
		o.Workloads = tracegen.Names()
	}
	return o
}

// nodesFor returns the node count to simulate for a system whose paper
// simulation used paperNodes, plus the MTBCE compensation factor.
func (o Options) nodesFor(paperNodes int) (nodes int, compensate float64) {
	if o.Scale == Paper {
		return paperNodes, 1
	}
	if o.Nodes >= paperNodes {
		return paperNodes, 1
	}
	return o.Nodes, float64(o.Nodes) / float64(paperNodes)
}

// compensateMTBCE scales a per-node MTBCE so that simNodes nodes carry
// the same aggregate CE rate as the paper's node count.
func compensateMTBCE(mtbceNanos int64, factor float64) int64 {
	out := int64(float64(mtbceNanos) * factor)
	if out < 1 {
		out = 1
	}
	return out
}

// Row is one bar/point of a figure.
type Row struct {
	Workload      string
	System        string // Table II system, when applicable
	Mode          string // logging mode or duration label
	MTBCENanos    int64  // per-node MTBCE actually simulated
	PerEventNanos int64
	Nodes         int
	// Reps is the number of non-saturated repetitions behind MeanPct
	// (the sample size); SaturatedReps counts repetitions excluded
	// because the scenario made no progress.
	Reps          int
	SaturatedReps int
	MeanPct       float64
	CI95Pct       float64
	// Saturated marks a row with no usable sample at all: every
	// repetition saturated ("no-progress" in the rendered tables).
	Saturated bool
}

// Figure is a regenerated table/figure.
type Figure struct {
	ID    string
	Title string
	Rows  []Row
}

// Table renders the figure data as a report table.
func (f *Figure) Table() *report.Table {
	t := report.New(fmt.Sprintf("%s: %s", f.ID, f.Title),
		"workload", "system", "mode", "mtbce", "per-event", "nodes", "reps", "slowdown", "ci95")
	for _, r := range f.Rows {
		slow := report.Pct(r.MeanPct)
		if r.Saturated {
			slow = "no-progress"
		} else if r.SaturatedReps > 0 {
			// Mean over the non-saturated repetitions only.
			slow += fmt.Sprintf(" (%d sat)", r.SaturatedReps)
		}
		t.AddRow(r.Workload, r.System, r.Mode,
			report.Nanos(r.MTBCENanos), report.Nanos(r.PerEventNanos),
			fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Reps),
			slow, report.Pct(r.CI95Pct))
	}
	return t
}

// expCache builds each (workload, nodes) experiment at most once per
// figure.
type expCache struct {
	opts Options
	m    map[string]*Experiment
}

func newExpCache(opts Options) *expCache {
	return &expCache{opts: opts, m: map[string]*Experiment{}}
}

func (c *expCache) get(workload string, nodes int) (*Experiment, error) {
	key := fmt.Sprintf("%s/%d", workload, nodes)
	if e, ok := c.m[key]; ok {
		return e, nil
	}
	iters, err := c.opts.iterationsFor(workload, nodes)
	if err != nil {
		return nil, err
	}
	build := c.opts.Experiments
	if build == nil {
		build = NewExperiment
	}
	e, err := build(ExperimentConfig{
		Workload:   workload,
		Nodes:      nodes,
		Iterations: iters,
		TraceSeed:  c.opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	c.m[key] = e
	return e, nil
}

// iterationsFor picks the iteration count for a workload: the explicit
// override, or enough iterations to span SpanNanos of simulated time,
// capped so the expanded trace stays within OpsBudget operations.
func (o Options) iterationsFor(workload string, nodes int) (int, error) {
	if o.Iterations != 0 {
		return o.Iterations, nil
	}
	spec, err := tracegen.Lookup(workload)
	if err != nil {
		return 0, err
	}
	iters := int(o.SpanNanos / spec.ComputeNs)
	if iters < 4 {
		iters = 4
	}
	// Estimate expanded ops per rank per iteration: halo (4 ops per
	// neighbour) plus ~3*ceil(log2 n) per collective.
	nb := 2 * spec.Dims
	if spec.Stencil == tracegen.Full {
		nb = 1
		for i := 0; i < spec.Dims; i++ {
			nb *= 3
		}
		nb--
	}
	logN := 1
	for v := 1; v < nodes; v *= 2 {
		logN++
	}
	colls := spec.DotsPerIter
	if spec.AllreduceEvery > 0 {
		colls++
	}
	opsPerIter := 4*nb + 4 + colls*3*logN
	maxIters := o.OpsBudget / (nodes * opsPerIter)
	if maxIters < 4 {
		maxIters = 4
	}
	if iters > maxIters {
		iters = maxIters
	}
	return iters, nil
}

// runRow executes one repeated scenario and appends a Row.
func runRow(f *Figure, e *Experiment, opts Options, row Row, sc Scenario) error {
	rep, err := e.RunRepeated(sc, opts.Reps)
	if err != nil {
		return err
	}
	row.Nodes = e.Ranks()
	row.Reps = rep.Sample.N()
	row.SaturatedReps = rep.SaturatedReps
	row.MTBCENanos = sc.MTBCE
	row.MeanPct = rep.Sample.Mean()
	row.CI95Pct = rep.Sample.CI95()
	// A partially saturated point still has a usable mean; only a fully
	// saturated one is rendered as "no-progress".
	row.Saturated = rep.Saturated && rep.Sample.N() == 0
	f.Rows = append(f.Rows, row)
	return nil
}

// Figure2 regenerates the node-level noise signatures (Fig. 2a-d plus
// the "all logging off" case described in prose) and returns the
// signatures plus a summary figure of per-mode detour statistics.
func Figure2(seed uint64) (map[string]*mca.Signature, *report.Table, error) {
	modes := []mca.Mode{mca.Native, mca.DryRun, mca.CorrectionOnly, mca.Software, mca.Firmware}
	sigs := make(map[string]*mca.Signature, len(modes))
	t := report.New("fig2: Blake noise signatures under EINJ CE injection",
		"mode", "detours", "max-detour", "mean-detour", "noise", "per-event", "events")
	for _, m := range modes {
		sig, err := mca.Run(mca.Config{Seed: seed, Mode: m})
		if err != nil {
			return nil, nil, err
		}
		sigs[m.String()] = sig
		st := sig.ComputeStats()
		perEvent, events := sig.PerEventCost()
		t.AddRow(m.String(),
			fmt.Sprintf("%d", st.Count),
			report.Nanos(st.MaxDur),
			report.Nanos(int64(st.MeanDur)),
			fmt.Sprintf("%.4f%%", st.NoisePct),
			report.Nanos(int64(perEvent)),
			fmt.Sprintf("%d", events))
	}
	return sigs, t, nil
}

// Figure3 regenerates the single-process CE sweep: slowdown vs
// MTBCE(node) for the three logging overheads, with CEs confined to
// rank 0 (§IV-B).
func Figure3(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig3", Title: "single-process CEs: slowdown vs MTBCE(node)"}
	// Single-node injection has far fewer CE opportunities per run than
	// the all-node figures; double the repetitions to tame variance.
	opts.Reps *= 2
	mtbces := []int64{
		1 * nsPerMs, 10 * nsPerMs, 100 * nsPerMs, 200 * nsPerMs,
		1 * nsPerS, 10 * nsPerS, 100 * nsPerS, 1000 * nsPerS, 10000 * nsPerS,
	}
	cache := newExpCache(opts)
	for _, wl := range opts.Workloads {
		e, err := cache.get(wl, opts.Nodes)
		if err != nil {
			return nil, err
		}
		for _, mode := range systems.LoggingModes() {
			for i, mtbce := range mtbces {
				sc := Scenario{
					MTBCE:    mtbce,
					PerEvent: noise.Fixed(mode.PerEventNanos),
					Target:   0,
					Seed:     opts.Seed + uint64(i)*1000 + 1,
				}
				row := Row{Workload: wl, Mode: mode.Name, PerEventNanos: mode.PerEventNanos}
				if err := runRow(f, e, opts, row, sc); err != nil {
					return nil, err
				}
			}
		}
	}
	return f, nil
}

// Figure4 regenerates the current-system study: Cielo, Trinity and
// Summit at their Table II CE rates, all nodes affected (§IV-C).
func Figure4(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig4", Title: "correctable error overheads on Cielo, Trinity, Summit"}
	var rows []systems.System
	for _, name := range []string{"cielo", "trinity", "summit"} {
		s, err := systems.ByName(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, s)
	}
	return f, runSystems(f, opts, rows)
}

// Figure5 regenerates the exascale projections: the five hypothetical
// systems of Table II, all nodes affected (§IV-C).
func Figure5(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig5", Title: "correctable error overheads on hypothetical exascale systems"}
	return f, runSystems(f, opts, systems.ExascaleRows())
}

// runSystems shares the Fig. 4/5 loop: systems x logging modes x
// workloads.
func runSystems(f *Figure, opts Options, rows []systems.System) error {
	cache := newExpCache(opts)
	for _, wl := range opts.Workloads {
		for _, sys := range rows {
			nodes, comp := opts.nodesFor(sys.SimNodes)
			e, err := cache.get(wl, nodes)
			if err != nil {
				return err
			}
			mtbce := compensateMTBCE(sys.MTBCENanos(), comp)
			for _, mode := range systems.LoggingModes() {
				sc := Scenario{
					MTBCE:    mtbce,
					PerEvent: noise.Fixed(mode.PerEventNanos),
					Target:   noise.AllNodes,
					Seed:     opts.Seed + 1,
				}
				row := Row{Workload: wl, System: sys.Name, Mode: mode.Name, PerEventNanos: mode.PerEventNanos}
				if err := runRow(f, e, opts, row, sc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Figure6 regenerates the software/OS-reporting stress test: extreme
// MTBCE values (36 s, 3.6 s, ~1 s) on an exascale-size system (§IV-D).
func Figure6(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig6", Title: "software/OS reporting at extreme CE rates"}
	const paperNodes = 16384
	mtbces := []int64{36 * nsPerS, 3600 * nsPerMs, 1008 * nsPerMs}
	cache := newExpCache(opts)
	for _, wl := range opts.Workloads {
		nodes, comp := opts.nodesFor(paperNodes)
		e, err := cache.get(wl, nodes)
		if err != nil {
			return nil, err
		}
		for _, mtbce := range mtbces {
			for _, mode := range systems.LoggingModes() {
				sc := Scenario{
					MTBCE:    compensateMTBCE(mtbce, comp),
					PerEvent: noise.Fixed(mode.PerEventNanos),
					Target:   noise.AllNodes,
					Seed:     opts.Seed + 1,
				}
				row := Row{
					Workload: wl, Mode: mode.Name,
					System:        fmt.Sprintf("exascale@%s", report.Nanos(mtbce)),
					PerEventNanos: mode.PerEventNanos,
				}
				if err := runRow(f, e, opts, row, sc); err != nil {
					return nil, err
				}
			}
		}
	}
	return f, nil
}

// Figure7 regenerates the reporting-duration sweep: per-event overheads
// from 150 ns to 133 ms at MTBCE(node) = 0.2 s and 720 s on an
// exascale-size system (§IV-E). The 0.2 s x 133 ms point saturates
// (the paper omits it: "essentially unable to make any reasonable
// forward progress").
func Figure7(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig7", Title: "per-event reporting duration sweep"}
	const paperNodes = 16384
	mtbces := []int64{200 * nsPerMs, 720 * nsPerS}
	durations := []int64{150, 1 * nsPerUs, 10 * nsPerUs, 100 * nsPerUs, 775 * nsPerUs, 10 * nsPerMs, 133 * nsPerMs}
	cache := newExpCache(opts)
	for _, wl := range opts.Workloads {
		nodes, comp := opts.nodesFor(paperNodes)
		e, err := cache.get(wl, nodes)
		if err != nil {
			return nil, err
		}
		for _, mtbce := range mtbces {
			for _, dur := range durations {
				sc := Scenario{
					MTBCE:    compensateMTBCE(mtbce, comp),
					PerEvent: noise.Fixed(dur),
					Target:   noise.AllNodes,
					Seed:     opts.Seed + 1,
				}
				row := Row{
					Workload: wl,
					System:   fmt.Sprintf("exascale@%s", report.Nanos(mtbce)),
					Mode:     report.Nanos(dur), PerEventNanos: dur,
				}
				if err := runRow(f, e, opts, row, sc); err != nil {
					return nil, err
				}
			}
		}
	}
	return f, nil
}

// Table2 renders the Table II catalog, including the MTBCE derived from
// the CE-per-node-year column next to the stated value.
func Table2() *report.Table {
	t := report.New("table2: measured and hypothesized correctable error parameters",
		"system", "class", "ce/node/yr", "gib/node", "ce/gib/yr", "mtbce-node", "mtbce-derived", "nodes", "sim-nodes")
	classNames := map[systems.Class]string{
		systems.DataCenter: "datacenter", systems.HPC: "hpc", systems.Exascale: "exascale",
	}
	for _, s := range systems.Catalog() {
		t.AddRow(s.Name, classNames[s.Class],
			fmt.Sprintf("%.2f", s.CEPerNodeYear),
			fmt.Sprintf("%.0f", s.GiBPerNode),
			fmt.Sprintf("%.2f", s.CEPerGiBYear),
			fmt.Sprintf("%.1fs", s.MTBCESeconds),
			fmt.Sprintf("%.1fs", s.ComputedMTBCESeconds()),
			fmt.Sprintf("%d", s.Nodes),
			fmt.Sprintf("%d", s.SimNodes))
	}
	return t
}

// Figures maps figure identifiers to their drivers, for cmd/cesweep.
func Figures() map[string]func(Options) (*Figure, error) {
	return map[string]func(Options) (*Figure, error){
		"3": Figure3,
		"4": Figure4,
		"5": Figure5,
		"6": Figure6,
		"7": Figure7,
		"8": Figure8,
		"9": Figure9,
	}
}
