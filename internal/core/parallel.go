package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// RunRepeatedParallel is RunRepeated with repetitions fanned out over
// worker goroutines. Simulations share the experiment's expanded trace
// read-only and build private state, so repetitions are independent;
// results are accumulated in seed order, making the sample identical to
// the sequential version. workers <= 0 selects GOMAXPROCS.
func (e *Experiment) RunRepeatedParallel(sc Scenario, reps, workers int) (*Repeated, error) {
	return e.RunRepeatedParallelContext(context.Background(), sc, reps, workers)
}

// RunRepeatedParallelContext is RunRepeatedParallel honoring a context:
// cancellation or deadline expiry is observed between repetitions and
// surfaces as ctx.Err(). With an unexpired context the result is
// bit-identical to RunRepeated.
func (e *Experiment) RunRepeatedParallelContext(ctx context.Context, sc Scenario, reps, workers int) (*Repeated, error) {
	if reps < 1 {
		return nil, fmt.Errorf("core: reps must be >= 1, got %d", reps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	if workers == 1 {
		return e.runRepeatedSeq(ctx, sc, reps)
	}

	type outcome struct {
		idx     int
		res     *RunResult
		retried int
		err     error
	}
	jobs := make(chan int)
	// results is buffered to reps so workers never block on it: the
	// collector may return early on the first error while the remaining
	// workers finish their in-flight repetitions.
	results := make(chan outcome, reps)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled simulator per worker: repetitions reuse its
			// preallocated event queue and per-rank state. runRep may
			// replace it (and nil it on unrecoverable panic), so the
			// release is guarded.
			sim, simErr := e.acquireSim()
			defer func() {
				if sim != nil {
					e.releaseSim(sim)
				}
			}()
			for i := range jobs {
				if simErr != nil {
					results <- outcome{idx: i, err: simErr}
					continue
				}
				sci := sc
				sci.Seed = sc.Seed + uint64(i)
				res, retried, err := e.runRep(ctx, &sim, sci)
				results <- outcome{idx: i, res: res, retried: retried, err: err}
			}
		}()
	}
	go func() {
		defer func() {
			close(jobs)
			wg.Wait()
			close(results)
		}()
		for i := 0; i < reps; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	collected := make([]outcome, 0, reps)
	for o := range results {
		if o.err != nil {
			return nil, o.err
		}
		collected = append(collected, o)
	}
	// Cancellation between feeding and collection can leave the set
	// short without any worker having observed ctx.Err() yet.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Slice(collected, func(i, j int) bool { return collected[i].idx < collected[j].idx })

	out := &Repeated{}
	for _, o := range collected {
		// Seed-order accumulation with the same saturation semantics as
		// the sequential loop keeps the two paths bit-identical.
		out.RetriedReps += o.retried
		out.add(o.res)
	}
	return out, nil
}
