package core

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts keeps figure tests fast: 16 nodes, 2 iterations, 2 reps,
// and a restricted workload set where the full set isn't needed.
func tinyOpts(workloads ...string) Options {
	return Options{Nodes: 16, Iterations: 2, Reps: 2, Seed: 1, Workloads: workloads}
}

func findRows(f *Figure, match func(Row) bool) []Row {
	var out []Row
	for _, r := range f.Rows {
		if match(r) {
			out = append(out, r)
		}
	}
	return out
}

func TestFigure2Signatures(t *testing.T) {
	sigs, table, err := Figure2(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"native", "dryrun", "correction-only", "software", "firmware"} {
		if sigs[mode] == nil {
			t.Fatalf("missing signature for %s", mode)
		}
	}
	var buf bytes.Buffer
	if err := table.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "firmware") {
		t.Fatal("fig2 table missing firmware row")
	}
	// Shape: firmware max detour >> software max detour >> native.
	fw := sigs["firmware"].ComputeStats().MaxDur
	sw := sigs["software"].ComputeStats().MaxDur
	nat := sigs["native"].ComputeStats().MaxDur
	if !(fw > 10*sw && sw > 10*nat) {
		t.Fatalf("detour ordering wrong: firmware=%d software=%d native=%d", fw, sw, nat)
	}
}

func TestFigure3Shape(t *testing.T) {
	f, err := Figure3(tinyOpts("minife"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Hardware-only rows: negligible at every rate (paper: < 1%).
	for _, r := range findRows(f, func(r Row) bool { return r.Mode == "hardware-only" }) {
		if r.Saturated || r.MeanPct > 1 {
			t.Fatalf("hardware-only at mtbce=%d: %v%%, want < 1%%", r.MTBCENanos, r.MeanPct)
		}
	}
	// Firmware at 200 ms MTBCE: the paper reports hundreds of percent.
	rows := findRows(f, func(r Row) bool {
		return r.Mode == "firmware-emca" && r.MTBCENanos == 200*nsPerMs
	})
	if len(rows) != 1 {
		t.Fatalf("firmware@200ms rows = %d", len(rows))
	}
	if !rows[0].Saturated && rows[0].MeanPct < 50 {
		t.Fatalf("firmware@200ms slowdown %v%%, want large", rows[0].MeanPct)
	}
	// Firmware at 1 ms MTBCE saturates (133 ms handling per 1 ms gap).
	sat := findRows(f, func(r Row) bool {
		return r.Mode == "firmware-emca" && r.MTBCENanos == 1*nsPerMs
	})
	if len(sat) != 1 || !sat[0].Saturated {
		t.Fatal("firmware@1ms not reported as no-progress")
	}
	// Slowdown is non-increasing in MTBCE for firmware (allow small
	// statistical wiggle at the negligible end).
	fw := findRows(f, func(r Row) bool { return r.Mode == "firmware-emca" && !r.Saturated })
	for i := 1; i < len(fw); i++ {
		if fw[i].MTBCENanos > fw[i-1].MTBCENanos && fw[i].MeanPct > fw[i-1].MeanPct+5 {
			t.Fatalf("firmware slowdown increased with rarer CEs: %+v -> %+v", fw[i-1], fw[i])
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	f, err := Figure4(tinyOpts("minife", "lammps-lj"))
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 3 systems x 3 modes.
	if len(f.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(f.Rows))
	}
	// Paper: all current-system overheads are far below 10%.
	for _, r := range f.Rows {
		if r.Saturated {
			t.Fatalf("current system saturated: %+v", r)
		}
		if r.MeanPct > 10 {
			t.Fatalf("current system slowdown %v%% > 10%%: %+v", r.MeanPct, r)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	// lammps-crack has a 4 ms grain, so it needs enough iterations for
	// the run to be long enough to catch CEs at the x100 rate.
	f, err := Figure5(Options{Nodes: 16, Iterations: 50, Reps: 3, Seed: 1,
		Workloads: []string{"lammps-crack", "lammps-lj"}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 5 systems x 3 modes.
	if len(f.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(f.Rows))
	}
	// Hardware-only negligible everywhere.
	for _, r := range findRows(f, func(r Row) bool { return r.Mode == "hardware-only" }) {
		if r.MeanPct > 1 {
			t.Fatalf("hardware-only %v%% on %s", r.MeanPct, r.System)
		}
	}
	// Firmware on the x100 system must hurt the collective-heavy crack
	// workload much more than on the x1 system.
	crackX1 := findRows(f, func(r Row) bool {
		return r.Workload == "lammps-crack" && r.System == "exascale-cielo" && r.Mode == "firmware-emca"
	})
	crackX100 := findRows(f, func(r Row) bool {
		return r.Workload == "lammps-crack" && r.System == "exascale-cielo-x100" && r.Mode == "firmware-emca"
	})
	if len(crackX1) != 1 || len(crackX100) != 1 {
		t.Fatal("missing crack firmware rows")
	}
	if crackX100[0].MeanPct <= crackX1[0].MeanPct {
		t.Fatalf("x100 (%v%%) not worse than x1 (%v%%)", crackX100[0].MeanPct, crackX1[0].MeanPct)
	}
}

func TestFigure6Shape(t *testing.T) {
	f, err := Figure6(tinyOpts("minife"))
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload x 3 MTBCEs x 3 modes.
	if len(f.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(f.Rows))
	}
	// The absolute "< 10%" claim only holds at realistic node counts
	// (verified by the benchmark harness at 512+ nodes); at this tiny
	// test scale we assert the robust ordering instead:
	// hardware <= software <= firmware at every MTBCE, and firmware is
	// large at ~1 CE/s/node.
	bySystem := map[string]map[string]Row{}
	for _, r := range f.Rows {
		if bySystem[r.System] == nil {
			bySystem[r.System] = map[string]Row{}
		}
		bySystem[r.System][r.Mode] = r
	}
	for sys, modes := range bySystem {
		hw, sw, fw := modes["hardware-only"], modes["software-cmci"], modes["firmware-emca"]
		fwPct := fw.MeanPct
		if fw.Saturated {
			fwPct = 1e9
		}
		if hw.MeanPct > sw.MeanPct+1 || sw.MeanPct > fwPct+1 {
			t.Fatalf("%s: ordering violated: hw=%v sw=%v fw=%v", sys, hw.MeanPct, sw.MeanPct, fwPct)
		}
		if hw.MeanPct > 1 {
			t.Fatalf("%s: hardware-only %v%% > 1%%", sys, hw.MeanPct)
		}
	}
	oneSec := findRows(f, func(r Row) bool {
		return r.Mode == "firmware-emca" && strings.Contains(r.System, "1.008s")
	})
	if len(oneSec) != 1 {
		t.Fatalf("missing firmware@1.008s row")
	}
	if !oneSec[0].Saturated && oneSec[0].MeanPct < 20 {
		t.Fatalf("firmware at ~1 CE/s/node only %v%%, want large", oneSec[0].MeanPct)
	}
}

func TestFigure7Shape(t *testing.T) {
	f, err := Figure7(tinyOpts("minife"))
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload x 2 MTBCEs x 7 durations.
	if len(f.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(f.Rows))
	}
	// The 0.2s x 133ms point is the paper's omitted no-progress case.
	sat := findRows(f, func(r Row) bool {
		return r.PerEventNanos == 133*nsPerMs && strings.Contains(r.System, "200ms")
	})
	if len(sat) != 1 || !sat[0].Saturated {
		t.Fatalf("0.2s x 133ms not saturated: %+v", sat)
	}
	// At 720s MTBCE, longer per-event durations never help.
	rows := findRows(f, func(r Row) bool { return strings.Contains(r.System, "720s") && !r.Saturated })
	for i := 1; i < len(rows); i++ {
		if rows[i].PerEventNanos > rows[i-1].PerEventNanos && rows[i].MeanPct < rows[i-1].MeanPct-5 {
			t.Fatalf("longer duration decreased slowdown: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestTable2Render(t *testing.T) {
	tbl := Table2()
	var buf bytes.Buffer
	if err := tbl.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cielo", "trinity", "summit", "exascale-facebook-median", "1200000.0s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresRegistry(t *testing.T) {
	reg := Figures()
	for _, id := range []string{"3", "4", "5", "6", "7"} {
		if reg[id] == nil {
			t.Fatalf("figure %s missing from registry", id)
		}
	}
}

func TestFigureTableRendering(t *testing.T) {
	f := &Figure{ID: "figX", Title: "t", Rows: []Row{
		{Workload: "w", System: "s", Mode: "m", MTBCENanos: nsPerS, PerEventNanos: 150, Nodes: 4, Reps: 2, MeanPct: 1.5},
		{Workload: "w2", Mode: "m", Saturated: true},
	}}
	var buf bytes.Buffer
	if err := f.Table().WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "no-progress") {
		t.Fatal("saturated row not rendered as no-progress")
	}
	if !strings.Contains(out, "1.50%") {
		t.Fatalf("slowdown not rendered:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Nodes != 512 || o.Reps != 3 || len(o.Workloads) != 9 {
		t.Fatalf("reduced defaults wrong: %+v", o)
	}
	if o.SpanNanos != 1500*nsPerMs || o.OpsBudget != 4<<20 {
		t.Fatalf("span defaults wrong: %+v", o)
	}
	p := Options{Scale: Paper}.withDefaults()
	if p.Reps != 8 || p.OpsBudget != 64<<20 {
		t.Fatalf("paper defaults wrong: %+v", p)
	}
	// Span normalization: lammps-crack (4 ms grain) gets many more
	// iterations than lammps-snap (240 ms grain).
	crackIters, err := o.iterationsFor("lammps-crack", 128)
	if err != nil {
		t.Fatal(err)
	}
	snapIters, err := o.iterationsFor("lammps-snap", 128)
	if err != nil {
		t.Fatal(err)
	}
	if crackIters <= 10*snapIters {
		t.Fatalf("span normalization inactive: crack=%d snap=%d", crackIters, snapIters)
	}
	// Explicit override wins.
	fixed := Options{Iterations: 7}.withDefaults()
	if it, _ := fixed.iterationsFor("lulesh", 64); it != 7 {
		t.Fatalf("explicit iterations ignored: %d", it)
	}
	// Budget caps the iteration count.
	tight := Options{OpsBudget: 100000}.withDefaults()
	loose := Options{OpsBudget: 100 << 20}.withDefaults()
	tightIt, _ := tight.iterationsFor("lammps-crack", 512)
	looseIt, _ := loose.iterationsFor("lammps-crack", 512)
	if tightIt >= looseIt {
		t.Fatalf("ops budget has no effect: %d vs %d", tightIt, looseIt)
	}
}

func TestNodesForCompensation(t *testing.T) {
	o := Options{Nodes: 128}.withDefaults()
	nodes, comp := o.nodesFor(16384)
	if nodes != 128 || comp != 128.0/16384.0 {
		t.Fatalf("nodesFor(16384) = %d, %v", nodes, comp)
	}
	// Paper scale never compensates.
	p := Options{Scale: Paper}.withDefaults()
	nodes, comp = p.nodesFor(16384)
	if nodes != 16384 || comp != 1 {
		t.Fatalf("paper nodesFor = %d, %v", nodes, comp)
	}
	// Target above paper nodes clamps to paper nodes.
	big := Options{Nodes: 99999}.withDefaults()
	nodes, comp = big.nodesFor(4096)
	if nodes != 4096 || comp != 1 {
		t.Fatalf("clamped nodesFor = %d, %v", nodes, comp)
	}
}

func TestCompensateMTBCE(t *testing.T) {
	if got := compensateMTBCE(1000, 0.5); got != 500 {
		t.Fatalf("compensate = %d, want 500", got)
	}
	if got := compensateMTBCE(10, 0.0001); got != 1 {
		t.Fatalf("compensate floor = %d, want 1", got)
	}
	if got := compensateMTBCE(1000, 1); got != 1000 {
		t.Fatalf("identity compensate = %d", got)
	}
}
