// Package core is the public face of the library: it wires workload
// generation, collective expansion, LogGOPS simulation and
// correctable-error injection into the paper's experiment pipeline, and
// provides one driver per evaluation table/figure (see figures.go).
//
// The basic unit is the Experiment: a workload trace at a given scale,
// expanded and simulated once without noise (the baseline), against
// which any number of CE-injection scenarios are evaluated. Slowdown is
// the paper's metric: (perturbed - baseline) / baseline * 100.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/collectives"
	"repro/internal/faultinject"
	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// ExperimentConfig describes a workload at a scale.
type ExperimentConfig struct {
	// Workload is a tracegen workload name.
	Workload string
	// Nodes is the target node count (one rank per node, as in the
	// paper). Workload decomposition constraints may reduce it; see
	// tracegen.PreferredRanks.
	Nodes int
	// Iterations is the number of main-loop iterations to generate.
	Iterations int
	// TraceSeed drives workload generation (compute jitter).
	TraceSeed uint64
	// Net is the LogGOPS parameter set; zero value means Cray XC40.
	Net netmodel.Params
	// Collectives selects expansion algorithms.
	Collectives collectives.Config
	// Engine selects legacy engine code paths. The zero value (the
	// current engine) is what every production caller uses; the legacy
	// paths exist so differential tests can prove the engine rework
	// changed no result (see TestEngineBitIdentical).
	Engine EngineCompat
}

// EngineCompat flips individual engine hot-path optimizations back to
// their pre-rework implementations. Results are bit-identical under
// every combination; that equivalence is the contract the differential
// harness enforces.
type EngineCompat struct {
	// ShadowQueue simulates on the legacy heap event queue instead of
	// the calendar queue.
	ShadowQueue bool
	// DirectExpansion bypasses the collective schedule memoization
	// cache and re-runs every expansion algorithm in place.
	DirectExpansion bool
	// UnbatchedNoise draws CE arrival gaps one at a time instead of
	// prefetching them in batches.
	UnbatchedNoise bool
}

// Legacy reports whether any legacy path is selected.
func (e EngineCompat) Legacy() bool {
	return e.ShadowQueue || e.DirectExpansion || e.UnbatchedNoise
}

// Experiment is a prepared workload with its noise-free baseline.
type Experiment struct {
	cfg      ExperimentConfig
	expanded *trace.Trace
	baseline *loggopsim.Result
	ranks    int

	// sims pools reusable perturbed-run simulators (Profile enabled),
	// so repeated runs — sequential repetition loops, parallel workers,
	// and successive daemon jobs hitting the same cached Experiment —
	// stop paying per-repetition state construction. See
	// loggopsim.Simulator.
	sims sync.Pool
}

// NewExperiment generates the trace, expands collectives and simulates
// the noise-free baseline.
func NewExperiment(cfg ExperimentConfig) (*Experiment, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("core: need at least 1 iteration, got %d", cfg.Iterations)
	}
	cfg = cfg.Canonical()
	ranks := tracegen.PreferredRanks(cfg.Workload, cfg.Nodes)
	tr, err := tracegen.Generate(cfg.Workload, ranks, cfg.Iterations, cfg.TraceSeed)
	if err != nil {
		return nil, err
	}
	ccfg := cfg.Collectives
	ccfg.DisableMemo = ccfg.DisableMemo || cfg.Engine.DirectExpansion
	ex, err := collectives.Expand(tr, ccfg)
	if err != nil {
		return nil, err
	}
	base, err := loggopsim.Simulate(ex, loggopsim.Config{Net: cfg.Net, ShadowQueue: cfg.Engine.ShadowQueue})
	if err != nil {
		return nil, fmt.Errorf("core: baseline simulation: %w", err)
	}
	return &Experiment{cfg: cfg, expanded: ex, baseline: base, ranks: ranks}, nil
}

// Ranks returns the actual rank count after decomposition adjustment.
func (e *Experiment) Ranks() int { return e.ranks }

// Baseline returns the noise-free simulation result.
func (e *Experiment) Baseline() *loggopsim.Result { return e.baseline }

// Config returns the experiment configuration.
func (e *Experiment) Config() ExperimentConfig { return e.cfg }

// Scenario describes one CE-injection configuration.
type Scenario struct {
	// MTBCE is the per-node mean time between CEs, in nanoseconds.
	// Ignored when Arrivals is set.
	MTBCE int64
	// Arrivals overrides the Poisson arrival process (e.g. a bursty
	// process for the paper's conclusion (iii) scenarios).
	Arrivals noise.Arrivals
	// PerEvent is the per-CE handling time model.
	PerEvent noise.Duration
	// Target is the node experiencing CEs, or noise.AllNodes.
	Target int32
	// Seed drives the CE arrival randomness.
	Seed uint64
}

// RunResult is the outcome of one perturbed simulation.
type RunResult struct {
	// SlowdownPct is (perturbed-baseline)/baseline*100.
	SlowdownPct float64
	// Perturbed is the noisy simulation result.
	Perturbed *loggopsim.Result
	// CEEvents is the number of detours charged.
	CEEvents uint64
	// CEStolenNanos is the total CPU time consumed by CE handling.
	CEStolenNanos int64
	// Saturated reports that the CE load prevented forward progress
	// (analytically, when load >= 1, or detected during simulation).
	Saturated bool
	// Profile decomposes the perturbed run's time into requested work,
	// injected detours and blocked waiting (see loggopsim.Profile).
	Profile *loggopsim.Profile
}

// saturationLoad is the CE handling load (mean handling time / MTBCE)
// at and above which a node cannot make forward progress; such
// scenarios are reported as saturated without simulating.
const saturationLoad = 1.0

// acquireSim returns a pooled perturbed-run simulator for the
// experiment's expanded trace, building one on first use. Callers must
// return it with releaseSim; a simulator serves one goroutine at a
// time.
func (e *Experiment) acquireSim() (*loggopsim.Simulator, error) {
	if s, ok := e.sims.Get().(*loggopsim.Simulator); ok {
		return s, nil
	}
	return loggopsim.NewSimulator(e.expanded, loggopsim.Config{
		Net: e.cfg.Net, Profile: true, ShadowQueue: e.cfg.Engine.ShadowQueue,
	})
}

func (e *Experiment) releaseSim(s *loggopsim.Simulator) { e.sims.Put(s) }

// Run simulates the experiment under one CE scenario.
func (e *Experiment) Run(sc Scenario) (*RunResult, error) {
	sim, err := e.acquireSim()
	if err != nil {
		return nil, err
	}
	defer e.releaseSim(sim)
	return e.runOn(sim, sc)
}

// runOn evaluates one scenario on a prepared simulator. The repeated-
// run loops share one simulator across repetitions so only the noise
// model is rebuilt per seed.
func (e *Experiment) runOn(sim *loggopsim.Simulator, sc Scenario) (*RunResult, error) {
	ncfg := noise.Config{
		Seed:             sc.Seed,
		MTBCE:            sc.MTBCE,
		Arrivals:         sc.Arrivals,
		Duration:         sc.PerEvent,
		Target:           sc.Target,
		SaturationFactor: 1000,
		DisableBatch:     e.cfg.Engine.UnbatchedNoise,
	}
	if err := ncfg.Validate(); err != nil {
		return nil, err
	}
	if ncfg.LoadFactor() >= saturationLoad {
		// The renewal race diverges: the application makes no
		// meaningful progress (the paper's Fig. 7 omits such points).
		return &RunResult{Saturated: true, SlowdownPct: 0}, nil
	}
	nm, err := noise.NewCE(e.ranks, ncfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(nm)
	if err != nil {
		return nil, fmt.Errorf("core: perturbed simulation: %w", err)
	}
	return &RunResult{
		SlowdownPct:   stats.Slowdown(res.Makespan, e.baseline.Makespan),
		Perturbed:     res,
		CEEvents:      nm.Events(),
		CEStolenNanos: nm.Stolen(),
		Saturated:     nm.Saturated(),
		Profile:       res.Profile,
	}, nil
}

// RepetitionError is the typed failure of one simulation repetition:
// either a recovered panic (PanicValue and Stack set) or an injected
// fault (Err set). The seed identifies which repetition failed.
type RepetitionError struct {
	// Seed is the CE seed of the failed repetition.
	Seed uint64
	// PanicValue is non-nil when the repetition panicked.
	PanicValue any
	// Stack is the goroutine stack captured at panic recovery.
	Stack string
	// Err is the underlying error for non-panic failures.
	Err error
}

func (e *RepetitionError) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("core: repetition (seed %d) panicked: %v", e.Seed, e.PanicValue)
	}
	return fmt.Sprintf("core: repetition (seed %d): %v", e.Seed, e.Err)
}

func (e *RepetitionError) Unwrap() error { return e.Err }

// Retryable marks the repetition eligible for a bounded same-seed
// re-run — unless the underlying cause is cancellation, which must
// stop the run, not restart it.
func (e *RepetitionError) Retryable() bool {
	return !errors.Is(e.Err, context.Canceled) && !errors.Is(e.Err, context.DeadlineExceeded)
}

// retryableErr reports whether any error in the chain declares itself
// retryable via a Retryable() bool method.
func retryableErr(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// repAttempts bounds how many times one repetition is attempted. A
// retried repetition re-runs with the same CE seed, so a successful
// retry is bit-identical to a never-faulted run; the sample cannot
// drift no matter how often faults fire.
const repAttempts = 4

// runRepOnce attempts one repetition, firing the core.repetition fault
// site and converting a panic into a *RepetitionError with the stack
// captured. panicked tells the caller the pooled simulator may hold
// mid-run state and must not be reused.
func (e *Experiment) runRepOnce(ctx context.Context, sim *loggopsim.Simulator, sc Scenario) (res *RunResult, panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, panicked = nil, true
			err = &RepetitionError{Seed: sc.Seed, PanicValue: r, Stack: string(debug.Stack())}
		}
	}()
	if ferr := faultinject.Fire(ctx, faultinject.SiteRepetition); ferr != nil {
		return nil, false, &RepetitionError{Seed: sc.Seed, Err: ferr}
	}
	res, err = e.runOn(sim, sc)
	return res, false, err
}

// runRep executes one repetition with panic recovery and bounded
// same-seed retry. A panicking attempt discards the simulator (its
// event queue and per-rank state may be mid-run) and replaces it with
// a fresh one through *sim. retried reports the extra attempts spent.
func (e *Experiment) runRep(ctx context.Context, sim **loggopsim.Simulator, sc Scenario) (res *RunResult, retried int, err error) {
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, retried, cerr
		}
		var panicked bool
		res, panicked, err = e.runRepOnce(ctx, *sim, sc)
		if err == nil {
			return res, retried, nil
		}
		if panicked {
			*sim = nil
			ns, aerr := e.acquireSim()
			if aerr != nil {
				return nil, retried, aerr
			}
			*sim = ns
		}
		if !retryableErr(err) || attempt+1 >= repAttempts {
			return nil, retried, err
		}
		retried++
	}
}

// Repeated is the aggregate of several repetitions of one scenario
// with different CE seeds (the paper averages >= 8 runs per
// configuration). Saturated repetitions — whether detected
// analytically before simulating or by the saturation guard during a
// run — contribute no slowdown to Sample: their makespans measure the
// guard's cutoff, not application progress. SaturatedReps records how
// many repetitions were excluded that way, so Sample.N() +
// SaturatedReps == Reps always holds and a partial sample is
// distinguishable from a short run.
type Repeated struct {
	// Sample holds the slowdowns of the non-saturated repetitions.
	Sample stats.Sample
	// Saturated reports that at least one repetition saturated. When
	// every repetition did (Sample.N() == 0), the scenario made no
	// measurable progress at all.
	Saturated bool
	// SaturatedReps counts the repetitions excluded from Sample.
	SaturatedReps int
	// Reps is the number of repetitions executed.
	Reps int
	// RetriedReps counts extra attempts spent re-running repetitions
	// that panicked or failed retryably (fault injection, transient
	// errors). Retries re-use the repetition's seed, so they never
	// change Sample — Sample.N() + SaturatedReps == Reps regardless.
	RetriedReps int
}

// add folds one repetition into the aggregate.
func (r *Repeated) add(res *RunResult) {
	r.Reps++
	if res.Saturated {
		r.Saturated = true
		r.SaturatedReps++
		return
	}
	r.Sample.Add(res.SlowdownPct)
}

// RunRepeated runs the scenario reps times with seeds sc.Seed,
// sc.Seed+1, ... and collects the slowdown sample. See Repeated for
// the saturation semantics.
func (e *Experiment) RunRepeated(sc Scenario, reps int) (*Repeated, error) {
	return e.runRepeatedSeq(context.Background(), sc, reps)
}

// runRepeatedSeq is the sequential repetition loop, checking ctx
// between repetitions so long scenario batches can be canceled. One
// pooled simulator serves every repetition (replaced if an attempt
// panics mid-run).
func (e *Experiment) runRepeatedSeq(ctx context.Context, sc Scenario, reps int) (*Repeated, error) {
	if reps < 1 {
		return nil, fmt.Errorf("core: reps must be >= 1, got %d", reps)
	}
	sim, err := e.acquireSim()
	if err != nil {
		return nil, err
	}
	defer func() {
		if sim != nil {
			e.releaseSim(sim)
		}
	}()
	out := &Repeated{}
	for i := 0; i < reps; i++ {
		sci := sc
		sci.Seed = sc.Seed + uint64(i)
		res, retried, err := e.runRep(ctx, &sim, sci)
		if err != nil {
			return nil, err
		}
		out.RetriedReps += retried
		out.add(res)
	}
	return out, nil
}
