package core

import (
	"fmt"

	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

// Baseline bundles the expensive preparation products of an Experiment:
// the collective-expanded trace and its noise-free simulation, plus the
// rank count after decomposition adjustment. It is the unit memoized by
// internal/simcache, so the many CE scenarios sharing one (workload,
// nodes, iterations) point pay trace expansion and the baseline
// simulation once instead of per request.
type Baseline struct {
	// Expanded is the collective-expanded trace. Simulations read it
	// without mutating, so one Baseline may back many Experiments.
	Expanded *trace.Trace
	// Result is the noise-free simulation of Expanded.
	Result *loggopsim.Result
	// Ranks is the actual rank count after decomposition adjustment.
	Ranks int
}

// Prepared exposes the experiment's baseline for caching or transfer.
func (e *Experiment) Prepared() Baseline {
	return Baseline{Expanded: e.expanded, Result: e.baseline, Ranks: e.ranks}
}

// NewExperimentFromBaseline builds an Experiment around a pre-built
// baseline, skipping trace generation, collective expansion and the
// baseline simulation. cfg must be the configuration the baseline was
// prepared from (callers such as internal/simcache key baselines by
// cfg.Canonical(), which guarantees this).
func NewExperimentFromBaseline(cfg ExperimentConfig, b Baseline) (*Experiment, error) {
	cfg = cfg.Canonical()
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("core: need at least 1 iteration, got %d", cfg.Iterations)
	}
	if b.Expanded == nil || b.Result == nil {
		return nil, fmt.Errorf("core: baseline is missing its trace or result")
	}
	if b.Ranks != b.Expanded.NumRanks() {
		return nil, fmt.Errorf("core: baseline rank count %d does not match its %d-rank trace",
			b.Ranks, b.Expanded.NumRanks())
	}
	return &Experiment{cfg: cfg, expanded: b.Expanded, baseline: b.Result, ranks: b.Ranks}, nil
}

// Canonical returns the configuration with defaults resolved the same
// way NewExperiment resolves them (a zero Net means Cray XC40), so two
// configs that behave identically compare and hash identically.
func (c ExperimentConfig) Canonical() ExperimentConfig {
	if c.Net == (netmodel.Params{}) {
		c.Net = netmodel.CrayXC40()
	}
	return c
}
