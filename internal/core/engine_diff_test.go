package core

// Differential harness for the engine hot-path rework. Every
// optimization introduced by the rework — the calendar event queue, the
// memoized collective expansion schedules, the batched noise-arrival
// draws — keeps a toggle back to its legacy implementation
// (EngineCompat; the heap queue additionally survives module-wide
// behind the eventq_shadow build tag). TestEngineBitIdentical replays
// the full figure matrix through the new engine and through the legacy
// paths and requires byte-identical rendered reports: the rework is a
// pure performance change, with no observable effect on any result.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/noise"
)

// engineVariants are the legacy-path combinations checked against the
// all-new default. The composite variant catches cross-optimization
// interactions; the singles localize a divergence to one subsystem.
var engineVariants = []struct {
	name   string
	engine EngineCompat
}{
	{"legacy-all", EngineCompat{ShadowQueue: true, DirectExpansion: true, UnbatchedNoise: true}},
	{"legacy-queue", EngineCompat{ShadowQueue: true}},
	{"legacy-expansion", EngineCompat{DirectExpansion: true}},
	{"legacy-noise", EngineCompat{UnbatchedNoise: true}},
}

// renderFigure runs one figure driver with the given engine selection
// and returns the rendered report bytes.
func renderFigure(t *testing.T, driver func(Options) (*Figure, error), opts Options, engine EngineCompat) []byte {
	t.Helper()
	opts.Experiments = func(cfg ExperimentConfig) (*Experiment, error) {
		cfg.Engine = engine
		return NewExperiment(cfg)
	}
	f, err := driver(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) == 0 {
		t.Fatal("figure produced no rows")
	}
	var buf bytes.Buffer
	if err := f.Table().WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEngineBitIdentical(t *testing.T) {
	figures := []struct {
		name   string
		driver func(Options) (*Figure, error)
		opts   Options
	}{
		// Two workloads cover both trace shapes: minife's
		// allreduce/waitall-heavy iterations and lammps-crack's
		// fine-grained p2p exchange. Node counts off and on powers of
		// two exercise both collective-algorithm branches.
		{"fig3", Figure3, tinyOpts("minife")},
		{"fig4", Figure4, tinyOpts("lammps-crack")},
		{"fig5", Figure5, tinyOpts("minife")},
		{"fig6", Figure6, tinyOpts("lammps-crack")},
		{"fig7", Figure7, tinyOpts("minife")},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			want := renderFigure(t, fig.driver, fig.opts, EngineCompat{})
			for _, v := range engineVariants {
				got := renderFigure(t, fig.driver, fig.opts, v.engine)
				if !bytes.Equal(got, want) {
					t.Errorf("%s: report under %s diverges from the new engine\n--- new ---\n%s\n--- %s ---\n%s",
						fig.name, v.name, want, v.name, got)
				}
			}
		})
	}
}

// TestEngineBitIdenticalResults compares raw run results — makespan,
// per-rank finish times, message and byte counters, full profile —
// rather than rendered tables, so a divergence that happens to render
// identically (rounding) still fails. One representative scenario per
// engine variant, at a non-power-of-two rank count.
func TestEngineBitIdenticalResults(t *testing.T) {
	base := ExperimentConfig{Workload: "lulesh", Nodes: 27, Iterations: 3, TraceSeed: 7}
	sc := Scenario{MTBCE: 5_000_000, PerEvent: noise.Fixed(25_000), Target: 0, Seed: 42}

	newEng, err := NewExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newEng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want.CEEvents == 0 {
		t.Fatal("scenario injected no CEs; the comparison would be vacuous")
	}
	for _, v := range engineVariants {
		cfg := base
		cfg.Engine = v.engine
		leg, err := NewExperiment(cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if leg.Baseline().Makespan != newEng.Baseline().Makespan {
			t.Errorf("%s: baseline makespan %d != %d", v.name, leg.Baseline().Makespan, newEng.Baseline().Makespan)
		}
		got, err := leg.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if err := sameRunResult(got, want); err != nil {
			t.Errorf("%s: %v", v.name, err)
		}
	}
}

func sameRunResult(got, want *RunResult) error {
	g, w := got.Perturbed, want.Perturbed
	if g.Makespan != w.Makespan {
		return fmt.Errorf("makespan %d != %d", g.Makespan, w.Makespan)
	}
	if g.Messages != w.Messages || g.BytesMoved != w.BytesMoved {
		return fmt.Errorf("traffic (%d msgs, %d B) != (%d msgs, %d B)",
			g.Messages, g.BytesMoved, w.Messages, w.BytesMoved)
	}
	for r := range w.FinishTimes {
		if g.FinishTimes[r] != w.FinishTimes[r] {
			return fmt.Errorf("rank %d finish %d != %d", r, g.FinishTimes[r], w.FinishTimes[r])
		}
	}
	if got.CEEvents != want.CEEvents || got.CEStolenNanos != want.CEStolenNanos {
		return fmt.Errorf("CE accounting (%d events, %d ns) != (%d events, %d ns)",
			got.CEEvents, got.CEStolenNanos, want.CEEvents, want.CEStolenNanos)
	}
	if got.SlowdownPct != want.SlowdownPct {
		return fmt.Errorf("slowdown %v != %v", got.SlowdownPct, want.SlowdownPct)
	}
	gp, wp := got.Profile, want.Profile
	if gp.Work != wp.Work || gp.Detour != wp.Detour || gp.Wait != wp.Wait {
		return fmt.Errorf("profile (%d, %d, %d) != (%d, %d, %d)",
			gp.Work, gp.Detour, gp.Wait, wp.Work, wp.Detour, wp.Wait)
	}
	return nil
}
