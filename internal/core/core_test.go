package core

import (
	"testing"

	"repro/internal/noise"
)

func smallExp(t *testing.T, workload string) *Experiment {
	t.Helper()
	e, err := NewExperiment(ExperimentConfig{
		Workload: workload, Nodes: 16, Iterations: 3, TraceSeed: 1,
	})
	if err != nil {
		t.Fatalf("experiment: %v", err)
	}
	return e
}

func TestNewExperimentBadArgs(t *testing.T) {
	if _, err := NewExperiment(ExperimentConfig{Workload: "hpcg", Nodes: 1, Iterations: 1}); err == nil {
		t.Fatal("1 node accepted")
	}
	if _, err := NewExperiment(ExperimentConfig{Workload: "hpcg", Nodes: 8, Iterations: 0}); err == nil {
		t.Fatal("0 iterations accepted")
	}
	if _, err := NewExperiment(ExperimentConfig{Workload: "no-such", Nodes: 8, Iterations: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBaselineIsCEFree(t *testing.T) {
	e := smallExp(t, "minife")
	if e.Baseline().Makespan <= 0 {
		t.Fatal("baseline makespan not positive")
	}
	if e.Ranks() != 16 {
		t.Fatalf("ranks = %d, want 16", e.Ranks())
	}
}

func TestLULESHRanksAdjusted(t *testing.T) {
	e, err := NewExperiment(ExperimentConfig{Workload: "lulesh", Nodes: 30, Iterations: 2, TraceSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Ranks() != 27 {
		t.Fatalf("lulesh at 30 target = %d ranks, want 27", e.Ranks())
	}
}

func TestRunNoNoiseConfigRejected(t *testing.T) {
	e := smallExp(t, "minife")
	if _, err := e.Run(Scenario{MTBCE: 0, PerEvent: noise.Fixed(1)}); err == nil {
		t.Fatal("zero MTBCE accepted")
	}
	if _, err := e.Run(Scenario{MTBCE: 1e9, PerEvent: nil}); err == nil {
		t.Fatal("nil duration accepted")
	}
}

func TestRunProducesNonNegativeSlowdown(t *testing.T) {
	e := smallExp(t, "minife")
	res, err := e.Run(Scenario{
		MTBCE: 50 * nsPerMs, PerEvent: noise.Fixed(1 * nsPerMs), Target: noise.AllNodes, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowdownPct < 0 {
		t.Fatalf("negative slowdown %v", res.SlowdownPct)
	}
	if res.CEEvents == 0 {
		t.Fatal("no CEs charged at 50ms MTBCE over a multi-second run")
	}
	if res.Perturbed.Makespan < e.Baseline().Makespan {
		t.Fatal("perturbed faster than baseline")
	}
}

func TestRunSaturationShortCircuit(t *testing.T) {
	e := smallExp(t, "minife")
	res, err := e.Run(Scenario{
		MTBCE: 100 * nsPerMs, PerEvent: noise.Fixed(133 * nsPerMs), Target: noise.AllNodes, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("load 1.33 not reported as saturated")
	}
	if res.Perturbed != nil {
		t.Fatal("saturated scenario was simulated anyway")
	}
}

func TestRunRepeatedStats(t *testing.T) {
	e := smallExp(t, "minife")
	rep, err := e.RunRepeated(Scenario{
		MTBCE: 20 * nsPerMs, PerEvent: noise.Fixed(500 * nsPerUs), Target: noise.AllNodes, Seed: 7,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sample.N() != 4 {
		t.Fatalf("sample size = %d, want 4", rep.Sample.N())
	}
	if rep.Sample.Mean() < 0 {
		t.Fatalf("mean slowdown negative: %v", rep.Sample.Mean())
	}
	if rep.Saturated {
		t.Fatal("modest load reported saturated")
	}
}

func TestRunRepeatedSeedsDiffer(t *testing.T) {
	e := smallExp(t, "lammps-crack")
	rep, err := e.RunRepeated(Scenario{
		MTBCE: 10 * nsPerMs, PerEvent: noise.Fixed(1 * nsPerMs), Target: noise.AllNodes, Seed: 11,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := rep.Sample.Values()
	allSame := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("all repetitions identical; seeds not varied")
	}
}

func TestRunRepeatedRejectsZeroReps(t *testing.T) {
	e := smallExp(t, "minife")
	if _, err := e.RunRepeated(Scenario{MTBCE: nsPerS, PerEvent: noise.Fixed(1)}, 0); err == nil {
		t.Fatal("0 reps accepted")
	}
}

func TestDeterministicAcrossExperiments(t *testing.T) {
	sc := Scenario{MTBCE: 30 * nsPerMs, PerEvent: noise.Fixed(1 * nsPerMs), Target: noise.AllNodes, Seed: 5}
	a := smallExp(t, "cth")
	b := smallExp(t, "cth")
	ra, err := a.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if ra.SlowdownPct != rb.SlowdownPct || ra.CEEvents != rb.CEEvents {
		t.Fatalf("identical configs diverged: %v/%v vs %v/%v",
			ra.SlowdownPct, ra.CEEvents, rb.SlowdownPct, rb.CEEvents)
	}
}

func TestSingleNodeTargetCheaperThanAllNodes(t *testing.T) {
	e := smallExp(t, "lulesh") // 8 ranks (2^3)
	single, err := e.RunRepeated(Scenario{
		MTBCE: 10 * nsPerMs, PerEvent: noise.Fixed(2 * nsPerMs), Target: 0, Seed: 3,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.RunRepeated(Scenario{
		MTBCE: 10 * nsPerMs, PerEvent: noise.Fixed(2 * nsPerMs), Target: noise.AllNodes, Seed: 3,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if single.Sample.Mean() > all.Sample.Mean()+1 {
		t.Fatalf("single-node CEs (%v%%) hurt more than all-node CEs (%v%%)",
			single.Sample.Mean(), all.Sample.Mean())
	}
}

func TestHigherRateHurtsMore(t *testing.T) {
	e := smallExp(t, "lammps-crack")
	slow := func(mtbce int64) float64 {
		rep, err := e.RunRepeated(Scenario{
			MTBCE: mtbce, PerEvent: noise.Fixed(1 * nsPerMs), Target: noise.AllNodes, Seed: 9,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Sample.Mean()
	}
	frequent := slow(5 * nsPerMs)
	rare := slow(500 * nsPerMs)
	if frequent <= rare {
		t.Fatalf("200x higher CE rate did not increase slowdown: %v%% vs %v%%", frequent, rare)
	}
}

func TestLongerDurationHurtsMore(t *testing.T) {
	e := smallExp(t, "lammps-crack")
	slow := func(dur int64) float64 {
		rep, err := e.RunRepeated(Scenario{
			MTBCE: 20 * nsPerMs, PerEvent: noise.Fixed(dur), Target: noise.AllNodes, Seed: 13,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Sample.Mean()
	}
	short := slow(10 * nsPerUs)
	long := slow(5 * nsPerMs)
	if long <= short {
		t.Fatalf("500x longer per-event cost did not increase slowdown: %v%% vs %v%%", long, short)
	}
}
