package core

import (
	"fmt"

	"repro/internal/faultmodel"
	"repro/internal/mca"
	"repro/internal/noise"
	"repro/internal/systems"
)

// faultMixMTBCE is the aggregate per-node MTBCE the fault-mix figures
// run at before scale compensation: 3.6 s, the middle point of the
// Fig. 6 extreme-rate study, where the logging modes are clearly
// separated but the software rows are not yet saturated.
const faultMixMTBCE = 3600 * nsPerMs

// Figure8 sweeps application overhead across fault-mix compositions:
// every systems.FaultMixes preset (field DDR4, high particle flux,
// heavy DIMM skew, storm-prone row bursts) under the three logging
// modes at an exascale node count. The homogeneous-Poisson rows of
// Figs. 4-6 assume every node errs alike; this figure shows how far a
// field-realistic mixture moves the tail.
func Figure8(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig8", Title: "application overhead vs fault-mix composition"}
	const paperNodes = 16384
	cache := newExpCache(opts)
	for _, wl := range opts.Workloads {
		nodes, comp := opts.nodesFor(paperNodes)
		e, err := cache.get(wl, nodes)
		if err != nil {
			return nil, err
		}
		mtbce := compensateMTBCE(faultMixMTBCE, comp)
		for _, mix := range systems.FaultMixes() {
			// A fresh Process per row: each row owns its handle table,
			// so rows are independent and cluster cells rebuilding a
			// single row get bit-identical schedules.
			for _, mode := range systems.LoggingModes() {
				proc, err := mix.Spec.WithMTBCE(mtbce).Process()
				if err != nil {
					return nil, err
				}
				sc := Scenario{
					MTBCE:    mtbce,
					Arrivals: proc,
					PerEvent: noise.Fixed(mode.PerEventNanos),
					Target:   noise.AllNodes,
					Seed:     opts.Seed + 1,
				}
				row := Row{Workload: wl, System: mix.Name, Mode: mode.Name, PerEventNanos: mode.PerEventNanos}
				if err := runRow(f, e, opts, row, sc); err != nil {
					return nil, err
				}
			}
		}
	}
	return f, nil
}

// fig9BurstLens are the mean row-fault train lengths the storm-tail
// figure sweeps. 1 is the no-burst baseline; 64 reliably trips the
// Linux CMCI storm threshold.
var fig9BurstLens = []float64{1, 4, 16, 64}

// fig9Spec is the storm-tail mixture at one burst intensity: a
// row-fault train component over a single-cell background.
func fig9Spec(burstLen float64) faultmodel.Spec {
	row := faultmodel.Mode{Kind: "row", Weight: 0.7}
	if burstLen > 1 {
		row.BurstLen = burstLen
		row.BurstGapNanos = nsPerMs
	}
	return faultmodel.Spec{
		MTBCENanos: faultMixMTBCE,
		Modes: []faultmodel.Mode{
			{Kind: "cell", Weight: 0.3},
			row,
		},
	}
}

// fig9PerEvent is one precomputed per-CE handling cost of the
// storm-tail figure.
type fig9PerEvent struct {
	burstLen float64
	label    string
	nanos    int64
}

// fig9PerEvents derives the per-CE handling cost for every (burst
// intensity, logging path) cell by running the node-level mca model
// under the mixture's burst train — the software path with the CMCI
// storm mitigation armed, the firmware path paying its SMI per event.
// The costs depend only on (seed, burst length, path), so cluster
// cells recompute them identically regardless of which workload they
// shard on.
func fig9PerEvents(seed uint64) ([]fig9PerEvent, error) {
	paths := []struct {
		name string
		mode mca.Mode
	}{
		{systems.SoftwareCMCI.Name, mca.Software},
		{systems.FirmwareEMCA.Name, mca.Firmware},
	}
	var out []fig9PerEvent
	for _, bl := range fig9BurstLens {
		spec := fig9Spec(bl)
		for _, p := range paths {
			per, err := spec.StormPerEventNanos(seed, p.mode)
			if err != nil {
				return nil, err
			}
			out = append(out, fig9PerEvent{burstLen: bl, label: p.name, nanos: per})
		}
	}
	return out, nil
}

// Figure9 sweeps storm-tail sensitivity: burst intensity of a row-fault
// train against Software (CMCI, storm mitigation armed) vs Firmware
// (EMCA, SMI per event) logging. As trains lengthen, the software path's
// effective per-CE cost collapses into polls while the firmware path
// keeps paying per event — the storm mitigation's value is the gap
// between the two curves.
func Figure9(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{ID: "fig9", Title: "storm-tail sensitivity: burst intensity vs logging path"}
	const paperNodes = 16384
	perEvents, err := fig9PerEvents(opts.Seed)
	if err != nil {
		return nil, err
	}
	cache := newExpCache(opts)
	for _, wl := range opts.Workloads {
		nodes, comp := opts.nodesFor(paperNodes)
		e, err := cache.get(wl, nodes)
		if err != nil {
			return nil, err
		}
		mtbce := compensateMTBCE(faultMixMTBCE, comp)
		for _, pe := range perEvents {
			spec := fig9Spec(pe.burstLen)
			spec.MTBCENanos = mtbce
			proc, err := spec.Process()
			if err != nil {
				return nil, err
			}
			sc := Scenario{
				MTBCE:    mtbce,
				Arrivals: proc,
				PerEvent: noise.Fixed(pe.nanos),
				Target:   noise.AllNodes,
				Seed:     opts.Seed + 1,
			}
			row := Row{
				Workload:      wl,
				System:        fmt.Sprintf("burst=%g", pe.burstLen),
				Mode:          pe.label,
				PerEventNanos: pe.nanos,
			}
			if err := runRow(f, e, opts, row, sc); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}
