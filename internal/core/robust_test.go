package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/noise"
)

// chaosScenario is a cheap, non-saturating CE scenario for the
// injection tests.
func chaosScenario() Scenario {
	return Scenario{
		MTBCE:    20 * 1000 * 1000, // 20 ms
		PerEvent: noise.Fixed(500 * 1000),
		Target:   noise.AllNodes,
		Seed:     2,
	}
}

// TestRepetitionPanicRetriedBitIdentical arms the core.repetition site
// with a three-panic budget and checks the repeated-run sample is
// bit-identical to an unfaulted run: retried repetitions re-use their
// seed, so faults are invisible in the results. The budget (3) stays
// below the per-repetition attempt bound (4), so the run can never
// exhaust its retries no matter how the fires land — the test is
// deterministic even on the parallel path.
func TestRepetitionPanicRetriedBitIdentical(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	e := smallExp(t, "minife")
	sc := chaosScenario()
	const reps = 8
	panicBudget := faultinject.Plan{
		faultinject.SiteRepetition: {Kind: faultinject.KindPanic, Probability: 1, Count: 3},
	}

	want, err := e.RunRepeated(sc, reps)
	if err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Arm(panicBudget); err != nil {
		t.Fatal(err)
	}
	got, err := e.RunRepeated(sc, reps)
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	if got.RetriedReps != 3 {
		t.Fatalf("RetriedReps = %d, want 3 (one per budgeted panic)", got.RetriedReps)
	}
	if got.Sample.N() != want.Sample.N() {
		t.Fatalf("sample sizes differ: %d vs %d", got.Sample.N(), want.Sample.N())
	}
	gs, ws := got.Sample.Summarize(), want.Sample.Summarize()
	if gs.Mean != ws.Mean || gs.Min != ws.Min || gs.Max != ws.Max {
		t.Fatalf("faulted sample diverged: %+v vs %+v", gs, ws)
	}

	// Parallel path under a fresh budget: same sample again.
	if err := faultinject.Arm(panicBudget); err != nil {
		t.Fatal(err)
	}
	gotPar, err := e.RunRepeatedParallel(sc, reps, 4)
	if err != nil {
		t.Fatalf("faulted parallel run failed: %v", err)
	}
	ps := gotPar.Sample.Summarize()
	if ps.Mean != ws.Mean || gotPar.Sample.N() != want.Sample.N() {
		t.Fatalf("parallel faulted sample diverged: %+v vs %+v", ps, ws)
	}
	if gotPar.RetriedReps != 3 {
		t.Fatalf("parallel RetriedReps = %d, want 3", gotPar.RetriedReps)
	}
}

// TestRepetitionErrorRetried checks injected (retryable) errors heal
// the same way panics do, in both repetition loops.
func TestRepetitionErrorRetried(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	e := smallExp(t, "minife")
	sc := chaosScenario()

	want, err := e.RunRepeated(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteRepetition: {Kind: faultinject.KindError, Probability: 1, Count: 3},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := e.RunRepeatedParallel(sc, 6, 3)
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	if got.RetriedReps != 3 {
		t.Fatalf("RetriedReps = %d, want 3", got.RetriedReps)
	}
	if got.Sample.Summarize().Mean != want.Sample.Summarize().Mean {
		t.Fatal("sample diverged under injected errors")
	}
}

// TestPersistentRepetitionFailureSurfaces arms p=1 so every attempt of
// every repetition fails: the bounded retry budget must exhaust and
// surface a typed *RepetitionError rather than loop forever.
func TestPersistentRepetitionFailureSurfaces(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	e := smallExp(t, "minife")
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteRepetition: {Kind: faultinject.KindPanic, Probability: 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := e.RunRepeated(chaosScenario(), 2)
	var re *RepetitionError
	if !errors.As(err, &re) {
		t.Fatalf("persistent faults surfaced as %v (%T)", err, err)
	}
	if re.PanicValue == nil || !strings.Contains(re.Stack, "goroutine") {
		t.Fatalf("repetition error lacks panic capture: %+v", re)
	}
	faultinject.Disarm()
	// The experiment (and its simulator pool) still works afterwards.
	if _, err := e.RunRepeated(chaosScenario(), 2); err != nil {
		t.Fatalf("experiment wedged after persistent faults: %v", err)
	}
}

// TestSaturatedRepsAccountingWithRetries covers the satellite case:
// repetitions of a saturating scenario are retried by fault injection,
// and the Sample.N() + SaturatedReps == Reps invariant must hold with
// each repetition counted exactly once despite the extra attempts.
func TestSaturatedRepsAccountingWithRetries(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	e := smallExp(t, "minife")
	// Load >= 1: every repetition saturates analytically.
	satSc := Scenario{
		MTBCE:    1000 * 1000,                    // 1 ms between CEs
		PerEvent: noise.Fixed(133 * 1000 * 1000), // 133 ms each
		Target:   noise.AllNodes,
		Seed:     2,
	}
	// A three-error budget below the 4-attempt bound: retries always
	// happen, the run can never fail, regardless of scheduling.
	errBudget := faultinject.Plan{
		faultinject.SiteRepetition: {Kind: faultinject.KindError, Probability: 1, Count: 3},
	}
	const reps = 8
	for name, run := range map[string]func() (*Repeated, error){
		"sequential": func() (*Repeated, error) { return e.RunRepeated(satSc, reps) },
		"parallel":   func() (*Repeated, error) { return e.RunRepeatedParallel(satSc, reps, 4) },
	} {
		if err := faultinject.Arm(errBudget); err != nil {
			t.Fatal(err)
		}
		rep, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.RetriedReps != 3 {
			t.Fatalf("%s: RetriedReps = %d, want 3", name, rep.RetriedReps)
		}
		if rep.Reps != reps || rep.SaturatedReps != reps || rep.Sample.N() != 0 {
			t.Fatalf("%s: retried saturated reps double-counted: reps=%d sat=%d n=%d",
				name, rep.Reps, rep.SaturatedReps, rep.Sample.N())
		}
		if !rep.Saturated {
			t.Fatalf("%s: saturation flag lost", name)
		}
	}

	// Mixed case: a non-saturating scenario under a fresh budget keeps
	// the invariant with a full sample.
	if err := faultinject.Arm(errBudget); err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunRepeatedParallel(chaosScenario(), reps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sample.N()+rep.SaturatedReps != rep.Reps || rep.Reps != reps {
		t.Fatalf("invariant broken: n=%d sat=%d reps=%d", rep.Sample.N(), rep.SaturatedReps, rep.Reps)
	}
}

// TestInjectedCancelStopsRun checks cancel-kind faults follow the
// cancellation path — the run stops with context.Canceled instead of
// burning the retry budget.
func TestInjectedCancelStopsRun(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	e := smallExp(t, "minife")
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteRepetition: {Kind: faultinject.KindCancel, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := e.RunRepeated(chaosScenario(), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault surfaced as %v", err)
	}
	if s := faultinject.Snapshot(); len(s.Sites) != 1 || s.Sites[0].Fired != 1 {
		t.Fatalf("cancel retried: %+v", s)
	}
}
