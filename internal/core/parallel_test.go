package core

import (
	"reflect"
	"testing"

	"repro/internal/noise"
)

func TestParallelMatchesSequential(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{
		MTBCE: 20 * nsPerMs, PerEvent: noise.Fixed(500 * nsPerUs), Target: noise.AllNodes, Seed: 7,
	}
	seq, err := e.RunRepeated(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.RunRepeatedParallel(sc, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Sample.Values(), par.Sample.Values()) {
		t.Fatalf("parallel sample differs:\nseq %v\npar %v", seq.Sample.Values(), par.Sample.Values())
	}
	if seq.Saturated != par.Saturated {
		t.Fatal("saturation flags differ")
	}
}

func TestParallelSingleWorkerDelegates(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 50 * nsPerMs, PerEvent: noise.Fixed(nsPerMs), Target: noise.AllNodes, Seed: 3}
	a, err := e.RunRepeatedParallel(sc, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunRepeated(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sample.Values(), b.Sample.Values()) {
		t.Fatal("single-worker parallel diverged from sequential")
	}
}

func TestParallelSaturationShortCircuits(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 10 * nsPerMs, PerEvent: noise.Fixed(133 * nsPerMs), Target: noise.AllNodes, Seed: 1}
	rep, err := e.RunRepeatedParallel(sc, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated || rep.Sample.N() != 0 {
		t.Fatalf("saturated scenario mishandled: %+v", rep)
	}
}

func TestParallelBadReps(t *testing.T) {
	e := smallExp(t, "minife")
	if _, err := e.RunRepeatedParallel(Scenario{MTBCE: nsPerS, PerEvent: noise.Fixed(1)}, 0, 2); err == nil {
		t.Fatal("0 reps accepted")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 100 * nsPerMs, PerEvent: noise.Fixed(nsPerMs), Target: noise.AllNodes, Seed: 5}
	rep, err := e.RunRepeatedParallel(sc, 3, 0) // workers = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sample.N() != 3 {
		t.Fatalf("sample size %d", rep.Sample.N())
	}
}
