package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/noise"
)

func TestParallelMatchesSequential(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{
		MTBCE: 20 * nsPerMs, PerEvent: noise.Fixed(500 * nsPerUs), Target: noise.AllNodes, Seed: 7,
	}
	seq, err := e.RunRepeated(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.RunRepeatedParallel(sc, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Sample.Values(), par.Sample.Values()) {
		t.Fatalf("parallel sample differs:\nseq %v\npar %v", seq.Sample.Values(), par.Sample.Values())
	}
	if seq.Saturated != par.Saturated {
		t.Fatal("saturation flags differ")
	}
}

func TestParallelSingleWorkerDelegates(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 50 * nsPerMs, PerEvent: noise.Fixed(nsPerMs), Target: noise.AllNodes, Seed: 3}
	a, err := e.RunRepeatedParallel(sc, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunRepeated(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sample.Values(), b.Sample.Values()) {
		t.Fatal("single-worker parallel diverged from sequential")
	}
}

func TestParallelSaturationShortCircuits(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 10 * nsPerMs, PerEvent: noise.Fixed(133 * nsPerMs), Target: noise.AllNodes, Seed: 1}
	rep, err := e.RunRepeatedParallel(sc, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated || rep.Sample.N() != 0 {
		t.Fatalf("saturated scenario mishandled: %+v", rep)
	}
}

func TestParallelBadReps(t *testing.T) {
	e := smallExp(t, "minife")
	if _, err := e.RunRepeatedParallel(Scenario{MTBCE: nsPerS, PerEvent: noise.Fixed(1)}, 0, 2); err == nil {
		t.Fatal("0 reps accepted")
	}
}

func TestParallelBitIdenticalAcrossWorkerCounts(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{
		MTBCE: 15 * nsPerMs, PerEvent: noise.Fixed(300 * nsPerUs), Target: noise.AllNodes, Seed: 11,
	}
	const reps = 8
	want, err := e.RunRepeated(sc, reps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		got, err := e.RunRepeatedParallel(sc, reps, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want.Sample.Values(), got.Sample.Values()) {
			t.Fatalf("workers=%d sample differs:\nseq %v\npar %v",
				workers, want.Sample.Values(), got.Sample.Values())
		}
		if want.Saturated != got.Saturated {
			t.Fatalf("workers=%d saturation flag differs", workers)
		}
	}
}

// TestParallelErrorSurfaces checks that a failing repetition returns
// its error instead of hanging the fan-out machinery.
func TestParallelErrorSurfaces(t *testing.T) {
	e := smallExp(t, "minife")
	// A negative MTBCE fails noise.Config.Validate inside every
	// repetition.
	sc := Scenario{MTBCE: -1, PerEvent: noise.Fixed(nsPerMs), Target: noise.AllNodes}
	type result struct {
		rep *Repeated
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := e.RunRepeatedParallel(sc, 8, 4)
		done <- result{rep, err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatalf("failing repetition returned %+v without error", r.rep)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("failing repetition hung the parallel runner")
	}
}

func TestParallelContextCanceled(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 50 * nsPerMs, PerEvent: noise.Fixed(nsPerMs), Target: noise.AllNodes, Seed: 3}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := e.RunRepeatedParallelContext(ctx, sc, 6, workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// An unexpired context must not change results.
	rep, err := e.RunRepeatedParallelContext(context.Background(), sc, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := e.RunRepeated(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Sample.Values(), rep.Sample.Values()) {
		t.Fatal("context-aware run diverged from sequential")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	e := smallExp(t, "minife")
	sc := Scenario{MTBCE: 100 * nsPerMs, PerEvent: noise.Fixed(nsPerMs), Target: noise.AllNodes, Seed: 5}
	rep, err := e.RunRepeatedParallel(sc, 3, 0) // workers = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sample.N() != 3 {
		t.Fatalf("sample size %d", rep.Sample.N())
	}
}
