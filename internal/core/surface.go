package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/noise"
	"repro/internal/report"
)

// DefaultSurfaceMTBCEs is the rate axis of the overhead surface: five
// decades around the paper's Fig. 7 points (0.2 s and 720 s).
func DefaultSurfaceMTBCEs() []int64 {
	return []int64{
		200 * nsPerMs, 2 * nsPerS, 20 * nsPerS, 200 * nsPerS, 2000 * nsPerS,
	}
}

// DefaultSurfaceDurations is the duration axis: the paper's Fig. 7
// sweep from hardware correction (150 ns) to firmware logging (133 ms).
func DefaultSurfaceDurations() []int64 {
	return []int64{150, 1 * nsPerUs, 10 * nsPerUs, 100 * nsPerUs, 775 * nsPerUs, 10 * nsPerMs, 133 * nsPerMs}
}

// Surface generalizes Fig. 7 into a full (MTBCE x per-event-duration)
// overhead grid for one workload. It returns the rows and a rendered
// heatmap whose cells are mean slowdown percentages (negative sentinel
// for no-progress configurations).
func Surface(opts Options, workload string, mtbces, durations []int64) (*Figure, *report.Heatmap, error) {
	opts = opts.withDefaults()
	if len(mtbces) == 0 {
		mtbces = DefaultSurfaceMTBCEs()
	}
	if len(durations) == 0 {
		durations = DefaultSurfaceDurations()
	}
	const paperNodes = 16384
	f := &Figure{
		ID:    "surface",
		Title: fmt.Sprintf("overhead surface for %s (Fig. 7 generalization)", workload),
	}
	hm := &report.Heatmap{
		Title:    f.Title,
		RowLabel: "mtbce",
		ColLabel: "per-event",
		LogScale: true,
	}
	cache := newExpCache(opts)
	nodes, comp := opts.nodesFor(paperNodes)
	e, err := cache.get(workload, nodes)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range durations {
		hm.ColNames = append(hm.ColNames, report.Nanos(d))
	}
	for _, mtbce := range mtbces {
		hm.RowNames = append(hm.RowNames, report.Nanos(mtbce))
		row := make([]float64, 0, len(durations))
		for _, d := range durations {
			sc := Scenario{
				MTBCE:    compensateMTBCE(mtbce, comp),
				PerEvent: noise.Fixed(d),
				Target:   noise.AllNodes,
				Seed:     opts.Seed + 1,
			}
			rrow := Row{
				Workload: workload,
				System:   fmt.Sprintf("surface@%s", report.Nanos(mtbce)),
				Mode:     report.Nanos(d), PerEventNanos: d,
			}
			if err := runRow(f, e, opts, rrow, sc); err != nil {
				return nil, nil, err
			}
			last := f.Rows[len(f.Rows)-1]
			if last.Saturated {
				row = append(row, -1)
			} else {
				row = append(row, last.MeanPct)
			}
		}
		hm.Values = append(hm.Values, row)
	}
	return f, hm, nil
}

// jsonFigure mirrors Figure for stable JSON output.
type jsonFigure struct {
	ID    string    `json:"id"`
	Title string    `json:"title"`
	Rows  []jsonRow `json:"rows"`
}

type jsonRow struct {
	Workload      string  `json:"workload"`
	System        string  `json:"system,omitempty"`
	Mode          string  `json:"mode"`
	MTBCENanos    int64   `json:"mtbce_ns"`
	PerEventNanos int64   `json:"per_event_ns"`
	Nodes         int     `json:"nodes"`
	Reps          int     `json:"reps"`
	SaturatedReps int     `json:"saturated_reps,omitempty"`
	MeanPct       float64 `json:"mean_pct"`
	CI95Pct       float64 `json:"ci95_pct"`
	Saturated     bool    `json:"saturated,omitempty"`
}

// WriteJSON emits the figure as a JSON document for external plotting.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := jsonFigure{ID: f.ID, Title: f.Title, Rows: make([]jsonRow, len(f.Rows))}
	for i, r := range f.Rows {
		out.Rows[i] = jsonRow{
			Workload: r.Workload, System: r.System, Mode: r.Mode,
			MTBCENanos: r.MTBCENanos, PerEventNanos: r.PerEventNanos,
			Nodes: r.Nodes, Reps: r.Reps, SaturatedReps: r.SaturatedReps,
			MeanPct: r.MeanPct, CI95Pct: r.CI95Pct, Saturated: r.Saturated,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadFigureJSON parses a figure written by WriteJSON, for tooling that
// post-processes results.
func ReadFigureJSON(r io.Reader) (*Figure, error) {
	var in jsonFigure
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	f := &Figure{ID: in.ID, Title: in.Title, Rows: make([]Row, len(in.Rows))}
	for i, r := range in.Rows {
		f.Rows[i] = Row{
			Workload: r.Workload, System: r.System, Mode: r.Mode,
			MTBCENanos: r.MTBCENanos, PerEventNanos: r.PerEventNanos,
			Nodes: r.Nodes, Reps: r.Reps, SaturatedReps: r.SaturatedReps,
			MeanPct: r.MeanPct, CI95Pct: r.CI95Pct, Saturated: r.Saturated,
		}
	}
	return f, nil
}
