package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateFaultmixGolden = flag.Bool("update-faultmix-golden", false,
	"rewrite testdata/faultmix_smoke_golden.json from the live figures")

func TestFigure8Shape(t *testing.T) {
	f, err := Figure8(tinyOpts("minife"))
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload x 4 mix presets x 3 logging modes.
	if len(f.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(f.Rows))
	}
	// Every preset keeps the mode ordering: hardware-only must not cost
	// more than firmware under the same mixture.
	for _, mix := range []string{"field-ddr4", "high-altitude", "skewed-dimms", "bursty-row"} {
		rows := findRows(f, func(r Row) bool { return r.System == mix })
		if len(rows) != 3 {
			t.Fatalf("%s: rows = %d, want 3", mix, len(rows))
		}
		var hw, fw Row
		for _, r := range rows {
			switch r.Mode {
			case "hardware-only":
				hw = r
			case "firmware-emca":
				fw = r
			}
		}
		if hw.Saturated {
			t.Fatalf("%s: hardware-only saturated: %+v", mix, hw)
		}
		if !fw.Saturated && fw.MeanPct < hw.MeanPct {
			t.Fatalf("%s: firmware %v%% cheaper than hardware-only %v%%", mix, fw.MeanPct, hw.MeanPct)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	f, err := Figure9(tinyOpts("minife"))
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload x 4 burst intensities x 2 logging paths.
	if len(f.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(f.Rows))
	}
	perAt := func(system, mode string) int64 {
		rows := findRows(f, func(r Row) bool { return r.System == system && r.Mode == mode })
		if len(rows) != 1 {
			t.Fatalf("%s/%s: rows = %d, want 1", system, mode, len(rows))
		}
		return rows[0].PerEventNanos
	}
	// The figure's point: at storm-scale trains the software path's
	// effective per-CE cost collapses (CMCI storm mitigation switches to
	// polling) while firmware keeps paying an SMI per event.
	swLong := perAt("burst=64", "software-cmci")
	fwLong := perAt("burst=64", "firmware-emca")
	if swLong >= fwLong {
		t.Fatalf("storm gap missing: software %dns >= firmware %dns at burst=64", swLong, fwLong)
	}
	swShort := perAt("burst=1", "software-cmci")
	if swLong > swShort {
		t.Fatalf("software per-CE cost grew with burst length: %dns (burst=64) > %dns (burst=1)",
			swLong, swShort)
	}
}

// TestFaultMixFiguresBitIdentical reruns both fault-mix figures and
// requires byte-identical JSON — the arrival mixture must not leak any
// run-to-run state (handle tables, map iteration, shared rng).
func TestFaultMixFiguresBitIdentical(t *testing.T) {
	for _, fig := range []struct {
		name string
		run  func(Options) (*Figure, error)
	}{
		{"fig8", Figure8},
		{"fig9", Figure9},
	} {
		var first bytes.Buffer
		for trial := 0; trial < 2; trial++ {
			f, err := fig.run(tinyOpts("minife"))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := f.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if trial == 0 {
				first = buf
			} else if !bytes.Equal(first.Bytes(), buf.Bytes()) {
				t.Fatalf("%s: rerun diverged:\n%s\nvs\n%s", fig.name, first.String(), buf.String())
			}
		}
	}
}

// TestFaultMixSmokeGolden is the faultmix-smoke target (Makefile, CI):
// a small fixed-seed run of both fault-mix figures must match the
// committed golden byte-for-byte. Regenerate after an intentional model
// change with:
//
//	go test -run TestFaultMixSmokeGolden ./internal/core/ -update-faultmix-golden
func TestFaultMixSmokeGolden(t *testing.T) {
	var got bytes.Buffer
	for _, run := range []func(Options) (*Figure, error){Figure8, Figure9} {
		f, err := run(tinyOpts("minife"))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
	}
	goldenPath := filepath.Join("testdata", "faultmix_smoke_golden.json")
	if *updateFaultmixGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, got.Len())
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("fault-mix figures drifted from golden (rerun with -update-faultmix-golden if intended):\n got: %s\nwant: %s", got.Bytes(), want)
	}
}
