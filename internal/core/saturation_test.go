package core

// Tests for the saturation-sample semantics: repetitions that saturate
// (analytically via the load factor, or at runtime when a work interval
// hits the CE saturation bound) are excluded from the slowdown Sample
// and tallied in SaturatedReps, so partial saturation no longer biases
// the reported statistics. Invariant: Sample.N() + SaturatedReps == Reps.

import (
	"reflect"
	"testing"

	"repro/internal/noise"
)

// mixedSatScenario sits just under the analytic saturation point
// (rho = 133/135 ≈ 0.985): the load factor passes the pre-check, but
// the renewal race inside the CE model pushes some seeds over the
// runtime saturation bound while others finish cleanly. With Seed 1
// and 6 reps (seeds 1..6) the mix is deterministic.
func mixedSatScenario() Scenario {
	return Scenario{
		MTBCE: 135 * nsPerMs, PerEvent: noise.Fixed(133 * nsPerMs),
		Target: noise.AllNodes, Seed: 1,
	}
}

func TestRunRepeatedMixedSaturationExcludedFromSample(t *testing.T) {
	e := smallExp(t, "minife")
	const reps = 6
	rep, err := e.RunRepeated(mixedSatScenario(), reps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reps != reps {
		t.Fatalf("Reps = %d, want %d", rep.Reps, reps)
	}
	if rep.SaturatedReps == 0 || rep.SaturatedReps == reps {
		t.Fatalf("expected a mix of saturated and clean reps, got %d/%d saturated",
			rep.SaturatedReps, reps)
	}
	if !rep.Saturated {
		t.Fatal("Saturated flag unset despite saturated repetitions")
	}
	if rep.Sample.N()+rep.SaturatedReps != rep.Reps {
		t.Fatalf("invariant violated: Sample.N()=%d + SaturatedReps=%d != Reps=%d",
			rep.Sample.N(), rep.SaturatedReps, rep.Reps)
	}
	// The sample must hold exactly the slowdowns of the non-saturated
	// individual runs, in seed order — saturated reps contribute nothing.
	sc := mixedSatScenario()
	var want []float64
	for i := 0; i < reps; i++ {
		sci := sc
		sci.Seed = sc.Seed + uint64(i)
		res, err := e.Run(sci)
		if err != nil {
			t.Fatalf("rep %d: %v", i, err)
		}
		if !res.Saturated {
			want = append(want, res.SlowdownPct)
		}
	}
	if got := rep.Sample.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sample holds wrong values:\ngot  %v\nwant %v", got, want)
	}
}

func TestRunRepeatedAllSaturatedAnalytic(t *testing.T) {
	e := smallExp(t, "minife")
	const reps = 4
	// Load factor 133/100 = 1.33 >= 1: every repetition saturates
	// analytically, without simulating.
	rep, err := e.RunRepeated(Scenario{
		MTBCE: 100 * nsPerMs, PerEvent: noise.Fixed(133 * nsPerMs),
		Target: noise.AllNodes, Seed: 1,
	}, reps)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated || rep.SaturatedReps != reps || rep.Reps != reps {
		t.Fatalf("all-saturated sweep mis-tallied: %+v", rep)
	}
	if rep.Sample.N() != 0 {
		t.Fatalf("saturated reps leaked into sample: N=%d values=%v",
			rep.Sample.N(), rep.Sample.Values())
	}
	if _, err := rep.Sample.Quantile(50); err == nil {
		t.Fatal("quantile of empty sample did not error")
	}
}

func TestRunRepeatedParallelMixedSaturationParity(t *testing.T) {
	e := smallExp(t, "minife")
	const reps = 6
	seq, err := e.RunRepeated(mixedSatScenario(), reps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := e.RunRepeatedParallel(mixedSatScenario(), reps, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq.Sample.Values(), par.Sample.Values()) {
			t.Fatalf("workers=%d: sample diverged:\nseq %v\npar %v",
				workers, seq.Sample.Values(), par.Sample.Values())
		}
		if par.SaturatedReps != seq.SaturatedReps || par.Reps != seq.Reps ||
			par.Saturated != seq.Saturated {
			t.Fatalf("workers=%d: saturation tallies diverged: seq %+v par %+v",
				workers, seq, par)
		}
	}
}
