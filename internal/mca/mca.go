// Package mca models a single node's machine-check handling to reproduce
// the paper's node-level measurements (Fig. 2).
//
// The paper measured, on "Blake" (4-socket Skylake, 96 cores, RHEL 7.4),
// the OS-noise signature of correctable-error injection via ACPI/APEI
// EINJ while the `selfish` microbenchmark recorded CPU detours (periods
// when the CPU was taken from the application, detected by a gap in
// back-to-back timestamp-counter reads exceeding a 150 ns threshold).
//
// We cannot inject machine checks from a Go library, so this package
// substitutes a faithful node model: per-core timelines of CPU "steal"
// intervals produced by
//
//   - background OS activity (timer ticks, scheduler housekeeping),
//   - the EINJ injection utility's sysfs writes (dry-run cost),
//   - CMCI handling: a corrected-machine-check interrupt delivered to
//     one core, whose handler decodes and logs the error in the OS
//     (~700 us measured in the paper),
//   - EMCA/firmware-first handling: a System Management Interrupt that
//     halts *all* cores (~7 ms), plus the firmware decode+log of every
//     Nth error (~500 ms, threshold 10 in the paper),
//
// and a selfish-style detector that coalesces overlapping steals and
// reports every detour longer than the threshold. The output is the same
// (time, duration) series the paper plots.
package mca

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Mode selects the logging configuration being measured.
type Mode int

// Modes, mirroring Fig. 2 plus the "all logging off" case the paper
// describes in prose.
const (
	// Native: background OS noise only, no injections.
	Native Mode = iota
	// DryRun: EINJ configured through sysfs at each injection time, but
	// the error is never triggered.
	DryRun
	// CorrectionOnly: errors injected, all logging disabled; only the
	// in-hardware ECC correction latency remains (~150 ns, below the
	// selfish threshold, hence invisible — as the paper notes).
	CorrectionOnly
	// Software: OS decodes and logs each CE from a CMCI handler.
	Software
	// Firmware: EMCA firmware-first; each CE raises an SMI on all
	// cores, every FirmwareThreshold-th CE pays the firmware decode.
	Firmware
)

// String returns the mode name used by cmd/mcasig.
func (m Mode) String() string {
	switch m {
	case Native:
		return "native"
	case DryRun:
		return "dryrun"
	case CorrectionOnly:
		return "correction-only"
	case Software:
		return "software"
	case Firmware:
		return "firmware"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode converts a mode name to a Mode.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Native, DryRun, CorrectionOnly, Software, Firmware} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("mca: unknown mode %q", s)
}

// Config describes the measurement scenario. Zero fields take the Blake
// defaults (see Defaults).
type Config struct {
	Seed     uint64
	Mode     Mode
	Cores    int   // cores running selfish (Blake: 48 of 96)
	Duration int64 // measured window, ns

	InjectPeriod      int64 // time between EINJ injections (paper: 10 s)
	FirmwareThreshold int   // firmware logs every Nth CE (paper: 10)

	// BurstLen injects this many CEs back to back (BurstSpacing apart)
	// at each injection point instead of a single error, emulating the
	// "avalanche" scenarios of Gottscho et al. Zero means 1.
	BurstLen     int
	BurstSpacing int64 // gap between CEs within a burst

	// StormThreshold enables the Linux CMCI storm mitigation in
	// Software mode: after this many CMCIs within one second the
	// kernel disables the interrupt and falls back to polling every
	// PollInterval (PollCost per poll) until the storm subsides.
	// Zero disables storm handling (every CE raises a CMCI).
	StormThreshold int
	PollInterval   int64 // polling cadence during a storm
	PollCost       int64 // handler cost per poll

	Threshold int64 // selfish detour threshold (paper: 150 ns)
	// SampleLoopNs models the selfish sampling loop explicitly: the
	// benchmark reads the TSC every SampleLoopNs; a steal is observed
	// as the gap between consecutive reads minus the loop cost, so
	// observed durations carry up to one loop iteration of
	// quantization and detours are timestamped on the sample grid.
	// Zero uses the idealized detector (exact steal intervals).
	SampleLoopNs int64

	// Component costs; zero means the Blake-calibrated default.
	TickPeriod     int64 // OS timer tick period
	TickCost       int64 // timer tick handler cost
	SchedPeriod    int64 // scheduler housekeeping period
	SchedCost      int64 // scheduler housekeeping cost
	DryRunCost     int64 // sysfs configuration writes
	CorrectionCost int64 // pure ECC correction latency
	CMCICost       int64 // OS decode+log in the CMCI handler
	SMICost        int64 // SMI broadcast halt, all cores
	DecodeCost     int64 // firmware decode+log, all cores
}

// Defaults fills zero fields with values calibrated to the paper's Blake
// measurements.
func (c Config) Defaults() Config {
	def := func(v *int64, d int64) {
		if *v == 0 {
			*v = d
		}
	}
	if c.Cores == 0 {
		c.Cores = 48
	}
	def(&c.Duration, 120*int64(1e9)) // 2 minutes
	def(&c.InjectPeriod, 10*int64(1e9))
	if c.FirmwareThreshold == 0 {
		c.FirmwareThreshold = 10
	}
	def(&c.Threshold, 150)
	def(&c.TickPeriod, int64(1e6)) // CONFIG_HZ=1000
	def(&c.TickCost, 1500)         // ~1.5 us
	def(&c.SchedPeriod, 4*int64(1e6))
	def(&c.SchedCost, 4000)            // ~4 us
	def(&c.DryRunCost, 3000)           // ~3 us of sysfs writes
	def(&c.CorrectionCost, 150)        // 150 ns, the paper's hardware cost
	def(&c.CMCICost, 700*int64(1e3))   // ~700 us (Fig. 2c)
	def(&c.SMICost, 7*int64(1e6))      // ~7 ms (Fig. 2d)
	def(&c.DecodeCost, 500*int64(1e6)) // ~500 ms (Fig. 2d)
	if c.BurstLen == 0 {
		c.BurstLen = 1
	}
	def(&c.BurstSpacing, int64(1e6)) // 1 ms between CEs in a burst
	def(&c.PollInterval, int64(1e9)) // poll once per second in a storm
	def(&c.PollCost, c.CMCICost)     // decoding work is the same
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("mca: cores must be positive")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("mca: duration must be positive")
	}
	if c.InjectPeriod <= 0 {
		return fmt.Errorf("mca: injection period must be positive")
	}
	if c.Mode < Native || c.Mode > Firmware {
		return fmt.Errorf("mca: unknown mode %d", c.Mode)
	}
	if c.BurstLen < 0 || c.StormThreshold < 0 {
		return fmt.Errorf("mca: negative burst/storm parameter: %+v", c)
	}
	return nil
}

// Detour is one detected interruption of the application.
type Detour struct {
	Start  int64 // ns since measurement start
	Dur    int64 // ns
	Core   int32
	Source string // "tick", "sched", "einj-config", "correction", "cmci", "smi", "decode"
}

// Signature is the result of one measurement run.
type Signature struct {
	Mode    Mode
	Cores   int
	Window  int64 // measured duration, ns
	Detours []Detour
}

// Stats summarizes a signature.
type Stats struct {
	Count     int
	MaxDur    int64
	MeanDur   float64
	TotalDur  int64
	NoisePct  float64 // total steal across cores / (window * cores) * 100
	ByCoreMax int64   // largest single-core total steal
}

// ComputeStats summarizes the detours.
func (s *Signature) ComputeStats() Stats {
	var st Stats
	st.Count = len(s.Detours)
	perCore := map[int32]int64{}
	for _, d := range s.Detours {
		if d.Dur > st.MaxDur {
			st.MaxDur = d.Dur
		}
		st.TotalDur += d.Dur
		perCore[d.Core] += d.Dur
	}
	if st.Count > 0 {
		st.MeanDur = float64(st.TotalDur) / float64(st.Count)
	}
	for _, v := range perCore {
		if v > st.ByCoreMax {
			st.ByCoreMax = v
		}
	}
	if s.Window > 0 && s.Cores > 0 {
		st.NoisePct = 100 * float64(st.TotalDur) / (float64(s.Window) * float64(s.Cores))
	}
	return st
}

// CoreDetours returns the detours observed on one core, in time order.
func (s *Signature) CoreDetours(core int32) []Detour {
	var out []Detour
	for _, d := range s.Detours {
		if d.Core == core {
			out = append(out, d)
		}
	}
	return out
}

// MaxDetoursBySource returns, per source label, the maximum single
// detour duration — the quantity the paper reads off Fig. 2 ("the
// tallest bars ... represent the cost of decoding and logging").
func (s *Signature) MaxDetoursBySource() map[string]int64 {
	out := map[string]int64{}
	for _, d := range s.Detours {
		if d.Dur > out[d.Source] {
			out[d.Source] = d.Dur
		}
	}
	return out
}

// steal is an internal raw interruption before detection.
type steal struct {
	start, dur int64
	core       int32
	source     string
}

// Run simulates the node and returns the detected noise signature.
func Run(cfg Config) (*Signature, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	// Preallocate: background ticks dominate the count.
	est := int(int64(cfg.Cores)*(cfg.Duration/cfg.TickPeriod+cfg.Duration/cfg.SchedPeriod)) + 1024
	steals := make([]steal, 0, est)

	jitter := func(base int64, frac float64) int64 {
		span := float64(base) * frac
		return base + int64((src.Float64()*2-1)*span)
	}

	// Background OS noise on every core.
	for core := int32(0); core < int32(cfg.Cores); core++ {
		phase := int64(src.Float64() * float64(cfg.TickPeriod))
		for t := phase; t < cfg.Duration; t += cfg.TickPeriod {
			steals = append(steals, steal{start: t, dur: jitter(cfg.TickCost, 0.3), core: core, source: "tick"})
		}
		phase = int64(src.Float64() * float64(cfg.SchedPeriod))
		for t := phase; t < cfg.Duration; t += cfg.SchedPeriod {
			steals = append(steals, steal{start: t, dur: jitter(cfg.SchedCost, 0.4), core: core, source: "sched"})
		}
	}

	// Injection-driven activity.
	if cfg.Mode != Native {
		injection := 0
		// CMCI storm state (Software mode with StormThreshold > 0).
		var cmciTimes []int64 // recent CMCI deliveries
		stormUntil := int64(-1)
		for t := cfg.InjectPeriod; t < cfg.Duration; t += cfg.InjectPeriod {
			// The injector utility runs on core 0 and configures EINJ
			// through sysfs in every non-native mode.
			steals = append(steals, steal{start: t, dur: jitter(cfg.DryRunCost, 0.3), core: 0, source: "einj-config"})
			if cfg.Mode == DryRun {
				continue
			}
			trigger := t + cfg.DryRunCost
			switch cfg.Mode {
			case CorrectionOnly:
				// ECC correction stalls the accessing core only,
				// beneath the detector threshold at default settings.
				for b := 0; b < cfg.BurstLen; b++ {
					steals = append(steals, steal{start: trigger + int64(b)*cfg.BurstSpacing, dur: cfg.CorrectionCost, core: 0, source: "correction"})
				}
			case Software:
				// CMCI delivered to one core; the handler decodes and
				// logs there. Under a storm the kernel masks CMCI and
				// polls instead.
				pollStart := int64(-1)
				for b := 0; b < cfg.BurstLen; b++ {
					at := trigger + int64(b)*cfg.BurstSpacing
					if cfg.StormThreshold > 0 && at < stormUntil {
						// Storm active: the error is picked up by the
						// next poll, no per-event interrupt.
						continue
					}
					core := int32(injection % cfg.Cores)
					steals = append(steals, steal{start: at, dur: jitter(cfg.CMCICost, 0.1), core: core, source: "cmci"})
					if cfg.StormThreshold > 0 {
						cmciTimes = append(cmciTimes, at)
						recent := 0
						for _, ct := range cmciTimes {
							if at-ct <= int64(1e9) {
								recent++
							}
						}
						if recent >= cfg.StormThreshold {
							// Mask CMCI until the burst is over plus a
							// quiet second, and poll through the storm.
							stormUntil = trigger + int64(cfg.BurstLen)*cfg.BurstSpacing + int64(1e9)
							pollStart = at + cfg.PollInterval
						}
					}
					injection++
				}
				if pollStart >= 0 {
					for at := pollStart; at < stormUntil && at < cfg.Duration; at += cfg.PollInterval {
						steals = append(steals, steal{start: at, dur: jitter(cfg.PollCost, 0.1), core: 0, source: "cmci-poll"})
					}
				}
				continue
			case Firmware:
				// SMI halts all cores while the processor is in SMM;
				// every CE in a burst raises its own SMI.
				for b := 0; b < cfg.BurstLen; b++ {
					at := trigger + int64(b)*cfg.BurstSpacing
					smi := jitter(cfg.SMICost, 0.05)
					for core := int32(0); core < int32(cfg.Cores); core++ {
						steals = append(steals, steal{start: at, dur: smi, core: core, source: "smi"})
					}
					// Every Nth CE the firmware decodes and logs, still
					// in SMM: all cores remain halted.
					if (injection+1)%cfg.FirmwareThreshold == 0 {
						dec := jitter(cfg.DecodeCost, 0.05)
						for core := int32(0); core < int32(cfg.Cores); core++ {
							steals = append(steals, steal{start: at + smi, dur: dec, core: core, source: "decode"})
						}
					}
					injection++
				}
				continue
			}
			injection++
		}
	}

	return detect(cfg, steals), nil
}

// detect runs the selfish-style detector: per core, coalesce overlapping
// steals and report every resulting detour whose duration is at least
// the threshold.
func detect(cfg Config, steals []steal) *Signature {
	sort.Slice(steals, func(i, j int) bool {
		if steals[i].core != steals[j].core {
			return steals[i].core < steals[j].core
		}
		return steals[i].start < steals[j].start
	})
	sig := &Signature{Mode: cfg.Mode, Cores: cfg.Cores, Window: cfg.Duration}
	i := 0
	for i < len(steals) {
		cur := steals[i]
		end := cur.start + cur.dur
		src := cur.source
		maxDur := cur.dur
		j := i + 1
		for j < len(steals) && steals[j].core == cur.core && steals[j].start <= end {
			if steals[j].start+steals[j].dur > end {
				end = steals[j].start + steals[j].dur
			}
			if steals[j].dur > maxDur {
				maxDur = steals[j].dur
				src = steals[j].source
			}
			j++
		}
		if dur := end - cur.start; dur >= cfg.Threshold {
			start := cur.start
			if cfg.SampleLoopNs > 0 {
				// Sampled detection: the gap is measured between the
				// last read before the steal and the first read after
				// it, inflating the duration by one loop iteration and
				// snapping the start to the sample grid.
				start -= start % cfg.SampleLoopNs
				dur += cfg.SampleLoopNs
			}
			sig.Detours = append(sig.Detours, Detour{Start: start, Dur: dur, Core: cur.core, Source: src})
		}
		i = j
	}
	// Present in time order across cores, as selfish traces are plotted.
	sort.Slice(sig.Detours, func(i, j int) bool {
		if sig.Detours[i].Start != sig.Detours[j].Start {
			return sig.Detours[i].Start < sig.Detours[j].Start
		}
		return sig.Detours[i].Core < sig.Detours[j].Core
	})
	return sig
}

// PerEventCost estimates the per-CE handling cost implied by a
// signature: the mean duration of injection-caused detours (sources
// other than background noise), the number the paper feeds into its
// large-scale simulations (150 ns hardware, ~775 us software, ~133 ms
// firmware amortized).
func (s *Signature) PerEventCost() (mean float64, events int) {
	var total int64
	for _, d := range s.Detours {
		switch d.Source {
		case "correction", "cmci", "smi", "decode":
			total += d.Dur
			events++
		}
	}
	if s.Mode == Firmware {
		// Firmware cost is amortized per CE: SMI every event plus
		// decode every Nth; divide total stolen time on one core by the
		// CE count. Count CEs as the number of SMI detours on core 0.
		var ces int
		var coreTotal int64
		for _, d := range s.Detours {
			if d.Core != 0 {
				continue
			}
			switch d.Source {
			case "smi", "decode":
				// Adjacent SMI+decode steals coalesce into a single
				// detour labelled "decode"; each such detour still
				// corresponds to exactly one CE.
				coreTotal += d.Dur
				ces++
			}
		}
		if ces == 0 {
			return 0, 0
		}
		return float64(coreTotal) / float64(ces), ces
	}
	if events == 0 {
		return 0, 0
	}
	return float64(total) / float64(events), events
}
