package mca

import (
	"testing"
	"testing/quick"
)

const (
	us = int64(1000)
	ms = int64(1000 * 1000)
	s  = int64(1000 * 1000 * 1000)
)

func run(t *testing.T, cfg Config) *Signature {
	t.Helper()
	sig, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return sig
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Native, DryRun, CorrectionOnly, Software, Firmware} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode parsed")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Defaults().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if err := (Config{Cores: -1}).Validate(); err == nil {
		t.Fatal("negative cores accepted")
	}
	if _, err := Run(Config{Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Mode: Firmware, Duration: 60 * s, Cores: 8}
	a := run(t, cfg)
	b := run(t, cfg)
	if len(a.Detours) != len(b.Detours) {
		t.Fatalf("detour counts differ: %d vs %d", len(a.Detours), len(b.Detours))
	}
	for i := range a.Detours {
		if a.Detours[i] != b.Detours[i] {
			t.Fatalf("detour %d differs", i)
		}
	}
}

func TestNativeSignatureIsSmall(t *testing.T) {
	sig := run(t, Config{Seed: 1, Mode: Native, Cores: 8})
	st := sig.ComputeStats()
	if st.Count == 0 {
		t.Fatal("no background noise at all")
	}
	// Background noise: ticks of a few microseconds; nothing near the
	// CMCI cost.
	if st.MaxDur >= 100*us {
		t.Fatalf("native noise has a %dns detour, implausibly large", st.MaxDur)
	}
	// Paper: native noise is a fraction of a percent of CPU time.
	if st.NoisePct > 1.0 {
		t.Fatalf("native noise %.3f%%, want < 1%%", st.NoisePct)
	}
}

func TestDryRunMatchesNative(t *testing.T) {
	// Fig. 2a vs 2b: configuring injection adds no significant noise.
	native := run(t, Config{Seed: 2, Mode: Native, Cores: 8}).ComputeStats()
	dry := run(t, Config{Seed: 2, Mode: DryRun, Cores: 8}).ComputeStats()
	if dry.MaxDur > 10*native.MaxDur {
		t.Fatalf("dry-run max detour %d far above native %d", dry.MaxDur, native.MaxDur)
	}
	if dry.NoisePct > 2*native.NoisePct+0.01 {
		t.Fatalf("dry-run noise %.4f%% vs native %.4f%%", dry.NoisePct, native.NoisePct)
	}
}

func TestCorrectionOnlyInvisible(t *testing.T) {
	// The 150 ns correction latency is at the detection threshold; the
	// signature must look like native + einj-config only.
	sig := run(t, Config{Seed: 3, Mode: CorrectionOnly, Cores: 8})
	for _, d := range sig.Detours {
		if d.Source == "correction" && d.Dur > 1*us {
			t.Fatalf("correction-only produced a %dns detour", d.Dur)
		}
	}
	st := sig.ComputeStats()
	if st.MaxDur >= 100*us {
		t.Fatalf("correction-only max detour %d, want background scale", st.MaxDur)
	}
}

func TestSoftwareSignature(t *testing.T) {
	// Fig. 2c: tallest bars ~700 us at the injection period.
	cfg := Config{Seed: 4, Mode: Software, Duration: 120 * s, Cores: 8}
	sig := run(t, cfg)
	maxBy := sig.MaxDetoursBySource()
	cmci := maxBy["cmci"]
	if cmci < 500*us || cmci > 900*us {
		t.Fatalf("CMCI detour %dns, want ~700us", cmci)
	}
	// One CMCI detour per injection: 11 injections in 120s at 10s.
	count := 0
	for _, d := range sig.Detours {
		if d.Source == "cmci" {
			count++
		}
	}
	if count != 11 {
		t.Fatalf("CMCI detours = %d, want 11", count)
	}
}

func TestFirmwareSignature(t *testing.T) {
	// Fig. 2d: ~7 ms SMI bars every injection, ~500 ms decode bars
	// every 10th injection (i.e. every 100 s).
	cfg := Config{Seed: 5, Mode: Firmware, Duration: 210 * s, Cores: 8}
	sig := run(t, cfg)
	maxBy := sig.MaxDetoursBySource()
	if smi := maxBy["smi"]; smi < 5*ms || smi > 9*ms {
		t.Fatalf("SMI detour %dns, want ~7ms", smi)
	}
	if dec := maxBy["decode"]; dec < 400*ms || dec > 600*ms {
		t.Fatalf("decode detour %dns, want ~500ms", dec)
	}
	// 20 injections in 210 s; decodes at injection 10 and 20.
	decodes := 0
	for _, d := range sig.Detours {
		if d.Source == "decode" && d.Core == 0 {
			decodes++
		}
	}
	if decodes != 2 {
		t.Fatalf("decode detours on core 0 = %d, want 2", decodes)
	}
}

func TestSMIHaltsAllCores(t *testing.T) {
	cfg := Config{Seed: 6, Mode: Firmware, Cores: 8, Duration: 15 * s}
	sig := run(t, cfg)
	// The single injection at t=10s must produce an SMI detour on all 8
	// cores.
	cores := map[int32]bool{}
	for _, d := range sig.Detours {
		if d.Source == "smi" {
			cores[d.Core] = true
		}
	}
	if len(cores) != 8 {
		t.Fatalf("SMI observed on %d cores, want all 8", len(cores))
	}
}

func TestCMCIHitsOneCore(t *testing.T) {
	cfg := Config{Seed: 7, Mode: Software, Cores: 8, Duration: 15 * s}
	sig := run(t, cfg)
	cores := map[int32]bool{}
	for _, d := range sig.Detours {
		if d.Source == "cmci" {
			cores[d.Core] = true
		}
	}
	if len(cores) != 1 {
		t.Fatalf("CMCI observed on %d cores for one injection, want 1", len(cores))
	}
}

func TestPerEventCostSoftware(t *testing.T) {
	sig := run(t, Config{Seed: 8, Mode: Software, Duration: 120 * s, InjectPeriod: 2 * s, Cores: 8})
	mean, events := sig.PerEventCost()
	if events == 0 {
		t.Fatal("no events")
	}
	if mean < 500*float64(us) || mean > 900*float64(us) {
		t.Fatalf("software per-event cost %.0fns, want ~700us", mean)
	}
}

func TestPerEventCostFirmwareAmortized(t *testing.T) {
	// 7ms per CE plus 500ms every 10th: amortized ~57ms per CE — the
	// same order as the 133ms/event the paper takes from Gottscho et
	// al.; both are "tens to low hundreds of ms".
	sig := run(t, Config{Seed: 9, Mode: Firmware, Duration: 200 * s, InjectPeriod: 2 * s, Cores: 8})
	mean, events := sig.PerEventCost()
	if events < 90 {
		t.Fatalf("events = %d, want ~99", events)
	}
	if mean < 30*float64(ms) || mean > 130*float64(ms) {
		t.Fatalf("firmware amortized cost %.1fms, want tens of ms", mean/float64(ms))
	}
}

func TestCoreDetoursFilter(t *testing.T) {
	sig := run(t, Config{Seed: 10, Mode: Native, Cores: 4, Duration: 1 * s})
	for core := int32(0); core < 4; core++ {
		for _, d := range sig.CoreDetours(core) {
			if d.Core != core {
				t.Fatalf("CoreDetours(%d) returned core %d", core, d.Core)
			}
		}
	}
}

func TestDetoursSortedAndAboveThreshold(t *testing.T) {
	cfg := Config{Seed: 11, Mode: Firmware, Duration: 60 * s, Cores: 8}
	sig := run(t, cfg)
	last := int64(-1)
	for _, d := range sig.Detours {
		if d.Start < last {
			t.Fatal("detours not in time order")
		}
		last = d.Start
		if d.Dur < 150 {
			t.Fatalf("detour below threshold reported: %dns", d.Dur)
		}
		if d.Start < 0 || d.Start > cfg.Duration {
			t.Fatalf("detour outside window: %d", d.Start)
		}
	}
}

// Property: the detector never reports overlapping detours on one core.
func TestQuickNoOverlappingDetours(t *testing.T) {
	f := func(seed uint64, modeSel uint8) bool {
		mode := []Mode{Native, DryRun, CorrectionOnly, Software, Firmware}[modeSel%5]
		sig, err := Run(Config{Seed: seed, Mode: mode, Cores: 4, Duration: 30 * s})
		if err != nil {
			return false
		}
		perCore := map[int32]int64{}
		ends := map[int32]int64{}
		for _, d := range sig.Detours {
			if d.Start < ends[d.Core] {
				return false
			}
			ends[d.Core] = d.Start + d.Dur
			perCore[d.Core] += d.Dur
		}
		// Steal on any core cannot exceed the window by more than one
		// trailing event.
		for _, v := range perCore {
			if v > sig.Window+600*ms {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunFirmware(b *testing.B) {
	cfg := Config{Seed: 1, Mode: Firmware, Duration: 120 * s}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
