package mca

import "testing"

// countSource tallies detours by source label.
func countSource(sig *Signature, source string) int {
	n := 0
	for _, d := range sig.Detours {
		if d.Source == source {
			n++
		}
	}
	return n
}

func TestBurstInjection(t *testing.T) {
	// One injection point (15s window, 10s period), burst of 5 CEs.
	cfg := Config{
		Seed: 1, Mode: Software, Cores: 8, Duration: 15 * s,
		BurstLen: 5, BurstSpacing: 10 * ms,
	}
	sig := run(t, cfg)
	if got := countSource(sig, "cmci"); got != 5 {
		t.Fatalf("burst of 5 produced %d CMCI detours", got)
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := Run(Config{Mode: Software, BurstLen: -1}); err == nil {
		t.Fatal("negative burst length accepted")
	}
	if _, err := Run(Config{Mode: Software, StormThreshold: -1}); err == nil {
		t.Fatal("negative storm threshold accepted")
	}
}

func TestStormThrottlesCMCI(t *testing.T) {
	// A 100-error avalanche with storm threshold 5: at most 5 CMCIs,
	// then polling takes over.
	base := Config{
		Seed: 2, Mode: Software, Cores: 8, Duration: 15 * s,
		BurstLen: 100, BurstSpacing: 5 * ms,
	}
	unthrottled := run(t, base)
	throttled := base
	throttled.StormThreshold = 5
	sig := run(t, throttled)

	cmci := countSource(sig, "cmci")
	if cmci > 5 {
		t.Fatalf("storm allowed %d CMCIs, threshold 5", cmci)
	}
	if countSource(sig, "cmci-poll") == 0 {
		t.Fatal("no poll detours during the storm")
	}
	// The whole point: throttling caps the stolen time.
	if sig.ComputeStats().TotalDur >= unthrottled.ComputeStats().TotalDur {
		t.Fatalf("throttling did not reduce steal: %d vs %d",
			sig.ComputeStats().TotalDur, unthrottled.ComputeStats().TotalDur)
	}
}

func TestStormRecoversBetweenInjections(t *testing.T) {
	// Two injection points 10s apart, each a 20-error storm: CMCI must
	// be re-enabled after the quiet period, so both bursts start with
	// interrupts.
	cfg := Config{
		Seed: 3, Mode: Software, Cores: 8, Duration: 25 * s,
		BurstLen: 20, BurstSpacing: 10 * ms, StormThreshold: 4,
	}
	sig := run(t, cfg)
	// CMCIs from both bursts: up to 4 each.
	first, second := 0, 0
	for _, d := range sig.Detours {
		if d.Source != "cmci" {
			continue
		}
		if d.Start < 15*s {
			first++
		} else {
			second++
		}
	}
	if first == 0 || second == 0 {
		t.Fatalf("storm state leaked across quiet periods: first=%d second=%d", first, second)
	}
	if first > 4 || second > 4 {
		t.Fatalf("threshold not enforced per burst: first=%d second=%d", first, second)
	}
}

func TestNoStormBelowThreshold(t *testing.T) {
	// Burst of 3 with threshold 10: storm never triggers, no polls.
	cfg := Config{
		Seed: 4, Mode: Software, Cores: 8, Duration: 15 * s,
		BurstLen: 3, BurstSpacing: 50 * ms, StormThreshold: 10,
	}
	sig := run(t, cfg)
	if countSource(sig, "cmci") != 3 {
		t.Fatalf("cmci count %d, want 3", countSource(sig, "cmci"))
	}
	if countSource(sig, "cmci-poll") != 0 {
		t.Fatal("polls without a storm")
	}
}

func TestBurstFirmwareUnaffectedByStormConfig(t *testing.T) {
	// Storm handling is CMCI-specific; firmware bursts still SMI every
	// event.
	cfg := Config{
		Seed: 5, Mode: Firmware, Cores: 4, Duration: 15 * s,
		BurstLen: 5, BurstSpacing: 50 * ms, StormThreshold: 2,
	}
	sig := run(t, cfg)
	// SMIs within a burst coalesce only if they overlap (7ms each at
	// 50ms spacing: no overlap): 5 SMIs on each core, one of them
	// absorbed into the decode detour when the threshold fires.
	smi := 0
	for _, d := range sig.CoreDetours(0) {
		if d.Source == "smi" || d.Source == "decode" {
			smi++
		}
	}
	if smi != 5 {
		t.Fatalf("firmware burst produced %d SMI/decode detours on core 0, want 5", smi)
	}
}

func TestSampledDetectorQuantizes(t *testing.T) {
	base := Config{Seed: 6, Mode: Software, Cores: 2, Duration: 15 * s}
	ideal := run(t, base)
	sampled := base
	sampled.SampleLoopNs = 100
	sig := run(t, sampled)
	if len(sig.Detours) != len(ideal.Detours) {
		t.Fatalf("sampling changed detour count: %d vs %d", len(sig.Detours), len(ideal.Detours))
	}
	for i := range sig.Detours {
		d, want := sig.Detours[i], ideal.Detours[i]
		if d.Dur != want.Dur+100 {
			t.Fatalf("detour %d: sampled dur %d, want ideal+loop %d", i, d.Dur, want.Dur+100)
		}
		if d.Start%100 != 0 {
			t.Fatalf("detour %d start %d not on the sample grid", i, d.Start)
		}
		if want.Start-d.Start >= 100 || d.Start > want.Start {
			t.Fatalf("detour %d start %d too far from ideal %d", i, d.Start, want.Start)
		}
	}
}

func TestSampledDetectorNearThreshold(t *testing.T) {
	// A steal just below the threshold stays invisible regardless of
	// sampling (threshold applies to the true steal, quantization only
	// inflates the report).
	cfg := Config{
		Seed: 7, Mode: CorrectionOnly, Cores: 1, Duration: 15 * s,
		CorrectionCost: 149, SampleLoopNs: 50,
		TickPeriod: 1 << 40, SchedPeriod: 1 << 40, // silence background
	}
	sig := run(t, cfg)
	for _, d := range sig.Detours {
		if d.Source == "correction" {
			t.Fatalf("sub-threshold correction steal reported: %+v", d)
		}
	}
}
