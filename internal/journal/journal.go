// Package journal is the service tier's write-ahead log: an
// append-only sequence of CRC-framed records spread across rotating
// segment files, with batched fsync and a deterministic, corruption-
// tolerant replay. The jobs queue journals job lifecycles through it so
// a killed daemon re-enqueues unfinished work, and the cluster
// coordinator journals sweep plans, lease grants and completion reports
// so a restart re-offers only unfinished cells (docs/DURABILITY.md).
//
// On-disk layout: dir/wal-00000001.seg, wal-00000002.seg, ... Each
// record is framed as
//
//	[4 bytes little-endian payload length]
//	[4 bytes little-endian IEEE CRC32 of the payload]
//	[payload]
//
// A writer appends to the highest-numbered segment, rotating to a new
// file once SegmentBytes is exceeded. fsync is batched: the file is
// synced after every SyncEvery appends (and on Sync/Close/rotation), so
// a machine crash loses at most the unsynced tail while a process kill
// (SIGKILL) loses nothing the write(2) calls completed — the page cache
// survives the process.
//
// Replay reads segments in order and is tolerant by construction: a
// record cut short by a segment's end is the expected shape of a crash
// mid-append — tolerated (and truncated away) in ANY segment, because
// restarts append to new segments and may leave an old crash's tail
// behind newer files; a CRC mismatch on a whole record, or an
// impossible length, is corruption, and the offending segment is
// quarantined (renamed to *.corrupt) and skipped rather than crashing
// recovery. Both outcomes are counted so /metrics can surface them.
//
// The log does not grow per restart: Open reuses a trailing empty
// segment instead of minting a new file, and after a recovery has
// re-journaled its full live state through a new writer, CompactBefore
// drops the pre-restart segments — their records are by then only
// terminally-resolved history.
//
// The package itself never reads a clock or draws randomness: replayed
// state is a pure function of the bytes on disk, which is what makes
// "same WAL, same recovered state" testable.
package journal

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
)

// segPrefix and segSuffix frame segment file names: wal-%08d.seg.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// headerBytes is the fixed per-record framing overhead.
const headerBytes = 8

// MaxRecordBytes bounds one record's payload (16 MiB). A length field
// beyond it during replay is treated as corruption, not an allocation
// request — a flipped bit in the length must not ask for gigabytes.
const MaxRecordBytes = 16 << 20

// Options tunes a Writer.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size; <= 0 selects 4 MiB.
	SegmentBytes int64
	// SyncEvery batches fsync: the segment is synced once this many
	// appends accumulate (and always on Sync, Close and rotation).
	// <= 0 selects 64; 1 syncs every append.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	return o
}

// Stats counts a writer's activity since Open.
type Stats struct {
	// Segments is the number of live segment files in the directory.
	Segments int `json:"segments"`
	// SegmentBytes is the size of the segment currently appended to.
	SegmentBytes int64 `json:"segment_bytes"`
	// Appends counts records appended.
	Appends uint64 `json:"appends"`
	// Syncs counts fsync calls issued.
	Syncs uint64 `json:"syncs"`
	// Rotations counts segment rollovers.
	Rotations uint64 `json:"rotations"`
	// AppendErrors counts appends that failed (disk error or injected
	// fault); the caller degraded to lower durability, not to a crash.
	AppendErrors uint64 `json:"append_errors"`
	// Compacted counts pre-restart segments removed by CompactBefore
	// after their contents were re-journaled through this writer.
	Compacted uint64 `json:"compacted"`
	// DirSyncs counts directory fsyncs issued after segment creation
	// and compaction, making those directory-entry changes durable.
	DirSyncs uint64 `json:"dir_syncs"`
}

// Writer appends records to the log. Construct with Open; methods are
// safe for concurrent use.
type Writer struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segIndex int
	segSize  int64
	segCount int
	pending  int // appends since last sync
	// firstIndex is the lowest segment index this writer owns — the
	// compaction floor: CompactBefore never touches this segment or
	// anything above it.
	firstIndex int

	appends   uint64
	syncs     uint64
	rotations uint64
	appendErr uint64
	compacted uint64
	dirSyncs  uint64
}

// syncDir fsyncs a directory so preceding creates, renames or removes
// of its entries survive a crash: data fsyncs alone do not persist the
// directory entry that names the file, and a crash between the two can
// resurface a removed segment or drop a freshly created one.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open creates dir if needed and opens a writer positioned after the
// existing log: appends go to a fresh segment numbered above every
// segment already present, so recovery never has to distinguish old
// bytes from new ones inside a file. One exception keeps restarts from
// minting files forever: a trailing EMPTY segment (left by an Open that
// never appended) is reused, since it holds no old bytes to confuse.
func Open(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts.withDefaults(), segCount: len(segs)}
	if n := len(segs); n > 0 {
		last := segs[n-1]
		w.segIndex = last.index
		path := filepath.Join(dir, last.name)
		if info, err := os.Stat(path); err == nil && info.Size() == 0 {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("journal: reopen segment: %w", err)
			}
			w.f = f
			w.firstIndex = last.index
			return w, nil
		}
	}
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	// The first segment is not a rotation, it is the opening position.
	w.rotations = 0
	w.firstIndex = w.segIndex
	return w, nil
}

// segment is one discovered log file.
type segment struct {
	index int
	name  string
}

// segments lists the live segment files in dir, sorted by index.
// Quarantined (*.corrupt) files are ignored.
func segments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: read %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		var idx int
		if _, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &idx); err != nil {
			continue
		}
		if name != segName(idx) {
			continue
		}
		segs = append(segs, segment{index: idx, name: name})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

func segName(index int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// rotateLocked syncs and closes the current segment and opens the next
// one. w.mu must be held.
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		if err := w.syncLocked(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("journal: close segment: %w", err)
		}
		w.rotations++
	}
	w.segIndex++
	path := filepath.Join(w.dir, segName(w.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create segment: %w", err)
	}
	// Crash ordering: the directory entry naming the new segment must
	// be durable before any record in it is — otherwise a crash after
	// an acknowledged append could lose the whole segment while its
	// predecessor's close is already on disk.
	if err := syncDir(w.dir); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%v; close: %v", err, cerr)
		}
		return fmt.Errorf("journal: create segment: %w", err)
	}
	w.dirSyncs++
	w.f = f
	w.segSize = 0
	w.segCount++
	return nil
}

// Append frames payload with its length and CRC and writes it to the
// current segment, rotating first when the segment is full and syncing
// when the batch threshold is reached. ctx feeds the journal.append
// fault site; the write itself is not cancellable — a record is either
// fully appended or not appended at all (a torn write is healed by
// replay's tail handling).
func (w *Writer) Append(ctx context.Context, payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer closed")
	}
	if err := faultinject.Fire(ctx, faultinject.SiteJournalAppend); err != nil {
		w.appendErr++
		return fmt.Errorf("journal: append: %w", err)
	}
	if w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.appendErr++
			return err
		}
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	rec := make([]byte, 0, headerBytes+len(payload))
	rec = append(rec, hdr[:]...)
	rec = append(rec, payload...)
	if _, err := w.f.Write(rec); err != nil {
		w.appendErr++
		return fmt.Errorf("journal: append: %w", err)
	}
	w.segSize += int64(len(rec))
	w.appends++
	w.pending++
	if w.pending >= w.opts.SyncEvery {
		if err := w.syncLocked(); err != nil {
			w.appendErr++
			return err
		}
	}
	return nil
}

// Sync flushes the current segment to stable storage, ending the
// current fsync batch. ctx feeds the journal.sync fault site.
func (w *Writer) Sync(ctx context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := faultinject.Fire(ctx, faultinject.SiteJournalSync); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return w.syncLocked()
}

// syncLocked fsyncs when a batch is pending. w.mu must be held.
func (w *Writer) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	w.pending = 0
	w.syncs++
	return nil
}

// CompactBefore deletes every live segment numbered below the first
// one this writer owns, returning how many were removed. Call it ONLY
// after the caller has re-journaled its full live state through this
// writer — at that point the older segments hold nothing a replay
// needs, only terminally-resolved history, and without compaction they
// would accumulate one (or more) per restart forever. The writer syncs
// first so the re-journaled snapshot is durable before its
// predecessors disappear; quarantined *.corrupt files are left behind
// as evidence.
func (w *Writer) CompactBefore() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("journal: writer closed")
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	segs, err := segments(w.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range segs {
		if s.index >= w.firstIndex {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, s.name)); err != nil {
			return removed, fmt.Errorf("journal: compact: %w", err)
		}
		removed++
		w.segCount--
		w.compacted++
	}
	// Crash ordering: the removals must reach the directory before the
	// caller forgets the re-journaled state is self-contained — without
	// this fsync a crash can resurface a removed segment, and replay
	// would double-apply history the snapshot already contains.
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, fmt.Errorf("journal: compact: %w", err)
		}
		w.dirSyncs++
	}
	return removed, nil
}

// Close syncs and closes the current segment; the writer cannot append
// afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Dir returns the directory the writer appends into.
func (w *Writer) Dir() string { return w.dir }

// Stats snapshots the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Segments:     w.segCount,
		SegmentBytes: w.segSize,
		Appends:      w.appends,
		Syncs:        w.syncs,
		Rotations:    w.rotations,
		AppendErrors: w.appendErr,
		Compacted:    w.compacted,
		DirSyncs:     w.dirSyncs,
	}
}
