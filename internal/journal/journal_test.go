package journal

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// collect replays dir into a slice of record copies.
func collect(t *testing.T, dir string) ([][]byte, ReplayStats) {
	t.Helper()
	var recs [][]byte
	st, err := Replay(context.Background(), dir, func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, rec)
		if err := w.Append(context.Background(), rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if st.Quarantined != 0 || st.TornTail {
		t.Fatalf("clean log reported damage: %+v", st)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(context.Background(), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Rotations == 0 {
		t.Fatalf("expected rotations with 64-byte segments, got %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened writer appends into a fresh, higher-numbered segment;
	// old records replay before new ones.
	w2, err := Open(dir, Options{SegmentBytes: 64, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(context.Background(), []byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != 21 {
		t.Fatalf("replayed %d records, want 21", len(recs))
	}
	if string(recs[20]) != "after-reopen" {
		t.Fatalf("last record %q, want the post-reopen append", recs[20])
	}
}

func TestReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Append(context.Background(), []byte(fmt.Sprintf("r%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	first, _ := collect(t, dir)
	second, _ := collect(t, dir)
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("replay %d differs between passes", i)
		}
	}
}

// TestTornTailDiscarded truncates the final segment mid-record — what a
// crash during an append leaves — and expects a clean replay of every
// whole record plus the TornTail flag.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(context.Background(), []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	recs, st := collect(t, dir)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (torn 5th discarded)", len(recs))
	}
	if !st.TornTail {
		t.Fatal("TornTail not reported")
	}
	if st.Quarantined != 0 {
		t.Fatalf("torn tail must not quarantine: %+v", st)
	}
}

// TestTornTailInNonFinalSegment is the double-restart regression: a
// crash tears the tail of what was then the last segment, the restart
// appends into a NEW higher-numbered segment, and only then does the
// next replay run. The torn segment is no longer final — but its
// partial record is still a clean crash tail, so its whole records and
// everything after them must replay; quarantining the segment would
// silently drop valid history.
func TestTornTailInNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(context.Background(), []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	torn := filepath.Join(dir, segs[0].name)
	info, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Restart without replaying first (the pre-fix daemon ordering):
	// the writer opens a new segment above the torn one.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(context.Background(), []byte("new-0")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, st := collect(t, dir)
	if st.Quarantined != 0 {
		t.Fatalf("torn non-final segment quarantined: %+v", st)
	}
	if !st.TornTail {
		t.Fatal("TornTail not reported")
	}
	want := []string{"old-0", "old-1", "new-0"}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records %q, want %d", len(recs), recs, len(want))
	}
	for i, wantRec := range want {
		if string(recs[i]) != wantRec {
			t.Fatalf("record %d = %q, want %q", i, recs[i], wantRec)
		}
	}
	// The tail was truncated away: the next replay is clean and
	// byte-identical.
	recs2, st2 := collect(t, dir)
	if st2.TornTail || st2.Quarantined != 0 {
		t.Fatalf("torn tail not healed: %+v", st2)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("healed replay has %d records, want %d", len(recs2), len(recs))
	}
}

// TestOpenReusesEmptySegment: repeated Open/Close with no appends must
// not mint one segment file per restart.
func TestOpenReusesEmptySegment(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		w, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("idle reopens left %d segments, want 1 (%v)", len(segs), err)
	}
	// The reused segment accepts appends like a fresh one.
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("after-reuse")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != 1 || string(recs[0]) != "after-reuse" {
		t.Fatalf("replay after reuse: %q", recs)
	}
}

// TestCompactBefore: once the live state is re-journaled through a new
// writer, the pre-restart segments are removed and replay folds only
// the snapshot.
func TestCompactBefore(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(context.Background(), []byte(fmt.Sprintf("history-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(context.Background(), []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	removed, err := w2.CompactBefore()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("compacted %d segments, want 1", removed)
	}
	if st := w2.Stats(); st.Compacted != 1 || st.Segments != 1 {
		t.Fatalf("stats after compact: %+v", st)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := collect(t, dir)
	if len(recs) != 1 || string(recs[0]) != "snapshot" {
		t.Fatalf("replay after compact: %q", recs)
	}
	if st.Segments != 1 {
		t.Fatalf("live segments after compact: %+v", st)
	}
}

// TestCorruptSegmentQuarantined flips a payload byte in the first of
// two segments: the segment must be renamed *.corrupt and replay must
// continue with the next segment instead of failing.
func TestCorruptSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1}) // every append rotates
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("first-segment-record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("second-segment-record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments: %v (%d), want >= 2", err, len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes] ^= 0xff // corrupt the first payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, st := collect(t, dir)
	if st.Quarantined != 1 {
		t.Fatalf("quarantined %d segments, want 1", st.Quarantined)
	}
	if len(recs) != 1 || string(recs[0]) != "second-segment-record" {
		t.Fatalf("replay after quarantine: %q", recs)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt segment not renamed: %v", err)
	}
	// The quarantined segment stays excluded from later replays.
	recs2, st2 := collect(t, dir)
	if len(recs2) != 1 || st2.Quarantined != 0 {
		t.Fatalf("second replay saw %d records, %d quarantines", len(recs2), st2.Quarantined)
	}
}

// TestImpossibleLengthQuarantined writes a length field larger than
// MaxRecordBytes; replay must quarantine, never allocate it.
func TestImpossibleLengthQuarantined(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("also-good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0], data[1], data[2], data[3] = 0xff, 0xff, 0xff, 0x7f
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, st := collect(t, dir)
	if st.Quarantined != 1 || len(recs) != 1 {
		t.Fatalf("got %d records, %d quarantined; want 1 and 1", len(recs), st.Quarantined)
	}
}

func TestReplayEmptyOrMissingDir(t *testing.T) {
	recs, st := collect(t, filepath.Join(t.TempDir(), "never-created"))
	if len(recs) != 0 || st.Segments != 0 {
		t.Fatalf("missing dir replayed something: %+v", st)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(context.Background(), make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append accepted")
	}
}

// TestInjectedAppendFaultCounted arms the journal.append site and
// checks the failure is surfaced as an error and counted, with later
// appends unaffected.
func TestInjectedAppendFaultCounted(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	dir := t.TempDir()
	w, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteJournalAppend: {Kind: faultinject.KindError, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("faulted")); err == nil {
		t.Fatal("armed append did not fail")
	} else if !faultinject.IsInjected(err) {
		t.Fatalf("append error is not the injected fault: %v", err)
	}
	if err := w.Append(context.Background(), []byte("healed")); err != nil {
		t.Fatalf("append after budget exhausted: %v", err)
	}
	if st := w.Stats(); st.AppendErrors != 1 || st.Appends != 1 {
		t.Fatalf("stats after fault: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != 1 || string(recs[0]) != "healed" {
		t.Fatalf("replay after fault: %q", recs)
	}
}

// TestInjectedReplayFaultSurfaces arms journal.replay so recovery
// itself fails; the error must propagate (the caller decides whether to
// degrade), not panic.
func TestInjectedReplayFaultSurfaces(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteJournalReplay: {Kind: faultinject.KindError, Probability: 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(context.Background(), dir, func([]byte) error { return nil })
	if err == nil || !faultinject.IsInjected(err) {
		t.Fatalf("armed replay returned %v, want injected fault", err)
	}
}

// TestDirSyncsCounted pins the crash-ordering contract: every segment
// create and every compaction must be followed by a directory fsync,
// visible in Stats so an operator (and this test) can see the contract
// holding. Open mints one segment; a forced rotation mints another;
// CompactBefore's removal adds a third.
func TestDirSyncsCounted(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.DirSyncs != 1 {
		t.Fatalf("dir syncs after open: %+v", st)
	}
	// SegmentBytes=1 forces a rotation on the second append.
	for i := 0; i < 2; i++ {
		if err := w.Append(context.Background(), []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Rotations != 1 || st.DirSyncs != 2 {
		t.Fatalf("dir syncs after rotation: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(context.Background(), []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	removed, err := w2.CompactBefore()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("compacted %d segments, want 2", removed)
	}
	// One dir sync for w2's own segment create, one for the removals.
	if st := w2.Stats(); st.DirSyncs != 2 {
		t.Fatalf("dir syncs after compact: %+v", st)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
