package journal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// ReplayStats reports what a replay pass observed.
type ReplayStats struct {
	// Records is the number of valid records delivered to the callback.
	Records int `json:"records"`
	// Segments is the number of segment files read.
	Segments int `json:"segments"`
	// Quarantined counts segments renamed to *.corrupt because a record
	// failed its CRC (or had an impossible length) somewhere other than
	// the log's torn tail.
	Quarantined int `json:"quarantined"`
	// TornTail reports that the final segment ended mid-record — the
	// expected shape of a crash during an append; the partial record is
	// discarded and replay ends cleanly.
	TornTail bool `json:"torn_tail,omitempty"`
}

// Replay reads every live segment in dir in order and calls fn for each
// valid record. A torn record at the very tail of the final segment
// ends replay cleanly (that is what a crash mid-append leaves behind);
// a bad record anywhere else quarantines its segment — renamed to
// <segment>.corrupt, skipping the segment's remaining bytes — and
// replay continues with the next segment. Replay never invents order:
// records are delivered exactly as appended, so the same directory
// bytes always rebuild the same state.
//
// fn returning an error aborts replay with that error; corruption never
// does. ctx feeds the journal.replay fault site, fired once per
// segment.
func Replay(ctx context.Context, dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := segments(dir)
	if err != nil {
		// A missing directory is an empty log, not an error.
		if errors.Is(err, fs.ErrNotExist) {
			return st, nil
		}
		return st, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := faultinject.Fire(ctx, faultinject.SiteJournalReplay); err != nil {
			return st, fmt.Errorf("journal: replay %s: %w", seg.name, err)
		}
		tail, err := replaySegment(filepath.Join(dir, seg.name), last, &st, fn)
		if err != nil {
			return st, err
		}
		st.Segments++
		if tail {
			st.TornTail = true
		}
	}
	return st, nil
}

// replaySegment reads one segment. tornTail reports a partial record at
// the segment's end when it is the final segment; on any other framing
// damage the segment is quarantined.
func replaySegment(path string, last bool, st *ReplayStats, fn func([]byte) error) (tornTail bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: replay: %w", err)
	}
	defer f.Close()
	var hdr [headerBytes]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if errors.Is(err, io.EOF) {
			return false, nil // clean segment boundary
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return partialTail(path, last, st)
		}
		if err != nil {
			return false, fmt.Errorf("journal: replay %s: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxRecordBytes {
			// An impossible length is corruption wherever it appears: it
			// cannot be a torn append, because the header is written in
			// the same write(2) call as the payload and lengths are
			// validated before framing.
			return false, quarantine(path, st)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return partialTail(path, last, st)
			}
			return false, fmt.Errorf("journal: replay %s: %w", path, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			return false, quarantine(path, st)
		}
		st.Records++
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}

// partialTail handles a record cut short by EOF: expected at the final
// segment's tail, corruption anywhere else.
func partialTail(path string, last bool, st *ReplayStats) (bool, error) {
	if last {
		return true, nil
	}
	return false, quarantine(path, st)
}

// quarantine renames a damaged segment to <path>.corrupt so it is
// excluded from every later replay, and counts it. The rename is
// best-effort: a read-only filesystem still recovers, it just re-skips
// the bytes next time.
func quarantine(path string, st *ReplayStats) error {
	st.Quarantined++
	_ = os.Rename(path, path+".corrupt")
	return nil
}
