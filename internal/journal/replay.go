package journal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// ReplayStats reports what a replay pass observed.
type ReplayStats struct {
	// Records is the number of valid records delivered to the callback.
	Records int `json:"records"`
	// Segments is the number of segment files read.
	Segments int `json:"segments"`
	// Quarantined counts segments renamed to *.corrupt because a whole
	// record failed its CRC or carried an impossible length — damage a
	// crash cannot produce, only bit rot or tampering can.
	Quarantined int `json:"quarantined"`
	// TornTail reports that a segment ended mid-record — the expected
	// shape of a crash during an append. The partial record is
	// discarded (and truncated away, best effort) and the segment's
	// whole records all replay. A restart appends to a NEW segment, so
	// a crash's torn tail can later sit behind newer segments; it is a
	// clean tail wherever it is found, never corruption.
	TornTail bool `json:"torn_tail,omitempty"`
}

// Replay reads every live segment in dir in order and calls fn for each
// valid record. A record cut short by the segment's end is a torn tail
// — what a crash mid-append leaves behind — in any segment, because
// writers only ever append to a segment's end and every restart opens a
// new segment above the old ones: the partial record is discarded, the
// tail truncated to the last whole record (best effort, so the damage
// is reported once, not on every future replay), and the segment's
// valid records are all delivered. A CRC mismatch on a complete record,
// or an impossible length, is real corruption: the segment is
// quarantined — renamed to <segment>.corrupt, skipping its remaining
// bytes — and replay continues with the next segment. Replay never
// invents order: records are delivered exactly as appended, so the same
// directory bytes always rebuild the same state.
//
// fn returning an error aborts replay with that error; corruption never
// does. ctx feeds the journal.replay fault site, fired once per
// segment.
func Replay(ctx context.Context, dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := segments(dir)
	if err != nil {
		// A missing directory is an empty log, not an error.
		if errors.Is(err, fs.ErrNotExist) {
			return st, nil
		}
		return st, err
	}
	for _, seg := range segs {
		if err := faultinject.Fire(ctx, faultinject.SiteJournalReplay); err != nil {
			return st, fmt.Errorf("journal: replay %s: %w", seg.name, err)
		}
		tail, err := replaySegment(filepath.Join(dir, seg.name), &st, fn)
		if err != nil {
			return st, err
		}
		st.Segments++
		if tail {
			st.TornTail = true
		}
	}
	return st, nil
}

// replaySegment reads one segment. tornTail reports a partial record at
// the segment's end; a bad whole record quarantines the segment.
func replaySegment(path string, st *ReplayStats, fn func([]byte) error) (tornTail bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: replay: %w", err)
	}
	defer f.Close()
	var valid int64 // offset just past the last whole record
	var hdr [headerBytes]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if errors.Is(err, io.EOF) {
			return false, nil // clean segment boundary
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return true, truncateTornTail(path, valid)
		}
		if err != nil {
			return false, fmt.Errorf("journal: replay %s: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxRecordBytes {
			// An impossible length is corruption wherever it appears: it
			// cannot be a torn append, because the header is written in
			// the same write(2) call as the payload and lengths are
			// validated before framing.
			return false, quarantine(path, st)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return true, truncateTornTail(path, valid)
			}
			return false, fmt.Errorf("journal: replay %s: %w", path, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			return false, quarantine(path, st)
		}
		valid += headerBytes + int64(n)
		st.Records++
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}

// truncateTornTail heals a crash's torn tail by cutting the segment
// back to its last whole record. Best effort: on a read-only
// filesystem the partial record simply stays, and every replay keeps
// discarding it the same way.
func truncateTornTail(path string, valid int64) error {
	_ = os.Truncate(path, valid)
	return nil
}

// quarantine renames a damaged segment to <path>.corrupt so it is
// excluded from every later replay, and counts it. The rename is
// best-effort: a read-only filesystem still recovers, it just re-skips
// the bytes next time. The directory fsync after the rename is
// likewise best-effort, for the same reason — but when it does land it
// keeps a crash from resurrecting the damaged name and re-feeding the
// same bytes to every future replay.
func quarantine(path string, st *ReplayStats) error {
	st.Quarantined++
	_ = os.Rename(path, path+".corrupt")
	_ = syncDir(filepath.Dir(path))
	return nil
}
