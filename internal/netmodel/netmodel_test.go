package netmodel

import (
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for _, p := range []Params{CrayXC40(), InfiniBandEDR()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	bad := []Params{
		{L: -1},
		{O: -1},
		{Gap: -1},
		{GPerByte: -0.1},
		{OPerByte: -0.1},
		{S: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestZeroAndOneByteMessages(t *testing.T) {
	p := CrayXC40()
	for _, size := range []int64{0, 1} {
		if got := p.SendCPU(size); got != p.O {
			t.Fatalf("SendCPU(%d) = %d, want o=%d", size, got, p.O)
		}
		if got := p.Transit(size); got != p.L {
			t.Fatalf("Transit(%d) = %d, want L=%d", size, got, p.L)
		}
		if got := p.NICGap(size); got != p.Gap {
			t.Fatalf("NICGap(%d) = %d, want g=%d", size, got, p.Gap)
		}
	}
}

func TestByteCostsScale(t *testing.T) {
	p := CrayXC40()
	small := p.Transit(1024)
	big := p.Transit(1024 * 1024)
	if big <= small {
		t.Fatalf("transit not increasing with size: %d vs %d", small, big)
	}
	// (s-1)G dominates for 1 MiB at 0.2 ns/B: ~200 us.
	wantApprox := p.L + int64(0.2*float64(1024*1024-1))
	if big != wantApprox {
		t.Fatalf("Transit(1MiB) = %d, want %d", big, wantApprox)
	}
}

func TestEagerThreshold(t *testing.T) {
	p := CrayXC40()
	if !p.Eager(p.S) {
		t.Fatal("size == S should be eager")
	}
	if p.Eager(p.S + 1) {
		t.Fatal("size == S+1 should be rendezvous")
	}
}

func TestPingPongIsTwiceOneWay(t *testing.T) {
	p := CrayXC40()
	for _, size := range []int64{0, 8, 1024} {
		if p.PingPong(size) != 2*p.EagerLatency(size) {
			t.Fatalf("PingPong(%d) != 2*EagerLatency", size)
		}
	}
}

// Property: all cost functions are monotone non-decreasing in size and
// non-negative for valid parameter sets.
func TestQuickMonotone(t *testing.T) {
	p := CrayXC40()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.SendCPU(x) <= p.SendCPU(y) &&
			p.RecvCPU(x) <= p.RecvCPU(y) &&
			p.NICGap(x) <= p.NICGap(y) &&
			p.Transit(x) <= p.Transit(y) &&
			p.SendCPU(x) >= 0 && p.Transit(x) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
