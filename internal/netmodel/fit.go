package netmodel

import (
	"fmt"
	"math"
)

// PingPongSample is one measured (or simulated) round-trip.
type PingPongSample struct {
	// Size is the message size in bytes.
	Size int64
	// RTT is the round-trip time in nanoseconds.
	RTT int64
}

// FitResult is a least-squares fit of the eager ping-pong model
//
//	RTT(s) = Intercept + Slope * (s - 1)
//
// where, under LogGOPS, Intercept = 4o + 2L and Slope = 4O + 2G.
// Ping-pong alone cannot separate o from L or O from G (they only ever
// appear in these sums); Params applies a documented split.
type FitResult struct {
	// Intercept is the zero-byte round trip, ns (= 4o + 2L).
	Intercept float64
	// Slope is the per-byte cost, ns/byte (= 4O + 2G).
	Slope float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitPingPong performs an ordinary least-squares fit over the samples.
// It needs at least two distinct sizes.
func FitPingPong(samples []PingPongSample) (FitResult, error) {
	if len(samples) < 2 {
		return FitResult{}, fmt.Errorf("netmodel: need at least 2 samples, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		x := float64(s.Size - 1)
		y := float64(s.RTT)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return FitResult{}, fmt.Errorf("netmodel: all samples share one size; cannot fit a slope")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R^2 against the mean model.
	meanY := sy / n
	var ssTot, ssRes float64
	for _, s := range samples {
		x := float64(s.Size - 1)
		y := float64(s.RTT)
		pred := intercept + slope*x
		ssTot += (y - meanY) * (y - meanY)
		ssRes += (y - pred) * (y - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return FitResult{Intercept: intercept, Slope: slope, R2: r2}, nil
}

// Params converts the fit into a LogGOPS parameter set using a
// documented split: the per-message budget is divided as o = overheadShare
// * Intercept/4 per side... concretely, with share w in (0,1):
//
//	o = w * Intercept / 4        (CPU overhead per message)
//	L = (1-w) * Intercept / 2    (wire latency)
//	O = w * Slope / 4            (CPU cost per byte)
//	G = (1-w) * Slope / 2        (NIC occupancy per byte)
//
// which reconstructs Intercept = 4o + 2L and Slope = 4O + 2G exactly.
// The gap g and eager threshold S are not observable from ping-pong;
// callers provide them (sensible defaults: g = o + L/4, S = 8 KiB).
func (f FitResult) Params(overheadShare float64) (Params, error) {
	if overheadShare <= 0 || overheadShare >= 1 {
		return Params{}, fmt.Errorf("netmodel: overhead share must be in (0,1), got %v", overheadShare)
	}
	if f.Intercept < 0 || f.Slope < 0 {
		return Params{}, fmt.Errorf("netmodel: fit has negative components: %+v", f)
	}
	o := overheadShare * f.Intercept / 4
	l := (1 - overheadShare) * f.Intercept / 2
	obyte := overheadShare * f.Slope / 4
	gbyte := (1 - overheadShare) * f.Slope / 2
	p := Params{
		L:        int64(math.Round(l)),
		O:        int64(math.Round(o)),
		Gap:      int64(math.Round(o + l/4)),
		GPerByte: gbyte,
		OPerByte: obyte,
		S:        8192,
	}
	return p, p.Validate()
}
