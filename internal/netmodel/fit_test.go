package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitExactModel(t *testing.T) {
	// Samples generated from the closed-form ping-pong of a known
	// parameter set must recover Intercept = 4o+2L, Slope = 4O+2G.
	p := CrayXC40()
	var samples []PingPongSample
	for _, size := range []int64{1, 64, 512, 1024, 4096, 8192} {
		samples = append(samples, PingPongSample{Size: size, RTT: p.PingPong(size)})
	}
	fit, err := FitPingPong(samples)
	if err != nil {
		t.Fatal(err)
	}
	wantIntercept := float64(4*p.O + 2*p.L)
	wantSlope := 4*p.OPerByte + 2*p.GPerByte
	// Closed-form RTTs truncate per-byte costs to whole nanoseconds, so
	// the recovered intercept can be off by a few ns.
	if math.Abs(fit.Intercept-wantIntercept) > 5 {
		t.Fatalf("intercept %v, want %v", fit.Intercept, wantIntercept)
	}
	if math.Abs(fit.Slope-wantSlope)/wantSlope > 0.01 {
		t.Fatalf("slope %v, want %v", fit.Slope, wantSlope)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v on exact data", fit.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitPingPong(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := FitPingPong([]PingPongSample{{Size: 8, RTT: 1}}); err == nil {
		t.Fatal("single sample accepted")
	}
	same := []PingPongSample{{Size: 8, RTT: 1}, {Size: 8, RTT: 2}}
	if _, err := FitPingPong(same); err == nil {
		t.Fatal("single-size samples accepted")
	}
}

func TestFitParamsRoundTrip(t *testing.T) {
	fit := FitResult{Intercept: 7300, Slope: 0.68}
	p, err := fit.Params(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the observables.
	gotIntercept := float64(4*p.O + 2*p.L)
	gotSlope := 4*p.OPerByte + 2*p.GPerByte
	if math.Abs(gotIntercept-fit.Intercept) > 4 { // rounding of o and L
		t.Fatalf("reconstructed intercept %v, want %v", gotIntercept, fit.Intercept)
	}
	if math.Abs(gotSlope-fit.Slope) > 1e-9 {
		t.Fatalf("reconstructed slope %v, want %v", gotSlope, fit.Slope)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitParamsBadShare(t *testing.T) {
	fit := FitResult{Intercept: 1000, Slope: 0.5}
	for _, w := range []float64{0, 1, -0.5, 2} {
		if _, err := fit.Params(w); err == nil {
			t.Fatalf("share %v accepted", w)
		}
	}
}

func TestFitParamsNegativeFit(t *testing.T) {
	if _, err := (FitResult{Intercept: -5, Slope: 0.1}).Params(0.5); err == nil {
		t.Fatal("negative intercept accepted")
	}
}

func TestFitNoisyData(t *testing.T) {
	// Add +/-2% deterministic wobble; the fit should still land close.
	p := InfiniBandEDR()
	var samples []PingPongSample
	for i, size := range []int64{1, 128, 1024, 2048, 4096, 8192, 16384} {
		rtt := p.PingPong(size)
		wobble := 1 + 0.02*float64(i%3-1)
		samples = append(samples, PingPongSample{Size: size, RTT: int64(float64(rtt) * wobble)})
	}
	fit, err := FitPingPong(samples)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 4*p.OPerByte + 2*p.GPerByte
	if math.Abs(fit.Slope-wantSlope)/wantSlope > 0.1 {
		t.Fatalf("noisy slope %v, want ~%v", fit.Slope, wantSlope)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %v on mildly noisy data", fit.R2)
	}
}

// Property: fitting data generated from any valid parameter set
// recovers the observables.
func TestQuickFitRecovers(t *testing.T) {
	f := func(oRaw, lRaw uint16, obRaw, gbRaw uint8) bool {
		p := Params{
			L:        int64(lRaw) + 100,
			O:        int64(oRaw) + 100,
			Gap:      1000,
			OPerByte: float64(obRaw)/100 + 0.01,
			GPerByte: float64(gbRaw)/100 + 0.01,
			S:        1 << 30, // keep everything eager
		}
		var samples []PingPongSample
		for _, size := range []int64{1, 256, 4096, 65536} {
			samples = append(samples, PingPongSample{Size: size, RTT: p.PingPong(size)})
		}
		fit, err := FitPingPong(samples)
		if err != nil {
			return false
		}
		wantI := float64(4*p.O + 2*p.L)
		wantS := 4*p.OPerByte + 2*p.GPerByte
		return math.Abs(fit.Intercept-wantI) < 5 && math.Abs(fit.Slope-wantS)/wantS < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
