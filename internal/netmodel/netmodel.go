// Package netmodel defines LogGOPS network parameter sets and closed-form
// timing helpers used to validate the simulator.
//
// The LogGOPS model (Hoefler et al., "LogGOPSim") extends LogGP:
//
//	L — end-to-end network latency
//	o — CPU overhead per message (send and receive side)
//	g — gap between consecutive message injections on one NIC
//	G — gap per byte (inverse bandwidth, NIC occupancy)
//	O — CPU overhead per byte (memory copies)
//	S — eager/rendezvous threshold: messages larger than S synchronize
//	    sender and receiver before the payload moves
//
// All times are int64 nanoseconds, matching the simulator's clock, except
// the per-byte quantities which are float64 ns/byte (sub-nanosecond per
// byte is the normal regime for modern networks).
package netmodel

import "fmt"

// Params is a LogGOPS parameter set.
type Params struct {
	// L is the wire latency in nanoseconds.
	L int64
	// O_ is named o in the literature: per-message CPU overhead (ns).
	O int64
	// G_ is named g in the literature: per-message NIC gap (ns).
	Gap int64
	// GPerByte is G: NIC occupancy per byte (ns/byte).
	GPerByte float64
	// OPerByte is O: CPU overhead per byte (ns/byte).
	OPerByte float64
	// S is the eager/rendezvous threshold in bytes. Messages with
	// size > S use the rendezvous protocol.
	S int64
}

// CrayXC40 returns parameters representative of the Cray XC40 (Aries)
// interconnect used for the paper's simulations (Ferreira et al.,
// "Characterizing MPI matching via trace-based simulation" report LogGP
// fits in this neighbourhood for Aries). Exact values differ across
// calibrations; shapes of the paper's results are insensitive to them.
func CrayXC40() Params {
	return Params{
		L:        1250, // 1.25 us
		O:        1200, // 1.2 us per-message CPU overhead
		Gap:      1600, // 1.6 us NIC gap
		GPerByte: 0.2,  // ~5 GB/s effective per-byte occupancy
		OPerByte: 0.07, // ~14 GB/s copy bandwidth
		S:        8192, // 8 KiB eager limit
	}
}

// InfiniBandEDR returns parameters representative of an EDR InfiniBand
// fabric; provided for sensitivity studies.
func InfiniBandEDR() Params {
	return Params{
		L:        1000,
		O:        900,
		Gap:      1100,
		GPerByte: 0.09,
		OPerByte: 0.05,
		S:        16384,
	}
}

// Validate reports an error when a parameter is out of range.
func (p Params) Validate() error {
	if p.L < 0 || p.O < 0 || p.Gap < 0 {
		return fmt.Errorf("netmodel: negative time parameter: %+v", p)
	}
	if p.GPerByte < 0 || p.OPerByte < 0 {
		return fmt.Errorf("netmodel: negative per-byte parameter: %+v", p)
	}
	if p.S < 0 {
		return fmt.Errorf("netmodel: negative eager threshold %d", p.S)
	}
	return nil
}

// byteCost converts a per-byte rate into integer nanoseconds for a
// message of the given size. LogGOPS charges (s-1) per-byte units per
// message; size-0 and size-1 messages cost nothing beyond fixed overheads.
func byteCost(rate float64, size int64) int64 {
	if size <= 1 {
		return 0
	}
	return int64(rate * float64(size-1))
}

// SendCPU returns the sender CPU busy time for a message of size bytes:
// o + (s-1)O.
func (p Params) SendCPU(size int64) int64 {
	return p.O + byteCost(p.OPerByte, size)
}

// RecvCPU returns the receiver CPU busy time for a message of size bytes.
// LogGOPS is symmetric: o + (s-1)O.
func (p Params) RecvCPU(size int64) int64 {
	return p.O + byteCost(p.OPerByte, size)
}

// NICGap returns the NIC occupancy for a message of size bytes:
// g + (s-1)G.
func (p Params) NICGap(size int64) int64 {
	return p.Gap + byteCost(p.GPerByte, size)
}

// Transit returns the network transit time for a message of size bytes:
// L + (s-1)G. The (s-1)G term models pipelined byte arrival: the last
// byte lands one NIC occupancy after the first.
func (p Params) Transit(size int64) int64 {
	return p.L + byteCost(p.GPerByte, size)
}

// Eager reports whether a message of size bytes uses the eager protocol.
func (p Params) Eager(size int64) bool { return size <= p.S }

// EagerLatency returns the closed-form one-way latency of an eager
// message between two otherwise idle ranks: o + L + (s-1)G + o.
// Used only for simulator validation.
func (p Params) EagerLatency(size int64) int64 {
	return p.SendCPU(size) + p.Transit(size) + p.RecvCPU(size)
}

// PingPong returns the closed-form round-trip time of an eager ping-pong
// between two idle ranks. Used only for simulator validation.
func (p Params) PingPong(size int64) int64 {
	return 2 * p.EagerLatency(size)
}

// DragonflyExtra returns a topology latency function for a two-level
// dragonfly-like fabric: ranks within a group of the given size
// communicate at the base latency; messages crossing groups pay one
// extra global-link hop. Pass the result to the simulator's
// ExtraLatency hook.
func DragonflyExtra(groupSize int, globalHopNanos int64) func(src, dst int32) int64 {
	if groupSize < 1 {
		groupSize = 1
	}
	gs := int32(groupSize)
	return func(src, dst int32) int64 {
		if src/gs == dst/gs {
			return 0
		}
		return globalHopNanos
	}
}
