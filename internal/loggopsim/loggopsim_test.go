package loggopsim

import (
	"testing"

	"repro/internal/collectives"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
)

const (
	us = int64(1000)
	ms = int64(1000 * 1000)
	s  = int64(1000 * 1000 * 1000)
)

func mustSim(t *testing.T, tr *trace.Trace, cfg Config) *Result {
	t.Helper()
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res
}

func defaultCfg() Config { return Config{Net: netmodel.CrayXC40()} }

// delayModel is a test noise model adding a fixed delay to the first
// CPU interval on one rank.
type delayModel struct {
	rank    int32
	delay   int64
	applied bool
}

func (d *delayModel) Extend(node int32, start, dur int64) int64 {
	if node == d.rank && !d.applied {
		d.applied = true
		return start + dur + d.delay
	}
	return start + dur
}

func TestEmptyTrace(t *testing.T) {
	if _, err := Simulate(&trace.Trace{}, defaultCfg()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestBadNetRejected(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{{trace.Calc(1)}}}
	if _, err := Simulate(tr, Config{Net: netmodel.Params{L: -1}}); err == nil {
		t.Fatal("invalid network params accepted")
	}
}

func TestCalcOnly(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100), trace.Calc(200)},
		{trace.Calc(500)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.Makespan != 500 {
		t.Fatalf("makespan = %d, want 500", res.Makespan)
	}
	if res.FinishTimes[0] != 300 || res.FinishTimes[1] != 500 {
		t.Fatalf("finish times %v, want [300 500]", res.FinishTimes)
	}
}

func TestPingPongClosedForm(t *testing.T) {
	net := netmodel.CrayXC40()
	for _, size := range []int64{1, 64, 1024, net.S} {
		tr := &trace.Trace{Ops: [][]trace.Op{
			{trace.Send(1, size, 0), trace.Recv(1, size, 1)},
			{trace.Recv(0, size, 0), trace.Send(0, size, 1)},
		}}
		res := mustSim(t, tr, Config{Net: net})
		want := net.PingPong(size)
		if res.Makespan != want {
			t.Fatalf("size %d: ping-pong makespan %d, want closed-form %d", size, res.Makespan, want)
		}
	}
}

func TestEagerLatencyClosedForm(t *testing.T) {
	net := netmodel.CrayXC40()
	size := int64(512)
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, size, 0)},
		{trace.Recv(0, size, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.FinishTimes[1] != net.EagerLatency(size) {
		t.Fatalf("one-way latency %d, want %d", res.FinishTimes[1], net.EagerLatency(size))
	}
	// Sender finishes after only its CPU overhead.
	if res.FinishTimes[0] != net.SendCPU(size) {
		t.Fatalf("sender finish %d, want %d", res.FinishTimes[0], net.SendCPU(size))
	}
}

func TestMessageCounting(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 100, 0), trace.Send(1, 200, 1)},
		{trace.Recv(0, 100, 0), trace.Recv(0, 200, 1)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.Messages != 2 {
		t.Fatalf("messages = %d, want 2", res.Messages)
	}
	if res.BytesMoved != 300 {
		t.Fatalf("bytes = %d, want 300", res.BytesMoved)
	}
}

func TestUnexpectedMessage(t *testing.T) {
	// Send arrives long before the receive is posted.
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 8, 0)},
		{trace.Calc(1 * s), trace.Recv(0, 8, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	want := 1*s + net.RecvCPU(8)
	if res.FinishTimes[1] != want {
		t.Fatalf("late recv finish %d, want %d", res.FinishTimes[1], want)
	}
}

func TestWildcardRecv(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(2, 8, 42)},
		{trace.Send(2, 8, 43)},
		{trace.Recv(trace.AnySource, 8, trace.AnyTag), trace.Recv(trace.AnySource, 8, trace.AnyTag)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.Messages != 2 {
		t.Fatalf("wildcard recv matched %d messages, want 2", res.Messages)
	}
}

func TestTagSelective(t *testing.T) {
	// Receiver wants tag 2 first even though tag 1 arrives first.
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 8, 1), trace.Send(1, 8, 2)},
		{trace.Recv(0, 8, 2), trace.Recv(0, 8, 1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.Messages != 2 {
		t.Fatalf("matched %d, want 2", res.Messages)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	net := netmodel.CrayXC40()
	size := int64(256)
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Isend(1, size, 0, 1), trace.Calc(10 * us), trace.Wait(1)},
		{trace.Irecv(0, size, 0, 1), trace.Calc(10 * us), trace.Wait(1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	// Receiver: irecv free, calc 10us, then wait charges RecvCPU after
	// both calc end and arrival.
	arr := net.SendCPU(size) + net.Transit(size)
	start := max64(10*us, arr)
	want := start + net.RecvCPU(size)
	if res.FinishTimes[1] != want {
		t.Fatalf("irecv+wait finish %d, want %d", res.FinishTimes[1], want)
	}
}

func TestWaitAll(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Isend(1, 8, 0, 1), trace.Isend(1, 8, 1, 2), trace.WaitAll()},
		{trace.Irecv(0, 8, 0, 1), trace.Irecv(0, 8, 1, 2), trace.WaitAll()},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.Messages != 2 {
		t.Fatalf("messages = %d, want 2", res.Messages)
	}
}

func TestRendezvousSynchronizes(t *testing.T) {
	net := netmodel.CrayXC40()
	big := net.S + 1
	lateness := 5 * s
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, big, 0)},
		{trace.Calc(lateness), trace.Recv(0, big, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	// The blocking rendezvous send cannot complete before the receiver
	// posts at t=5s.
	if res.FinishTimes[0] < lateness {
		t.Fatalf("rendezvous sender finished at %d, before receiver posted at %d", res.FinishTimes[0], lateness)
	}
}

func TestEagerDoesNotSynchronize(t *testing.T) {
	net := netmodel.CrayXC40()
	small := net.S
	lateness := 5 * s
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, small, 0)},
		{trace.Calc(lateness), trace.Recv(0, small, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.FinishTimes[0] >= lateness {
		t.Fatalf("eager sender blocked until receiver: %d", res.FinishTimes[0])
	}
}

func TestRendezvousIsendWait(t *testing.T) {
	net := netmodel.CrayXC40()
	big := 10 * net.S
	lateness := 2 * s
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Isend(1, big, 0, 1), trace.Calc(100 * us), trace.Wait(1)},
		{trace.Calc(lateness), trace.Recv(0, big, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	// Wait(1) completes only after CTS (receiver posted at 2s).
	if res.FinishTimes[0] < lateness {
		t.Fatalf("rendezvous isend wait finished at %d, before receiver posted", res.FinishTimes[0])
	}
	if res.FinishTimes[1] < lateness+net.Transit(big) {
		t.Fatalf("receiver finished before payload could arrive: %d", res.FinishTimes[1])
	}
}

func TestRendezvousIrecvFirst(t *testing.T) {
	// Receiver posts irecv long before sender sends: handshake happens
	// at RTS arrival.
	net := netmodel.CrayXC40()
	big := net.S * 4
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(1 * s), trace.Send(1, big, 0)},
		{trace.Irecv(0, big, 0, 1), trace.Wait(1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.Messages != 1 {
		t.Fatalf("messages = %d, want 1", res.Messages)
	}
	if res.FinishTimes[1] < 1*s {
		t.Fatalf("receiver done at %d before sender even started", res.FinishTimes[1])
	}
}

func TestDeadlockDetected(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Recv(1, 8, 0)},
		{trace.Recv(0, 8, 0)},
	}}
	res, err := Simulate(tr, defaultCfg())
	if err == nil {
		t.Fatal("deadlock not reported")
	}
	if !res.Deadlocked {
		t.Fatal("Deadlocked flag not set")
	}
}

func TestHorizonTimeout(t *testing.T) {
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(10 * s), trace.Send(1, 8, 0)},
		{trace.Recv(0, 8, 0)},
	}}
	res, err := Simulate(tr, Config{Net: net, MaxTime: 1 * s})
	if err == nil {
		t.Fatal("horizon not enforced")
	}
	if !res.TimedOut {
		t.Fatal("TimedOut flag not set")
	}
}

func TestNICGapSerializesInjections(t *testing.T) {
	// Two back-to-back eager sends: the second arrives at least
	// NICGap after the first's injection.
	net := netmodel.CrayXC40()
	size := int64(1024)
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, size, 0), trace.Send(1, size, 1)},
		{trace.Recv(0, size, 0), trace.Recv(0, size, 1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	// First injection at SendCPU; second CPU done at 2*SendCPU but NIC
	// free only at SendCPU+NICGap.
	firstInj := net.SendCPU(size)
	secondInj := max64(2*net.SendCPU(size), firstInj+net.NICGap(size))
	wantArr := secondInj + net.Transit(size)
	want := max64(net.SendCPU(size)+net.Transit(size)+net.RecvCPU(size), wantArr) + net.RecvCPU(size)
	if res.FinishTimes[1] != want {
		t.Fatalf("receiver finish %d, want %d (NIC gap not enforced?)", res.FinishTimes[1], want)
	}
}

func TestDelayPropagatesAlongDependencies(t *testing.T) {
	// The Fig. 1 scenario: p0 -> p1 -> p2 message chain; a detour on p0
	// delays p2 even though they never communicate directly.
	base := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100 * us), trace.Send(1, 8, 0)},
		{trace.Recv(0, 8, 0), trace.Send(2, 8, 0)},
		{trace.Recv(1, 8, 0)},
	}}
	clean := mustSim(t, base, defaultCfg())
	delay := 50 * ms
	noisy := mustSim(t, base, Config{Net: netmodel.CrayXC40(), Noise: &delayModel{rank: 0, delay: delay}})
	shift := noisy.FinishTimes[2] - clean.FinishTimes[2]
	if shift != delay {
		t.Fatalf("p2 shifted by %d, want full detour %d", shift, delay)
	}
}

func TestDelayOnNonCriticalPathAbsorbed(t *testing.T) {
	// p1 has slack: a small detour on p1's first interval is absorbed.
	base := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100 * ms), trace.Send(1, 8, 0)},
		{trace.Calc(1 * ms), trace.Recv(0, 8, 0)},
	}}
	clean := mustSim(t, base, defaultCfg())
	noisy := mustSim(t, base, Config{Net: netmodel.CrayXC40(), Noise: &delayModel{rank: 1, delay: 10 * ms}})
	if noisy.Makespan != clean.Makespan {
		t.Fatalf("slack did not absorb detour: %d vs %d", noisy.Makespan, clean.Makespan)
	}
}

func simCollective(t *testing.T, n int, op trace.Op, cfg Config) *Result {
	t.Helper()
	tr := &trace.Trace{Ops: make([][]trace.Op, n)}
	for r := range tr.Ops {
		tr.Ops[r] = []trace.Op{op}
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return mustSim(t, ex, cfg)
}

func TestBarrierClosedForm(t *testing.T) {
	// Dissemination barrier with 0-byte messages: every round costs
	// o (send) + L + o (recv at wait); rounds = ceil(log2 n).
	net := netmodel.CrayXC40()
	for _, n := range []int{2, 4, 8, 16, 32} {
		res := simCollective(t, n, trace.Barrier(), Config{Net: net})
		rounds := 0
		for v := 1; v < n; v *= 2 {
			rounds++
		}
		want := int64(rounds) * (2*net.O + net.L)
		if res.Makespan != want {
			t.Fatalf("n=%d: barrier makespan %d, want %d", n, res.Makespan, want)
		}
	}
}

func TestBarrierNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 7, 13, 100} {
		res := simCollective(t, n, trace.Barrier(), defaultCfg())
		if res.Deadlocked {
			t.Fatalf("n=%d: barrier deadlocked", n)
		}
		if res.Makespan <= 0 {
			t.Fatalf("n=%d: zero makespan", n)
		}
	}
}

func TestAllCollectivesSimulate(t *testing.T) {
	ops := []trace.Op{
		trace.Barrier(), trace.Bcast(0, 1024), trace.Reduce(0, 1024),
		trace.Allreduce(64), trace.Allgather(64), trace.Alltoall(64),
		trace.Gather(0, 64), trace.Scatter(0, 64),
	}
	for _, op := range ops {
		for _, n := range []int{2, 5, 16, 33} {
			res := simCollective(t, n, op, defaultCfg())
			if res.Makespan <= 0 {
				t.Fatalf("%s n=%d: makespan %d", op.Kind, n, res.Makespan)
			}
		}
	}
}

func TestLargeAllreduceRendezvousPath(t *testing.T) {
	// Payload above S exercises the rendezvous path inside an expanded
	// collective.
	net := netmodel.CrayXC40()
	res := simCollective(t, 8, trace.Allreduce(net.S*8), Config{Net: net})
	if res.Messages == 0 {
		t.Fatal("no messages delivered")
	}
}

func TestDeterministicWithCENoise(t *testing.T) {
	tr := &trace.Trace{Ops: make([][]trace.Op, 16)}
	for r := range tr.Ops {
		var ops []trace.Op
		for i := 0; i < 50; i++ {
			ops = append(ops, trace.Calc(1*ms), trace.Allreduce(8))
		}
		tr.Ops[r] = ops
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() int64 {
		nm, err := noise.NewCE(16, noise.Config{
			Seed: 42, MTBCE: 10 * ms, Duration: noise.Fixed(100 * us), Target: noise.AllNodes,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := mustSim(t, ex, Config{Net: netmodel.CrayXC40(), Noise: nm})
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different makespans: %d vs %d", a, b)
	}
}

func TestNoiseNeverSpeedsUp(t *testing.T) {
	tr := &trace.Trace{Ops: make([][]trace.Op, 8)}
	for r := range tr.Ops {
		var ops []trace.Op
		for i := 0; i < 20; i++ {
			ops = append(ops, trace.Calc(5*ms), trace.Allreduce(8))
		}
		tr.Ops[r] = ops
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clean := mustSim(t, ex, defaultCfg())
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		nm, err := noise.NewCE(8, noise.Config{
			Seed: seed, MTBCE: 20 * ms, Duration: noise.Fixed(1 * ms), Target: noise.AllNodes,
		})
		if err != nil {
			t.Fatal(err)
		}
		noisy := mustSim(t, ex, Config{Net: netmodel.CrayXC40(), Noise: nm})
		if noisy.Makespan < clean.Makespan {
			t.Fatalf("seed %d: noise shortened makespan %d -> %d", seed, clean.Makespan, noisy.Makespan)
		}
	}
}

func TestSingleNodeNoiseOnlyDelaysViaDependencies(t *testing.T) {
	// Two disconnected pairs; CE noise targeted at rank 0 must not
	// delay the pair (2,3).
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100 * ms), trace.Send(1, 8, 0)},
		{trace.Recv(0, 8, 0)},
		{trace.Calc(100 * ms), trace.Send(3, 8, 0)},
		{trace.Recv(2, 8, 0)},
	}}
	clean := mustSim(t, tr, defaultCfg())
	nm, err := noise.NewCE(4, noise.Config{
		Seed: 7, MTBCE: 1 * ms, Duration: noise.Fixed(1 * ms), Target: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), Noise: nm})
	if noisy.FinishTimes[3] != clean.FinishTimes[3] {
		t.Fatalf("noise on rank 0 delayed unrelated rank 3: %d vs %d",
			noisy.FinishTimes[3], clean.FinishTimes[3])
	}
	if noisy.FinishTimes[1] <= clean.FinishTimes[1] {
		t.Fatal("noise on rank 0 did not delay its dependent rank 1")
	}
}

func TestEventsCounted(t *testing.T) {
	res := simCollective(t, 8, trace.Barrier(), defaultCfg())
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

func BenchmarkBarrier1024(b *testing.B) {
	tr := &trace.Trace{Ops: make([][]trace.Op, 1024)}
	for r := range tr.Ops {
		tr.Ops[r] = []trace.Op{trace.Barrier()}
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ex, Config{Net: netmodel.CrayXC40()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHaloExchange256(b *testing.B) {
	// 16x16 2D halo exchange, 10 iterations.
	const side = 16
	n := side * side
	tr := &trace.Trace{Ops: make([][]trace.Op, n)}
	for r := 0; r < n; r++ {
		x, y := r%side, r/side
		nb := []int32{
			int32(((x+1)%side + y*side)),
			int32(((x-1+side)%side + y*side)),
			int32((x + ((y+1)%side)*side)),
			int32((x + ((y-1+side)%side)*side)),
		}
		var ops []trace.Op
		for it := 0; it < 10; it++ {
			ops = append(ops, trace.Calc(1*ms))
			req := int32(0)
			for _, p := range nb {
				ops = append(ops, trace.Irecv(p, 4096, 0, req))
				req++
			}
			for _, p := range nb {
				ops = append(ops, trace.Isend(p, 4096, 0, req))
				req++
			}
			ops = append(ops, trace.WaitAll())
		}
		tr.Ops[r] = ops
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, Config{Net: netmodel.CrayXC40()}); err != nil {
			b.Fatal(err)
		}
	}
}
