package loggopsim

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/trace"
)

func TestWildcardMatchesRendezvous(t *testing.T) {
	net := netmodel.CrayXC40()
	big := net.S * 2
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, big, 7)},
		{trace.Recv(trace.AnySource, big, trace.AnyTag)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.Messages != 1 {
		t.Fatalf("wildcard did not match rendezvous: %d messages", res.Messages)
	}
}

func TestWildcardIrecvMatchesRendezvousRTS(t *testing.T) {
	net := netmodel.CrayXC40()
	big := net.S * 2
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(10 * ms), trace.Send(1, big, 7)},
		{trace.Irecv(trace.AnySource, big, trace.AnyTag, 1), trace.Wait(1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.Messages != 1 {
		t.Fatalf("posted wildcard irecv did not match RTS: %d messages", res.Messages)
	}
	if res.FinishTimes[1] < 10*ms {
		t.Fatal("receiver finished before the sender even started")
	}
}

func TestSourceSpecificTagWildcard(t *testing.T) {
	// Recv(src=0, AnyTag) must match whatever tag rank 0 used, and not
	// a message from rank 2.
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 8, 42)},
		{trace.Recv(0, 8, trace.AnyTag), trace.Recv(2, 8, trace.AnyTag)},
		{trace.Send(1, 8, 43)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.Messages != 2 {
		t.Fatalf("source-specific wildcard recvs matched %d", res.Messages)
	}
}

func TestMixedEagerAndRendezvousSamePair(t *testing.T) {
	net := netmodel.CrayXC40()
	small, big := int64(64), net.S*3
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, small, 0), trace.Send(1, big, 1), trace.Send(1, small, 2)},
		{trace.Recv(0, small, 0), trace.Recv(0, big, 1), trace.Recv(0, small, 2)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.Messages != 3 {
		t.Fatalf("mixed protocol pair delivered %d messages", res.Messages)
	}
	if res.BytesMoved != 2*small+big {
		t.Fatalf("bytes = %d", res.BytesMoved)
	}
}

func TestManyOutstandingIrecvs(t *testing.T) {
	// 32 irecvs posted before any send; waits in reverse order.
	const n = 32
	var ops0, ops1 []trace.Op
	for i := int32(0); i < n; i++ {
		ops1 = append(ops1, trace.Irecv(0, 64, i, i))
	}
	for i := int32(n - 1); i >= 0; i-- {
		ops1 = append(ops1, trace.Wait(i))
	}
	for i := int32(0); i < n; i++ {
		ops0 = append(ops0, trace.Send(1, 64, i))
	}
	tr := &trace.Trace{Ops: [][]trace.Op{ops0, ops1}}
	res := mustSim(t, tr, defaultCfg())
	if res.Messages != n {
		t.Fatalf("delivered %d of %d", res.Messages, n)
	}
}

func TestIsendToLateIrecv(t *testing.T) {
	// Eager isends buffered as unexpected, matched by irecvs posted
	// much later, then waited.
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Isend(1, 128, 5, 1), trace.Wait(1)},
		{trace.Calc(1 * s), trace.Irecv(0, 128, 5, 1), trace.Wait(1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	want := 1*s + net.RecvCPU(128)
	if res.FinishTimes[1] != want {
		t.Fatalf("late irecv finish %d, want %d", res.FinishTimes[1], want)
	}
}

func TestCrossedRendezvous(t *testing.T) {
	// Both ranks send large messages to each other and then receive:
	// blocking sends would deadlock in a strict rendezvous; using
	// isend+recv+wait must work.
	net := netmodel.CrayXC40()
	big := net.S * 2
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Isend(1, big, 0, 1), trace.Recv(1, big, 0), trace.Wait(1)},
		{trace.Isend(0, big, 0, 1), trace.Recv(0, big, 0), trace.Wait(1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.Messages != 2 {
		t.Fatalf("crossed rendezvous delivered %d", res.Messages)
	}
}

func TestBlockingRendezvousDeadlockDetected(t *testing.T) {
	// The classic head-to-head blocking send deadlock above the eager
	// threshold must be detected, not hang.
	net := netmodel.CrayXC40()
	big := net.S * 2
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, big, 0), trace.Recv(1, big, 0)},
		{trace.Send(0, big, 0), trace.Recv(0, big, 0)},
	}}
	res, err := Simulate(tr, Config{Net: net})
	if err == nil || !res.Deadlocked {
		t.Fatal("head-to-head rendezvous deadlock not detected")
	}
}

func TestHeadToHeadEagerSendsComplete(t *testing.T) {
	// The same pattern below the threshold works (eager buffering).
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 64, 0), trace.Recv(1, 64, 0)},
		{trace.Send(0, 64, 0), trace.Recv(0, 64, 0)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.Messages != 2 {
		t.Fatalf("eager head-to-head delivered %d", res.Messages)
	}
}

func TestZeroByteMessages(t *testing.T) {
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 0, 0)},
		{trace.Recv(0, 0, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	if res.FinishTimes[1] != net.EagerLatency(0) {
		t.Fatalf("zero-byte latency %d, want %d", res.FinishTimes[1], net.EagerLatency(0))
	}
}

func TestWaitBeforeArrivalBlocksExactly(t *testing.T) {
	// Receiver waits immediately; sender sends after a long compute.
	// The receiver's finish equals arrival + recv CPU.
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(2 * s), trace.Send(1, 256, 0)},
		{trace.Irecv(0, 256, 0, 1), trace.Wait(1)},
	}}
	res := mustSim(t, tr, Config{Net: net})
	want := 2*s + net.SendCPU(256) + net.Transit(256) + net.RecvCPU(256)
	if res.FinishTimes[1] != want {
		t.Fatalf("finish %d, want %d", res.FinishTimes[1], want)
	}
}

func TestSelfContainedRanksFinishIndependently(t *testing.T) {
	// A rank with no communication finishes at its compute time even
	// if others run long.
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(10 * ms)},
		{trace.Calc(10 * s)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.FinishTimes[0] != 10*ms {
		t.Fatalf("independent rank delayed: %d", res.FinishTimes[0])
	}
}

func TestEmptyRankOps(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{},
		{trace.Calc(5)},
	}}
	res := mustSim(t, tr, defaultCfg())
	if res.FinishTimes[0] != 0 {
		t.Fatalf("empty rank finish %d", res.FinishTimes[0])
	}
}
