package loggopsim

import (
	"math/rand"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
)

// randomMatchedTrace builds a random trace whose sends and receives are
// guaranteed to match: for every message a send is appended to the
// sender and a receive to the receiver, with nonblocking variants and
// trailing waits, interleaved with compute.
func randomMatchedTrace(r *rand.Rand, ranks, messages int) *trace.Trace {
	tr := &trace.Trace{Name: "random", Ops: make([][]trace.Op, ranks)}
	reqs := make([]int32, ranks)
	pending := make([][]int32, ranks) // outstanding request ids per rank
	for m := 0; m < messages; m++ {
		src := r.Intn(ranks)
		dst := r.Intn(ranks)
		for dst == src {
			dst = r.Intn(ranks)
		}
		size := int64(r.Intn(16384)) // mixes eager and (with S lowered) rendezvous
		tag := int32(m)              // unique tags keep matching unambiguous
		if r.Intn(3) == 0 {
			tr.Ops[src] = append(tr.Ops[src], trace.Calc(int64(r.Intn(100000))))
		}
		if r.Intn(2) == 0 {
			tr.Ops[src] = append(tr.Ops[src], trace.Send(int32(dst), size, tag))
		} else {
			req := reqs[src]
			reqs[src]++
			tr.Ops[src] = append(tr.Ops[src], trace.Isend(int32(dst), size, tag, req))
			pending[src] = append(pending[src], req)
		}
		if r.Intn(2) == 0 {
			tr.Ops[dst] = append(tr.Ops[dst], trace.Recv(int32(src), size, tag))
		} else {
			req := reqs[dst]
			reqs[dst]++
			tr.Ops[dst] = append(tr.Ops[dst], trace.Irecv(int32(src), size, tag, req))
			pending[dst] = append(pending[dst], req)
		}
		// Occasionally drain outstanding requests mid-stream.
		if r.Intn(4) == 0 && len(pending[src]) > 0 {
			tr.Ops[src] = append(tr.Ops[src], trace.WaitAll())
			pending[src] = nil
		}
	}
	for rank := 0; rank < ranks; rank++ {
		if len(pending[rank]) > 0 {
			tr.Ops[rank] = append(tr.Ops[rank], trace.WaitAll())
		}
	}
	return tr
}

func TestRandomMatchedTracesComplete(t *testing.T) {
	net := netmodel.CrayXC40()
	net.S = 4096 // exercise both protocols
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		ranks := 2 + r.Intn(10)
		messages := 1 + r.Intn(60)
		tr := randomMatchedTrace(r, ranks, messages)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: generated trace invalid: %v", seed, err)
		}
		res, err := Simulate(tr, Config{Net: net})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Messages != uint64(messages) {
			t.Fatalf("seed %d: delivered %d of %d messages", seed, res.Messages, messages)
		}
		// Makespan dominates every rank's finish time.
		for rank, f := range res.FinishTimes {
			if f > res.Makespan {
				t.Fatalf("seed %d: rank %d finish %d beyond makespan %d", seed, rank, f, res.Makespan)
			}
		}
	}
}

func TestRandomTracesNoiseMonotone(t *testing.T) {
	// Under CE noise, random matched traces never get faster, and the
	// run stays deterministic for a fixed noise seed.
	net := netmodel.CrayXC40()
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr := randomMatchedTrace(r, 2+r.Intn(6), 1+r.Intn(30))
		clean, err := Simulate(tr, Config{Net: net})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mk := func() int64 {
			nm, err := noise.NewCE(tr.NumRanks(), noise.Config{
				Seed: uint64(seed) + 99, MTBCE: 10 * ms, Duration: noise.Fixed(100 * us), Target: noise.AllNodes,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Simulate(tr, Config{Net: net, Noise: nm})
			if err != nil {
				t.Fatalf("seed %d noisy: %v", seed, err)
			}
			return res.Makespan
		}
		a, b := mk(), mk()
		if a != b {
			t.Fatalf("seed %d: noisy run nondeterministic: %d vs %d", seed, a, b)
		}
		if a < clean.Makespan {
			t.Fatalf("seed %d: noise shortened makespan %d -> %d", seed, clean.Makespan, a)
		}
	}
}
