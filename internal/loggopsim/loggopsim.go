// Package loggopsim is a discrete-event simulator for MPI traces under
// the LogGOPS network model, in the spirit of LogGOPSim (Hoefler,
// Schneider, Lumsdaine, HPDC'10) and the resilience-study tool chain of
// Levy et al.
//
// The simulator replays per-rank operation traces (package trace) whose
// collectives have already been expanded into point-to-point schedules
// (package collectives). It reproduces every communication dependency, so
// a CPU detour on one rank — such as correctable-error logging — delays
// exactly the ranks that transitively depend on it.
//
// # Model
//
// Each rank owns a CPU timeline (clock: when its control flow can next
// execute) and a NIC timeline (nicFree: when its NIC can inject the next
// message; successive injections are separated by g + (s-1)G). Messages
// of size <= S use the eager protocol: sender pays o + (s-1)O of CPU,
// the payload lands at the destination L + (s-1)G after injection, and
// the receiver pays o + (s-1)O when (and not before) a matching receive
// is executed. Messages above S use rendezvous: the sender pays o and
// emits a ready-to-send control message; when the receiver has both the
// RTS and a matching posted receive, a clear-to-send returns to the
// sender (L each way), after which the payload moves as in the eager
// case. A blocking send therefore cannot complete before the receiver
// matches — the synchronization that lets delays propagate upstream.
//
// Simplifications relative to a full MPI stack, chosen to keep the noise
// semantics exact while staying O(events):
//
//   - nonblocking rendezvous sends charge the payload injection to the
//     NIC only (no retroactive CPU charge at CTS time);
//   - receive-side per-byte CPU (O) is charged when the receive or wait
//     completes rather than being pipelined with arrival;
//   - message matching is (source, tag) with wildcards in post order;
//     same-peer non-overtaking across different sizes is not enforced.
//
// CPU detours are injected through a noise.Model: every CPU-busy
// interval (calc, send overhead, receive overhead) is stretched by the
// detours that arrive during it.
package loggopsim

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	// Net is the LogGOPS parameter set for inter-node messages.
	Net netmodel.Params
	// LocalNet, when non-nil, is the parameter set for messages between
	// ranks on the same node (shared-memory transport). Nil means all
	// messages use Net.
	LocalNet *netmodel.Params
	// RanksPerNode places this many consecutive ranks on each node
	// (rank r lives on node r/RanksPerNode). The node's NIC is shared:
	// injections from co-located ranks serialize through one gap
	// timeline. Zero means 1. With more than one rank per node use a
	// correlated noise model (noise.SharedCE): the per-node streaming
	// model assumes one rank per node.
	RanksPerNode int
	// ExtraLatency, when non-nil, adds topology-dependent latency to
	// every message between two ranks (control and payload alike):
	// e.g. extra global-link hops between dragonfly groups. See
	// netmodel.DragonflyExtra.
	ExtraLatency func(src, dst int32) int64
	// Noise injects CPU detours; nil means no noise. The model is
	// called with the *rank* id; node-level models derive the node.
	Noise noise.Model
	// MaxTime aborts the simulation when the event clock passes this
	// horizon (ns). Zero disables the horizon.
	MaxTime int64
	// Profile enables per-rank time decomposition (Result.Profile):
	// requested CPU work, detour time added by the noise model, and
	// blocked time spent waiting for messages. Costs one extra O(ranks)
	// allocation and a few counters per operation.
	Profile bool
	// ShadowQueue runs the simulation on the legacy heap event queue
	// (eventq.NewShadow) instead of the calendar queue. Pop order — and
	// therefore every result — is identical; the toggle exists so
	// differential tests can replay both engines in one process. The
	// eventq_shadow build tag flips whole builds the same way.
	ShadowQueue bool
}

// Profile decomposes where simulated time went. All values are sums
// over ranks, in nanoseconds; the per-rank slices are populated only
// when profiling was enabled.
type Profile struct {
	// Work is the CPU time the traces asked for (compute plus
	// messaging overheads), before noise.
	Work int64
	// Detour is the extra CPU time injected by the noise model.
	Detour int64
	// Wait is the time ranks spent blocked on messages (receives,
	// rendezvous handshakes, waits) beyond their own CPU activity.
	Wait int64
	// PerRankWork, PerRankDetour and PerRankWait break the totals down
	// by rank.
	PerRankWork, PerRankDetour, PerRankWait []int64
}

// Result summarizes a simulation.
type Result struct {
	// Makespan is the finish time of the slowest rank, ns.
	Makespan int64
	// FinishTimes holds each rank's completion time, ns.
	FinishTimes []int64
	// Messages is the number of point-to-point payloads delivered.
	Messages uint64
	// BytesMoved is the total payload bytes delivered.
	BytesMoved int64
	// Events is the number of simulator events processed.
	Events uint64
	// Deadlocked is set when ranks were blocked with no pending events.
	Deadlocked bool
	// TimedOut is set when the MaxTime horizon fired.
	TimedOut bool
	// Profile is the time decomposition; nil unless Config.Profile.
	Profile *Profile
}

// Event kinds (eventq.Event.Kind).
const (
	evEagerArrive int32 = iota // payload arrival; A=src, B=size, C=tag
	evRTSArrive                // rendezvous request arrival; A=msg index
	evCTSArrive                // clear-to-send back at sender; A=msg index
	evDataArrive               // rendezvous payload arrival; A=msg index
)

// blockKind describes why a rank is not advancing.
type blockKind uint8

const (
	notBlocked      blockKind = iota
	blockedRecv               // blocking receive posted, waiting for match/data
	blockedSendCTS            // blocking rendezvous send, waiting for CTS
	blockedSendDone           // blocking rendezvous send, payload injection done at wake
	blockedWait               // waiting on one request
	blockedWaitAll            // waiting on all outstanding requests
	finished
)

// rdvMsg tracks a rendezvous message through its handshake.
type rdvMsg struct {
	src, dst  int32
	tag       int32
	size      int64
	srcReq    int32 // sender's request id, or -1 for a blocking send
	dstSlot   int32 // receiver's slot index once matched, or -1
	rtsATime  int64 // RTS arrival time at receiver
	dataATime int64 // payload arrival time at receiver
}

// slot is a posted receive or an outstanding send request on one rank.
type slot struct {
	req     int32 // request id; -1 for a blocking recv
	peer    int32 // expected source (AnySource allowed) or send peer
	tag     int32
	size    int64
	isRecv  bool
	done    bool  // data ready (recv) or buffer released (send)
	claimed bool  // recv slot matched to an in-flight rendezvous payload
	ready   int64 // time the slot became done
	posted  int64 // logical time the receive was posted
	active  bool  // still occupied
}

// unexp is an arrived-but-unmatched message (eager payload or RTS).
type unexp struct {
	src  int32
	tag  int32
	msg  int32 // rendezvous message index, or -1 for eager
	size int64
	arr  int64
}

// cop is a compiled trace operation. NewSimulator resolves everything
// that does not depend on simulated time — the eager/rendezvous
// protocol decision, the LogGOPS send CPU / NIC gap / transit costs
// (including the per-pair extra latency), and the parameter set — so
// the replay loop does only integer arithmetic: no floating-point
// byte-cost math, no interface or function-valued calls, no protocol
// branches. The arithmetic is the same as the uncompiled path's,
// evaluated once; results are bit-identical.
type cop struct {
	dur     int64 // calc duration | eager send CPU o+(s-1)O | rendezvous o
	size    int64 // message bytes
	nicGap  int64 // eager send: NIC occupancy g+(s-1)G
	transit int64 // eager send: L+(s-1)G+xl | rendezvous send: RTS flight L+xl
	peer    int32
	tag     int32
	req     int32
	kind    uint8 // cop kinds below
}

// Compiled op kinds, ordered hottest-first.
const (
	cCalc uint8 = iota
	cEagerIsend
	cIrecv
	cWaitAll
	cEagerSend
	cRdvIsend
	cRdvSend
	cRecv
	cWait
	cBad // unexpanded collective: deliberate diagnostic deadlock
)

type rankState struct {
	cops       []cop
	pc         int
	clock      int64
	block      blockKind
	blockReq   int32 // for blockedWait
	blockMsg   int32 // rendezvous msg index for blockedSendCTS / blockedRecv data wait
	slots      []slot
	unexpected []unexp
	// freeMin is a lower bound on the inactive slot indices: no slot
	// below it is free. addSlot resumes its lowest-free scan here
	// instead of index 0, which keeps allocation O(1) amortized while
	// preserving the lowest-index-first assignment the matching order
	// depends on.
	freeMin int32
	// pending counts slots that are active and not done — the number
	// of outstanding requests a WaitAll must wait for. Maintained at
	// every done/active transition so doWaitAll's readiness check
	// (which runs on every completion event while blocked) is O(1).
	pending int32
	// posted lists the matchable posted irecvs — active, not done, not
	// claimed, req >= 0 — in ascending slot-index order, so arrival
	// matching scans only receive candidates in the exact order the
	// full slot scan used to visit them. Each entry carries the match
	// key (peer, tag) so the scan stays inside this contiguous list
	// instead of dereferencing the slot table per probe.
	posted []postedEnt
}

// postedEnt is one matchable posted receive: its slot index and match key.
type postedEnt struct {
	idx  int32
	peer int32
	tag  int32
}

// postedInsert adds a posted receive to the sorted matchable-irecv list.
func (st *rankState) postedInsert(e postedEnt) {
	p := st.posted
	if len(p) == 0 || e.idx > p[len(p)-1].idx {
		st.posted = append(p, e)
		return
	}
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid].idx < e.idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p = append(p, postedEnt{})
	copy(p[lo+1:], p[lo:])
	p[lo] = e
	st.posted = p
}

// postedRemoveAt removes the list entry at position k.
func (st *rankState) postedRemoveAt(k int) {
	st.posted = append(st.posted[:k], st.posted[k+1:]...)
}

// freeSlot releases a slot, keeping the lowest-free bound and the
// outstanding-request count in step.
func (st *rankState) freeSlot(idx int32) {
	sl := &st.slots[idx]
	if !sl.done {
		st.pending--
	}
	sl.active = false
	if idx < st.freeMin {
		st.freeMin = idx
	}
}

// Simulator is a reusable simulation engine bound to one expanded
// trace. Construction (NewSimulator) validates the configuration and
// preallocates the event queue, per-rank CPU/NIC timelines, match
// queues and profile counters; Run then replays the trace as many
// times as needed, reusing that state across calls. This makes the
// repeated-run hot path — the paper averages >= 8 seeded runs per
// (workload, system, scenario) point — nearly allocation-free: only
// the per-run Result (finish times and, when enabled, the profile)
// is freshly allocated so callers may retain results across runs.
//
// A Simulator is not safe for concurrent use; run one per goroutine.
// Results are bit-identical to a fresh Simulate call with the same
// trace, configuration and noise model.
type Simulator struct {
	cfg    Config
	net    netmodel.Params
	local  *netmodel.Params
	rpn    int32   // ranks per node
	nic    []int64 // per-node NIC-free time
	node   []int32 // rank -> node, so the hot path never divides
	extraL func(src, dst int32) int64
	noise  noise.Model
	ranks  []rankState
	msgs   []rdvMsg
	q      *eventq.Queue
	res    Result
	active int      // ranks not yet finished
	prof   *Profile // nil unless profiling
	// profRank accumulates the per-rank time decomposition in one
	// cache-friendly struct per rank; finishResult materializes it
	// into the Profile's per-rank slices and totals.
	profRank []rankProf

	// peek and nextNoise elide noise.Model.Extend calls: when the
	// model can report its next arrival time (noise.ArrivalPeeker),
	// work intervals ending at or before it — at realistic MTBCEs,
	// nearly all of them — complete with two compares instead of an
	// interface call and a stream walk. nextNoise[r] is MaxInt64 for
	// noise-free runs and MinInt64 (always call) for opaque models.
	peek      noise.ArrivalPeeker
	nextNoise []int64
}

// rankProf is the per-rank profile accumulator.
type rankProf struct {
	work, detour, wait int64
}

// NewSimulator validates cfg and builds a reusable simulator for the
// trace. The trace must be collective-free (see collectives.Expand)
// and is read, never mutated, so several Simulators may share it.
func NewSimulator(tr *trace.Trace, cfg Config) (*Simulator, error) {
	n := tr.NumRanks()
	if n == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.LocalNet != nil {
		if err := cfg.LocalNet.Validate(); err != nil {
			return nil, err
		}
	}
	rpn := cfg.RanksPerNode
	if rpn == 0 {
		rpn = 1
	}
	if rpn < 0 {
		return nil, fmt.Errorf("loggopsim: ranks per node must be positive, got %d", rpn)
	}
	newQueue := eventq.New
	if cfg.ShadowQueue {
		newQueue = eventq.NewShadow
	}
	s := &Simulator{
		cfg:       cfg,
		net:       cfg.Net,
		local:     cfg.LocalNet,
		rpn:       int32(rpn),
		nic:       make([]int64, (n+rpn-1)/rpn),
		node:      make([]int32, n),
		ranks:     make([]rankState, n),
		q:         newQueue(1024),
		nextNoise: make([]int64, n),
		extraL:    cfg.ExtraLatency,
	}
	for r := range s.node {
		s.node[r] = int32(r) / s.rpn
	}
	if cfg.Profile {
		s.profRank = make([]rankProf, n)
	}
	for r := range s.ranks {
		s.ranks[r].cops = s.compile(int32(r), tr.Ops[r])
	}
	return s, nil
}

// compile lowers one rank's trace into compiled ops (see cop).
func (s *Simulator) compile(r int32, ops []trace.Op) []cop {
	cs := make([]cop, len(ops))
	for i := range ops {
		op := &ops[i]
		c := &cs[i]
		c.peer, c.tag, c.req, c.size = op.Peer, op.Tag, op.Req, op.Size
		switch op.Kind {
		case trace.OpCalc:
			c.kind, c.dur = cCalc, op.Dur
		case trace.OpSend, trace.OpIsend:
			p := s.pair(r, op.Peer)
			x := s.xl(r, op.Peer)
			if p.Eager(op.Size) {
				c.dur = p.SendCPU(op.Size)
				c.nicGap = p.NICGap(op.Size)
				c.transit = p.Transit(op.Size) + x
				c.kind = cEagerSend
				if op.Kind == trace.OpIsend {
					c.kind = cEagerIsend
				}
			} else {
				c.dur = p.O
				c.transit = p.L + x
				c.kind = cRdvSend
				if op.Kind == trace.OpIsend {
					c.kind = cRdvIsend
				}
			}
		case trace.OpRecv:
			c.kind = cRecv
		case trace.OpIrecv:
			c.kind = cIrecv
		case trace.OpWait:
			c.kind = cWait
		case trace.OpWaitAll:
			c.kind = cWaitAll
		default:
			c.kind = cBad
		}
	}
	return cs
}

// Ranks returns the number of ranks the simulator was built for.
func (s *Simulator) Ranks() int { return len(s.ranks) }

// reset restores the preallocated state to time zero, keeping every
// slice's capacity, and installs the noise model for the next run.
func (s *Simulator) reset(nm noise.Model) {
	if nm == nil {
		nm = s.cfg.Noise
	}
	if nm == nil {
		nm = noise.None{}
	}
	s.noise = nm
	s.q.Reset()
	for i := range s.nic {
		s.nic[i] = 0
	}
	s.msgs = s.msgs[:0]
	for r := range s.ranks {
		st := &s.ranks[r]
		st.pc = 0
		st.clock = 0
		st.block = notBlocked
		st.blockReq = 0
		st.blockMsg = -1
		st.slots = st.slots[:0]
		st.unexpected = st.unexpected[:0]
		st.freeMin = 0
		st.pending = 0
		st.posted = st.posted[:0]
	}
	s.res = Result{}
	s.active = len(s.ranks)
	switch m := nm.(type) {
	case noise.None:
		s.peek = nil
		for r := range s.nextNoise {
			s.nextNoise[r] = maxInt64
		}
	case noise.ArrivalPeeker:
		s.peek = m
		for r := range s.nextNoise {
			s.nextNoise[r] = m.NextArrival(int32(r))
		}
	default:
		s.peek = nil
		for r := range s.nextNoise {
			s.nextNoise[r] = minInt64
		}
	}
	if s.cfg.Profile {
		// Fresh profile per run: callers retain Result.Profile.
		n := len(s.ranks)
		s.prof = &Profile{
			PerRankWork:   make([]int64, n),
			PerRankDetour: make([]int64, n),
			PerRankWait:   make([]int64, n),
		}
		s.res.Profile = s.prof
		for i := range s.profRank {
			s.profRank[i] = rankProf{}
		}
	} else {
		s.prof = nil
	}
}

// Run replays the trace under the given noise model (nil falls back to
// Config.Noise, then to no noise) and returns a freshly allocated
// result. Deadlocks and horizon timeouts return a non-nil error
// alongside the partial result. Internal state is reset and reused
// across calls; previously returned Results are never mutated.
func (s *Simulator) Run(nm noise.Model) (*Result, error) {
	s.reset(nm)
	// Kick every rank at t=0.
	for r := range s.ranks {
		s.advance(int32(r))
	}
	maxTime := s.cfg.MaxTime
	for s.q.Len() > 0 {
		e := s.q.Pop()
		s.res.Events++
		if maxTime > 0 && e.Time > maxTime {
			s.res.TimedOut = true
			s.finishResult()
			out := s.res
			return &out, fmt.Errorf("loggopsim: horizon %dns exceeded at t=%dns", s.cfg.MaxTime, e.Time)
		}
		switch e.Kind {
		case evEagerArrive:
			s.eagerArrive(e.Rank, e.A, e.B, e.C, e.Time)
		case evRTSArrive:
			s.rtsArrive(e.A, e.Time)
		case evCTSArrive:
			s.ctsArrive(e.A, e.Time)
		case evDataArrive:
			s.dataArrive(e.A, e.Time)
		default:
			return nil, fmt.Errorf("loggopsim: unknown event kind %d", e.Kind)
		}
	}
	s.finishResult()
	out := s.res
	if s.active > 0 {
		out.Deadlocked = true
		return &out, fmt.Errorf("loggopsim: deadlock, %d ranks blocked (first: rank %d at op %d)",
			s.active, s.firstBlocked(), s.ranks[s.firstBlocked()].pc)
	}
	return &out, nil
}

// Simulate runs the trace to completion and returns the result. The
// trace must be collective-free (see collectives.Expand); a collective
// op is reported as an error. Deadlocks and horizon timeouts return a
// non-nil error alongside the partial result. One-shot convenience
// wrapper; repeated-run callers should build a Simulator once and Run
// it per seed.
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	s, err := NewSimulator(tr, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(cfg.Noise)
}

func (s *Simulator) firstBlocked() int32 {
	for r := range s.ranks {
		if s.ranks[r].block != finished {
			return int32(r)
		}
	}
	return 0
}

func (s *Simulator) finishResult() {
	s.res.FinishTimes = make([]int64, len(s.ranks))
	for r := range s.ranks {
		s.res.FinishTimes[r] = s.ranks[r].clock
		if s.ranks[r].clock > s.res.Makespan {
			s.res.Makespan = s.ranks[r].clock
		}
	}
	if s.prof != nil {
		for r := range s.profRank {
			p := &s.profRank[r]
			s.prof.PerRankWork[r] = p.work
			s.prof.PerRankDetour[r] = p.detour
			s.prof.PerRankWait[r] = p.wait
			s.prof.Work += p.work
			s.prof.Detour += p.detour
			s.prof.Wait += p.wait
		}
	}
}

// extend charges CPU work on a rank, stretched by noise detours. When
// the start time is beyond the rank's current clock the difference is
// blocked (waiting) time. The noise model is consulted only when its
// next arrival can land strictly inside the window; CE semantics make
// the skipped call a no-op (arrivals at or after the window end are
// never charged to it, and idle arrivals are dropped lazily either
// way), so the elision is bit-exact.
func (s *Simulator) extend(rank int32, start, dur int64) int64 {
	end := start + dur
	if end > s.nextNoise[rank] {
		end = s.extendSlow(rank, start, dur)
	}
	if s.profRank != nil {
		p := &s.profRank[rank]
		p.work += dur
		p.detour += end - start - dur
		if wait := start - s.ranks[rank].clock; wait > 0 {
			p.wait += wait
		}
	}
	return end
}

// extendSlow is the out-of-line noise consultation: the model walks its
// arrival stream, and the cached next-arrival time is refreshed.
func (s *Simulator) extendSlow(rank int32, start, dur int64) int64 {
	end := s.noise.Extend(rank, start, dur)
	if s.peek != nil {
		s.nextNoise[rank] = s.peek.NextArrival(rank)
	}
	return end
}

// nodeOf maps a rank to its node.
func (s *Simulator) nodeOf(rank int32) int32 { return s.node[rank] }

// pair returns the parameter set for a message between two ranks:
// LocalNet for co-located ranks when configured, Net otherwise.
func (s *Simulator) pair(a, b int32) *netmodel.Params {
	if s.local != nil && s.node[a] == s.node[b] {
		return s.local
	}
	return &s.net
}

// xl returns the configured extra latency between two ranks, zero when
// none is configured.
func (s *Simulator) xl(src, dst int32) int64 {
	if s.extraL == nil {
		return 0
	}
	return s.extraL(src, dst)
}

// inject reserves the sender's node NIC for a message of size bytes
// that is ready at time ready, and returns the injection time.
func (s *Simulator) inject(rank int32, ready int64, p *netmodel.Params, size int64) int64 {
	node := s.node[rank]
	inj := ready
	if s.nic[node] > inj {
		inj = s.nic[node]
	}
	s.nic[node] = inj + p.NICGap(size)
	return inj
}

// advance executes ops on rank r until it blocks or finishes. The hot
// cases inline the noise-elided CPU extension (see extend) so the
// common op costs a handful of integer instructions.
func (s *Simulator) advance(r int32) {
	st := &s.ranks[r]
	st.block = notBlocked
	cops := st.cops
	for st.pc < len(cops) {
		op := &cops[st.pc]
		switch op.kind {
		case cCalc:
			end := st.clock + op.dur
			if end > s.nextNoise[r] {
				end = s.extendSlow(r, st.clock, op.dur)
			}
			if s.profRank != nil {
				p := &s.profRank[r]
				p.work += op.dur
				p.detour += end - st.clock - op.dur
			}
			st.clock = end
		case cEagerIsend:
			s.eagerSend(r, st, op)
			s.addSlot(st, slot{req: op.req, peer: op.peer, tag: op.tag, size: op.size, done: true, ready: st.clock, active: true})
		case cIrecv:
			s.postIrecv(r, op)
		case cWaitAll:
			if !s.doWaitAll(r) {
				return
			}
		case cEagerSend:
			s.eagerSend(r, st, op)
		case cRdvIsend:
			s.startRdv(r, st, op, op.req)
			s.addSlot(st, slot{req: op.req, peer: op.peer, tag: op.tag, size: op.size, active: true})
		case cRdvSend:
			// Rendezvous blocking send: pay o, emit RTS, block until CTS.
			idx := s.startRdv(r, st, op, -1)
			st.block = blockedSendCTS
			st.blockMsg = idx
			return
		case cRecv:
			if !s.startRecv(r, op) {
				return
			}
		case cWait:
			if !s.doWait(r, op.req) {
				return
			}
		default:
			// Collectives must have been expanded; treat as fatal by
			// deadlocking this rank deliberately with a diagnostic op.
			// (Callers run trace.Validate + collectives.Expand first;
			// panicking here would hide the offending op index.)
			st.block = blockedWait
			st.blockReq = -999
			return
		}
		st.pc++
	}
	st.block = finished
	s.active--
}

// eagerSend runs the eager-protocol send path shared by blocking and
// nonblocking sends: extend the CPU by the precompiled send overhead,
// serialize through the node NIC, and schedule the payload arrival.
func (s *Simulator) eagerSend(r int32, st *rankState, op *cop) {
	end := st.clock + op.dur
	if end > s.nextNoise[r] {
		end = s.extendSlow(r, st.clock, op.dur)
	}
	if s.profRank != nil {
		p := &s.profRank[r]
		p.work += op.dur
		p.detour += end - st.clock - op.dur
	}
	node := s.node[r]
	inj := end
	if s.nic[node] > inj {
		inj = s.nic[node]
	}
	s.nic[node] = inj + op.nicGap
	s.q.Push(eventq.Event{Time: inj + op.transit, Kind: evEagerArrive, Rank: op.peer, A: r, B: op.size, C: op.tag})
	st.clock = end
}

// startRdv pays the rendezvous send overhead, registers the message and
// schedules its RTS arrival; srcReq is the sender's request id, -1 for
// a blocking send.
func (s *Simulator) startRdv(r int32, st *rankState, op *cop, srcReq int32) int32 {
	cpuEnd := s.extend(r, st.clock, op.dur)
	st.clock = cpuEnd
	idx := int32(len(s.msgs))
	s.msgs = append(s.msgs, rdvMsg{src: r, dst: op.peer, tag: op.tag, size: op.size, srcReq: srcReq, dstSlot: -1})
	s.q.Push(eventq.Event{Time: cpuEnd + op.transit, Kind: evRTSArrive, Rank: op.peer, A: idx})
	return idx
}

func (s *Simulator) addSlot(st *rankState, sl slot) int32 {
	// Reuse the lowest-index inactive slot if available to bound
	// growth; freeMin makes the scan resume where free slots can
	// first appear instead of from zero.
	var idx int32 = -1
	for i := int(st.freeMin); i < len(st.slots); i++ {
		if !st.slots[i].active {
			st.slots[i] = sl
			idx = int32(i)
			break
		}
	}
	if idx < 0 {
		st.slots = append(st.slots, sl)
		idx = int32(len(st.slots) - 1)
	}
	st.freeMin = idx + 1
	if !sl.done {
		st.pending++
		if sl.isRecv && !sl.claimed && sl.req >= 0 {
			st.postedInsert(postedEnt{idx: idx, peer: sl.peer, tag: sl.tag})
		}
	}
	return idx
}

// matchUnexpected finds the earliest-arrived unexpected message matching
// (peer, tag) and removes it.
func (s *Simulator) matchUnexpected(st *rankState, peer, tag int32) (unexp, bool) {
	for i := range st.unexpected {
		u := st.unexpected[i]
		if (peer == trace.AnySource || peer == u.src) && (tag == trace.AnyTag || tag == u.tag) {
			st.unexpected = append(st.unexpected[:i], st.unexpected[i+1:]...)
			return u, true
		}
	}
	return unexp{}, false
}

// startRecv executes a blocking receive. Returns false when blocked.
func (s *Simulator) startRecv(r int32, op *cop) bool {
	st := &s.ranks[r]
	if u, ok := s.matchUnexpected(st, op.peer, op.tag); ok {
		if u.msg < 0 {
			// Eager payload already here: charge receive CPU and go.
			st.clock = s.extend(r, max64(st.clock, u.arr), s.pair(u.src, r).RecvCPU(u.size))
			s.res.Messages++
			s.res.BytesMoved += u.size
			return true
		}
		// Rendezvous RTS already here: answer CTS and wait for payload.
		m := &s.msgs[u.msg]
		cts := max64(st.clock, m.rtsATime) + s.pair(m.src, r).L + s.xl(r, m.src)
		s.q.Push(eventq.Event{Time: cts, Kind: evCTSArrive, Rank: m.src, A: u.msg})
		st.block = blockedRecv
		st.blockMsg = u.msg
		m.dstSlot = -2 // blocking receive, no slot
		return false
	}
	// Nothing here yet: post and block.
	idx := s.addSlot(st, slot{req: -1, peer: op.peer, tag: op.tag, size: op.size, isRecv: true, posted: st.clock, active: true})
	st.block = blockedRecv
	st.blockMsg = -1
	st.blockReq = idx // remember which slot the blocking recv owns
	return false
}

// postIrecv posts a nonblocking receive and tries to match immediately.
func (s *Simulator) postIrecv(r int32, op *cop) {
	st := &s.ranks[r]
	if u, ok := s.matchUnexpected(st, op.peer, op.tag); ok {
		if u.msg < 0 {
			s.addSlot(st, slot{req: op.req, peer: u.src, tag: u.tag, size: u.size, isRecv: true, done: true, ready: u.arr, active: true})
			s.res.Messages++
			s.res.BytesMoved += u.size
			return
		}
		m := &s.msgs[u.msg]
		// Claimed from birth: this slot is bound to the rendezvous
		// payload it just matched and must not match other arrivals.
		idx := s.addSlot(st, slot{req: op.req, peer: u.src, tag: u.tag, size: m.size, isRecv: true, claimed: true, posted: st.clock, active: true})
		m.dstSlot = idx
		cts := max64(st.clock, m.rtsATime) + s.pair(m.src, r).L + s.xl(r, m.src)
		s.q.Push(eventq.Event{Time: cts, Kind: evCTSArrive, Rank: m.src, A: u.msg})
		return
	}
	s.addSlot(st, slot{req: op.req, peer: op.peer, tag: op.tag, size: op.size, isRecv: true, posted: st.clock, active: true})
}

// findSlotByReq returns the index of the active slot with the request id.
func findSlotByReq(st *rankState, req int32) int32 {
	for i := range st.slots {
		if st.slots[i].active && st.slots[i].req == req {
			return int32(i)
		}
	}
	return -1
}

// doWait completes a single request. Returns false when blocked.
func (s *Simulator) doWait(r int32, req int32) bool {
	st := &s.ranks[r]
	idx := findSlotByReq(st, req)
	if idx < 0 {
		// Wait on an unknown request: trace validation prevents this;
		// treat as satisfied to avoid wedging the run.
		return true
	}
	sl := &st.slots[idx]
	if !sl.done {
		st.block = blockedWait
		st.blockReq = req
		return false
	}
	if sl.isRecv {
		st.clock = s.extend(r, max64(st.clock, sl.ready), s.recvParams(sl, r).RecvCPU(sl.size))
	} else {
		s.waitUntil(r, sl.ready)
	}
	st.freeSlot(idx)
	return true
}

// waitUntil advances a rank's clock to a completion time, accounting
// the gap as blocked time.
func (s *Simulator) waitUntil(r int32, till int64) {
	st := &s.ranks[r]
	if till <= st.clock {
		return
	}
	if s.prof != nil {
		s.profRank[r].wait += till - st.clock
	}
	st.clock = till
}

// recvParams picks the parameter set for a completed receive slot; a
// wildcard-source slot that matched a local sender keeps Net (the
// conservative choice, and wildcards are rare in generated traces).
func (s *Simulator) recvParams(sl *slot, r int32) *netmodel.Params {
	if sl.peer == trace.AnySource {
		return &s.net
	}
	return s.pair(sl.peer, r)
}

// doWaitAll completes all outstanding requests. Returns false when any
// is still pending.
func (s *Simulator) doWaitAll(r int32) bool {
	st := &s.ranks[r]
	// pending counts active-and-not-done slots; this check runs on
	// every completion event while the rank is blocked here, so it
	// must not rescan the slot table.
	if st.pending > 0 {
		st.block = blockedWaitAll
		return false
	}
	for i := range st.slots {
		sl := &st.slots[i]
		if !sl.active {
			continue
		}
		if sl.isRecv {
			st.clock = s.extend(r, max64(st.clock, sl.ready), s.recvParams(sl, r).RecvCPU(sl.size))
		} else {
			s.waitUntil(r, sl.ready)
		}
		sl.active = false
	}
	st.freeMin = 0
	return true
}

// eagerArrive delivers an eager payload at dst.
func (s *Simulator) eagerArrive(dst int32, src int32, size int64, tag int32, arr int64) {
	st := &s.ranks[dst]
	// A blocked receive waiting for a match?
	if st.block == blockedRecv && st.blockMsg == -1 {
		slIdx := st.blockReq
		sl := &st.slots[slIdx]
		if (sl.peer == trace.AnySource || sl.peer == src) && (sl.tag == trace.AnyTag || sl.tag == tag) {
			st.freeSlot(slIdx)
			st.clock = s.extend(dst, max64(st.clock, arr), s.pair(src, dst).RecvCPU(size))
			s.res.Messages++
			s.res.BytesMoved += size
			st.pc++ // past the blocking recv
			s.advance(dst)
			return
		}
	}
	// A posted irecv? st.posted holds exactly the matchable candidates
	// in ascending slot order — the order the full slot scan visited.
	for k := 0; k < len(st.posted); k++ {
		pe := &st.posted[k]
		if (pe.peer == trace.AnySource || pe.peer == src) &&
			(pe.tag == trace.AnyTag || pe.tag == tag) {
			sl := &st.slots[pe.idx]
			sl.done = true
			sl.ready = max64(arr, sl.posted)
			sl.size = size
			st.pending--
			st.postedRemoveAt(k)
			s.res.Messages++
			s.res.BytesMoved += size
			s.maybeUnblockWait(dst, sl.req)
			return
		}
	}
	st.unexpected = append(st.unexpected, unexp{src: src, tag: tag, msg: -1, size: size, arr: arr})
}

// rtsArrive processes a rendezvous request at the destination.
func (s *Simulator) rtsArrive(msgIdx int32, arr int64) {
	m := &s.msgs[msgIdx]
	m.rtsATime = arr
	st := &s.ranks[m.dst]
	// Blocking receive waiting?
	if st.block == blockedRecv && st.blockMsg == -1 {
		slIdx := st.blockReq
		sl := &st.slots[slIdx]
		if (sl.peer == trace.AnySource || sl.peer == m.src) && (sl.tag == trace.AnyTag || sl.tag == m.tag) {
			st.freeSlot(slIdx)
			m.dstSlot = -2
			st.blockMsg = msgIdx
			s.q.Push(eventq.Event{Time: max64(sl.posted, arr) + s.pair(m.src, m.dst).L + s.xl(m.dst, m.src), Kind: evCTSArrive, Rank: m.src, A: msgIdx})
			return
		}
	}
	// Posted irecv?
	for k := 0; k < len(st.posted); k++ {
		pe := &st.posted[k]
		if (pe.peer == trace.AnySource || pe.peer == m.src) &&
			(pe.tag == trace.AnyTag || pe.tag == m.tag) {
			i := pe.idx
			sl := &st.slots[i]
			m.dstSlot = i
			sl.size = m.size
			// Claim the slot: it now belongs to this rendezvous payload
			// and must not match further arrivals. (The pre-overhaul
			// scan left it matchable until the payload landed, letting a
			// same-(source,tag) eager message hijack an RTS-matched
			// request; expanded traces use unique per-instance tags, so
			// figure outputs are unaffected.)
			sl.claimed = true
			st.postedRemoveAt(k)
			s.q.Push(eventq.Event{Time: max64(sl.posted, arr) + s.pair(m.src, m.dst).L + s.xl(m.dst, m.src), Kind: evCTSArrive, Rank: m.src, A: msgIdx})
			return
		}
	}
	st.unexpected = append(st.unexpected, unexp{src: m.src, tag: m.tag, msg: msgIdx, size: m.size, arr: arr})
}

// ctsArrive resumes the sender of a rendezvous message.
func (s *Simulator) ctsArrive(msgIdx int32, arr int64) {
	m := &s.msgs[msgIdx]
	st := &s.ranks[m.src]
	p := s.pair(m.src, m.dst)
	if m.srcReq < 0 {
		// Blocking send: charge payload CPU now (sender is blocked, CPU
		// idle since the RTS was issued).
		cpuEnd := s.extend(m.src, max64(st.clock, arr), p.SendCPU(m.size))
		inj := s.inject(m.src, cpuEnd, p, m.size)
		s.q.Push(eventq.Event{Time: inj + p.Transit(m.size) + s.xl(m.src, m.dst), Kind: evDataArrive, Rank: m.dst, A: msgIdx})
		st.clock = cpuEnd
		st.pc++ // past the blocking send
		s.advance(m.src)
		return
	}
	// Nonblocking send: NIC-only injection (see package comment).
	inj := s.inject(m.src, arr, p, m.size)
	s.q.Push(eventq.Event{Time: inj + p.Transit(m.size) + s.xl(m.src, m.dst), Kind: evDataArrive, Rank: m.dst, A: msgIdx})
	idx := findSlotByReq(st, m.srcReq)
	if idx >= 0 {
		st.slots[idx].done = true
		st.slots[idx].ready = inj
		st.pending--
		s.maybeUnblockWait(m.src, m.srcReq)
	}
}

// dataArrive delivers a rendezvous payload.
func (s *Simulator) dataArrive(msgIdx int32, arr int64) {
	m := &s.msgs[msgIdx]
	m.dataATime = arr
	st := &s.ranks[m.dst]
	s.res.Messages++
	s.res.BytesMoved += m.size
	if m.dstSlot == -2 {
		// Blocking receive: complete it.
		st.clock = s.extend(m.dst, max64(st.clock, arr), s.pair(m.src, m.dst).RecvCPU(m.size))
		st.pc++ // past the blocking recv
		s.advance(m.dst)
		return
	}
	sl := &st.slots[m.dstSlot]
	sl.done = true
	sl.ready = arr
	st.pending--
	s.maybeUnblockWait(m.dst, sl.req)
}

// maybeUnblockWait resumes a rank blocked in Wait/WaitAll if the newly
// completed request satisfies it.
func (s *Simulator) maybeUnblockWait(r int32, req int32) {
	st := &s.ranks[r]
	switch st.block {
	case blockedWait:
		if st.blockReq != req {
			return
		}
		if s.doWait(r, req) {
			st.pc++
			s.advance(r)
		}
	case blockedWaitAll:
		if s.doWaitAll(r) {
			st.pc++
			s.advance(r)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)
