// Package loggopsim is a discrete-event simulator for MPI traces under
// the LogGOPS network model, in the spirit of LogGOPSim (Hoefler,
// Schneider, Lumsdaine, HPDC'10) and the resilience-study tool chain of
// Levy et al.
//
// The simulator replays per-rank operation traces (package trace) whose
// collectives have already been expanded into point-to-point schedules
// (package collectives). It reproduces every communication dependency, so
// a CPU detour on one rank — such as correctable-error logging — delays
// exactly the ranks that transitively depend on it.
//
// # Model
//
// Each rank owns a CPU timeline (clock: when its control flow can next
// execute) and a NIC timeline (nicFree: when its NIC can inject the next
// message; successive injections are separated by g + (s-1)G). Messages
// of size <= S use the eager protocol: sender pays o + (s-1)O of CPU,
// the payload lands at the destination L + (s-1)G after injection, and
// the receiver pays o + (s-1)O when (and not before) a matching receive
// is executed. Messages above S use rendezvous: the sender pays o and
// emits a ready-to-send control message; when the receiver has both the
// RTS and a matching posted receive, a clear-to-send returns to the
// sender (L each way), after which the payload moves as in the eager
// case. A blocking send therefore cannot complete before the receiver
// matches — the synchronization that lets delays propagate upstream.
//
// Simplifications relative to a full MPI stack, chosen to keep the noise
// semantics exact while staying O(events):
//
//   - nonblocking rendezvous sends charge the payload injection to the
//     NIC only (no retroactive CPU charge at CTS time);
//   - receive-side per-byte CPU (O) is charged when the receive or wait
//     completes rather than being pipelined with arrival;
//   - message matching is (source, tag) with wildcards in post order;
//     same-peer non-overtaking across different sizes is not enforced.
//
// CPU detours are injected through a noise.Model: every CPU-busy
// interval (calc, send overhead, receive overhead) is stretched by the
// detours that arrive during it.
package loggopsim

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	// Net is the LogGOPS parameter set for inter-node messages.
	Net netmodel.Params
	// LocalNet, when non-nil, is the parameter set for messages between
	// ranks on the same node (shared-memory transport). Nil means all
	// messages use Net.
	LocalNet *netmodel.Params
	// RanksPerNode places this many consecutive ranks on each node
	// (rank r lives on node r/RanksPerNode). The node's NIC is shared:
	// injections from co-located ranks serialize through one gap
	// timeline. Zero means 1. With more than one rank per node use a
	// correlated noise model (noise.SharedCE): the per-node streaming
	// model assumes one rank per node.
	RanksPerNode int
	// ExtraLatency, when non-nil, adds topology-dependent latency to
	// every message between two ranks (control and payload alike):
	// e.g. extra global-link hops between dragonfly groups. See
	// netmodel.DragonflyExtra.
	ExtraLatency func(src, dst int32) int64
	// Noise injects CPU detours; nil means no noise. The model is
	// called with the *rank* id; node-level models derive the node.
	Noise noise.Model
	// MaxTime aborts the simulation when the event clock passes this
	// horizon (ns). Zero disables the horizon.
	MaxTime int64
	// Profile enables per-rank time decomposition (Result.Profile):
	// requested CPU work, detour time added by the noise model, and
	// blocked time spent waiting for messages. Costs one extra O(ranks)
	// allocation and a few counters per operation.
	Profile bool
}

// Profile decomposes where simulated time went. All values are sums
// over ranks, in nanoseconds; the per-rank slices are populated only
// when profiling was enabled.
type Profile struct {
	// Work is the CPU time the traces asked for (compute plus
	// messaging overheads), before noise.
	Work int64
	// Detour is the extra CPU time injected by the noise model.
	Detour int64
	// Wait is the time ranks spent blocked on messages (receives,
	// rendezvous handshakes, waits) beyond their own CPU activity.
	Wait int64
	// PerRankWork, PerRankDetour and PerRankWait break the totals down
	// by rank.
	PerRankWork, PerRankDetour, PerRankWait []int64
}

// Result summarizes a simulation.
type Result struct {
	// Makespan is the finish time of the slowest rank, ns.
	Makespan int64
	// FinishTimes holds each rank's completion time, ns.
	FinishTimes []int64
	// Messages is the number of point-to-point payloads delivered.
	Messages uint64
	// BytesMoved is the total payload bytes delivered.
	BytesMoved int64
	// Events is the number of simulator events processed.
	Events uint64
	// Deadlocked is set when ranks were blocked with no pending events.
	Deadlocked bool
	// TimedOut is set when the MaxTime horizon fired.
	TimedOut bool
	// Profile is the time decomposition; nil unless Config.Profile.
	Profile *Profile
}

// Event kinds (eventq.Event.Kind).
const (
	evEagerArrive int32 = iota // payload arrival; A=src, B=size, C=tag
	evRTSArrive                // rendezvous request arrival; A=msg index
	evCTSArrive                // clear-to-send back at sender; A=msg index
	evDataArrive               // rendezvous payload arrival; A=msg index
)

// blockKind describes why a rank is not advancing.
type blockKind uint8

const (
	notBlocked      blockKind = iota
	blockedRecv               // blocking receive posted, waiting for match/data
	blockedSendCTS            // blocking rendezvous send, waiting for CTS
	blockedSendDone           // blocking rendezvous send, payload injection done at wake
	blockedWait               // waiting on one request
	blockedWaitAll            // waiting on all outstanding requests
	finished
)

// rdvMsg tracks a rendezvous message through its handshake.
type rdvMsg struct {
	src, dst  int32
	tag       int32
	size      int64
	srcReq    int32 // sender's request id, or -1 for a blocking send
	dstSlot   int32 // receiver's slot index once matched, or -1
	rtsATime  int64 // RTS arrival time at receiver
	dataATime int64 // payload arrival time at receiver
}

// slot is a posted receive or an outstanding send request on one rank.
type slot struct {
	req    int32 // request id; -1 for a blocking recv
	peer   int32 // expected source (AnySource allowed) or send peer
	tag    int32
	size   int64
	isRecv bool
	done   bool  // data ready (recv) or buffer released (send)
	ready  int64 // time the slot became done
	posted int64 // logical time the receive was posted
	active bool  // still occupied
}

// unexp is an arrived-but-unmatched message (eager payload or RTS).
type unexp struct {
	src  int32
	tag  int32
	msg  int32 // rendezvous message index, or -1 for eager
	size int64
	arr  int64
}

type rankState struct {
	ops        []trace.Op
	pc         int
	clock      int64
	block      blockKind
	blockReq   int32 // for blockedWait
	blockMsg   int32 // rendezvous msg index for blockedSendCTS / blockedRecv data wait
	slots      []slot
	unexpected []unexp
}

// Simulator is a reusable simulation engine bound to one expanded
// trace. Construction (NewSimulator) validates the configuration and
// preallocates the event queue, per-rank CPU/NIC timelines, match
// queues and profile counters; Run then replays the trace as many
// times as needed, reusing that state across calls. This makes the
// repeated-run hot path — the paper averages >= 8 seeded runs per
// (workload, system, scenario) point — nearly allocation-free: only
// the per-run Result (finish times and, when enabled, the profile)
// is freshly allocated so callers may retain results across runs.
//
// A Simulator is not safe for concurrent use; run one per goroutine.
// Results are bit-identical to a fresh Simulate call with the same
// trace, configuration and noise model.
type Simulator struct {
	cfg    Config
	net    netmodel.Params
	local  *netmodel.Params
	rpn    int32   // ranks per node
	nic    []int64 // per-node NIC-free time
	extraL func(src, dst int32) int64
	noise  noise.Model
	ranks  []rankState
	msgs   []rdvMsg
	q      *eventq.Queue
	res    Result
	active int      // ranks not yet finished
	prof   *Profile // nil unless profiling
}

// NewSimulator validates cfg and builds a reusable simulator for the
// trace. The trace must be collective-free (see collectives.Expand)
// and is read, never mutated, so several Simulators may share it.
func NewSimulator(tr *trace.Trace, cfg Config) (*Simulator, error) {
	n := tr.NumRanks()
	if n == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.LocalNet != nil {
		if err := cfg.LocalNet.Validate(); err != nil {
			return nil, err
		}
	}
	rpn := cfg.RanksPerNode
	if rpn == 0 {
		rpn = 1
	}
	if rpn < 0 {
		return nil, fmt.Errorf("loggopsim: ranks per node must be positive, got %d", rpn)
	}
	s := &Simulator{
		cfg:   cfg,
		net:   cfg.Net,
		local: cfg.LocalNet,
		rpn:   int32(rpn),
		nic:   make([]int64, (n+rpn-1)/rpn),
		ranks: make([]rankState, n),
		q:     eventq.New(1024),
	}
	s.extraL = cfg.ExtraLatency
	if s.extraL == nil {
		s.extraL = func(int32, int32) int64 { return 0 }
	}
	for r := range s.ranks {
		s.ranks[r].ops = tr.Ops[r]
	}
	return s, nil
}

// Ranks returns the number of ranks the simulator was built for.
func (s *Simulator) Ranks() int { return len(s.ranks) }

// reset restores the preallocated state to time zero, keeping every
// slice's capacity, and installs the noise model for the next run.
func (s *Simulator) reset(nm noise.Model) {
	if nm == nil {
		nm = s.cfg.Noise
	}
	if nm == nil {
		nm = noise.None{}
	}
	s.noise = nm
	s.q.Reset()
	for i := range s.nic {
		s.nic[i] = 0
	}
	s.msgs = s.msgs[:0]
	for r := range s.ranks {
		st := &s.ranks[r]
		st.pc = 0
		st.clock = 0
		st.block = notBlocked
		st.blockReq = 0
		st.blockMsg = -1
		st.slots = st.slots[:0]
		st.unexpected = st.unexpected[:0]
	}
	s.res = Result{}
	s.active = len(s.ranks)
	if s.cfg.Profile {
		// Fresh profile per run: callers retain Result.Profile.
		n := len(s.ranks)
		s.prof = &Profile{
			PerRankWork:   make([]int64, n),
			PerRankDetour: make([]int64, n),
			PerRankWait:   make([]int64, n),
		}
		s.res.Profile = s.prof
	} else {
		s.prof = nil
	}
}

// Run replays the trace under the given noise model (nil falls back to
// Config.Noise, then to no noise) and returns a freshly allocated
// result. Deadlocks and horizon timeouts return a non-nil error
// alongside the partial result. Internal state is reset and reused
// across calls; previously returned Results are never mutated.
func (s *Simulator) Run(nm noise.Model) (*Result, error) {
	s.reset(nm)
	// Kick every rank at t=0.
	for r := range s.ranks {
		s.advance(int32(r))
	}
	for s.q.Len() > 0 {
		e := s.q.Pop()
		s.res.Events++
		if s.cfg.MaxTime > 0 && e.Time > s.cfg.MaxTime {
			s.res.TimedOut = true
			s.finishResult()
			out := s.res
			return &out, fmt.Errorf("loggopsim: horizon %dns exceeded at t=%dns", s.cfg.MaxTime, e.Time)
		}
		switch e.Kind {
		case evEagerArrive:
			s.eagerArrive(e.Rank, int32(e.A), e.B, int32(e.C), e.Time)
		case evRTSArrive:
			s.rtsArrive(int32(e.A), e.Time)
		case evCTSArrive:
			s.ctsArrive(int32(e.A), e.Time)
		case evDataArrive:
			s.dataArrive(int32(e.A), e.Time)
		default:
			return nil, fmt.Errorf("loggopsim: unknown event kind %d", e.Kind)
		}
	}
	s.finishResult()
	out := s.res
	if s.active > 0 {
		out.Deadlocked = true
		return &out, fmt.Errorf("loggopsim: deadlock, %d ranks blocked (first: rank %d at op %d)",
			s.active, s.firstBlocked(), s.ranks[s.firstBlocked()].pc)
	}
	return &out, nil
}

// Simulate runs the trace to completion and returns the result. The
// trace must be collective-free (see collectives.Expand); a collective
// op is reported as an error. Deadlocks and horizon timeouts return a
// non-nil error alongside the partial result. One-shot convenience
// wrapper; repeated-run callers should build a Simulator once and Run
// it per seed.
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	s, err := NewSimulator(tr, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(cfg.Noise)
}

func (s *Simulator) firstBlocked() int32 {
	for r := range s.ranks {
		if s.ranks[r].block != finished {
			return int32(r)
		}
	}
	return 0
}

func (s *Simulator) finishResult() {
	s.res.FinishTimes = make([]int64, len(s.ranks))
	for r := range s.ranks {
		s.res.FinishTimes[r] = s.ranks[r].clock
		if s.ranks[r].clock > s.res.Makespan {
			s.res.Makespan = s.ranks[r].clock
		}
	}
}

// extend charges CPU work on a rank, stretched by noise detours. When
// the start time is beyond the rank's current clock the difference is
// blocked (waiting) time.
func (s *Simulator) extend(rank int32, start, dur int64) int64 {
	end := s.noise.Extend(rank, start, dur)
	if s.prof != nil {
		s.prof.Work += dur
		s.prof.PerRankWork[rank] += dur
		det := end - start - dur
		s.prof.Detour += det
		s.prof.PerRankDetour[rank] += det
		if wait := start - s.ranks[rank].clock; wait > 0 {
			s.prof.Wait += wait
			s.prof.PerRankWait[rank] += wait
		}
	}
	return end
}

// nodeOf maps a rank to its node.
func (s *Simulator) nodeOf(rank int32) int32 { return rank / s.rpn }

// pair returns the parameter set for a message between two ranks:
// LocalNet for co-located ranks when configured, Net otherwise.
func (s *Simulator) pair(a, b int32) *netmodel.Params {
	if s.local != nil && s.nodeOf(a) == s.nodeOf(b) {
		return s.local
	}
	return &s.net
}

// inject reserves the sender's node NIC for a message of size bytes
// that is ready at time ready, and returns the injection time.
func (s *Simulator) inject(rank int32, ready int64, p *netmodel.Params, size int64) int64 {
	node := s.nodeOf(rank)
	inj := ready
	if s.nic[node] > inj {
		inj = s.nic[node]
	}
	s.nic[node] = inj + p.NICGap(size)
	return inj
}

// advance executes ops on rank r until it blocks or finishes.
func (s *Simulator) advance(r int32) {
	st := &s.ranks[r]
	st.block = notBlocked
	for st.pc < len(st.ops) {
		op := &st.ops[st.pc]
		switch op.Kind {
		case trace.OpCalc:
			st.clock = s.extend(r, st.clock, op.Dur)
		case trace.OpSend:
			if !s.startSend(r, op, -1) {
				return // blocked waiting for CTS
			}
		case trace.OpIsend:
			s.startIsend(r, op)
		case trace.OpRecv:
			if !s.startRecv(r, op) {
				return
			}
		case trace.OpIrecv:
			s.postIrecv(r, op)
		case trace.OpWait:
			if !s.doWait(r, op.Req) {
				return
			}
		case trace.OpWaitAll:
			if !s.doWaitAll(r) {
				return
			}
		default:
			// Collectives must have been expanded; treat as fatal by
			// deadlocking this rank deliberately with a diagnostic op.
			// (Callers run trace.Validate + collectives.Expand first;
			// panicking here would hide the offending op index.)
			st.block = blockedWait
			st.blockReq = -999
			return
		}
		st.pc++
	}
	st.block = finished
	s.active--
}

// startSend executes a blocking send. Returns false when the rank blocks
// (rendezvous waiting for CTS).
func (s *Simulator) startSend(r int32, op *trace.Op, _ int32) bool {
	st := &s.ranks[r]
	p := s.pair(r, op.Peer)
	if p.Eager(op.Size) {
		cpuEnd := s.extend(r, st.clock, p.SendCPU(op.Size))
		inj := s.inject(r, cpuEnd, p, op.Size)
		arr := inj + p.Transit(op.Size) + s.extraL(r, op.Peer)
		s.q.Push(eventq.Event{Time: arr, Kind: evEagerArrive, Rank: op.Peer, A: int64(r), B: op.Size, C: int64(op.Tag)})
		st.clock = cpuEnd
		return true
	}
	// Rendezvous: pay o, emit RTS, block until CTS.
	cpuEnd := s.extend(r, st.clock, p.O)
	st.clock = cpuEnd
	idx := int32(len(s.msgs))
	s.msgs = append(s.msgs, rdvMsg{src: r, dst: op.Peer, tag: op.Tag, size: op.Size, srcReq: -1, dstSlot: -1})
	s.q.Push(eventq.Event{Time: cpuEnd + p.L + s.extraL(r, op.Peer), Kind: evRTSArrive, Rank: op.Peer, A: int64(idx)})
	st.block = blockedSendCTS
	st.blockMsg = idx
	return false
}

// startIsend executes a nonblocking send; the rank never blocks here.
func (s *Simulator) startIsend(r int32, op *trace.Op) {
	st := &s.ranks[r]
	p := s.pair(r, op.Peer)
	if p.Eager(op.Size) {
		cpuEnd := s.extend(r, st.clock, p.SendCPU(op.Size))
		inj := s.inject(r, cpuEnd, p, op.Size)
		arr := inj + p.Transit(op.Size) + s.extraL(r, op.Peer)
		s.q.Push(eventq.Event{Time: arr, Kind: evEagerArrive, Rank: op.Peer, A: int64(r), B: op.Size, C: int64(op.Tag)})
		st.clock = cpuEnd
		s.addSlot(st, slot{req: op.Req, peer: op.Peer, tag: op.Tag, size: op.Size, done: true, ready: cpuEnd, active: true})
		return
	}
	cpuEnd := s.extend(r, st.clock, p.O)
	st.clock = cpuEnd
	idx := int32(len(s.msgs))
	s.msgs = append(s.msgs, rdvMsg{src: r, dst: op.Peer, tag: op.Tag, size: op.Size, srcReq: op.Req, dstSlot: -1})
	s.q.Push(eventq.Event{Time: cpuEnd + p.L + s.extraL(r, op.Peer), Kind: evRTSArrive, Rank: op.Peer, A: int64(idx)})
	s.addSlot(st, slot{req: op.Req, peer: op.Peer, tag: op.Tag, size: op.Size, active: true})
}

func (s *Simulator) addSlot(st *rankState, sl slot) int32 {
	// Reuse an inactive slot if available to bound growth.
	for i := range st.slots {
		if !st.slots[i].active {
			st.slots[i] = sl
			return int32(i)
		}
	}
	st.slots = append(st.slots, sl)
	return int32(len(st.slots) - 1)
}

// matchUnexpected finds the earliest-arrived unexpected message matching
// (peer, tag) and removes it.
func (s *Simulator) matchUnexpected(st *rankState, peer, tag int32) (unexp, bool) {
	for i := range st.unexpected {
		u := st.unexpected[i]
		if (peer == trace.AnySource || peer == u.src) && (tag == trace.AnyTag || tag == u.tag) {
			st.unexpected = append(st.unexpected[:i], st.unexpected[i+1:]...)
			return u, true
		}
	}
	return unexp{}, false
}

// startRecv executes a blocking receive. Returns false when blocked.
func (s *Simulator) startRecv(r int32, op *trace.Op) bool {
	st := &s.ranks[r]
	if u, ok := s.matchUnexpected(st, op.Peer, op.Tag); ok {
		if u.msg < 0 {
			// Eager payload already here: charge receive CPU and go.
			st.clock = s.extend(r, max64(st.clock, u.arr), s.pair(u.src, r).RecvCPU(u.size))
			s.res.Messages++
			s.res.BytesMoved += u.size
			return true
		}
		// Rendezvous RTS already here: answer CTS and wait for payload.
		m := &s.msgs[u.msg]
		cts := max64(st.clock, m.rtsATime) + s.pair(m.src, r).L + s.extraL(r, m.src)
		s.q.Push(eventq.Event{Time: cts, Kind: evCTSArrive, Rank: m.src, A: int64(u.msg)})
		st.block = blockedRecv
		st.blockMsg = u.msg
		m.dstSlot = -2 // blocking receive, no slot
		return false
	}
	// Nothing here yet: post and block.
	idx := s.addSlot(st, slot{req: -1, peer: op.Peer, tag: op.Tag, size: op.Size, isRecv: true, posted: st.clock, active: true})
	st.block = blockedRecv
	st.blockMsg = -1
	st.blockReq = idx // remember which slot the blocking recv owns
	return false
}

// postIrecv posts a nonblocking receive and tries to match immediately.
func (s *Simulator) postIrecv(r int32, op *trace.Op) {
	st := &s.ranks[r]
	if u, ok := s.matchUnexpected(st, op.Peer, op.Tag); ok {
		if u.msg < 0 {
			s.addSlot(st, slot{req: op.Req, peer: u.src, tag: u.tag, size: u.size, isRecv: true, done: true, ready: u.arr, active: true})
			s.res.Messages++
			s.res.BytesMoved += u.size
			return
		}
		m := &s.msgs[u.msg]
		idx := s.addSlot(st, slot{req: op.Req, peer: u.src, tag: u.tag, size: m.size, isRecv: true, posted: st.clock, active: true})
		m.dstSlot = idx
		cts := max64(st.clock, m.rtsATime) + s.pair(m.src, r).L + s.extraL(r, m.src)
		s.q.Push(eventq.Event{Time: cts, Kind: evCTSArrive, Rank: m.src, A: int64(u.msg)})
		return
	}
	s.addSlot(st, slot{req: op.Req, peer: op.Peer, tag: op.Tag, size: op.Size, isRecv: true, posted: st.clock, active: true})
}

// findSlotByReq returns the index of the active slot with the request id.
func findSlotByReq(st *rankState, req int32) int32 {
	for i := range st.slots {
		if st.slots[i].active && st.slots[i].req == req {
			return int32(i)
		}
	}
	return -1
}

// doWait completes a single request. Returns false when blocked.
func (s *Simulator) doWait(r int32, req int32) bool {
	st := &s.ranks[r]
	idx := findSlotByReq(st, req)
	if idx < 0 {
		// Wait on an unknown request: trace validation prevents this;
		// treat as satisfied to avoid wedging the run.
		return true
	}
	sl := &st.slots[idx]
	if !sl.done {
		st.block = blockedWait
		st.blockReq = req
		return false
	}
	if sl.isRecv {
		st.clock = s.extend(r, max64(st.clock, sl.ready), s.recvParams(sl, r).RecvCPU(sl.size))
	} else {
		s.waitUntil(r, sl.ready)
	}
	sl.active = false
	return true
}

// waitUntil advances a rank's clock to a completion time, accounting
// the gap as blocked time.
func (s *Simulator) waitUntil(r int32, till int64) {
	st := &s.ranks[r]
	if till <= st.clock {
		return
	}
	if s.prof != nil {
		s.prof.Wait += till - st.clock
		s.prof.PerRankWait[r] += till - st.clock
	}
	st.clock = till
}

// recvParams picks the parameter set for a completed receive slot; a
// wildcard-source slot that matched a local sender keeps Net (the
// conservative choice, and wildcards are rare in generated traces).
func (s *Simulator) recvParams(sl *slot, r int32) *netmodel.Params {
	if sl.peer == trace.AnySource {
		return &s.net
	}
	return s.pair(sl.peer, r)
}

// doWaitAll completes all outstanding requests. Returns false when any
// is still pending.
func (s *Simulator) doWaitAll(r int32) bool {
	st := &s.ranks[r]
	for i := range st.slots {
		if st.slots[i].active && !st.slots[i].done {
			st.block = blockedWaitAll
			return false
		}
	}
	for i := range st.slots {
		sl := &st.slots[i]
		if !sl.active {
			continue
		}
		if sl.isRecv {
			st.clock = s.extend(r, max64(st.clock, sl.ready), s.recvParams(sl, r).RecvCPU(sl.size))
		} else {
			s.waitUntil(r, sl.ready)
		}
		sl.active = false
	}
	return true
}

// eagerArrive delivers an eager payload at dst.
func (s *Simulator) eagerArrive(dst int32, src int32, size int64, tag int32, arr int64) {
	st := &s.ranks[dst]
	// A blocked receive waiting for a match?
	if st.block == blockedRecv && st.blockMsg == -1 {
		slIdx := st.blockReq
		sl := &st.slots[slIdx]
		if (sl.peer == trace.AnySource || sl.peer == src) && (sl.tag == trace.AnyTag || sl.tag == tag) {
			sl.active = false
			st.clock = s.extend(dst, max64(st.clock, arr), s.pair(src, dst).RecvCPU(size))
			s.res.Messages++
			s.res.BytesMoved += size
			st.pc++ // past the blocking recv
			s.advance(dst)
			return
		}
	}
	// A posted irecv?
	for i := range st.slots {
		sl := &st.slots[i]
		if sl.active && sl.isRecv && !sl.done && sl.req >= 0 &&
			(sl.peer == trace.AnySource || sl.peer == src) &&
			(sl.tag == trace.AnyTag || sl.tag == tag) {
			sl.done = true
			sl.ready = max64(arr, sl.posted)
			sl.size = size
			s.res.Messages++
			s.res.BytesMoved += size
			s.maybeUnblockWait(dst, sl.req)
			return
		}
	}
	st.unexpected = append(st.unexpected, unexp{src: src, tag: tag, msg: -1, size: size, arr: arr})
}

// rtsArrive processes a rendezvous request at the destination.
func (s *Simulator) rtsArrive(msgIdx int32, arr int64) {
	m := &s.msgs[msgIdx]
	m.rtsATime = arr
	st := &s.ranks[m.dst]
	// Blocking receive waiting?
	if st.block == blockedRecv && st.blockMsg == -1 {
		slIdx := st.blockReq
		sl := &st.slots[slIdx]
		if (sl.peer == trace.AnySource || sl.peer == m.src) && (sl.tag == trace.AnyTag || sl.tag == m.tag) {
			sl.active = false
			m.dstSlot = -2
			st.blockMsg = msgIdx
			s.q.Push(eventq.Event{Time: max64(sl.posted, arr) + s.pair(m.src, m.dst).L + s.extraL(m.dst, m.src), Kind: evCTSArrive, Rank: m.src, A: int64(msgIdx)})
			return
		}
	}
	// Posted irecv?
	for i := range st.slots {
		sl := &st.slots[i]
		if sl.active && sl.isRecv && !sl.done && sl.req >= 0 &&
			(sl.peer == trace.AnySource || sl.peer == m.src) &&
			(sl.tag == trace.AnyTag || sl.tag == m.tag) {
			m.dstSlot = int32(i)
			sl.size = m.size
			s.q.Push(eventq.Event{Time: max64(sl.posted, arr) + s.pair(m.src, m.dst).L + s.extraL(m.dst, m.src), Kind: evCTSArrive, Rank: m.src, A: int64(msgIdx)})
			return
		}
	}
	st.unexpected = append(st.unexpected, unexp{src: m.src, tag: m.tag, msg: msgIdx, size: m.size, arr: arr})
}

// ctsArrive resumes the sender of a rendezvous message.
func (s *Simulator) ctsArrive(msgIdx int32, arr int64) {
	m := &s.msgs[msgIdx]
	st := &s.ranks[m.src]
	p := s.pair(m.src, m.dst)
	if m.srcReq < 0 {
		// Blocking send: charge payload CPU now (sender is blocked, CPU
		// idle since the RTS was issued).
		cpuEnd := s.extend(m.src, max64(st.clock, arr), p.SendCPU(m.size))
		inj := s.inject(m.src, cpuEnd, p, m.size)
		s.q.Push(eventq.Event{Time: inj + p.Transit(m.size) + s.extraL(m.src, m.dst), Kind: evDataArrive, Rank: m.dst, A: int64(msgIdx)})
		st.clock = cpuEnd
		st.pc++ // past the blocking send
		s.advance(m.src)
		return
	}
	// Nonblocking send: NIC-only injection (see package comment).
	inj := s.inject(m.src, arr, p, m.size)
	s.q.Push(eventq.Event{Time: inj + p.Transit(m.size) + s.extraL(m.src, m.dst), Kind: evDataArrive, Rank: m.dst, A: int64(msgIdx)})
	idx := findSlotByReq(st, m.srcReq)
	if idx >= 0 {
		st.slots[idx].done = true
		st.slots[idx].ready = inj
		s.maybeUnblockWait(m.src, m.srcReq)
	}
}

// dataArrive delivers a rendezvous payload.
func (s *Simulator) dataArrive(msgIdx int32, arr int64) {
	m := &s.msgs[msgIdx]
	m.dataATime = arr
	st := &s.ranks[m.dst]
	s.res.Messages++
	s.res.BytesMoved += m.size
	if m.dstSlot == -2 {
		// Blocking receive: complete it.
		st.clock = s.extend(m.dst, max64(st.clock, arr), s.pair(m.src, m.dst).RecvCPU(m.size))
		st.pc++ // past the blocking recv
		s.advance(m.dst)
		return
	}
	sl := &st.slots[m.dstSlot]
	sl.done = true
	sl.ready = arr
	s.maybeUnblockWait(m.dst, sl.req)
}

// maybeUnblockWait resumes a rank blocked in Wait/WaitAll if the newly
// completed request satisfies it.
func (s *Simulator) maybeUnblockWait(r int32, req int32) {
	st := &s.ranks[r]
	switch st.block {
	case blockedWait:
		if st.blockReq != req {
			return
		}
		if s.doWait(r, req) {
			st.pc++
			s.advance(r)
		}
	case blockedWaitAll:
		if s.doWaitAll(r) {
			st.pc++
			s.advance(r)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
