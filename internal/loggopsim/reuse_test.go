package loggopsim

// Golden bit-identity tests for simulator-state reuse: a Simulator
// constructed once and Run many times — in shuffled seed order, with
// repeated seeds, interleaved with noise-free runs — must reproduce
// fresh Simulate results event for event. This is the hard constraint
// that lets the repeated-run hot path (core.RunRepeated, the daemon's
// sweep jobs) reuse preallocated state.

import (
	"testing"

	"repro/internal/collectives"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// expandWorkload generates and collective-expands a tracegen workload.
func expandWorkload(t *testing.T, workload string, ranks, iters int) *trace.Trace {
	t.Helper()
	tr, err := tracegen.Generate(workload, ranks, iters, 1)
	if err != nil {
		t.Fatalf("generate %s: %v", workload, err)
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		t.Fatalf("expand %s: %v", workload, err)
	}
	return ex
}

// ceModel builds a fresh CE noise model; both the fresh-Simulate and
// the reused-Simulator paths get their own instance per seed, as the
// repetition loops in core do.
func ceModel(t *testing.T, ranks int, seed uint64) noise.Model {
	t.Helper()
	nm, err := noise.NewCE(ranks, noise.Config{
		Seed: seed, MTBCE: 20 * ms, Duration: noise.Fixed(500 * us), Target: noise.AllNodes,
	})
	if err != nil {
		t.Fatalf("noise model: %v", err)
	}
	return nm
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// requireIdentical fails unless two results match on every observable
// field, including the per-rank profile decomposition.
func requireIdentical(t *testing.T, label string, fresh, reused *Result) {
	t.Helper()
	if fresh.Makespan != reused.Makespan {
		t.Fatalf("%s: makespan %d != %d", label, reused.Makespan, fresh.Makespan)
	}
	if !int64sEqual(fresh.FinishTimes, reused.FinishTimes) {
		t.Fatalf("%s: finish times diverged\nfresh:  %v\nreused: %v", label, fresh.FinishTimes, reused.FinishTimes)
	}
	if fresh.Events != reused.Events {
		t.Fatalf("%s: events %d != %d", label, reused.Events, fresh.Events)
	}
	if fresh.Messages != reused.Messages {
		t.Fatalf("%s: messages %d != %d", label, reused.Messages, fresh.Messages)
	}
	if fresh.BytesMoved != reused.BytesMoved {
		t.Fatalf("%s: bytes %d != %d", label, reused.BytesMoved, fresh.BytesMoved)
	}
	if fresh.Deadlocked != reused.Deadlocked || fresh.TimedOut != reused.TimedOut {
		t.Fatalf("%s: termination flags diverged", label)
	}
	if (fresh.Profile == nil) != (reused.Profile == nil) {
		t.Fatalf("%s: profile presence diverged", label)
	}
	if fresh.Profile != nil {
		fp, rp := fresh.Profile, reused.Profile
		if fp.Work != rp.Work || fp.Detour != rp.Detour || fp.Wait != rp.Wait {
			t.Fatalf("%s: profile totals diverged: %+v vs %+v", label, rp, fp)
		}
		if !int64sEqual(fp.PerRankWork, rp.PerRankWork) ||
			!int64sEqual(fp.PerRankDetour, rp.PerRankDetour) ||
			!int64sEqual(fp.PerRankWait, rp.PerRankWait) {
			t.Fatalf("%s: per-rank profile diverged", label)
		}
	}
}

func TestSimulatorReuseBitIdentical(t *testing.T) {
	workloads := []struct {
		name         string
		ranks, iters int
	}{
		{"minife", 16, 3},
		{"cth", 8, 2},
	}
	// Shuffled, with a repeated seed: reuse must not depend on run
	// order or on having seen a seed before.
	seeds := []uint64{5, 2, 9, 2, 7, 1, 9}
	for _, wl := range workloads {
		ex := expandWorkload(t, wl.name, wl.ranks, wl.iters)
		ranks := ex.NumRanks()
		for _, profile := range []bool{false, true} {
			cfg := Config{Net: netmodel.CrayXC40(), Profile: profile}
			sim, err := NewSimulator(ex, cfg)
			if err != nil {
				t.Fatalf("%s: new simulator: %v", wl.name, err)
			}
			if sim.Ranks() != ranks {
				t.Fatalf("%s: simulator ranks %d, want %d", wl.name, sim.Ranks(), ranks)
			}
			freshClean, err := Simulate(ex, cfg)
			if err != nil {
				t.Fatalf("%s: fresh clean run: %v", wl.name, err)
			}
			reusedClean, err := sim.Run(nil)
			if err != nil {
				t.Fatalf("%s: reused clean run: %v", wl.name, err)
			}
			requireIdentical(t, wl.name+"/clean", freshClean, reusedClean)
			for _, seed := range seeds {
				ncfg := cfg
				ncfg.Noise = ceModel(t, ranks, seed)
				fresh, err := Simulate(ex, ncfg)
				if err != nil {
					t.Fatalf("%s seed %d: fresh run: %v", wl.name, seed, err)
				}
				reused, err := sim.Run(ceModel(t, ranks, seed))
				if err != nil {
					t.Fatalf("%s seed %d: reused run: %v", wl.name, seed, err)
				}
				requireIdentical(t, wl.name, fresh, reused)
				if fresh.Makespan < freshClean.Makespan {
					t.Fatalf("%s seed %d: noisy run faster than clean baseline", wl.name, seed)
				}
			}
			// A later run must not have mutated the first Run's result
			// (FinishTimes and Profile are freshly allocated per run).
			requireIdentical(t, wl.name+"/retained", freshClean, reusedClean)
			again, err := sim.Run(nil)
			if err != nil {
				t.Fatalf("%s: clean re-run: %v", wl.name, err)
			}
			requireIdentical(t, wl.name+"/clean-again", freshClean, again)
		}
	}
}

// TestSimulatorRunErrorStateRecovers checks that a horizon-aborted run
// leaves the simulator reusable: the next Run starts from clean state.
func TestSimulatorRunErrorStateRecovers(t *testing.T) {
	ex := expandWorkload(t, "minife", 8, 2)
	full, err := Simulate(ex, Config{Net: netmodel.CrayXC40()})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	cfg := Config{Net: netmodel.CrayXC40(), MaxTime: full.Makespan / 2}
	sim, err := NewSimulator(ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nil)
	if err == nil || !res.TimedOut {
		t.Fatalf("expected horizon timeout, got err=%v res=%+v", err, res)
	}
	res2, err := sim.Run(nil)
	if err == nil || !res2.TimedOut {
		t.Fatalf("second run after timeout: err=%v", err)
	}
	requireIdentical(t, "timeout-repeat", res, res2)
}
