package loggopsim

import (
	"testing"

	"repro/internal/collectives"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
)

func TestProfileDisabledByDefault(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{{trace.Calc(100)}}}
	res := mustSim(t, tr, defaultCfg())
	if res.Profile != nil {
		t.Fatal("profile populated without Config.Profile")
	}
}

func TestProfileWorkOnly(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100), trace.Calc(200)},
		{trace.Calc(500)},
	}}
	res := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), Profile: true})
	p := res.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	if p.Work != 800 {
		t.Fatalf("work = %d, want 800", p.Work)
	}
	if p.Detour != 0 || p.Wait != 0 {
		t.Fatalf("detour/wait = %d/%d on a compute-only noise-free trace", p.Detour, p.Wait)
	}
	if p.PerRankWork[0] != 300 || p.PerRankWork[1] != 500 {
		t.Fatalf("per-rank work %v", p.PerRankWork)
	}
}

func TestProfileWaitAccounting(t *testing.T) {
	// Rank 1 blocks in a receive while rank 0 computes for 1s: nearly
	// all of rank 1's time is wait.
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(1 * s), trace.Send(1, 8, 0)},
		{trace.Recv(0, 8, 0)},
	}}
	res := mustSim(t, tr, Config{Net: net, Profile: true})
	p := res.Profile
	wantWait := 1*s + net.SendCPU(8) + net.Transit(8) // rank 1 idle until arrival
	if p.PerRankWait[1] != wantWait {
		t.Fatalf("rank 1 wait = %d, want %d", p.PerRankWait[1], wantWait)
	}
	if p.PerRankWait[0] != 0 {
		t.Fatalf("rank 0 wait = %d, want 0", p.PerRankWait[0])
	}
}

func TestProfileDetourAccounting(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100 * ms)},
		{trace.Calc(100 * ms)},
	}}
	nm, err := noise.NewCE(2, noise.Config{
		Seed: 3, MTBCE: 10 * ms, Duration: noise.Fixed(1 * ms), Target: noise.AllNodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), Noise: nm, Profile: true})
	p := res.Profile
	if p.Detour <= 0 {
		t.Fatal("no detour time recorded under CE noise")
	}
	if p.Detour != nm.Stolen() {
		t.Fatalf("profile detour %d != noise model stolen %d", p.Detour, nm.Stolen())
	}
	if p.Work != 200*ms {
		t.Fatalf("work = %d, want 200ms", p.Work)
	}
}

func TestProfileDecomposesCollectiveSlowdown(t *testing.T) {
	// Under all-node CE noise on an allreduce-per-iteration workload,
	// the makespan increase shows up as detour + wait; the profile
	// lets callers separate local dilation from propagated stalls.
	tr := &trace.Trace{Ops: make([][]trace.Op, 16)}
	for r := range tr.Ops {
		var ops []trace.Op
		for i := 0; i < 20; i++ {
			ops = append(ops, trace.Calc(5*ms), trace.Allreduce(8))
		}
		tr.Ops[r] = ops
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := noise.NewCE(16, noise.Config{
		Seed: 5, MTBCE: 50 * ms, Duration: noise.Fixed(5 * ms), Target: noise.AllNodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustSim(t, ex, Config{Net: netmodel.CrayXC40(), Noise: nm, Profile: true})
	p := res.Profile
	if p.Detour == 0 {
		t.Fatal("no detours charged")
	}
	// Propagation: the wait time across ranks should exceed the detour
	// time itself — each detour stalls many peers at the next
	// allreduce.
	if p.Wait <= p.Detour {
		t.Fatalf("wait %d <= detour %d; no propagation visible", p.Wait, p.Detour)
	}
	// Conservation-ish: total rank-time equals work+detour+wait plus
	// final skew; every component is accounted within the makespan
	// envelope.
	var finish int64
	for _, f := range res.FinishTimes {
		finish += f
	}
	accounted := p.Work + p.Detour + p.Wait
	if accounted > finish {
		t.Fatalf("accounted time %d exceeds summed finish times %d", accounted, finish)
	}
	if float64(accounted) < 0.8*float64(finish) {
		t.Fatalf("accounted time %d far below summed finish times %d (leak)", accounted, finish)
	}
}

func TestProfilePerRankSlicesSized(t *testing.T) {
	tr := &trace.Trace{Ops: make([][]trace.Op, 5)}
	for r := range tr.Ops {
		tr.Ops[r] = []trace.Op{trace.Calc(10)}
	}
	res := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), Profile: true})
	p := res.Profile
	if len(p.PerRankWork) != 5 || len(p.PerRankDetour) != 5 || len(p.PerRankWait) != 5 {
		t.Fatal("per-rank slices missized")
	}
}
